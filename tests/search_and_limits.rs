//! Integration test: search convergence (Figure 7 / §5.5) and the §5.6
//! maximum-sequence-length limitation analysis.

use mas::dataflow::max_seqlen::max_seq_len;
use mas::dataflow::{AttentionWorkload, DataflowKind, Tiling};
use mas::search::cost::{CostModel, Objective};
use mas::search::tuner::{AutoTuner, TunerConfig};
use mas::sim::HardwareConfig;

#[test]
fn tuned_tilings_improve_substantially_over_naive() {
    let hw = HardwareConfig::edge_default();
    let w = AttentionWorkload::new("BERT-Small-ish", 1, 4, 256, 64);
    let mut tuner = AutoTuner::new(TunerConfig::quick(), 17);
    let result = tuner
        .tune(DataflowKind::MasAttention, &w, &hw)
        .expect("tuning succeeds");
    let improvement = result.improvement_over_naive().unwrap();
    assert!(
        improvement > 3.0,
        "expected a large improvement over the row-at-a-time tiling, got {improvement:.1}x"
    );
    // The history is non-increasing.
    let points = result.history.points();
    for pair in points.windows(2) {
        assert!(pair[1].best_objective <= pair[0].best_objective);
    }
}

#[test]
fn search_result_is_close_to_exhaustive_grid() {
    use mas::search::grid::GridSearch;
    use mas::search::space::SearchSpace;
    let hw = HardwareConfig::edge_default();
    let w = AttentionWorkload::new("toy", 1, 2, 128, 64);
    let space = SearchSpace::for_workload(&w, &hw);
    let mut model = CostModel::new(
        DataflowKind::MasAttention,
        w.clone(),
        hw.clone(),
        Objective::Latency,
    );
    let grid = GridSearch::new().run(&space, &mut model);
    let mut tuner = AutoTuner::new(TunerConfig::quick(), 23);
    let tuned = tuner.tune(DataflowKind::MasAttention, &w, &hw).unwrap();
    assert!(
        (tuned.best_cost.cycles as f64) <= grid.best_objective * 1.10,
        "tuner ({}) should be within 10% of the exhaustive optimum ({})",
        tuned.best_cost.cycles,
        grid.best_objective
    );
}

#[test]
fn max_sequence_length_limitation_matches_section_5_6() {
    let hw = HardwareConfig::edge_default();
    let limit = 1 << 23;
    let mas = max_seq_len(DataflowKind::MasAttention, 64, &hw, limit);
    let flat = max_seq_len(DataflowKind::Flat, 64, &hw, limit);
    assert!(
        mas.max_seq_len >= 700_000,
        "MAS supports ~1M tokens at FP16"
    );
    assert!(flat.max_seq_len > mas.max_seq_len);
    let ratio = flat.max_seq_len as f64 / mas.max_seq_len as f64;
    assert!(
        (1.6..=2.4).contains(&ratio),
        "FLAT/MAS ratio {ratio} should be ~2"
    );
}

#[test]
fn invalid_tilings_are_rejected_by_the_cost_model() {
    let hw = HardwareConfig::edge_default();
    let w = AttentionWorkload::new("long", 1, 1, 1 << 17, 64);
    let mut model = CostModel::new(DataflowKind::TileFlow, w.clone(), hw, Objective::Latency);
    let too_big = Tiling::new(1, 1, 4096, 4096, &w);
    assert!(model.evaluate(&too_big).is_none());
}
