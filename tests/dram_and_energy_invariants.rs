//! Integration test: §5.3.3 and §5.4 invariants — PE energy is
//! schedule-invariant, DRAM writes are identical for MAS and FLAT, and DRAM
//! reads never drop below the compulsory Q/K/V traffic.

use mas::api::{Method, Planner};
use mas::workloads::Network;

#[test]
fn pe_energy_is_schedule_invariant_across_exact_methods() {
    let planner = Planner::edge_default();
    let report = planner
        .compare_all(&Network::BertSmall.attention_workload(1))
        .unwrap();
    // FLAT, TileFlow and MAS perform exactly the same arithmetic, so their
    // MAC-PE energy must be identical (§5.3.3). FuseMax's online softmax and
    // Layer-Wise/Soft-Pipe perform the same MACs too.
    let pe = |m: Method| {
        let row = report.row(m).unwrap();
        row.energy_components
            .iter()
            .find(|(n, _)| n == "MAC PEs")
            .unwrap()
            .1
    };
    let reference = pe(Method::Flat);
    for m in [
        Method::LayerWise,
        Method::SoftPipe,
        Method::TileFlow,
        Method::FuseMax,
        Method::MasAttention,
    ] {
        let v = pe(m);
        assert!(
            (v - reference).abs() / reference < 0.01,
            "{m}: MAC PE energy {v} differs from FLAT's {reference}"
        );
    }
}

#[test]
fn dram_writes_are_identical_for_mas_and_flat() {
    let planner = Planner::edge_default();
    for network in Network::all() {
        let report = planner.compare_all(&network.attention_workload(1)).unwrap();
        let flat = report.row(Method::Flat).unwrap().dram_write_bytes;
        let mas = report.row(Method::MasAttention).unwrap().dram_write_bytes;
        assert_eq!(flat, mas, "{network}: write parity violated (§5.4.1)");
    }
}

#[test]
fn dram_reads_cover_the_compulsory_traffic_and_layerwise_reads_dominate() {
    let planner = Planner::edge_default();
    let hw = planner.hardware().clone();
    for network in [Network::BertBase, Network::VitB16, Network::Xlm] {
        let w = network.attention_workload(1);
        let report = planner.compare_all(&w).unwrap();
        let compulsory = 3 * w.operand_bytes(hw.element_bytes);
        for method in Method::all() {
            let reads = report.row(method).unwrap().dram_read_bytes;
            assert!(
                reads >= compulsory,
                "{network}/{method}: reads {reads} below compulsory {compulsory}"
            );
        }
        let lw = report.row(Method::LayerWise).unwrap().dram_read_bytes;
        let mas = report.row(Method::MasAttention).unwrap().dram_read_bytes;
        assert!(lw > mas, "{network}: Layer-Wise must re-read intermediates");
    }
}

#[test]
fn mas_reads_exceed_flat_only_when_overwrites_happen() {
    let planner = Planner::edge_default();
    for network in Network::all() {
        let report = planner.compare_all(&network.attention_workload(1)).unwrap();
        let flat = report.row(Method::Flat).unwrap();
        let mas = report.row(Method::MasAttention).unwrap();
        if mas.overwrite_events == 0 {
            assert_eq!(
                flat.dram_read_bytes, mas.dram_read_bytes,
                "{network}: reads should match FLAT when no overwrite happens"
            );
        } else {
            assert!(mas.dram_read_bytes > flat.dram_read_bytes);
            assert_eq!(
                mas.dram_read_bytes - flat.dram_read_bytes,
                mas.reload_bytes,
                "{network}: extra reads must equal the reloaded bytes"
            );
        }
    }
}
