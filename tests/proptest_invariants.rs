//! Property-based integration tests over the core invariants:
//! numerical exactness of the tiled executors for arbitrary tilings, schedule
//! validity and conservation of work for arbitrary workload shapes, and
//! simulator sanity (makespan bounds).

use proptest::prelude::*;

use mas::api::Method;
use mas::dataflow::{build_dataflow, AttentionWorkload, Tiling};
use mas::sim::{EnergyModel, Executor, HardwareConfig};
use mas::tensor::attention::reference_attention;
use mas::tensor::init::random_qkv;
use mas::tensor::tiled::{fused_online_attention, tiled_attention, TileSizes};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn tiled_attention_is_exact_for_arbitrary_tilings(
        n in 4usize..40,
        e in 2usize..24,
        nq in 1usize..40,
        nkv in 1usize..40,
        seed in 0u64..1000,
    ) {
        let (q, k, v) = random_qkv(1, 2, n, e, seed);
        let tiles = TileSizes::new(nq, nkv, n).unwrap();
        let reference = reference_attention(&q, &k, &v).unwrap();
        let tiled = tiled_attention(&q, &k, &v, tiles).unwrap();
        let fused = fused_online_attention(&q, &k, &v, tiles).unwrap();
        prop_assert!(reference.max_abs_diff(&tiled).unwrap() < 1e-4);
        prop_assert!(reference.max_abs_diff(&fused).unwrap() < 1e-3);
    }

    #[test]
    fn schedules_conserve_work_and_validate(
        heads in 1usize..5,
        seq in 16usize..129,
        embed_pow in 3u32..7,
        nq in 8usize..65,
        nkv in 16usize..129,
    ) {
        let embed = 1usize << embed_pow;
        let w = AttentionWorkload::new("prop", 1, heads, seq, embed);
        let hw = HardwareConfig::edge_default();
        let t = Tiling::new(1, 1, nq, nkv, &w);
        for method in Method::all() {
            let s = build_dataflow(method, &w, &t, &hw).unwrap();
            s.graph().validate().unwrap();
            // Every method performs at least the workload's MAC operations
            // (more only when the overwrite strategy redoes sub-tiles).
            prop_assert!(s.graph().total_mac_ops() >= w.total_mac_ops(), "{method}");
            prop_assert!(
                s.graph().total_mac_ops() <= w.total_mac_ops() + s.stats().redo_mac_ops,
                "{method}"
            );
            // Output is written exactly once.
            prop_assert_eq!(
                s.graph().dram_write_bytes() >= w.operand_bytes(hw.element_bytes),
                true
            );
        }
    }

    #[test]
    fn makespan_is_bounded_by_serial_time_and_mas_never_loses_to_flat(
        heads in 1usize..4,
        seq in 32usize..129,
    ) {
        let w = AttentionWorkload::new("prop", 1, heads, seq, 64);
        let hw = HardwareConfig::edge_default();
        let t = Tiling::heuristic(&w, &hw);
        let exec = Executor::new(hw.clone(), EnergyModel::edge_16nm()).without_trace();

        let mut cycles = std::collections::BTreeMap::new();
        for method in [Method::Flat, Method::MasAttention] {
            let s = build_dataflow(method, &w, &t, &hw).unwrap();
            let report = exec.run(s.graph()).unwrap();
            // Makespan can never exceed the sum of all task durations and
            // never be zero.
            prop_assert!(report.total_cycles > 0);
            let serial: u64 = report.busy_cycles.values().sum();
            prop_assert!(report.total_cycles <= serial + 1);
            cycles.insert(method, report.total_cycles);
        }
        prop_assert!(cycles[&Method::MasAttention] <= cycles[&Method::Flat]);
    }
}
