//! Integration test: every dataflow passes the golden-data check (§5.1) on a
//! variety of shapes, including ragged tilings and every Table 1 network
//! (scaled down by the verifier).

use mas::api::{Method, Planner};
use mas::dataflow::numeric::golden_check_method;
use mas::dataflow::{AttentionWorkload, Tiling};
use mas::tensor::init::random_qkv;
use mas::workloads::Network;

#[test]
fn all_methods_are_exact_on_small_shapes() {
    let shapes = [
        (1usize, 2usize, 40usize, 16usize),
        (2, 1, 33, 8),
        (1, 3, 64, 32),
    ];
    for (b, h, n, e) in shapes {
        let w = AttentionWorkload::new("case", b, h, n, e);
        let (q, k, v) = random_qkv(b, h, n, e, 1234);
        for nq in [1usize, 7, 16] {
            for nkv in [5usize, 16, 64] {
                let tiling = Tiling::new(1, 1, nq, nkv, &w);
                for method in Method::all() {
                    let report = golden_check_method(method, &q, &k, &v, &tiling)
                        .expect("shapes are consistent");
                    assert!(
                        report.passed,
                        "{method} failed on B{b} H{h} N{n} E{e} tiling {tiling}: \
                         {} mismatches, max abs diff {}",
                        report.mismatches, report.max_abs_diff
                    );
                }
            }
        }
    }
}

#[test]
fn every_table1_network_passes_the_planner_verification() {
    let planner = Planner::edge_default();
    for network in Network::all() {
        let w = network.attention_workload(1);
        for method in [Method::Flat, Method::FuseMax, Method::MasAttention] {
            let report = planner.verify(method, &w, 99).expect("verification runs");
            assert!(
                report.passed,
                "{method} failed the golden check on {network}"
            );
        }
    }
}
