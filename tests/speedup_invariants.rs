//! Integration test: the simulator reproduces the paper's qualitative
//! ordering (Table 2 / Table 3 shape) on every Table 1 network.

use mas::api::{Method, Planner};
use mas::workloads::Network;

#[test]
fn mas_attention_wins_on_every_table1_network() {
    let planner = Planner::edge_default();
    for network in Network::all() {
        let report = planner
            .compare_all(&network.attention_workload(1))
            .expect("simulation succeeds");
        let mas = report.cycles(Method::MasAttention).unwrap();
        for baseline in Method::baselines() {
            let other = report.cycles(baseline).unwrap();
            assert!(
                mas <= other,
                "{network}: MAS ({mas}) slower than {baseline} ({other})"
            );
        }
        // The strongest published baseline must still trail clearly.
        let flat_speedup = report.speedup(Method::Flat, Method::MasAttention).unwrap();
        assert!(
            flat_speedup >= 1.2,
            "{network}: FLAT speedup {flat_speedup} below the expected band"
        );
        let lw_speedup = report
            .speedup(Method::LayerWise, Method::MasAttention)
            .unwrap();
        assert!(
            lw_speedup > flat_speedup,
            "{network}: Layer-Wise must be slower than FLAT"
        );
    }
}

#[test]
fn energy_orderings_match_table3() {
    let planner = Planner::edge_default();
    for network in [
        Network::BertBase,
        Network::T5Mini,
        Network::Llama3_8B,
        Network::VitB16,
    ] {
        let report = planner
            .compare_all(&network.attention_workload(1))
            .expect("simulation succeeds");
        // MAS saves energy versus the unfused baselines.
        for baseline in [Method::LayerWise, Method::SoftPipe] {
            let saving = report
                .energy_saving(baseline, Method::MasAttention)
                .unwrap();
            assert!(
                saving > 0.2,
                "{network}: expected >20% energy saving vs {baseline}, got {saving}"
            );
        }
        // MAS is close to FLAT in energy (within ±20%), as in the paper.
        let vs_flat = report
            .energy_saving(Method::Flat, Method::MasAttention)
            .unwrap();
        assert!(
            vs_flat.abs() < 0.2,
            "{network}: MAS vs FLAT energy saving {vs_flat} out of band"
        );
    }
}

#[test]
fn speedup_grows_as_embedding_shrinks() {
    // Table 2's trend: the FLAT-vs-MAS gap is largest for small embedding
    // sizes (T5-Mini, E=32) and smallest for E=128 (Llama/XLM).
    let planner = Planner::edge_default();
    let speedup_for = |net: Network| {
        planner
            .compare_all(&net.attention_workload(1))
            .unwrap()
            .speedup(Method::Flat, Method::MasAttention)
            .unwrap()
    };
    let e32 = speedup_for(Network::T5Mini);
    let e64 = speedup_for(Network::BertBase);
    let e128 = speedup_for(Network::Xlm);
    assert!(
        e32 > e128,
        "E=32 speedup {e32} should exceed E=128 speedup {e128}"
    );
    assert!(
        e64 > e128,
        "E=64 speedup {e64} should exceed E=128 speedup {e128}"
    );
}
