//! Differential paged-vs-contiguous property tests — the oracle harness the
//! block-granular KV path hangs on.
//!
//! For random shapes, block sizes (including single-token blocks and blocks
//! larger than the whole context), step counts and sliding windows, running
//! the autoregressive loop through `PagedKvCache` + `decode_attention_paged`
//! must be **bit-identical** to the contiguous `KvCache` +
//! `decode_attention` path at every step — the paged kernel visits the same
//! rows in the same order, so any divergence is a block-table sweep bug, not
//! float drift — and must match the prefill oracle
//! (`fused_online_attention` over each step's context prefix) within
//! `golden_check` tolerance.
//!
//! The shared-prefix differential oracle extends this to cross-session KV
//! prefix sharing: N sessions opened from one prefix with random divergent
//! suffixes must decode **bitwise-equal** to N fully-private paged caches at
//! every step — across copy-on-write divergence points, window eviction into
//! the shared region, GQA groupings and both `KvDtype`s.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mas::api::verify_decode_paged;
use mas::dataflow::DecodeStep;
use mas::tensor::decode::{decode_attention, KvCache};
use mas::tensor::golden::{golden_check, Tolerance};
use mas::tensor::half::KvDtype;
use mas::tensor::init::random_qkv;
use mas::tensor::paged::{decode_attention_paged, KvBlockPool, PagedKvCache, PrefixIndex};
use mas::tensor::tiled::{fused_online_attention, TileSizes};
use mas::tensor::Tensor;

/// Copies row `r` of every head of `src` into one head-major step slice.
fn gather_step(src: &Tensor, r: usize) -> Vec<f32> {
    let [_, heads, _, _] = src.shape().dims();
    (0..heads).flat_map(|h| src.row(0, h, r).to_vec()).collect()
}

/// Deterministic K/V rows per token id (head-major, `kv_heads × embed`), so
/// a shared block holds exactly the bytes a private session would write for
/// the same token.
fn token_rows(token: u64, kv_heads: usize, embed: usize) -> (Vec<f32>, Vec<f32>) {
    let k = (0..kv_heads * embed)
        .map(|i| (token as f32 * 0.11 + i as f32 * 0.013).sin())
        .collect();
    let v = (0..kv_heads * embed)
        .map(|i| (token as f32 * 0.07 + i as f32 * 0.019).cos())
        .collect();
    (k, v)
}

/// Deterministic per-(session, step) query row, identical across the shared
/// and private decode paths.
fn query_row(session: usize, step: usize, heads: usize, embed: usize) -> Vec<f32> {
    (0..heads * embed)
        .map(|i| ((session * 131 + step * 17 + i) as f32 * 0.0137).sin())
        .collect()
}

/// Runs `t` decode steps through both the contiguous and the paged path,
/// asserting bit-identical outputs at every step; returns the stacked
/// per-step outputs as a `(1, H, t, E)` tensor.
fn decode_both_paths(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    contiguous: &mut KvCache,
    pool: &mut KvBlockPool,
    paged: &mut PagedKvCache,
) -> Tensor {
    let [_, heads, t, embed] = q.shape().dims();
    let mut decoded = Tensor::zeros(*q.shape());
    let mut out_c = vec![0.0f32; heads * embed];
    let mut out_p = vec![0.0f32; heads * embed];
    for i in 0..t {
        let (ks, vs, qs) = (gather_step(k, i), gather_step(v, i), gather_step(q, i));
        contiguous.append(&ks, &vs).unwrap();
        paged.append(pool, &ks, &vs).unwrap();
        decode_attention(contiguous, &qs, &mut out_c).unwrap();
        decode_attention_paged(pool, paged, &qs, &mut out_p).unwrap();
        assert_eq!(
            out_c, out_p,
            "paged decode diverged bitwise from contiguous at step {i}"
        );
        for h in 0..heads {
            decoded
                .row_mut(0, h, i)
                .copy_from_slice(&out_p[h * embed..(h + 1) * embed]);
        }
    }
    decoded
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn paged_decode_is_bit_identical_and_matches_the_prefix_oracles(
        heads in 1usize..4,
        t in 2usize..33,
        e in 2usize..17,
        block_tokens in 1usize..48, // spans 1, odd sizes and > context
        nq in 1usize..33,
        nkv in 1usize..33,
        seed in 0u64..1000,
    ) {
        let (q, k, v) = random_qkv(1, heads, t, e, seed);
        let mut contiguous = KvCache::new(heads, e);
        let mut pool = KvBlockPool::new(block_tokens, heads, e);
        let mut paged = PagedKvCache::new(heads, heads, e, block_tokens).unwrap();
        let decoded = decode_both_paths(&q, &k, &v, &mut contiguous, &mut pool, &mut paged);
        prop_assert_eq!(paged.allocated_blocks(), t.div_ceil(block_tokens));

        // Golden: for each step, the prefill oracle over the step's prefix
        // (arbitrary tiling), taking its last query row.
        let mut golden = Tensor::zeros(*q.shape());
        for i in 0..t {
            let prefix = i + 1;
            let sub = |src: &Tensor| src.block([0, 0, 0, 0], [1, heads, prefix, e]).unwrap();
            let tiles = TileSizes::new(nq, nkv, prefix).unwrap();
            let oracle = fused_online_attention(&sub(&q), &sub(&k), &sub(&v), tiles).unwrap();
            for h in 0..heads {
                golden.row_mut(0, h, i).copy_from_slice(oracle.row(0, h, i));
            }
        }
        let report = golden_check(&decoded, &golden, Tolerance::default()).unwrap();
        prop_assert!(
            report.passed,
            "paged decode diverged from the prefill oracle: {} mismatches, max abs diff {}, worst {:?}",
            report.mismatches, report.max_abs_diff, report.worst_index
        );
    }

    #[test]
    fn f16_decode_matches_the_f32_prefill_oracle_at_half_precision(
        heads in 1usize..4,
        t in 2usize..33,
        e in 2usize..17,
        block_tokens in 1usize..48,
        seed in 0u64..1000,
    ) {
        // KV rows stored as f16 bits, widened to f32 per tile inside the
        // decode sweep: paged and contiguous stay bit-identical to each
        // other (same visited row sequence), and both track the f32
        // prefill oracle within half-precision tolerance at every step.
        let (q, k, v) = random_qkv(1, heads, t, e, seed);
        let mut contiguous = KvCache::new(heads, e).with_dtype(KvDtype::F16);
        let mut pool = KvBlockPool::new(block_tokens, heads, e).with_dtype(KvDtype::F16);
        let mut paged = PagedKvCache::new(heads, heads, e, block_tokens).unwrap();
        let decoded = decode_both_paths(&q, &k, &v, &mut contiguous, &mut pool, &mut paged);

        let mut golden = Tensor::zeros(*q.shape());
        for i in 0..t {
            let prefix = i + 1;
            let sub = |src: &Tensor| src.block([0, 0, 0, 0], [1, heads, prefix, e]).unwrap();
            let tiles = TileSizes::new(prefix, 1, prefix).unwrap();
            let oracle = fused_online_attention(&sub(&q), &sub(&k), &sub(&v), tiles).unwrap();
            for h in 0..heads {
                golden.row_mut(0, h, i).copy_from_slice(oracle.row(0, h, i));
            }
        }
        let report = golden_check(&decoded, &golden, Tolerance::half_precision()).unwrap();
        prop_assert!(
            report.passed,
            "f16 decode diverged from the f32 prefill oracle: {} mismatches, max abs diff {}, worst {:?}",
            report.mismatches, report.max_abs_diff, report.worst_index
        );
    }

    #[test]
    fn windowed_paged_decode_is_bit_identical_to_the_contiguous_window(
        heads in 1usize..4,
        t in 4usize..29,
        e in 2usize..9,
        capacity in 2usize..25,
        block_tokens in 1usize..12,
        seed in 0u64..1000,
    ) {
        let capacity = capacity.min(t);
        let (q, k, v) = random_qkv(1, heads, t, e, seed);
        let mut contiguous = KvCache::with_capacity(heads, e, capacity);
        let mut pool = KvBlockPool::new(block_tokens, heads, e);
        let mut paged = PagedKvCache::new(heads, heads, e, block_tokens)
            .unwrap()
            .with_window(capacity);
        let decoded = decode_both_paths(&q, &k, &v, &mut contiguous, &mut pool, &mut paged);

        // The attended sets stayed in lockstep...
        prop_assert_eq!(paged.len(), contiguous.len());
        prop_assert_eq!(paged.evicted_tokens(), contiguous.evicted_tokens());
        // ...and whole-block eviction returned every fully stale block.
        prop_assert!(paged.resident_tokens() <= capacity + block_tokens);
        prop_assert_eq!(
            pool.live_blocks() + pool.free_blocks(),
            pool.total_blocks()
        );

        // Final step against the window oracle: prefill over the newest
        // `capacity` tokens, last query row.
        let start = t - capacity;
        let sub = |src: &Tensor| {
            src.block([0, 0, start, 0], [1, heads, capacity, e]).unwrap()
        };
        let tiles = TileSizes::new(capacity, 1, capacity).unwrap();
        let oracle = fused_online_attention(&sub(&q), &sub(&k), &sub(&v), tiles).unwrap();
        let tol = Tolerance::default();
        for h in 0..heads {
            let got = decoded.row(0, h, t - 1);
            let want = oracle.row(0, h, capacity - 1);
            for (c, (&x, &g)) in got.iter().zip(want).enumerate() {
                prop_assert!(
                    tol.matches(x, g),
                    "windowed paged decode diverged at head {} col {}: {} vs {}", h, c, x, g
                );
            }
        }
    }

    #[test]
    fn verify_decode_paged_passes_for_random_steps_and_block_sizes(
        heads in 1usize..6,
        context in 1usize..49,
        e in 2usize..25,
        block_tokens in 1usize..64,
        seed in 0u64..1000,
    ) {
        let step = DecodeStep::new("prop-paged", 1, heads, context, e);
        let report = verify_decode_paged(&step, block_tokens, seed).unwrap();
        prop_assert!(
            report.passed,
            "{} (block {}): {} mismatches (max abs diff {})",
            step, block_tokens, report.mismatches, report.max_abs_diff
        );
    }

    // The shared-prefix differential oracle: a publisher session plus N
    // sharers opened from one common prefix with divergent suffixes decode
    // bitwise-equal to fully-private paged sessions at every single step —
    // through partial-tail shares, CoW divergence, and window eviction into
    // the shared region — for random GQA groupings and both KV dtypes.
    #[test]
    fn shared_prefix_decode_is_bitwise_equal_to_fully_private_sessions(
        groups in 1usize..3,
        kv_heads in 1usize..3,
        e in 2usize..9,
        block_tokens in 1usize..10,
        prefix_len in 1usize..25,
        sharers in 1usize..4,
        f16 in 0usize..2,
        seed in 0u64..1000,
    ) {
        let heads = groups * kv_heads;
        let dtype = if f16 == 1 { KvDtype::F16 } else { KvDtype::F32 };
        let mut rng = StdRng::seed_from_u64(seed);

        // Shared world: one pool + radix index across every session.
        // Private world: an identically shaped pool, no sharing at all.
        let mut shared_pool = KvBlockPool::new(block_tokens, kv_heads, e).with_dtype(dtype);
        let mut private_pool = KvBlockPool::new(block_tokens, kv_heads, e).with_dtype(dtype);
        let mut index = PrefixIndex::new(block_tokens);
        let prefix: Vec<u64> = (0..prefix_len as u64).collect();

        struct Sess {
            shared: PagedKvCache,
            private: PagedKvCache,
            tokens: Vec<u64>,
            pos: usize,
        }
        let open = |s: usize,
                        shared_pool: &mut KvBlockPool,
                        private_pool: &mut KvBlockPool,
                        index: &mut PrefixIndex,
                        rng: &mut StdRng|
         -> Sess {
            let suffix_len = rng.gen_range(0..2 * block_tokens + 4);
            let mut tokens = prefix.clone();
            tokens.extend((0..suffix_len as u64).map(|j| 10_000 + s as u64 * 1_000 + j));
            let window = (rng.gen_range(0..3usize) == 0)
                .then(|| rng.gen_range(1..tokens.len() + 1));
            let mut shared = PagedKvCache::new(heads, kv_heads, e, block_tokens).unwrap();
            let mut private = PagedKvCache::new(heads, kv_heads, e, block_tokens).unwrap();
            if let Some(w) = window {
                shared = shared.with_window(w);
                private = private.with_window(w);
            }
            let matched = shared.open_with_prefix(shared_pool, index, &tokens).unwrap();
            prop_assert!(matched <= tokens.len());
            // A sharer must actually share once the publisher has published
            // at least one full block of the common prefix.
            if s > 0 && prefix_len >= block_tokens {
                prop_assert!(matched >= block_tokens, "sharer {} matched nothing", s);
            }
            // Fast-forward the private twin over the shared region, then
            // check the pure shared read before any private append.
            for &t in &tokens[..matched] {
                let (k, v) = token_rows(t, kv_heads, e);
                private.append(private_pool, &k, &v).unwrap();
            }
            prop_assert_eq!(shared.len(), private.len());
            if !shared.is_empty() {
                let q = query_row(s, matched, heads, e);
                let mut out_s = vec![0.0f32; heads * e];
                let mut out_p = vec![0.0f32; heads * e];
                decode_attention_paged(shared_pool, &shared, &q, &mut out_s).unwrap();
                decode_attention_paged(private_pool, &private, &q, &mut out_p).unwrap();
                prop_assert!(
                    out_s == out_p,
                    "session {} diverged bitwise on the pure shared read", s
                );
            }
            Sess { shared, private, tokens, pos: matched }
        };

        // The publisher runs its whole script first so the prefix lands in
        // the index; every step is decode-checked against its private twin.
        let mut sessions = vec![open(0, &mut shared_pool, &mut private_pool, &mut index, &mut rng)];
        let step = |s: usize, sess: &mut Sess,
                    shared_pool: &mut KvBlockPool,
                    private_pool: &mut KvBlockPool,
                    index: &mut PrefixIndex| {
            let t = sess.tokens[sess.pos];
            sess.pos += 1;
            let (k, v) = token_rows(t, kv_heads, e);
            sess.shared.append_with_prefix(shared_pool, index, &k, &v).unwrap();
            sess.private.append(private_pool, &k, &v).unwrap();
            let q = query_row(s, sess.pos, heads, e);
            let mut out_s = vec![0.0f32; heads * e];
            let mut out_p = vec![0.0f32; heads * e];
            decode_attention_paged(shared_pool, &sess.shared, &q, &mut out_s).unwrap();
            decode_attention_paged(private_pool, &sess.private, &q, &mut out_p).unwrap();
            prop_assert!(
                out_s == out_p,
                "session {} diverged bitwise from its private twin at token {}", s, sess.pos
            );
            prop_assert_eq!(sess.shared.len(), sess.private.len());
            prop_assert_eq!(sess.shared.evicted_tokens(), sess.private.evicted_tokens());
        };
        while sessions[0].pos < sessions[0].tokens.len() {
            step(0, &mut sessions[0], &mut shared_pool, &mut private_pool, &mut index);
        }

        // Sharers open against the published prefix, then advance
        // round-robin so CoW divergence points interleave across sessions.
        for s in 1..=sharers {
            sessions.push(open(s, &mut shared_pool, &mut private_pool, &mut index, &mut rng));
        }
        loop {
            let mut progressed = false;
            for (s, sess) in sessions.iter_mut().enumerate() {
                if sess.pos >= sess.tokens.len() {
                    continue;
                }
                progressed = true;
                step(s, sess, &mut shared_pool, &mut private_pool, &mut index);
            }
            if !progressed {
                break;
            }
        }

        // Drain both worlds: refcounted release + index eviction leaks
        // nothing, and the private pool empties symmetrically.
        for sess in &mut sessions {
            sess.shared.release(&mut shared_pool);
            sess.private.release(&mut private_pool);
        }
        index.evict_unreferenced(&mut shared_pool);
        prop_assert_eq!(shared_pool.live_blocks(), 0);
        prop_assert_eq!(private_pool.live_blocks(), 0);
        prop_assert_eq!(
            shared_pool.live_blocks() + shared_pool.free_blocks(),
            shared_pool.total_blocks()
        );
    }

    #[test]
    fn paged_residency_is_within_one_block_of_token_bytes(
        heads in 1usize..5,
        context in 1usize..200,
        e in 1usize..65,
        block_tokens in 1usize..64,
    ) {
        // The cost-model view of block-granular residency agrees with the
        // allocator: ceil(context / block) blocks, wasting under one block.
        let step = DecodeStep::new("prop-blocks", 1, heads, context, e);
        let paged = step.paged_kv_bytes(block_tokens, 2);
        let exact = step.kv_cache_bytes(2);
        prop_assert!(paged >= exact);
        prop_assert!(paged < exact + step.kv_block_bytes(block_tokens, 2));
        prop_assert!(step.kv_fragmentation(block_tokens) < 1.0);
    }
}

/// Regression pin for the refcount-aware `release`: two sessions share a
/// prefix, one releases, and the survivor must keep decoding bitwise-equal
/// to a fully-private session — releasing a sharing session must not free
/// (or allow reuse of) blocks its sibling still maps.
#[test]
fn release_of_a_sharing_session_leaves_sibling_decode_bit_identical() {
    let (heads, kv_heads, e, block_tokens) = (4usize, 2usize, 6usize, 4usize);
    let prefix: Vec<u64> = (0..2 * block_tokens as u64).collect();
    let mut shared_pool = KvBlockPool::new(block_tokens, kv_heads, e);
    let mut private_pool = KvBlockPool::new(block_tokens, kv_heads, e);
    let mut index = PrefixIndex::new(block_tokens);

    // Publisher fills the prefix, sibling + doomed session share it whole.
    let mut publisher = PagedKvCache::new(heads, kv_heads, e, block_tokens).unwrap();
    publisher
        .open_with_prefix(&mut shared_pool, &mut index, &prefix)
        .unwrap();
    for &t in &prefix {
        let (k, v) = token_rows(t, kv_heads, e);
        publisher
            .append_with_prefix(&mut shared_pool, &mut index, &k, &v)
            .unwrap();
    }
    let mut sibling = PagedKvCache::new(heads, kv_heads, e, block_tokens).unwrap();
    let mut doomed = PagedKvCache::new(heads, kv_heads, e, block_tokens).unwrap();
    assert_eq!(
        sibling
            .open_with_prefix(&mut shared_pool, &mut index, &prefix)
            .unwrap(),
        prefix.len()
    );
    assert_eq!(
        doomed
            .open_with_prefix(&mut shared_pool, &mut index, &prefix)
            .unwrap(),
        prefix.len()
    );

    // Private twin of the sibling, sharing nothing.
    let mut private = PagedKvCache::new(heads, kv_heads, e, block_tokens).unwrap();
    for &t in &prefix {
        let (k, v) = token_rows(t, kv_heads, e);
        private.append(&mut private_pool, &k, &v).unwrap();
    }

    // Release one sharer, then churn allocations so any wrongly-freed block
    // would be reused and overwritten.
    doomed.release(&mut shared_pool);
    let mut churn = PagedKvCache::new(heads, kv_heads, e, block_tokens).unwrap();
    for t in 500..500 + 2 * block_tokens as u64 {
        let (k, v) = token_rows(t, kv_heads, e);
        churn.append(&mut shared_pool, &k, &v).unwrap();
    }

    // The survivor decodes its prefix + fresh suffix bitwise-equal to the
    // private twin at every step.
    for (i, t) in (100..100 + block_tokens as u64 + 1).enumerate() {
        let (k, v) = token_rows(t, kv_heads, e);
        sibling
            .append_with_prefix(&mut shared_pool, &mut index, &k, &v)
            .unwrap();
        private.append(&mut private_pool, &k, &v).unwrap();
        let q = query_row(7, i, heads, e);
        let mut out_s = vec![0.0f32; heads * e];
        let mut out_p = vec![0.0f32; heads * e];
        decode_attention_paged(&shared_pool, &sibling, &q, &mut out_s).unwrap();
        decode_attention_paged(&private_pool, &private, &q, &mut out_p).unwrap();
        assert_eq!(
            out_s, out_p,
            "sibling decode diverged after release at step {i}"
        );
    }
}

/// The pinned block-size sweep the issue names: 1, a prime, the serving
/// default and a block larger than the whole context.
#[test]
fn pinned_block_size_sweep_stays_bit_identical() {
    let (heads, t, e, seed) = (2, 19, 6, 77);
    for block_tokens in [1usize, 7, 16, 64] {
        let (q, k, v) = random_qkv(1, heads, t, e, seed);
        let mut contiguous = KvCache::new(heads, e);
        let mut pool = KvBlockPool::new(block_tokens, heads, e);
        let mut paged = PagedKvCache::new(heads, heads, e, block_tokens).unwrap();
        decode_both_paths(&q, &k, &v, &mut contiguous, &mut pool, &mut paged);
        assert_eq!(paged.allocated_blocks(), t.div_ceil(block_tokens));
        if block_tokens > t {
            assert_eq!(paged.allocated_blocks(), 1, "one block covers everything");
        }
    }
}
