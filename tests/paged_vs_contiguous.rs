//! Differential paged-vs-contiguous property tests — the oracle harness the
//! block-granular KV path hangs on.
//!
//! For random shapes, block sizes (including single-token blocks and blocks
//! larger than the whole context), step counts and sliding windows, running
//! the autoregressive loop through `PagedKvCache` + `decode_attention_paged`
//! must be **bit-identical** to the contiguous `KvCache` +
//! `decode_attention` path at every step — the paged kernel visits the same
//! rows in the same order, so any divergence is a block-table sweep bug, not
//! float drift — and must match the prefill oracle
//! (`fused_online_attention` over each step's context prefix) within
//! `golden_check` tolerance.

use proptest::prelude::*;

use mas::api::verify_decode_paged;
use mas::dataflow::DecodeStep;
use mas::tensor::decode::{decode_attention, KvCache};
use mas::tensor::golden::{golden_check, Tolerance};
use mas::tensor::half::KvDtype;
use mas::tensor::init::random_qkv;
use mas::tensor::paged::{decode_attention_paged, KvBlockPool, PagedKvCache};
use mas::tensor::tiled::{fused_online_attention, TileSizes};
use mas::tensor::Tensor;

/// Copies row `r` of every head of `src` into one head-major step slice.
fn gather_step(src: &Tensor, r: usize) -> Vec<f32> {
    let [_, heads, _, _] = src.shape().dims();
    (0..heads).flat_map(|h| src.row(0, h, r).to_vec()).collect()
}

/// Runs `t` decode steps through both the contiguous and the paged path,
/// asserting bit-identical outputs at every step; returns the stacked
/// per-step outputs as a `(1, H, t, E)` tensor.
fn decode_both_paths(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    contiguous: &mut KvCache,
    pool: &mut KvBlockPool,
    paged: &mut PagedKvCache,
) -> Tensor {
    let [_, heads, t, embed] = q.shape().dims();
    let mut decoded = Tensor::zeros(*q.shape());
    let mut out_c = vec![0.0f32; heads * embed];
    let mut out_p = vec![0.0f32; heads * embed];
    for i in 0..t {
        let (ks, vs, qs) = (gather_step(k, i), gather_step(v, i), gather_step(q, i));
        contiguous.append(&ks, &vs).unwrap();
        paged.append(pool, &ks, &vs).unwrap();
        decode_attention(contiguous, &qs, &mut out_c).unwrap();
        decode_attention_paged(pool, paged, &qs, &mut out_p).unwrap();
        assert_eq!(
            out_c, out_p,
            "paged decode diverged bitwise from contiguous at step {i}"
        );
        for h in 0..heads {
            decoded
                .row_mut(0, h, i)
                .copy_from_slice(&out_p[h * embed..(h + 1) * embed]);
        }
    }
    decoded
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn paged_decode_is_bit_identical_and_matches_the_prefix_oracles(
        heads in 1usize..4,
        t in 2usize..33,
        e in 2usize..17,
        block_tokens in 1usize..48, // spans 1, odd sizes and > context
        nq in 1usize..33,
        nkv in 1usize..33,
        seed in 0u64..1000,
    ) {
        let (q, k, v) = random_qkv(1, heads, t, e, seed);
        let mut contiguous = KvCache::new(heads, e);
        let mut pool = KvBlockPool::new(block_tokens, heads, e);
        let mut paged = PagedKvCache::new(heads, heads, e, block_tokens).unwrap();
        let decoded = decode_both_paths(&q, &k, &v, &mut contiguous, &mut pool, &mut paged);
        prop_assert_eq!(paged.allocated_blocks(), t.div_ceil(block_tokens));

        // Golden: for each step, the prefill oracle over the step's prefix
        // (arbitrary tiling), taking its last query row.
        let mut golden = Tensor::zeros(*q.shape());
        for i in 0..t {
            let prefix = i + 1;
            let sub = |src: &Tensor| src.block([0, 0, 0, 0], [1, heads, prefix, e]).unwrap();
            let tiles = TileSizes::new(nq, nkv, prefix).unwrap();
            let oracle = fused_online_attention(&sub(&q), &sub(&k), &sub(&v), tiles).unwrap();
            for h in 0..heads {
                golden.row_mut(0, h, i).copy_from_slice(oracle.row(0, h, i));
            }
        }
        let report = golden_check(&decoded, &golden, Tolerance::default()).unwrap();
        prop_assert!(
            report.passed,
            "paged decode diverged from the prefill oracle: {} mismatches, max abs diff {}, worst {:?}",
            report.mismatches, report.max_abs_diff, report.worst_index
        );
    }

    #[test]
    fn f16_decode_matches_the_f32_prefill_oracle_at_half_precision(
        heads in 1usize..4,
        t in 2usize..33,
        e in 2usize..17,
        block_tokens in 1usize..48,
        seed in 0u64..1000,
    ) {
        // KV rows stored as f16 bits, widened to f32 per tile inside the
        // decode sweep: paged and contiguous stay bit-identical to each
        // other (same visited row sequence), and both track the f32
        // prefill oracle within half-precision tolerance at every step.
        let (q, k, v) = random_qkv(1, heads, t, e, seed);
        let mut contiguous = KvCache::new(heads, e).with_dtype(KvDtype::F16);
        let mut pool = KvBlockPool::new(block_tokens, heads, e).with_dtype(KvDtype::F16);
        let mut paged = PagedKvCache::new(heads, heads, e, block_tokens).unwrap();
        let decoded = decode_both_paths(&q, &k, &v, &mut contiguous, &mut pool, &mut paged);

        let mut golden = Tensor::zeros(*q.shape());
        for i in 0..t {
            let prefix = i + 1;
            let sub = |src: &Tensor| src.block([0, 0, 0, 0], [1, heads, prefix, e]).unwrap();
            let tiles = TileSizes::new(prefix, 1, prefix).unwrap();
            let oracle = fused_online_attention(&sub(&q), &sub(&k), &sub(&v), tiles).unwrap();
            for h in 0..heads {
                golden.row_mut(0, h, i).copy_from_slice(oracle.row(0, h, i));
            }
        }
        let report = golden_check(&decoded, &golden, Tolerance::half_precision()).unwrap();
        prop_assert!(
            report.passed,
            "f16 decode diverged from the f32 prefill oracle: {} mismatches, max abs diff {}, worst {:?}",
            report.mismatches, report.max_abs_diff, report.worst_index
        );
    }

    #[test]
    fn windowed_paged_decode_is_bit_identical_to_the_contiguous_window(
        heads in 1usize..4,
        t in 4usize..29,
        e in 2usize..9,
        capacity in 2usize..25,
        block_tokens in 1usize..12,
        seed in 0u64..1000,
    ) {
        let capacity = capacity.min(t);
        let (q, k, v) = random_qkv(1, heads, t, e, seed);
        let mut contiguous = KvCache::with_capacity(heads, e, capacity);
        let mut pool = KvBlockPool::new(block_tokens, heads, e);
        let mut paged = PagedKvCache::new(heads, heads, e, block_tokens)
            .unwrap()
            .with_window(capacity);
        let decoded = decode_both_paths(&q, &k, &v, &mut contiguous, &mut pool, &mut paged);

        // The attended sets stayed in lockstep...
        prop_assert_eq!(paged.len(), contiguous.len());
        prop_assert_eq!(paged.evicted_tokens(), contiguous.evicted_tokens());
        // ...and whole-block eviction returned every fully stale block.
        prop_assert!(paged.resident_tokens() <= capacity + block_tokens);
        prop_assert_eq!(
            pool.live_blocks() + pool.free_blocks(),
            pool.total_blocks()
        );

        // Final step against the window oracle: prefill over the newest
        // `capacity` tokens, last query row.
        let start = t - capacity;
        let sub = |src: &Tensor| {
            src.block([0, 0, start, 0], [1, heads, capacity, e]).unwrap()
        };
        let tiles = TileSizes::new(capacity, 1, capacity).unwrap();
        let oracle = fused_online_attention(&sub(&q), &sub(&k), &sub(&v), tiles).unwrap();
        let tol = Tolerance::default();
        for h in 0..heads {
            let got = decoded.row(0, h, t - 1);
            let want = oracle.row(0, h, capacity - 1);
            for (c, (&x, &g)) in got.iter().zip(want).enumerate() {
                prop_assert!(
                    tol.matches(x, g),
                    "windowed paged decode diverged at head {} col {}: {} vs {}", h, c, x, g
                );
            }
        }
    }

    #[test]
    fn verify_decode_paged_passes_for_random_steps_and_block_sizes(
        heads in 1usize..6,
        context in 1usize..49,
        e in 2usize..25,
        block_tokens in 1usize..64,
        seed in 0u64..1000,
    ) {
        let step = DecodeStep::new("prop-paged", 1, heads, context, e);
        let report = verify_decode_paged(&step, block_tokens, seed).unwrap();
        prop_assert!(
            report.passed,
            "{} (block {}): {} mismatches (max abs diff {})",
            step, block_tokens, report.mismatches, report.max_abs_diff
        );
    }

    #[test]
    fn paged_residency_is_within_one_block_of_token_bytes(
        heads in 1usize..5,
        context in 1usize..200,
        e in 1usize..65,
        block_tokens in 1usize..64,
    ) {
        // The cost-model view of block-granular residency agrees with the
        // allocator: ceil(context / block) blocks, wasting under one block.
        let step = DecodeStep::new("prop-blocks", 1, heads, context, e);
        let paged = step.paged_kv_bytes(block_tokens, 2);
        let exact = step.kv_cache_bytes(2);
        prop_assert!(paged >= exact);
        prop_assert!(paged < exact + step.kv_block_bytes(block_tokens, 2));
        prop_assert!(step.kv_fragmentation(block_tokens) < 1.0);
    }
}

/// The pinned block-size sweep the issue names: 1, a prime, the serving
/// default and a block larger than the whole context.
#[test]
fn pinned_block_size_sweep_stays_bit_identical() {
    let (heads, t, e, seed) = (2, 19, 6, 77);
    for block_tokens in [1usize, 7, 16, 64] {
        let (q, k, v) = random_qkv(1, heads, t, e, seed);
        let mut contiguous = KvCache::new(heads, e);
        let mut pool = KvBlockPool::new(block_tokens, heads, e);
        let mut paged = PagedKvCache::new(heads, heads, e, block_tokens).unwrap();
        decode_both_paths(&q, &k, &v, &mut contiguous, &mut pool, &mut paged);
        assert_eq!(paged.allocated_blocks(), t.div_ceil(block_tokens));
        if block_tokens > t {
            assert_eq!(paged.allocated_blocks(), 1, "one block covers everything");
        }
    }
}
