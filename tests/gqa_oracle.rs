//! Grouped-query attention oracle tests.
//!
//! Grouped-query decode (`kv_heads < heads` shared K/V heads) must compute
//! exactly what a head-replicated MHA cache computes: query head `h`
//! reading shared KV head `h / group` performs the same per-row arithmetic
//! as an MHA head reading its own copy of those rows, so the comparison is
//! **exact** (bit-identical), not tolerance-based. The degenerate cases are
//! pinned — `kv_heads == heads` is plain MHA and `kv_heads == 1` is MQA —
//! and invalid groupings are typed errors, never panics. The
//! tolerance-based leg checks grouped decode against the prefill oracle via
//! `verify_decode`.

use proptest::prelude::*;

use mas::api::verify_decode;
use mas::dataflow::DecodeStep;
use mas::tensor::decode::{decode_attention, expand_kv_heads, KvCache};
use mas::tensor::init::random_qkv;
use mas::tensor::paged::{decode_attention_paged, KvBlockPool, PagedKvCache};
use mas::tensor::{Tensor, TensorError};

/// Copies row `r` of every head of `src` into one head-major step slice.
fn gather_step(src: &Tensor, r: usize) -> Vec<f32> {
    let [_, heads, _, _] = src.shape().dims();
    (0..heads).flat_map(|h| src.row(0, h, r).to_vec()).collect()
}

/// Runs `t` grouped decode steps and, in lockstep, the head-replicated MHA
/// oracle; asserts exact equality at every step and returns the final
/// grouped output.
fn grouped_vs_replicated(heads: usize, kv_heads: usize, t: usize, embed: usize, seed: u64) {
    let (q, _, _) = random_qkv(1, heads, t, embed, seed);
    let (_, k, v) = random_qkv(1, kv_heads, t, embed, seed.wrapping_add(1));
    let k_full = expand_kv_heads(&k, heads).unwrap();
    let v_full = expand_kv_heads(&v, heads).unwrap();

    let mut grouped = KvCache::grouped(heads, kv_heads, embed).unwrap();
    let mut replicated = KvCache::new(heads, embed);
    let mut out_g = vec![0.0f32; heads * embed];
    let mut out_r = vec![0.0f32; heads * embed];
    for i in 0..t {
        grouped
            .append(&gather_step(&k, i), &gather_step(&v, i))
            .unwrap();
        replicated
            .append(&gather_step(&k_full, i), &gather_step(&v_full, i))
            .unwrap();
        let qs = gather_step(&q, i);
        decode_attention(&grouped, &qs, &mut out_g).unwrap();
        decode_attention(&replicated, &qs, &mut out_r).unwrap();
        assert_eq!(
            out_g, out_r,
            "H={heads} KV={kv_heads} step {i}: grouped decode must equal the \
             head-replicated MHA oracle exactly"
        );
    }
    // Head sharing shrank residency by exactly the group factor.
    assert_eq!(
        grouped.kv_bytes(2) * (heads / kv_heads),
        replicated.kv_bytes(2)
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn grouped_decode_equals_the_head_replicated_oracle_exactly(
        kv_heads in 1usize..5,
        group in 1usize..5,
        t in 1usize..25,
        e in 2usize..13,
        seed in 0u64..1000,
    ) {
        grouped_vs_replicated(kv_heads * group, kv_heads, t, e, seed);
    }

    #[test]
    fn grouped_paged_decode_equals_grouped_contiguous_exactly(
        kv_heads in 1usize..4,
        group in 1usize..4,
        t in 1usize..21,
        e in 2usize..9,
        block_tokens in 1usize..10,
        seed in 0u64..1000,
    ) {
        let heads = kv_heads * group;
        let (q, _, _) = random_qkv(1, heads, t, e, seed);
        let (_, k, v) = random_qkv(1, kv_heads, t, e, seed.wrapping_add(1));
        let mut contiguous = KvCache::grouped(heads, kv_heads, e).unwrap();
        let mut pool = KvBlockPool::new(block_tokens, kv_heads, e);
        let mut paged = PagedKvCache::new(heads, kv_heads, e, block_tokens).unwrap();
        let mut out_c = vec![0.0f32; heads * e];
        let mut out_p = vec![0.0f32; heads * e];
        for i in 0..t {
            let (ks, vs, qs) = (gather_step(&k, i), gather_step(&v, i), gather_step(&q, i));
            contiguous.append(&ks, &vs).unwrap();
            paged.append(&mut pool, &ks, &vs).unwrap();
            decode_attention(&contiguous, &qs, &mut out_c).unwrap();
            decode_attention_paged(&pool, &paged, &qs, &mut out_p).unwrap();
            prop_assert_eq!(&out_c, &out_p, "step {}", i);
        }
    }

    #[test]
    fn verify_decode_passes_for_random_grouped_steps(
        kv_heads in 1usize..4,
        group in 1usize..4,
        context in 1usize..41,
        e in 2usize..17,
        seed in 0u64..1000,
    ) {
        let step = DecodeStep::new("prop-gqa", 1, kv_heads * group, context, e)
            .with_kv_heads(kv_heads);
        let report = verify_decode(&step, seed).unwrap();
        prop_assert!(
            report.passed,
            "{}: {} mismatches (max abs diff {})",
            step, report.mismatches, report.max_abs_diff
        );
    }
}

#[test]
fn degenerate_groupings_are_pinned() {
    // kv_heads == heads: plain MHA — grouped construction must behave
    // exactly like the ungrouped constructor.
    grouped_vs_replicated(4, 4, 9, 6, 3);
    // kv_heads == 1: MQA — every query head reads the single shared head.
    grouped_vs_replicated(4, 1, 9, 6, 5);
}

#[test]
fn invalid_groupings_are_typed_errors_not_panics() {
    for (heads, kv_heads) in [(8usize, 3usize), (8, 0), (4, 8), (6, 4)] {
        assert_eq!(
            KvCache::grouped(heads, kv_heads, 4).unwrap_err(),
            TensorError::InvalidHeadGrouping { heads, kv_heads },
            "contiguous cache H={heads} KV={kv_heads}"
        );
        assert_eq!(
            PagedKvCache::new(heads, kv_heads, 4, 16).unwrap_err(),
            TensorError::InvalidHeadGrouping { heads, kv_heads },
            "paged cache H={heads} KV={kv_heads}"
        );
    }
    // The oracle helper rejects the same configurations.
    let (_, k, _) = random_qkv(1, 3, 2, 4, 1);
    assert!(matches!(
        expand_kv_heads(&k, 8),
        Err(TensorError::InvalidHeadGrouping {
            heads: 8,
            kv_heads: 3
        })
    ));
}
