//! Differential decode-vs-prefill property tests — the oracle harness the
//! KV-cache streaming path hangs on.
//!
//! For random shapes, tilings and step counts, running `t` autoregressive
//! decode steps through `KvCache` + `decode_attention` must reproduce the
//! prefill oracle (`fused_online_attention`) within `golden_check`
//! tolerance: step `i` computes exactly what the oracle's last query row
//! computes over the `(i+1)`-token prefix, and the final step matches the
//! full `t`-length sequence. The sliding-window variant is pinned against
//! the oracle over the window's tokens, and the closed-form `DecodeStep`
//! cost model is cross-checked against its prefill equivalent.

use proptest::prelude::*;

use mas::api::verify_decode;
use mas::dataflow::DecodeStep;
use mas::tensor::decode::{decode_attention, KvCache};
use mas::tensor::golden::{golden_check, Tolerance};
use mas::tensor::init::random_qkv;
use mas::tensor::tiled::{fused_online_attention, TileSizes};
use mas::tensor::Tensor;

/// Copies row `r` of every head of `src` into one head-major step slice.
fn gather_step(src: &Tensor, r: usize) -> Vec<f32> {
    let [_, heads, _, _] = src.shape().dims();
    (0..heads).flat_map(|h| src.row(0, h, r).to_vec()).collect()
}

/// Runs `t` decode steps over the rows of `(1, H, t, E)` tensors, returning
/// the per-step outputs stacked into a tensor of the same shape.
fn decode_all_steps(q: &Tensor, k: &Tensor, v: &Tensor, cache: &mut KvCache) -> Tensor {
    let [_, heads, t, embed] = q.shape().dims();
    let mut decoded = Tensor::zeros(*q.shape());
    let mut out = vec![0.0f32; heads * embed];
    for i in 0..t {
        cache
            .append(&gather_step(k, i), &gather_step(v, i))
            .unwrap();
        decode_attention(cache, &gather_step(q, i), &mut out).unwrap();
        for h in 0..heads {
            decoded
                .row_mut(0, h, i)
                .copy_from_slice(&out[h * embed..(h + 1) * embed]);
        }
    }
    decoded
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn decode_steps_match_prefix_prefill_oracles(
        heads in 1usize..4,
        t in 2usize..33,
        e in 2usize..17,
        nq in 1usize..33,
        nkv in 1usize..33,
        seed in 0u64..1000,
    ) {
        let (q, k, v) = random_qkv(1, heads, t, e, seed);
        let decoded = decode_all_steps(&q, &k, &v, &mut KvCache::new(heads, e));

        // Golden: for each step, the prefill oracle over the step's prefix
        // (arbitrary tiling), taking its last query row.
        let mut golden = Tensor::zeros(*q.shape());
        for i in 0..t {
            let prefix = i + 1;
            let sub = |src: &Tensor| src.block([0, 0, 0, 0], [1, heads, prefix, e]).unwrap();
            let tiles = TileSizes::new(nq, nkv, prefix).unwrap();
            let oracle = fused_online_attention(&sub(&q), &sub(&k), &sub(&v), tiles).unwrap();
            for h in 0..heads {
                golden.row_mut(0, h, i).copy_from_slice(oracle.row(0, h, i));
            }
        }
        let report = golden_check(&decoded, &golden, Tolerance::default()).unwrap();
        prop_assert!(
            report.passed,
            "decode diverged from the prefill oracle: {} mismatches, max abs diff {}, worst {:?}",
            report.mismatches, report.max_abs_diff, report.worst_index
        );
    }

    #[test]
    fn final_decode_step_matches_the_full_sequence_prefill(
        heads in 1usize..5,
        t in 1usize..41,
        e in 2usize..17,
        nkv in 1usize..41,
        seed in 0u64..1000,
    ) {
        let (q, k, v) = random_qkv(1, heads, t, e, seed);
        let mut cache = KvCache::new(heads, e);
        let decoded = decode_all_steps(&q, &k, &v, &mut cache);
        prop_assert_eq!(cache.len(), t);
        prop_assert_eq!(cache.evicted_tokens(), 0);

        let tiles = TileSizes::new(t, nkv, t).unwrap();
        let oracle = fused_online_attention(&q, &k, &v, tiles).unwrap();
        let tol = Tolerance::default();
        for h in 0..heads {
            let got = decoded.row(0, h, t - 1);
            let want = oracle.row(0, h, t - 1);
            for (c, (&x, &g)) in got.iter().zip(want).enumerate() {
                prop_assert!(
                    tol.matches(x, g),
                    "head {} col {}: decode {} vs full-prefill {}", h, c, x, g
                );
            }
        }
    }

    #[test]
    fn sliding_window_decode_matches_the_window_oracle(
        heads in 1usize..4,
        t in 4usize..25,
        e in 2usize..9,
        capacity in 2usize..25,
        seed in 0u64..1000,
    ) {
        let capacity = capacity.min(t);
        let (q, k, v) = random_qkv(1, heads, t, e, seed);
        let mut cache = KvCache::with_capacity(heads, e, capacity);
        let mut out = vec![0.0f32; heads * e];
        for i in 0..t {
            cache.append(&gather_step(&k, i), &gather_step(&v, i)).unwrap();
            decode_attention(&cache, &gather_step(&q, i), &mut out).unwrap();
        }
        prop_assert_eq!(cache.len(), capacity);
        prop_assert_eq!(cache.appended_tokens(), t);
        prop_assert_eq!(cache.evicted_tokens(), t - capacity);

        // The last step attends exactly the newest `capacity` tokens: the
        // oracle is prefill over that window with the final query row.
        let start = t - capacity;
        let kw = k.block([0, 0, start, 0], [1, heads, capacity, e]).unwrap();
        let vw = v.block([0, 0, start, 0], [1, heads, capacity, e]).unwrap();
        let qw = {
            // The window oracle needs the final query in its last row; reuse
            // the real query rows of the window (only the last row matters).
            q.block([0, 0, start, 0], [1, heads, capacity, e]).unwrap()
        };
        let tiles = TileSizes::new(capacity, 1, capacity).unwrap();
        let oracle = fused_online_attention(&qw, &kw, &vw, tiles).unwrap();
        let tol = Tolerance::default();
        for h in 0..heads {
            let want = oracle.row(0, h, capacity - 1);
            for (c, &g) in want.iter().enumerate() {
                prop_assert!(
                    tol.matches(out[h * e + c], g),
                    "windowed decode diverged at head {} col {}", h, c
                );
            }
        }
    }

    #[test]
    fn verify_decode_passes_for_random_decode_steps(
        heads in 1usize..6,
        context in 1usize..49,
        e in 2usize..25,
        seed in 0u64..1000,
    ) {
        let step = DecodeStep::new("prop-decode", 1, heads, context, e);
        let report = verify_decode(&step, seed).unwrap();
        prop_assert!(
            report.passed,
            "{}: {} mismatches (max abs diff {})",
            step, report.mismatches, report.max_abs_diff
        );
    }

    #[test]
    fn decode_cost_model_is_consistent_with_prefill(
        batch in 1usize..3,
        heads in 1usize..13,
        context in 1usize..2049,
        e in 1usize..129,
    ) {
        let step = DecodeStep::new("prop-cost", batch, heads, context, e);
        let prefill = step.prefill_equivalent();
        // One decode step is exactly one query row of the prefill layer.
        prop_assert_eq!(prefill.total_mac_ops(), context as u64 * step.mac_ops());
        prop_assert_eq!(prefill.softmax_elements(), context as u64 * step.softmax_elements());
        // KV-cached DRAM traffic never exceeds the recompute baseline's.
        prop_assert!(
            step.min_dram_traffic_bytes(2) <= step.recompute_dram_traffic_bytes(2)
                + 4 * step.new_token_bytes(2)
        );
        // The KV cache is the K/V halves of the prefill operands.
        prop_assert_eq!(step.kv_cache_bytes(2), 2 * prefill.operand_bytes(2));
    }
}
