//! In-tree shim for `rayon`.
//!
//! The build environment has no access to crates.io, so this crate implements
//! the rayon API subset the workspace uses on top of `std::thread::scope`:
//!
//! * [`join`] — run two closures, potentially in parallel,
//! * `par_iter()` / `into_par_iter()` / `par_chunks_mut()` via the traits in
//!   [`prelude`], with `map` / `enumerate` / `for_each` / `collect`,
//! * [`current_num_threads`].
//!
//! Unlike real rayon there is no work-stealing pool: each parallel call
//! splits its items into `current_num_threads()` contiguous chunks and runs
//! them on scoped threads, which matches the coarse-grained fan-out patterns
//! used here (per-`(batch, head)` kernel slices, per-candidate simulator
//! runs). On a single-CPU host everything degrades to inline execution with
//! no thread overhead. Ordering guarantees match rayon: `map`/`collect`
//! preserve item order, `for_each` runs each item exactly once.

use std::num::NonZeroUsize;

/// Number of worker threads a parallel call may use.
#[must_use]
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs both closures, in parallel when more than one thread is available,
/// and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon shim: join closure panicked"))
    })
}

/// Core engine: maps `f` over `items` with order-preserving chunked threads.
fn parallel_map_vec<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = current_num_threads().min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_len = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut items = items;
    while !items.is_empty() {
        let take = chunk_len.min(items.len());
        let rest = items.split_off(take);
        chunks.push(items);
        items = rest;
    }
    let f = &f;
    let mut results: Vec<Vec<R>> = std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| s.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rayon shim: worker panicked"))
            .collect()
    });
    let mut out = Vec::with_capacity(results.iter().map(Vec::len).sum());
    for part in &mut results {
        out.append(part);
    }
    out
}

/// An eager "parallel iterator": holds the realized item list and executes
/// each adapter with the chunked thread engine.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Pairs every item with its index (order-preserving).
    #[must_use]
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Applies `f` to every item in parallel, preserving order.
    #[must_use]
    pub fn map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParIter {
            items: parallel_map_vec(self.items, f),
        }
    }

    /// Runs `f` on every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        parallel_map_vec(self.items, f);
    }

    /// Collects the items (already computed in order) into a container.
    #[must_use]
    pub fn collect<C: From<Vec<T>>>(self) -> C {
        C::from(self.items)
    }

    /// Number of items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether there are no items.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// Conversion into an owning parallel iterator (`rayon::iter::IntoParallelIterator`).
pub trait IntoParallelIterator {
    /// Item type produced by the iterator.
    type Item: Send;
    /// Converts `self` into a [`ParIter`].
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// Borrowing parallel iteration (`rayon::iter::IntoParallelRefIterator`).
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed item type.
    type Item: Send + 'a;
    /// Returns a [`ParIter`] over borrowed items.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// Parallel mutable chunk iteration (`rayon::slice::ParallelSliceMut`).
pub trait ParallelSliceMut<T: Send> {
    /// Splits the slice into non-overlapping mutable chunks of `chunk_size`
    /// (the last chunk may be shorter) as a [`ParIter`].
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        ParIter {
            items: self.chunks_mut(chunk_size).collect(),
        }
    }
}

/// The traits a caller needs in scope, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_preserves_order() {
        let v: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v.len(), 1000);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i * 2));
    }

    #[test]
    fn enumerate_indices_match_positions() {
        let data = vec![10, 20, 30, 40];
        let v: Vec<(usize, i32)> = data
            .clone()
            .into_par_iter()
            .enumerate()
            .map(|(i, x)| (i, x))
            .collect();
        assert_eq!(v, vec![(0, 10), (1, 20), (2, 30), (3, 40)]);
    }

    #[test]
    fn par_chunks_mut_covers_the_slice_disjointly() {
        let mut data = vec![0u32; 103];
        data.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
            for v in chunk.iter_mut() {
                *v += 1 + i as u32;
            }
        });
        assert!(data.iter().all(|&v| v >= 1));
        assert_eq!(data[0], 1);
        assert_eq!(data[102], 11);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn par_iter_borrows() {
        let data = vec![1.0f32, 2.0, 3.0];
        let doubled: Vec<f32> = data.par_iter().map(|&x| x * 2.0).collect();
        assert_eq!(doubled, vec![2.0, 4.0, 6.0]);
        assert_eq!(data.len(), 3);
    }
}
