//! In-tree shim for `rayon`.
//!
//! The build environment has no access to crates.io, so this crate implements
//! the rayon API subset the workspace uses on top of a **persistent worker
//! pool**:
//!
//! * [`join`] — run two closures, potentially in parallel,
//! * `par_iter()` / `into_par_iter()` / `par_chunks_mut()` via the traits in
//!   [`prelude`], with `map` / `enumerate` / `for_each` / `collect`,
//! * [`current_num_threads`].
//!
//! Unlike real rayon there is no work stealing: each parallel call splits its
//! items into `current_num_threads()` contiguous chunks and enqueues all of
//! them on a process-wide pool of long-lived workers; the calling thread
//! helps drain the queue while it waits, so it typically executes a share of
//! the chunks itself. This matches the coarse-grained fan-out patterns used
//! here (per-`(batch, head)` kernel slices, per-candidate simulator runs,
//! per-batch serve planning).
//! Workers are spawned once, on the first parallel call, and reused for the
//! life of the process, so steady-state fan-out pays a queue push + wakeup
//! instead of a `thread::spawn` per chunk.
//!
//! Threads that wait for submitted work *help drain the shared queue* while
//! waiting, so nested parallel calls issued from inside a worker (e.g. a
//! parallel candidate batch whose simulations parallelize their kernels)
//! cannot deadlock: every blocked thread is itself a consumer.
//!
//! On a single-CPU host everything degrades to inline execution with no
//! thread or queue overhead. The pool width can be pinned with the
//! `MAS_RAYON_THREADS` environment variable (read once, at first use).
//! Ordering guarantees match rayon: `map`/`collect` preserve item order,
//! `for_each` runs each item exactly once.

use std::num::NonZeroUsize;
use std::sync::OnceLock;

mod pool;

use pool::WorkerPool;

/// Number of worker threads a parallel call may use (the caller plus the
/// persistent pool workers). Honours the `MAS_RAYON_THREADS` override.
#[must_use]
pub fn current_num_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        if let Some(n) = std::env::var("MAS_RAYON_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            return n.max(1);
        }
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// The process-wide persistent pool: `current_num_threads() - 1` workers
/// (the calling thread is the remaining lane). `None` on single-threaded
/// hosts, where every parallel call runs inline.
fn global_pool() -> Option<&'static WorkerPool> {
    static POOL: OnceLock<Option<std::sync::Arc<WorkerPool>>> = OnceLock::new();
    POOL.get_or_init(|| {
        let workers = current_num_threads().saturating_sub(1);
        (workers > 0).then(|| WorkerPool::new(workers))
    })
    .as_deref()
}

/// Runs both closures, in parallel when more than one thread is available,
/// and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    match global_pool() {
        None => (a(), b()),
        Some(pool) => pool.join(a, b),
    }
}

/// Core engine: maps `f` over `items` with order-preserving chunked
/// execution on the persistent pool.
fn parallel_map_vec<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = current_num_threads().min(items.len().max(1));
    let pool = global_pool();
    if threads <= 1 || items.len() <= 1 || pool.is_none() {
        return items.into_iter().map(f).collect();
    }
    let chunk_len = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut items = items;
    while !items.is_empty() {
        let take = chunk_len.min(items.len());
        let rest = items.split_off(take);
        chunks.push(items);
        items = rest;
    }
    let pool = pool.expect("checked above");
    let mut results: Vec<Option<Vec<R>>> = (0..chunks.len()).map(|_| None).collect();
    {
        let f = &f;
        let jobs: Vec<pool::Job<'_>> = results
            .iter_mut()
            .zip(chunks)
            .map(|(slot, chunk)| {
                let job: pool::Job<'_> = Box::new(move || {
                    *slot = Some(chunk.into_iter().map(f).collect::<Vec<R>>());
                });
                job
            })
            .collect();
        pool.scope_execute(jobs);
    }
    let mut out = Vec::with_capacity(results.iter().flatten().map(Vec::len).sum());
    for part in &mut results {
        out.append(part.as_mut().expect("pool completed every chunk"));
    }
    out
}

/// An eager "parallel iterator": holds the realized item list and executes
/// each adapter with the pooled chunk engine.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Pairs every item with its index (order-preserving).
    #[must_use]
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Applies `f` to every item in parallel, preserving order.
    #[must_use]
    pub fn map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParIter {
            items: parallel_map_vec(self.items, f),
        }
    }

    /// Runs `f` on every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        parallel_map_vec(self.items, f);
    }

    /// Collects the items (already computed in order) into a container.
    #[must_use]
    pub fn collect<C: From<Vec<T>>>(self) -> C {
        C::from(self.items)
    }

    /// Number of items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether there are no items.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// Conversion into an owning parallel iterator (`rayon::iter::IntoParallelIterator`).
pub trait IntoParallelIterator {
    /// Item type produced by the iterator.
    type Item: Send;
    /// Converts `self` into a [`ParIter`].
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// Borrowing parallel iteration (`rayon::iter::IntoParallelRefIterator`).
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed item type.
    type Item: Send + 'a;
    /// Returns a [`ParIter`] over borrowed items.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// Parallel mutable chunk iteration (`rayon::slice::ParallelSliceMut`).
pub trait ParallelSliceMut<T: Send> {
    /// Splits the slice into non-overlapping mutable chunks of `chunk_size`
    /// (the last chunk may be shorter) as a [`ParIter`].
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        ParIter {
            items: self.chunks_mut(chunk_size).collect(),
        }
    }
}

/// The traits a caller needs in scope, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_preserves_order() {
        let v: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v.len(), 1000);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i * 2));
    }

    #[test]
    fn enumerate_indices_match_positions() {
        let data = vec![10, 20, 30, 40];
        let v: Vec<(usize, i32)> = data
            .clone()
            .into_par_iter()
            .enumerate()
            .map(|(i, x)| (i, x))
            .collect();
        assert_eq!(v, vec![(0, 10), (1, 20), (2, 30), (3, 40)]);
    }

    #[test]
    fn par_chunks_mut_covers_the_slice_disjointly() {
        let mut data = vec![0u32; 103];
        data.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
            for v in chunk.iter_mut() {
                *v += 1 + i as u32;
            }
        });
        assert!(data.iter().all(|&v| v >= 1));
        assert_eq!(data[0], 1);
        assert_eq!(data[102], 11);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn par_iter_borrows() {
        let data = vec![1.0f32, 2.0, 3.0];
        let doubled: Vec<f32> = data.par_iter().map(|&x| x * 2.0).collect();
        assert_eq!(doubled, vec![2.0, 4.0, 6.0]);
        assert_eq!(data.len(), 3);
    }

    #[test]
    fn repeated_calls_reuse_the_engine() {
        // Many successive fan-outs must not accumulate state; on multi-core
        // hosts they all reuse the same persistent workers.
        for round in 0..200 {
            let v: Vec<usize> = (0..32).into_par_iter().map(|i| i + round).collect();
            assert_eq!(v[0], round);
            assert_eq!(v[31], 31 + round);
        }
    }
}
