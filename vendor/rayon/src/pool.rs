//! The persistent worker pool behind the shim's parallel calls.
//!
//! Design:
//!
//! * **Workers are spawned once** ([`WorkerPool::new`]) and live for the
//!   process lifetime, blocking on a shared FIFO of type-erased jobs. A
//!   parallel call pays a mutex push + condvar wakeup per chunk instead of a
//!   `thread::spawn`.
//! * **Scoped execution over a `'static` pool.** Submitted closures borrow
//!   the caller's stack (items, the mapped function, result slots), so their
//!   lifetime is erased when enqueued. Soundness is restored by the latch
//!   protocol: [`WorkerPool::scope_execute`] / [`WorkerPool::join`] do not
//!   return (or unwind) before every submitted job has finished running, so
//!   the borrows outlive all uses.
//! * **Waiters help.** A thread waiting on a latch drains the shared queue
//!   while it waits. Nested parallel calls issued from inside a worker
//!   therefore make progress even when every worker is blocked on a latch of
//!   its own — each blocked thread keeps executing queued jobs, including
//!   jobs submitted by other threads.
//! * **Panics propagate.** A panicking job is caught on the executing
//!   thread, recorded in the latch, and re-thrown on the submitting thread
//!   after all sibling jobs have completed (mirroring rayon, which also
//!   completes the scope before propagating).

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// A unit of work borrowed from a submitting stack frame.
pub(crate) type Job<'a> = Box<dyn FnOnce() + Send + 'a>;

/// A job whose borrow lifetime has been erased for queueing. Only created by
/// [`WorkerPool::submit`], which guarantees via its latch that the job runs
/// before the borrowed frame can unwind.
struct ErasedJob {
    call: Box<dyn FnOnce() + Send + 'static>,
    latch: Arc<Latch>,
}

impl ErasedJob {
    fn run(self) {
        let result = catch_unwind(AssertUnwindSafe(self.call));
        self.latch.complete_one(result.err());
    }
}

/// Completion tracker for one batch of submitted jobs.
struct Latch {
    state: Mutex<LatchState>,
    done: Condvar,
}

struct LatchState {
    remaining: usize,
    panic: Option<Box<dyn Any + Send>>,
}

impl Latch {
    fn new(remaining: usize) -> Self {
        Self {
            state: Mutex::new(LatchState {
                remaining,
                panic: None,
            }),
            done: Condvar::new(),
        }
    }

    fn complete_one(&self, panic: Option<Box<dyn Any + Send>>) {
        let mut st = self.state.lock().expect("latch poisoned");
        if st.panic.is_none() {
            st.panic = panic;
        } else {
            drop(panic);
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            self.done.notify_all();
        }
    }

    fn is_done(&self) -> bool {
        self.state.lock().expect("latch poisoned").remaining == 0
    }

    /// Takes the recorded panic payload, if any. Call only after completion.
    fn take_panic(&self) -> Option<Box<dyn Any + Send>> {
        self.state.lock().expect("latch poisoned").panic.take()
    }
}

/// A fixed-width pool of persistent worker threads.
pub(crate) struct WorkerPool {
    queue: Mutex<VecDeque<ErasedJob>>,
    work_available: Condvar,
}

impl WorkerPool {
    /// Spawns `workers` detached worker threads blocking on the shared queue.
    pub(crate) fn new(workers: usize) -> Arc<Self> {
        assert!(workers > 0, "a worker pool needs at least one worker");
        let pool = Arc::new(Self {
            queue: Mutex::new(VecDeque::new()),
            work_available: Condvar::new(),
        });
        for i in 0..workers {
            let pool = Arc::clone(&pool);
            std::thread::Builder::new()
                .name(format!("mas-rayon-{i}"))
                .spawn(move || pool.worker_loop())
                .expect("spawning pool worker");
        }
        pool
    }

    fn worker_loop(&self) {
        loop {
            let job = {
                let mut q = self.queue.lock().expect("pool queue poisoned");
                loop {
                    if let Some(job) = q.pop_front() {
                        break job;
                    }
                    q = self.work_available.wait(q).expect("pool queue poisoned");
                }
            };
            job.run();
        }
    }

    fn try_pop(&self) -> Option<ErasedJob> {
        self.queue.lock().expect("pool queue poisoned").pop_front()
    }

    /// Enqueues a batch of borrowed jobs and returns its latch.
    ///
    /// # Safety contract (internal)
    ///
    /// The caller must wait on the returned latch before letting the borrowed
    /// frame unwind; [`WorkerPool::scope_execute`] and [`WorkerPool::join`]
    /// are the only callers and both uphold this.
    fn submit<'a>(&self, jobs: Vec<Job<'a>>) -> Arc<Latch> {
        let latch = Arc::new(Latch::new(jobs.len()));
        {
            let mut q = self.queue.lock().expect("pool queue poisoned");
            for job in jobs {
                // SAFETY: the job only borrows data from the submitting
                // frame, and `wait_on` blocks that frame until the job has
                // run to completion (latch protocol above), so the erased
                // borrows never dangle while the job is live.
                let call: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(job) };
                q.push_back(ErasedJob {
                    call,
                    latch: Arc::clone(&latch),
                });
            }
        }
        self.work_available.notify_all();
        latch
    }

    /// Blocks until `latch` completes, executing queued jobs while waiting
    /// (the deadlock-freedom guarantee for nested parallelism).
    fn wait_on(&self, latch: &Latch) {
        loop {
            if latch.is_done() {
                return;
            }
            match self.try_pop() {
                Some(job) => job.run(),
                None => {
                    // Nothing to help with: block until this latch advances.
                    // The short timeout re-checks the queue in the unlikely
                    // window where new helpable work arrived between the
                    // `try_pop` and this wait.
                    let st = self.state_wait(latch);
                    if st {
                        return;
                    }
                }
            }
        }
    }

    /// Waits briefly on the latch condvar; returns whether the latch is done.
    fn state_wait(&self, latch: &Latch) -> bool {
        let st = latch.state.lock().expect("latch poisoned");
        if st.remaining == 0 {
            return true;
        }
        let (st, _timeout) = latch
            .done
            .wait_timeout(st, Duration::from_micros(200))
            .expect("latch poisoned");
        st.remaining == 0
    }

    /// Runs every job to completion, in parallel with the calling thread,
    /// then re-throws the first recorded panic (if any).
    pub(crate) fn scope_execute<'a>(&self, jobs: Vec<Job<'a>>) {
        if jobs.is_empty() {
            return;
        }
        let latch = self.submit(jobs);
        self.wait_on(&latch);
        if let Some(payload) = latch.take_panic() {
            resume_unwind(payload);
        }
    }

    /// Runs `a` on the calling thread while `b` is eligible to run on a
    /// worker (or is reclaimed by the waiting caller), returning both
    /// results.
    pub(crate) fn join<A, B, RA, RB>(&self, a: A, b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA + Send,
        B: FnOnce() -> RB + Send,
        RA: Send,
        RB: Send,
    {
        let mut rb: Option<RB> = None;
        let latch = {
            let slot = &mut rb;
            let job: Job<'_> = Box::new(move || {
                *slot = Some(b());
            });
            self.submit(vec![job])
        };
        // `a` must not unwind past the latch wait while `b` may still be
        // running against borrowed state, so catch and re-throw after the
        // wait.
        let ra = catch_unwind(AssertUnwindSafe(a));
        self.wait_on(&latch);
        if let Some(payload) = latch.take_panic() {
            resume_unwind(payload);
        }
        match ra {
            Ok(ra) => (ra, rb.expect("join closure completed")),
            Err(payload) => resume_unwind(payload),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn pool() -> Arc<WorkerPool> {
        WorkerPool::new(3)
    }

    #[test]
    fn scope_execute_runs_every_job_exactly_once() {
        let p = pool();
        let counter = AtomicUsize::new(0);
        for _ in 0..50 {
            let jobs: Vec<Job<'_>> = (0..16)
                .map(|_| {
                    let job: Job<'_> = Box::new(|| {
                        counter.fetch_add(1, Ordering::SeqCst);
                    });
                    job
                })
                .collect();
            p.scope_execute(jobs);
        }
        assert_eq!(counter.load(Ordering::SeqCst), 50 * 16);
    }

    #[test]
    fn jobs_write_into_borrowed_slots() {
        let p = pool();
        let mut slots = [0usize; 24];
        {
            let jobs: Vec<Job<'_>> = slots
                .iter_mut()
                .enumerate()
                .map(|(i, slot)| {
                    let job: Job<'_> = Box::new(move || *slot = i * 3);
                    job
                })
                .collect();
            p.scope_execute(jobs);
        }
        assert!(slots.iter().enumerate().all(|(i, &v)| v == i * 3));
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        // Saturate a 3-worker pool with jobs that each submit their own
        // nested batch; helping-while-waiting must drain everything.
        let p = pool();
        let counter = AtomicUsize::new(0);
        let outer: Vec<Job<'_>> = (0..8)
            .map(|_| {
                let p = &p;
                let counter = &counter;
                let job: Job<'_> = Box::new(move || {
                    let inner: Vec<Job<'_>> = (0..8)
                        .map(|_| {
                            let job: Job<'_> = Box::new(|| {
                                counter.fetch_add(1, Ordering::SeqCst);
                            });
                            job
                        })
                        .collect();
                    p.scope_execute(inner);
                });
                job
            })
            .collect();
        p.scope_execute(outer);
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn join_runs_both_sides() {
        let p = pool();
        let (a, b) = p.join(|| 21 * 2, || "pool".to_string());
        assert_eq!(a, 42);
        assert_eq!(b, "pool");
    }

    #[test]
    fn panics_propagate_after_the_scope_completes() {
        let p = pool();
        let completed = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let jobs: Vec<Job<'_>> = (0..6)
                .map(|i| {
                    let completed = &completed;
                    let job: Job<'_> = Box::new(move || {
                        if i == 3 {
                            panic!("boom");
                        }
                        completed.fetch_add(1, Ordering::SeqCst);
                    });
                    job
                })
                .collect();
            p.scope_execute(jobs);
        }));
        assert!(result.is_err(), "the panic must surface on the submitter");
        // All sibling jobs ran before the panic was re-thrown.
        assert_eq!(completed.load(Ordering::SeqCst), 5);
        // The pool survives and keeps serving work.
        let (x, y) = p.join(|| 1, || 2);
        assert_eq!((x, y), (1, 2));
    }

    #[test]
    fn join_panic_in_caller_side_waits_for_the_other_side() {
        let p = pool();
        let finished = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            p.join(
                || panic!("caller side"),
                || {
                    finished.fetch_add(1, Ordering::SeqCst);
                },
            )
        }));
        assert!(result.is_err());
        assert_eq!(finished.load(Ordering::SeqCst), 1);
    }
}
