//! In-tree shim for `serde`.
//!
//! The build environment has no access to crates.io. This crate provides the
//! `Serialize` / `Deserialize` traits as *markers* (no methods) together with
//! no-op derive macros, so that the workspace's `#[derive(Serialize,
//! Deserialize)]` annotations compile unchanged and can be swapped for the
//! real serde without touching call sites once a registry is available.
//! Nothing in the workspace performs actual serialization through these
//! traits; machine-readable output is hand-formatted (see `mas-bench`).

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}
