//! In-tree shim for `serde`.
//!
//! The build environment has no access to crates.io. This crate provides the
//! `Serialize` / `Deserialize` traits as *markers* (no methods) together with
//! no-op derive macros, so that the workspace's `#[derive(Serialize,
//! Deserialize)]` annotations compile unchanged and can be swapped for the
//! real serde without touching call sites once a registry is available.
//! Nothing in the workspace performs actual serialization through these
//! traits; machine-readable output is hand-formatted (see `mas-bench`).
//!
//! Beyond the derives, the marker traits are implemented for the std types
//! the workspace's derived types embed (primitives, `String`, `Vec`,
//! `Option`, tuples, maps, …) so that *generic* derived types such as
//! `TimeSeries<T: Serialize>` can state the same bounds the real serde
//! derive would emit.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

/// Implements both marker traits for a list of concrete std types.
macro_rules! impl_markers {
    ($($ty:ty),* $(,)?) => {
        $(
            impl Serialize for $ty {}
            impl<'de> Deserialize<'de> for $ty {}
        )*
    };
}

impl_markers!(
    bool, char, f32, f64, i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, u128, usize, String
);

impl Serialize for str {}

impl<T: Serialize + ?Sized> Serialize for &T {}
impl<T: Serialize + ?Sized> Serialize for Box<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {}

impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}

impl<T: Serialize> Serialize for [T] {}
impl<T: Serialize, const N: usize> Serialize for [T; N] {}
impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {}
impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>, C: Deserialize<'de>> Deserialize<'de>
    for (A, B, C)
{
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {}
impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
}

// The derive expansion names `::serde::Serialize`; alias the crate to itself
// so the in-crate test module below can exercise the derives.
#[cfg(test)]
extern crate self as serde;

#[cfg(test)]
mod tests {
    use super::*;

    // A generic container mirroring mas-serve's `TimeSeries<T>`: the derive
    // must carry the type parameters (with `Serialize` bounds) onto the impl.
    // The fields are never read — the test only checks the derives compile
    // and the marker impls resolve.
    #[derive(Serialize, Deserialize)]
    struct Generic<T> {
        #[allow(dead_code)]
        points: Vec<(f64, T)>,
    }

    #[derive(Serialize)]
    struct Arrayed<const N: usize> {
        #[allow(dead_code)]
        buckets: [u64; N],
    }

    fn assert_serialize<T: Serialize>() {}
    fn assert_deserialize<T: DeserializeOwned>() {}

    #[test]
    fn generic_derive_bounds_resolve() {
        assert_serialize::<Generic<i64>>();
        assert_serialize::<Generic<String>>();
        assert_deserialize::<Generic<f64>>();
        assert_serialize::<Arrayed<32>>();
        assert_serialize::<Vec<Option<(f64, u64)>>>();
        assert_serialize::<std::collections::BTreeMap<String, Vec<u64>>>();
    }
}
