//! In-tree shim for `rand` 0.8.
//!
//! The build environment has no access to crates.io, so this crate implements
//! the small API subset the workspace uses — [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer and float
//! ranges, and [`Rng::gen_bool`] — on top of a xoshiro256++ generator seeded
//! via SplitMix64. The stream differs from the real `rand::rngs::StdRng`, but
//! every consumer in this workspace only relies on *determinism for a fixed
//! seed*, which this shim guarantees bit-for-bit across platforms.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps 64 random bits onto `[0, 1)` with 53-bit precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Maps 64 random bits onto `[0, 1)` with 24-bit precision.
fn unit_f32(bits: u64) -> f32 {
    (bits >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range {}..{}", self.start, self.end);
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range {lo}..={hi}");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

macro_rules! impl_float_range {
    ($($t:ty => $unit:ident),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range {}..{}", self.start, self.end);
                self.start + (self.end - self.start) * $unit(rng.next_u64())
            }
        }
    )*};
}

impl_float_range!(f32 => unit_f32, f64 => unit_f64);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand`'s `StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the standard way to seed xoshiro state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.gen_range(0u64..u64::MAX)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(5usize..17);
            assert!((5..17).contains(&v));
            let w = rng.gen_range(2usize..=4);
            assert!((2..=4).contains(&w));
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits} hits for p=0.25");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
