//! In-tree shim for `criterion`.
//!
//! The build environment has no access to crates.io, so this crate provides a
//! self-contained wall-clock benchmark harness exposing the criterion API
//! subset the workspace's benches use: [`Criterion`], benchmark groups,
//! [`BenchmarkId`], [`Bencher::iter`], [`black_box`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Each benchmark is warmed up for a fixed wall-clock budget, then measured
//! over a sample of timed batches; the harness reports the per-iteration
//! mean, minimum and maximum. Results print as
//! `bench <group>/<name> ... mean <t> (min <t>, max <t>, N iters)` so they
//! can be diffed across commits. Statistical analysis (outlier detection,
//! regression reports) of real criterion is out of scope.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work (forwards to [`std::hint::black_box`]).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a parameterized benchmark, mirroring
/// `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from a parameter value, e.g. `64` → `"64"`.
    #[must_use]
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self(parameter.to_string())
    }

    /// Builds an id from a function name and a parameter value.
    #[must_use]
    pub fn new<S: Display, P: Display>(function_name: S, parameter: P) -> Self {
        Self(format!("{function_name}/{parameter}"))
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// Runs the closure under timing and accumulates per-iteration samples.
pub struct Bencher {
    warmup: Duration,
    measure: Duration,
    samples: Vec<Duration>,
    iters: u64,
}

impl Bencher {
    fn new(warmup: Duration, measure: Duration) -> Self {
        Self {
            warmup,
            measure,
            samples: Vec::new(),
            iters: 0,
        }
    }

    /// Times repeated executions of `f`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up: also estimates the cost of one iteration.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warmup || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed() / warm_iters.max(1) as u32;

        // Measurement: single-iteration samples until the budget is spent.
        let batch =
            1u64.max((Duration::from_millis(1).as_nanos() / per_iter.as_nanos().max(1)) as u64);
        let run_start = Instant::now();
        while run_start.elapsed() < self.measure {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples.push(t.elapsed() / batch as u32);
            self.iters += batch;
        }
    }

    fn report(&self) -> Option<(Duration, Duration, Duration, u64)> {
        let n = self.samples.len();
        if n == 0 {
            return None;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / n as u32;
        let min = *self.samples.iter().min().expect("non-empty samples");
        let max = *self.samples.iter().max().expect("non-empty samples");
        Some((mean, min, max, self.iters))
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

fn run_one(label: &str, warmup: Duration, measure: Duration, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher::new(warmup, measure);
    f(&mut bencher);
    match bencher.report() {
        Some((mean, min, max, iters)) => println!(
            "bench {label:<48} mean {:>10} (min {}, max {}, {iters} iters)",
            fmt_duration(mean),
            fmt_duration(min),
            fmt_duration(max),
        ),
        None => println!("bench {label:<48} (no samples — closure never called iter)"),
    }
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    warmup: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            warmup: Duration::from_millis(120),
            measure: Duration::from_millis(400),
        }
    }
}

impl Criterion {
    /// Accepts (and ignores) command-line configuration, for API parity.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Sets the warm-up budget per benchmark.
    #[must_use]
    pub fn warm_up_time(mut self, warmup: Duration) -> Self {
        self.warmup = warmup;
        self
    }

    /// Sets the measurement budget per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, measure: Duration) -> Self {
        self.measure = measure;
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.warmup, self.measure, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            warmup: self.warmup,
            measure: self.measure,
            _criterion: self,
        }
    }

    /// Prints the final summary (no-op in the shim; results print inline).
    pub fn final_summary(&mut self) {}
}

/// A named group of benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    name: String,
    warmup: Duration,
    measure: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepts (and ignores) the statistical sample count, for API parity.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement budget for this group.
    pub fn measurement_time(&mut self, measure: Duration) -> &mut Self {
        self.measure = measure;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<I: Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.warmup, self.measure, &mut f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: Display, P, F: FnMut(&mut Bencher, &P)>(
        &mut self,
        id: I,
        input: &P,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.warmup, self.measure, &mut |b| f(b, input));
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

/// Declares the benchmark `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_reports_samples() {
        let mut b = Bencher::new(Duration::from_millis(5), Duration::from_millis(20));
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(black_box(1));
        });
        let (mean, min, max, iters) = b.report().expect("samples were collected");
        assert!(iters > 0);
        assert!(min <= mean && mean <= max);
    }

    #[test]
    fn duration_formatting_scales() {
        assert!(fmt_duration(Duration::from_nanos(500)).ends_with("ns"));
        assert!(fmt_duration(Duration::from_micros(5)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(5)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(5)).ends_with("s"));
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter(64).to_string(), "64");
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
    }
}
