//! In-tree shim for `proptest`.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the small proptest API subset the workspace's property tests use: the
//! [`proptest!`] macro over `name in range` argument strategies,
//! `ProptestConfig::with_cases`, and the `prop_assert!` family.
//!
//! Cases are sampled from integer-range strategies with a deterministic RNG
//! seeded from the test name, so failures reproduce across runs. Shrinking
//! (minimal counterexamples) of real proptest is out of scope — a failing
//! case panics with the sampled arguments via the standard assert message.

pub mod test_runner {
    //! Runner configuration, mirroring `proptest::test_runner`.

    /// Subset of `proptest::test_runner::ProptestConfig`.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Builds a configuration running `cases` random cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }
}

pub mod strategy {
    //! Value strategies, mirroring (a sliver of) `proptest::strategy`.

    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::ops::Range;

    /// Something that can produce a random value from an RNG.
    pub trait Strategy {
        /// The produced value type.
        type Value;
        /// Samples one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(usize, u64, u32, u16, u8);

    /// Builds the deterministic RNG for one property test.
    #[must_use]
    pub fn rng_for_test(name: &str) -> StdRng {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        StdRng::seed_from_u64(hash)
    }
}

pub mod prelude {
    //! The items a test file needs in scope, mirroring `proptest::prelude`.

    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `#[test] fn name(arg in strategy, ...)`
/// becomes a standard `#[test]` running `cases` sampled executions.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        #[test]
        fn $name:ident( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::strategy::rng_for_test(stringify!($name));
            for _case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut rng);)*
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::{rng_for_test, Strategy};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn sampled_values_stay_in_range(
            n in 4usize..40,
            seed in 0u64..1000,
        ) {
            prop_assert!((4..40).contains(&n));
            prop_assert!(seed < 1000);
        }
    }

    #[test]
    fn rng_is_deterministic_per_test_name() {
        let mut a = rng_for_test("x");
        let mut b = rng_for_test("x");
        let range = 0usize..1000;
        for _ in 0..32 {
            prop_assert_eq!(range.sample(&mut a), range.sample(&mut b));
        }
    }
}
