//! In-tree shim for `serde_derive`.
//!
//! The build environment has no access to crates.io, so this proc-macro crate
//! provides `#[derive(Serialize)]` / `#[derive(Deserialize)]` that emit empty
//! marker-trait impls (the shim `serde` crate defines `Serialize` and
//! `Deserialize` as marker traits). `#[serde(...)]` helper attributes are
//! accepted and ignored. Only non-generic types are supported, which covers
//! every derived type in this workspace.

use proc_macro::{TokenStream, TokenTree};

/// Derives the shim `serde::Serialize` marker impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}

/// Derives the shim `serde::Deserialize` marker impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}

/// Extracts the type identifier following the `struct`/`enum` keyword.
fn type_name(input: TokenStream) -> String {
    let mut iter = input.into_iter();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" {
                match iter.next() {
                    Some(TokenTree::Ident(name)) => return name.to_string(),
                    other => panic!("serde shim: expected type name, found {other:?}"),
                }
            }
        }
    }
    panic!("serde shim: no struct/enum keyword in derive input");
}
