//! In-tree shim for `serde_derive`.
//!
//! The build environment has no access to crates.io, so this proc-macro crate
//! provides `#[derive(Serialize)]` / `#[derive(Deserialize)]` that emit empty
//! marker-trait impls (the shim `serde` crate defines `Serialize` and
//! `Deserialize` as marker traits). `#[serde(...)]` helper attributes are
//! accepted and ignored.
//!
//! Generic types are supported: lifetime, type and const parameters are
//! carried onto the impl, with each type parameter bounded by the derived
//! marker trait — mirroring the bounds the real serde derive emits, so a
//! `TimeSeries<T>` derive produces
//! `impl<T: ::serde::Serialize> ::serde::Serialize for TimeSeries<T> {}`.
//! Parameter bounds and defaults in the declaration are dropped (the impl
//! supplies its own bounds); `Deserialize` rejects lifetime parameters, which
//! no derived type in this workspace uses.

use proc_macro::{TokenStream, TokenTree};

/// Derives the shim `serde::Serialize` marker impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let ty = parse_type(input);
    let impl_params = ty.impl_params("::serde::Serialize");
    format!(
        "impl{impl_params} ::serde::Serialize for {}{} {{}}",
        ty.name,
        ty.type_args()
    )
    .parse()
    .expect("generated impl parses")
}

/// Derives the shim `serde::Deserialize` marker impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let ty = parse_type(input);
    if ty.params.iter().any(|p| matches!(p, Param::Lifetime(_))) {
        panic!("serde shim: Deserialize on lifetime-generic types is not supported");
    }
    let mut params = vec!["'de".to_string()];
    for p in &ty.params {
        params.push(match p {
            Param::Lifetime(_) => unreachable!(),
            Param::Type(name) => format!("{name}: ::serde::Deserialize<'de>"),
            Param::Const(decl, _) => decl.clone(),
        });
    }
    format!(
        "impl<{}> ::serde::Deserialize<'de> for {}{} {{}}",
        params.join(", "),
        ty.name,
        ty.type_args()
    )
    .parse()
    .expect("generated impl parses")
}

/// One generic parameter of the deriving type.
enum Param {
    /// `'a` — stored without the leading quote.
    Lifetime(String),
    /// `T` — bounds and defaults stripped.
    Type(String),
    /// `const N: usize` — (full declaration, bare name).
    Const(String, String),
}

/// Name plus generic parameters of the type under derive.
struct TypeDecl {
    name: String,
    params: Vec<Param>,
}

impl TypeDecl {
    /// `<'a, T: Bound, const N: usize>` for the impl header (empty when
    /// the type is not generic).
    fn impl_params(&self, bound: &str) -> String {
        if self.params.is_empty() {
            return String::new();
        }
        let parts: Vec<String> = self
            .params
            .iter()
            .map(|p| match p {
                Param::Lifetime(l) => format!("'{l}"),
                Param::Type(name) => format!("{name}: {bound}"),
                Param::Const(decl, _) => decl.clone(),
            })
            .collect();
        format!("<{}>", parts.join(", "))
    }

    /// `<'a, T, N>` for the self-type (empty when the type is not generic).
    fn type_args(&self) -> String {
        if self.params.is_empty() {
            return String::new();
        }
        let parts: Vec<String> = self
            .params
            .iter()
            .map(|p| match p {
                Param::Lifetime(l) => format!("'{l}"),
                Param::Type(name) => name.clone(),
                Param::Const(_, name) => name.clone(),
            })
            .collect();
        format!("<{}>", parts.join(", "))
    }
}

/// Extracts the type name and generic parameters following the
/// `struct`/`enum` keyword.
fn parse_type(input: TokenStream) -> TypeDecl {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    while i < tokens.len() {
        if let TokenTree::Ident(id) = &tokens[i] {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" {
                let name = match tokens.get(i + 1) {
                    Some(TokenTree::Ident(name)) => name.to_string(),
                    other => panic!("serde shim: expected type name, found {other:?}"),
                };
                let params = match tokens.get(i + 2) {
                    Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                        parse_params(&tokens[i + 3..])
                    }
                    _ => Vec::new(),
                };
                return TypeDecl { name, params };
            }
        }
        i += 1;
    }
    panic!("serde shim: no struct/enum keyword in derive input");
}

/// Parses the generic parameter list starting just after the opening `<`,
/// stopping at its matching `>`.
fn parse_params(tokens: &[TokenTree]) -> Vec<Param> {
    // Split the angle-bracketed region at depth-0 commas; nested `<`/`>`
    // (e.g. in bounds like `T: Into<u64>`) only adjust the depth.
    let mut params = Vec::new();
    let mut current: Vec<&TokenTree> = Vec::new();
    let mut depth = 0i32;
    for tt in tokens {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' => {
                    if depth == 0 {
                        if !current.is_empty() {
                            params.push(parse_param(&current));
                        }
                        return params;
                    }
                    depth -= 1;
                }
                ',' if depth == 0 => {
                    params.push(parse_param(&current));
                    current.clear();
                    continue;
                }
                _ => {}
            }
        }
        current.push(tt);
    }
    panic!("serde shim: unclosed generic parameter list");
}

/// Parses one comma-separated generic parameter.
fn parse_param(tokens: &[&TokenTree]) -> Param {
    match tokens.first() {
        // `'a` lexes as a joint `'` punct followed by the lifetime ident.
        Some(TokenTree::Punct(p)) if p.as_char() == '\'' => match tokens.get(1) {
            Some(TokenTree::Ident(id)) => Param::Lifetime(id.to_string()),
            other => panic!("serde shim: expected lifetime ident, found {other:?}"),
        },
        Some(TokenTree::Ident(id)) if id.to_string() == "const" => {
            let name = match tokens.get(1) {
                Some(TokenTree::Ident(name)) => name.to_string(),
                other => panic!("serde shim: expected const param name, found {other:?}"),
            };
            // Keep `const N: Type` up to (excluding) any `= default`.
            let mut decl = String::new();
            for tt in tokens {
                if let TokenTree::Punct(p) = tt {
                    if p.as_char() == '=' {
                        break;
                    }
                }
                if !decl.is_empty() {
                    decl.push(' ');
                }
                decl.push_str(&tt.to_string());
            }
            Param::Const(decl, name)
        }
        Some(TokenTree::Ident(id)) => Param::Type(id.to_string()),
        other => panic!("serde shim: unsupported generic parameter start: {other:?}"),
    }
}
