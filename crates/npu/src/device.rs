//! DaVinci-like NPU device description.

use serde::{Deserialize, Serialize};

/// One NPU core (a DaVinci "AI core").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NpuCore {
    /// Core name (e.g. `"ascend-lite-0"`).
    pub name: String,
    /// Multiply-accumulate operations the cube unit retires per cycle
    /// (the DaVinci Lite cube is a 16×16×16 half-precision MAC array).
    pub cube_macs_per_cycle: usize,
    /// Lane-operations the vector unit retires per cycle.
    pub vector_lanes: usize,
    /// Unified on-chip buffer capacity in bytes.
    pub buffer_bytes: usize,
    /// Core clock frequency in Hz.
    pub frequency_hz: f64,
}

impl NpuCore {
    /// Peak cube throughput in MAC operations per second.
    #[must_use]
    pub fn peak_macs_per_second(&self) -> f64 {
        self.cube_macs_per_cycle as f64 * self.frequency_hz
    }

    /// Peak vector throughput in lane-operations per second.
    #[must_use]
    pub fn peak_vector_ops_per_second(&self) -> f64 {
        self.vector_lanes as f64 * self.frequency_hz
    }
}

/// The whole NPU: a set of heterogeneous cores sharing LPDDR memory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NpuDevice {
    /// Device name.
    pub name: String,
    /// The AI cores.
    pub cores: Vec<NpuCore>,
    /// Shared DRAM bandwidth in bytes per second.
    pub dram_bandwidth_bytes_per_s: f64,
    /// Element size in bytes (FP16 on the device).
    pub element_bytes: usize,
    /// Vector-unit lane-operations needed per softmax element (exponential
    /// evaluated by polynomial on the vector unit).
    pub softmax_ops_per_element: usize,
    /// Fixed per-kernel-launch overhead in seconds (driver + task dispatch),
    /// paid once per operator launch on the device.
    pub kernel_launch_overhead_s: f64,
}

impl NpuDevice {
    /// The Kirin 990 5G NPU: two Ascend Lite cores and one Ascend Tiny core.
    #[must_use]
    pub fn kirin990() -> Self {
        let lite = |i: usize| NpuCore {
            name: format!("ascend-lite-{i}"),
            // Effective (sustained) cube throughput; the nominal 16x16x16 array
            // is derated for the small attention tiles of edge inference.
            cube_macs_per_cycle: 1024,
            vector_lanes: 256,
            buffer_bytes: 1024 * 1024,
            frequency_hz: 0.96e9,
        };
        let tiny = NpuCore {
            name: "ascend-tiny-0".to_string(),
            cube_macs_per_cycle: 256,
            vector_lanes: 128,
            buffer_bytes: 256 * 1024,
            frequency_hz: 0.48e9,
        };
        Self {
            name: "Kirin 990 5G DaVinci NPU".to_string(),
            cores: vec![lite(0), lite(1), tiny],
            dram_bandwidth_bytes_per_s: 50.0e9,
            element_bytes: 2,
            softmax_ops_per_element: 20,
            kernel_launch_overhead_s: 30.0e-6,
        }
    }

    /// Total peak MAC throughput of the device.
    #[must_use]
    pub fn total_peak_macs_per_second(&self) -> f64 {
        self.cores.iter().map(NpuCore::peak_macs_per_second).sum()
    }

    /// Splits `heads` across the cores proportionally to their cube
    /// throughput (every head must land on exactly one core; the DaVinci
    /// runtime partitions attention heads the same way).
    #[must_use]
    pub fn partition_heads(&self, heads: usize) -> Vec<usize> {
        let total = self.total_peak_macs_per_second();
        let mut assigned = vec![0usize; self.cores.len()];
        let mut remaining = heads;
        // Ideal share, floored; remainder goes to the fastest cores.
        for (i, core) in self.cores.iter().enumerate() {
            let share = ((heads as f64) * core.peak_macs_per_second() / total).floor() as usize;
            let share = share.min(remaining);
            assigned[i] = share;
            remaining -= share;
        }
        let mut order: Vec<usize> = (0..self.cores.len()).collect();
        order.sort_by(|&a, &b| {
            self.cores[b]
                .peak_macs_per_second()
                .partial_cmp(&self.cores[a].peak_macs_per_second())
                .expect("throughputs are finite")
        });
        let mut i = 0;
        while remaining > 0 {
            assigned[order[i % order.len()]] += 1;
            remaining -= 1;
            i += 1;
        }
        assigned
    }
}

impl Default for NpuDevice {
    fn default() -> Self {
        Self::kirin990()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kirin990_has_three_heterogeneous_cores() {
        let d = NpuDevice::kirin990();
        assert_eq!(d.cores.len(), 3);
        let lite = &d.cores[0];
        let tiny = &d.cores[2];
        assert!(lite.peak_macs_per_second() > tiny.peak_macs_per_second());
        assert!(lite.buffer_bytes > tiny.buffer_bytes);
    }

    #[test]
    fn head_partition_conserves_heads_and_prefers_fast_cores() {
        let d = NpuDevice::kirin990();
        for heads in [1usize, 2, 3, 8, 12, 16, 32] {
            let p = d.partition_heads(heads);
            assert_eq!(p.iter().sum::<usize>(), heads, "heads={heads}");
            // A Lite core never receives fewer heads than the Tiny core.
            assert!(p[0] >= p[2]);
            assert!(p[1] >= p[2]);
        }
    }

    #[test]
    fn single_head_goes_to_one_core() {
        let d = NpuDevice::kirin990();
        let p = d.partition_heads(1);
        assert_eq!(p.iter().filter(|&&c| c > 0).count(), 1);
    }

    #[test]
    fn peak_throughputs_are_positive() {
        let d = NpuDevice::kirin990();
        assert!(d.total_peak_macs_per_second() > 0.0);
        for c in &d.cores {
            assert!(c.peak_vector_ops_per_second() > 0.0);
        }
    }
}
