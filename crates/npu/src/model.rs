//! Analytical latency model for attention dataflows on the DaVinci-like NPU.
//!
//! Attention heads are partitioned across the heterogeneous cores; each core
//! runs the method's kernel over its heads, and the device latency is the
//! maximum over cores (cores run concurrently) bounded below by the shared
//! DRAM traffic time. The structural differences between methods are the
//! same as in `mas-dataflow`:
//!
//! * **Layer-Wise** — cube and vector time add up, and the `C`/`P`
//!   intermediates round-trip DRAM.
//! * **Soft-Pipe** — `QKᵀ` overlaps with softmax, `P` round-trips DRAM, `PV`
//!   runs afterwards.
//! * **FLAT** — everything on-chip, cube and vector strictly serialized.
//! * **MAS-Attention** — cube and vector overlap; the longer of the two
//!   streams bounds the round, plus a per-round semi-synchronous handshake.
//!
//! Tile sizes (the query row-block per round) are chosen by **grid search**
//! over each core's unified buffer, as the paper does on this device.

use serde::{Deserialize, Serialize};

use mas_dataflow::{AttentionWorkload, DataflowKind};

use crate::device::{NpuCore, NpuDevice};

/// Latency estimate for one method on one workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NpuLatency {
    /// The method.
    pub kind: DataflowKind,
    /// End-to-end latency in seconds.
    pub seconds: f64,
    /// Per-core busy time in seconds (same order as the device's cores).
    pub per_core_seconds: Vec<f64>,
    /// DRAM traffic time in seconds (lower bound on the latency).
    pub dram_seconds: f64,
    /// Query row-block size chosen by the per-core grid search (for the
    /// first core that received work).
    pub tile_n_q: usize,
}

/// The analytical NPU model.
#[derive(Debug, Clone)]
pub struct NpuModel {
    device: NpuDevice,
}

impl NpuModel {
    /// Creates a model for the given device.
    #[must_use]
    pub fn new(device: NpuDevice) -> Self {
        Self { device }
    }

    /// Creates a model of the Kirin 990 NPU.
    #[must_use]
    pub fn kirin990() -> Self {
        Self::new(NpuDevice::kirin990())
    }

    /// The modelled device.
    #[must_use]
    pub fn device(&self) -> &NpuDevice {
        &self.device
    }

    /// Grid search for the largest query row-block whose working set fits a
    /// core's unified buffer for the given method (the §4.2 grid search).
    #[must_use]
    pub fn grid_search_n_q(
        &self,
        kind: DataflowKind,
        workload: &AttentionWorkload,
        core: &NpuCore,
    ) -> usize {
        let eb = self.device.element_bytes;
        let n = workload.seq_len;
        let e = workload.embed;
        // Live C/P row blocks the method keeps on-chip simultaneously.
        let cp_blocks = match kind {
            DataflowKind::LayerWise | DataflowKind::Flat => 1,
            DataflowKind::SoftPipe | DataflowKind::MasAttention => 2,
            DataflowKind::TileFlow => 3,
            DataflowKind::FuseMax => 0,
        };
        let mut candidates: Vec<usize> = Vec::new();
        let mut v = 16usize.min(n);
        while v < n {
            candidates.push(v);
            v *= 2;
        }
        candidates.push(n);
        let mut best = candidates[0];
        for &n_q in &candidates {
            // Working set: Q block, K/V sub-tile, C/P blocks, O block.
            let working = n_q * e * eb          // Q_i
                + 2 * 128.min(n) * e * eb       // double-buffered K/V sub-tile
                + cp_blocks * n_q * n * eb      // C/P row blocks
                + n_q * e * eb; // O_i
            if working <= core.buffer_bytes {
                best = n_q;
            }
        }
        best
    }

    /// Estimates the latency of one method on one workload.
    #[must_use]
    pub fn estimate(&self, kind: DataflowKind, workload: &AttentionWorkload) -> NpuLatency {
        let eb = self.device.element_bytes;
        let heads_per_core = self.device.partition_heads(workload.slices());
        let n = workload.seq_len as f64;
        let e = workload.embed as f64;

        let mut per_core_seconds = Vec::with_capacity(self.device.cores.len());
        let mut tile_n_q = workload.seq_len;
        for (core, &heads) in self.device.cores.iter().zip(&heads_per_core) {
            if heads == 0 {
                per_core_seconds.push(0.0);
                continue;
            }
            let h = heads as f64;
            let n_q = self.grid_search_n_q(kind, workload, core);
            if per_core_seconds.is_empty() || tile_n_q == workload.seq_len {
                tile_n_q = n_q;
            }
            let rounds = (workload.seq_len.div_ceil(n_q) * heads) as f64;

            let mac_time = 2.0 * h * n * n * e / core.peak_macs_per_second();
            let qk_time = mac_time / 2.0;
            let pv_time = mac_time / 2.0;
            let vec_time = h * n * n * self.device.softmax_ops_per_element as f64
                / core.peak_vector_ops_per_second();
            let launch = self.device.kernel_launch_overhead_s;

            let compute = match kind {
                DataflowKind::LayerWise => mac_time + vec_time + 3.0 * launch,
                DataflowKind::SoftPipe => {
                    qk_time.max(vec_time) + pv_time + 2.0 * launch + rounds * launch * 0.1
                }
                DataflowKind::Flat => mac_time + vec_time + rounds * launch * 0.2 + launch,
                DataflowKind::TileFlow => mac_time.max(vec_time) + rounds * launch * 0.3 + launch,
                DataflowKind::FuseMax => {
                    mac_time.max(vec_time * 1.4) + rounds * launch * 0.2 + launch
                }
                DataflowKind::MasAttention => {
                    mac_time.max(vec_time) + rounds * launch * 0.1 + launch
                }
            };
            per_core_seconds.push(compute);
        }

        // Shared DRAM traffic.
        let operand_bytes = workload.operand_bytes(eb) as f64;
        let intermediate_bytes = workload.intermediate_bytes(eb) as f64;
        let dram_bytes = match kind {
            DataflowKind::LayerWise => 4.0 * operand_bytes + 4.0 * intermediate_bytes,
            DataflowKind::SoftPipe => 4.0 * operand_bytes + 2.0 * intermediate_bytes,
            _ => 4.0 * operand_bytes,
        };
        let dram_seconds = dram_bytes / self.device.dram_bandwidth_bytes_per_s;

        let compute_max = per_core_seconds.iter().copied().fold(0.0f64, f64::max);
        let seconds = compute_max.max(dram_seconds) + self.device.kernel_launch_overhead_s;

        NpuLatency {
            kind,
            seconds,
            per_core_seconds,
            dram_seconds,
            tile_n_q,
        }
    }

    /// Estimates every Figure 5 method and returns `(method, seconds)` pairs
    /// in the paper's order, plus the normalization against the slowest
    /// method (Figure 5 plots normalized execution time).
    #[must_use]
    pub fn figure5_estimates(&self, workload: &AttentionWorkload) -> Vec<(DataflowKind, f64, f64)> {
        let raw: Vec<(DataflowKind, f64)> = DataflowKind::npu_methods()
            .into_iter()
            .map(|kind| (kind, self.estimate(kind, workload).seconds))
            .collect();
        let slowest = raw.iter().map(|(_, s)| *s).fold(0.0f64, f64::max);
        raw.into_iter()
            .map(|(kind, s)| (kind, s, s / slowest))
            .collect()
    }
}

impl Default for NpuModel {
    fn default() -> Self {
        Self::kirin990()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bert() -> AttentionWorkload {
        AttentionWorkload::new("BERT-Base", 1, 12, 512, 64)
    }

    #[test]
    fn ordering_matches_figure_5() {
        // Figure 5's robust orderings: MAS-Attention beats every baseline,
        // both fused methods beat the unfused ones, and Layer-Wise is the
        // slowest. (FLAT versus Soft-Pipe flips for some networks on the
        // real device depending on how DRAM-bound the P round-trip is.)
        let model = NpuModel::kirin990();
        let w = bert();
        let lw = model.estimate(DataflowKind::LayerWise, &w).seconds;
        let sp = model.estimate(DataflowKind::SoftPipe, &w).seconds;
        let flat = model.estimate(DataflowKind::Flat, &w).seconds;
        let mas = model.estimate(DataflowKind::MasAttention, &w).seconds;
        assert!(mas < flat, "MAS ({mas}) must beat FLAT ({flat})");
        assert!(mas < sp, "MAS ({mas}) must beat Soft-Pipe ({sp})");
        assert!(sp < lw, "Soft-Pipe ({sp}) must beat Layer-Wise ({lw})");
        assert!(flat < lw, "FLAT ({flat}) must beat Layer-Wise ({lw})");
    }

    #[test]
    fn speedup_over_flat_is_in_the_paper_band() {
        let model = NpuModel::kirin990();
        for net in [
            AttentionWorkload::new("BERT-Base", 1, 12, 512, 64),
            AttentionWorkload::new("Llama", 1, 32, 512, 128),
            AttentionWorkload::new("ViT-H/16", 1, 16, 256, 80),
        ] {
            let flat = model.estimate(DataflowKind::Flat, &net).seconds;
            let mas = model.estimate(DataflowKind::MasAttention, &net).seconds;
            let speedup = flat / mas;
            assert!(
                (1.1..=2.0).contains(&speedup),
                "{}: FLAT/MAS speedup {speedup} outside the Figure 5 band",
                net.name
            );
        }
    }

    #[test]
    fn figure5_normalization_puts_the_slowest_method_at_one() {
        let model = NpuModel::kirin990();
        let rows = model.figure5_estimates(&bert());
        assert_eq!(rows.len(), 4);
        let max_norm = rows.iter().map(|(_, _, n)| *n).fold(0.0f64, f64::max);
        assert!((max_norm - 1.0).abs() < 1e-12);
        // MAS has the smallest normalized time.
        let mas = rows
            .iter()
            .find(|(k, _, _)| *k == DataflowKind::MasAttention)
            .unwrap();
        assert!(rows.iter().all(|(_, _, n)| *n >= mas.2));
    }

    #[test]
    fn grid_search_picks_smaller_tiles_on_the_tiny_core() {
        let model = NpuModel::kirin990();
        let w = AttentionWorkload::new("long", 1, 3, 2048, 64);
        let lite = &model.device().cores[0];
        let tiny = &model.device().cores[2];
        let nq_lite = model.grid_search_n_q(DataflowKind::MasAttention, &w, lite);
        let nq_tiny = model.grid_search_n_q(DataflowKind::MasAttention, &w, tiny);
        assert!(nq_lite >= nq_tiny);
        assert!(nq_tiny >= 1);
    }

    #[test]
    fn per_core_times_follow_the_head_partition() {
        let model = NpuModel::kirin990();
        let est = model.estimate(DataflowKind::MasAttention, &bert());
        assert_eq!(est.per_core_seconds.len(), 3);
        // The Tiny core (index 2) is slower per head but gets fewer heads, so
        // its busy time should not exceed twice a Lite core's busy time.
        assert!(est.per_core_seconds[2] <= est.per_core_seconds[0] * 2.0);
        assert!(est.seconds >= est.dram_seconds);
    }
}
