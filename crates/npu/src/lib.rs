//! # mas-npu
//!
//! A DaVinci-like edge NPU model standing in for the Huawei MatePad Pro
//! 13.2 (Kirin 990 5G) used in the paper's real-hardware experiments
//! (Figure 5 and §5.2.2).
//!
//! The real device exposes three NPU cores — two Ascend Lite cores and one
//! Ascend Tiny core — each with a cube (matrix) unit, a vector unit and
//! dedicated on-chip memory. No public cycle-accurate simulator of the
//! DaVinci architecture exists, so this crate models the device analytically:
//!
//! * [`device::NpuDevice`] describes the cores (cube throughput, vector
//!   throughput, unified-buffer capacity, clock),
//! * [`model::NpuModel`] estimates per-method attention latency by
//!   partitioning heads across the heterogeneous cores and applying the same
//!   structural differences between methods as `mas-dataflow` (serialized
//!   MAC/VEC for Layer-Wise/FLAT, off-chip `P` for Soft-Pipe, overlapped
//!   streams for MAS-Attention), with tile sizes chosen by grid search over
//!   each core's buffer (the paper uses grid search on this device),
//! * [`numeric`] gives the model a numeric golden check: attention computed
//!   with the modelled core partition and row-block structure on the
//!   `mas-tensor` slice kernels (`dot` / `softmax_row` / `axpy`), compared
//!   against the unfused reference with `golden_check` (§5.1), and
//! * [`e2e`] assembles the reduced Stable Diffusion 1.5 UNet end-to-end
//!   estimate of §5.2.2.
//!
//! Absolute milliseconds are not meaningful (the real device's kernel launch
//! and DMA engines are proprietary); the *normalized* execution times of
//! Figure 5 — which method is faster and by roughly what factor — are what
//! this model reproduces.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod device;
pub mod e2e;
pub mod model;
pub mod numeric;

pub use device::{NpuCore, NpuDevice};
pub use model::{NpuLatency, NpuModel};
