//! Numeric golden check of the NPU execution structure.
//!
//! The analytical model in [`crate::model`] predicts *timing*; this module
//! computes *values*, mirroring how the device executes attention: heads are
//! partitioned across the heterogeneous cores ([`NpuDevice::partition_heads`])
//! and each core accumulates its `P·V` partial products at the granularity
//! of its grid-searched tile ([`NpuModel::grid_search_n_q`]), flushing one
//! tile's partial block into the output at a time — so the blocking
//! structure shows up in the `f32` accumulation order and a wrong partition
//! or tile choice is observable. The arithmetic runs on the `mas-tensor`
//! slice kernels — [`dot`] row·row products for `QKᵀ`, [`softmax_row`] for
//! the stable softmax, [`axpy`] accumulation for `PV` — never on scalar
//! element accessors, so the checked code path is the same vectorizable one
//! the CPU kernels use.
//!
//! Every method computes exact attention, so the output must match the
//! unfused reference within accumulation tolerance — the paper's golden-data
//! check (§5.1) applied to the NPU model via [`golden_check`].

use mas_tensor::attention::reference_attention;
use mas_tensor::golden::{golden_check, GoldenReport, Tolerance};
use mas_tensor::init::random_qkv;
use mas_tensor::matmul::{axpy, dot};
use mas_tensor::softmax::softmax_row;
use mas_tensor::{Result, Tensor};

use mas_dataflow::{AttentionWorkload, DataflowKind};

use crate::model::NpuModel;

impl NpuModel {
    /// Computes the attention output of `kind` on the given operands with
    /// the core partitioning and tiling structure the NPU model assumes.
    ///
    /// `(batch, head)` slices are assigned to cores in the same proportions
    /// as [`crate::device::NpuDevice::partition_heads`], and each core's
    /// grid-searched tile size (`grid_search_n_q`) sets its accumulator
    /// *flush granularity*: the `P·V` partial products of one tile's worth
    /// of key/value rows accumulate in an on-chip scratch block before being
    /// flushed into the output row, exactly as the unified buffer stages
    /// partial sums on the device. The tile size therefore changes the
    /// `f32` accumulation order — the blocking structure is numerically
    /// observable — while every method still computes exact attention
    /// within golden tolerance, which is what the golden check pins.
    ///
    /// # Errors
    ///
    /// Returns a [`mas_tensor::TensorError`] if the operand shapes are
    /// inconsistent.
    pub fn execute_numeric(
        &self,
        kind: DataflowKind,
        q: &Tensor,
        k: &Tensor,
        v: &Tensor,
    ) -> Result<Tensor> {
        if q.shape() != k.shape() {
            return Err(mas_tensor::TensorError::ShapeMismatch {
                left: *q.shape(),
                right: *k.shape(),
                op: "npu execute_numeric(q, k)",
            });
        }
        if k.shape() != v.shape() {
            return Err(mas_tensor::TensorError::ShapeMismatch {
                left: *k.shape(),
                right: *v.shape(),
                op: "npu execute_numeric(k, v)",
            });
        }
        let [b_n, h_n, n, e] = q.shape().dims();
        let workload = AttentionWorkload::new("npu-numeric", b_n, h_n, n, e);

        // Assign each (batch, head) slice to the core that owns it under the
        // device's head partition, and use that core's grid-searched
        // row-block size.
        let slices = workload.slices();
        let partition = self.device().partition_heads(slices);
        let mut slice_n_q = Vec::with_capacity(slices);
        for (core, &count) in self.device().cores.iter().zip(&partition) {
            let n_q = self.grid_search_n_q(kind, &workload, core).max(1);
            slice_n_q.extend(std::iter::repeat_n(n_q, count));
        }
        debug_assert_eq!(slice_n_q.len(), slices);

        let mut out = Tensor::zeros(*q.shape());
        let mut c_row = vec![0.0f32; n];
        let mut p_row = vec![0.0f32; n];
        let mut partial = vec![0.0f32; e];
        for (s, &n_q) in slice_n_q.iter().enumerate() {
            let (bi, hi) = (s / h_n, s % h_n);
            for r in 0..n {
                let q_row = q.row(bi, hi, r);
                // C_i row: dot products against every K row.
                for (j, c) in c_row.iter_mut().enumerate() {
                    *c = dot(q_row, k.row(bi, hi, j));
                }
                // P_i row: stable softmax over the row slice.
                softmax_row(&c_row, &mut p_row);
                // O_i row: accumulate P_i · V one tile of K/V rows at a
                // time — the partial block is flushed to the output at the
                // core's grid-searched granularity, so the tile size is
                // visible in the accumulation order.
                let o_row = out.row_mut(bi, hi, r);
                for j0 in (0..n).step_by(n_q) {
                    let j1 = (j0 + n_q).min(n);
                    partial.fill(0.0);
                    for (j, &p) in p_row[j0..j1].iter().enumerate() {
                        axpy(p, v.row(bi, hi, j0 + j), &mut partial);
                    }
                    for (o, &acc) in o_row.iter_mut().zip(&partial) {
                        *o += acc;
                    }
                }
            }
        }
        Ok(out)
    }

    /// Runs the golden-data check for one method on a seeded random instance
    /// of the workload: executes the method numerically with the NPU's
    /// blocking structure and compares against the unfused reference.
    ///
    /// # Errors
    ///
    /// Returns a [`mas_tensor::TensorError`] if the workload produces
    /// inconsistent shapes (it cannot for valid workloads).
    pub fn golden_check(
        &self,
        kind: DataflowKind,
        workload: &AttentionWorkload,
        seed: u64,
        tol: Tolerance,
    ) -> Result<GoldenReport> {
        let (q, k, v) = random_qkv(
            workload.batch,
            workload.heads,
            workload.seq_len,
            workload.embed,
            seed,
        );
        let candidate = self.execute_numeric(kind, &q, &k, &v)?;
        let golden = reference_attention(&q, &k, &v)?;
        golden_check(&candidate, &golden, tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> AttentionWorkload {
        // 5 slices split across the two Lite cores (the Tiny core only
        // receives heads on much wider workloads — see partition_heads).
        AttentionWorkload::new("toy", 1, 5, 96, 32)
    }

    #[test]
    fn every_npu_method_passes_the_golden_check() {
        let model = NpuModel::kirin990();
        for kind in DataflowKind::npu_methods() {
            let report = model
                .golden_check(kind, &toy(), 7, Tolerance::default())
                .unwrap();
            assert!(
                report.passed,
                "{kind} failed the NPU golden check: {} mismatches, worst {:?}",
                report.mismatches, report.worst_index
            );
            assert_eq!(report.elements, 5 * 96 * 32);
        }
    }

    #[test]
    fn numeric_output_matches_the_reference_tightly() {
        let model = NpuModel::kirin990();
        let (q, k, v) = random_qkv(1, 3, 64, 32, 11);
        let out = model
            .execute_numeric(DataflowKind::MasAttention, &q, &k, &v)
            .unwrap();
        let golden = reference_attention(&q, &k, &v).unwrap();
        // Same slice kernels; the tiled partial-sum flush only reorders the
        // PV accumulation, which stays well within default tolerance on
        // these magnitudes.
        let report = golden_check(&out, &golden, Tolerance::default()).unwrap();
        assert!(report.passed);
        assert!(report.max_abs_diff < 1e-4);
    }

    #[test]
    fn methods_agree_within_accumulation_tolerance() {
        // Methods keep different numbers of C/P blocks live, so the grid
        // search hands them different tile sizes; the resulting partial-sum
        // orders must agree within tolerance without being required to be
        // bitwise equal.
        let model = NpuModel::kirin990();
        let (q, k, v) = random_qkv(1, 4, 512, 64, 3);
        let a = model
            .execute_numeric(DataflowKind::LayerWise, &q, &k, &v)
            .unwrap();
        let b = model
            .execute_numeric(DataflowKind::MasAttention, &q, &k, &v)
            .unwrap();
        let report = golden_check(&a, &b, Tolerance::default()).unwrap();
        assert!(report.passed);
    }

    #[test]
    fn tile_granularity_is_numerically_observable() {
        // The point of the blocked partial-sum flush: a different tile size
        // produces a different (tolerance-equal, but not bitwise-identical)
        // accumulation. Guards against the blocking structure silently
        // degenerating into an unobservable no-op.
        let model = NpuModel::kirin990();
        let w = AttentionWorkload::new("probe", 1, 2, 512, 64);
        let lite = &model.device().cores[0];
        let tiny = &model.device().cores[2];
        let nq_lite = model.grid_search_n_q(DataflowKind::MasAttention, &w, lite);
        let nq_tiny = model.grid_search_n_q(DataflowKind::MasAttention, &w, tiny);
        assert_ne!(
            nq_lite, nq_tiny,
            "probe shape must give the Lite and Tiny cores different tiles"
        );
        assert!(
            nq_lite < w.seq_len,
            "the Lite tile must split the sequence so blocking is exercised"
        );
        // With tiles smaller than the sequence, the per-tile partial-sum
        // flush reorders the PV accumulation relative to the reference's
        // linear sweep; the values stay within golden tolerance.
        let report = model
            .golden_check(DataflowKind::MasAttention, &w, 9, Tolerance::default())
            .unwrap();
        assert!(report.passed);
        assert!(
            report.max_abs_diff > 0.0,
            "tiled accumulation must not be bitwise identical to the reference"
        );
    }

    #[test]
    fn shape_mismatches_error() {
        let model = NpuModel::kirin990();
        let (q, k, _) = random_qkv(1, 2, 32, 16, 1);
        let (_, _, v_bad) = random_qkv(1, 2, 32, 8, 1);
        assert!(model
            .execute_numeric(DataflowKind::Flat, &q, &k, &v_bad)
            .is_err());
    }

    #[test]
    fn long_sequences_with_ragged_row_blocks_still_pass() {
        let model = NpuModel::kirin990();
        // 196 is not a multiple of any power-of-two row block: exercises the
        // ragged tail of the row-block sweep (ViT shapes).
        let w = AttentionWorkload::new("vit-ish", 1, 3, 196, 64);
        let report = model
            .golden_check(DataflowKind::MasAttention, &w, 21, Tolerance::default())
            .unwrap();
        assert!(report.passed);
    }
}
