//! End-to-end Stable Diffusion 1.5 reduced-UNet estimate (paper §5.2.2).
//!
//! The paper deploys MAS-Attention inside a reduced SD-1.5 UNet on the
//! mobile device and reports, versus the Layer-Wise method: a 29.4 % runtime
//! reduction on the largest attention unit and a 6 % reduction in end-to-end
//! model latency. The end-to-end number depends on how much of the UNet's
//! time is spent outside the attention blocks (convolutions, projections,
//! norms), which the paper does not break down; this module models that
//! remainder as a fixed fraction of the Layer-Wise end-to-end time
//! ([`E2eConfig::non_attention_fraction`], default 0.78 — i.e. attention is
//! roughly a fifth of the UNet under the baseline, which is what makes a
//! ~29 % attention gain translate into a ~6 % end-to-end gain).

use serde::{Deserialize, Serialize};

use mas_dataflow::DataflowKind;
use mas_workloads::sdunet::{largest_unit, SdAttentionUnit};

use crate::model::NpuModel;

/// Configuration of the end-to-end estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct E2eConfig {
    /// Fraction of the *baseline* (Layer-Wise) end-to-end latency spent
    /// outside attention blocks.
    pub non_attention_fraction: f64,
}

impl Default for E2eConfig {
    fn default() -> Self {
        Self {
            non_attention_fraction: 0.78,
        }
    }
}

/// Result of the end-to-end comparison of one method against Layer-Wise.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct E2eReport {
    /// The method compared against Layer-Wise.
    pub kind: DataflowKind,
    /// Total attention time of the baseline (seconds).
    pub baseline_attention_s: f64,
    /// Total attention time of the method (seconds).
    pub method_attention_s: f64,
    /// Relative runtime reduction on the largest attention unit.
    pub largest_unit_reduction: f64,
    /// Relative end-to-end latency reduction.
    pub end_to_end_reduction: f64,
}

/// Computes the §5.2.2 end-to-end comparison for `kind` versus Layer-Wise on
/// the given UNet attention suite.
#[must_use]
pub fn sd_unet_report(
    model: &NpuModel,
    units: &[SdAttentionUnit],
    kind: DataflowKind,
    config: E2eConfig,
) -> E2eReport {
    let time_for = |method: DataflowKind, unit: &SdAttentionUnit| {
        model.estimate(method, &unit.workload).seconds * unit.repeats as f64
    };

    let baseline_attention_s: f64 = units
        .iter()
        .map(|u| time_for(DataflowKind::LayerWise, u))
        .sum();
    let method_attention_s: f64 = units.iter().map(|u| time_for(kind, u)).sum();

    let largest = largest_unit(units).expect("the UNet suite is non-empty");
    let largest_base = time_for(DataflowKind::LayerWise, largest);
    let largest_method = time_for(kind, largest);
    let largest_unit_reduction = 1.0 - largest_method / largest_base;

    // End-to-end: the non-attention remainder is unchanged by the method.
    let non_attention = config.non_attention_fraction / (1.0 - config.non_attention_fraction)
        * baseline_attention_s;
    let baseline_e2e = baseline_attention_s + non_attention;
    let method_e2e = method_attention_s + non_attention;
    let end_to_end_reduction = 1.0 - method_e2e / baseline_e2e;

    E2eReport {
        kind,
        baseline_attention_s,
        method_attention_s,
        largest_unit_reduction,
        end_to_end_reduction,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mas_workloads::sdunet::sd15_reduced_unet;

    #[test]
    fn mas_reduces_the_largest_unit_by_roughly_a_third() {
        let model = NpuModel::kirin990();
        let units = sd15_reduced_unet(1);
        let report = sd_unet_report(
            &model,
            &units,
            DataflowKind::MasAttention,
            E2eConfig::default(),
        );
        assert!(
            (0.15..=0.65).contains(&report.largest_unit_reduction),
            "largest-unit reduction {} should be in the vicinity of the paper's 29.4 %",
            report.largest_unit_reduction
        );
    }

    #[test]
    fn end_to_end_reduction_is_a_few_percent() {
        let model = NpuModel::kirin990();
        let units = sd15_reduced_unet(1);
        let report = sd_unet_report(
            &model,
            &units,
            DataflowKind::MasAttention,
            E2eConfig::default(),
        );
        assert!(
            (0.02..=0.15).contains(&report.end_to_end_reduction),
            "end-to-end reduction {} should be in the vicinity of the paper's 6 %",
            report.end_to_end_reduction
        );
        assert!(report.end_to_end_reduction < report.largest_unit_reduction);
    }

    #[test]
    fn flat_also_improves_but_less_than_mas_end_to_end() {
        let model = NpuModel::kirin990();
        let units = sd15_reduced_unet(1);
        let flat = sd_unet_report(&model, &units, DataflowKind::Flat, E2eConfig::default());
        let mas = sd_unet_report(
            &model,
            &units,
            DataflowKind::MasAttention,
            E2eConfig::default(),
        );
        assert!(flat.end_to_end_reduction > 0.0);
        assert!(mas.end_to_end_reduction > flat.end_to_end_reduction);
    }

    #[test]
    fn a_larger_non_attention_share_shrinks_the_end_to_end_gain() {
        let model = NpuModel::kirin990();
        let units = sd15_reduced_unet(1);
        let small = sd_unet_report(
            &model,
            &units,
            DataflowKind::MasAttention,
            E2eConfig {
                non_attention_fraction: 0.5,
            },
        );
        let large = sd_unet_report(
            &model,
            &units,
            DataflowKind::MasAttention,
            E2eConfig {
                non_attention_fraction: 0.9,
            },
        );
        assert!(small.end_to_end_reduction > large.end_to_end_reduction);
        // The largest-unit reduction does not depend on the share.
        assert!((small.largest_unit_reduction - large.largest_unit_reduction).abs() < 1e-12);
    }
}
