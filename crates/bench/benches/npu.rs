//! Criterion benchmarks of the DaVinci-like NPU analytical model (Figure 5
//! and the SD-UNet end-to-end estimate).

use criterion::{criterion_group, criterion_main, Criterion};
use mas_dataflow::DataflowKind;
use mas_npu::e2e::{sd_unet_report, E2eConfig};
use mas_npu::NpuModel;
use mas_workloads::sdunet::sd15_reduced_unet;
use mas_workloads::Network;

fn bench_figure5(c: &mut Criterion) {
    let model = NpuModel::kirin990();
    c.bench_function("npu_figure5_all_networks", |b| {
        b.iter(|| {
            Network::all()
                .iter()
                .map(|n| model.figure5_estimates(&n.attention_workload(1)).len())
                .sum::<usize>()
        })
    });
}

fn bench_sd_unet(c: &mut Criterion) {
    let model = NpuModel::kirin990();
    let units = sd15_reduced_unet(1);
    c.bench_function("npu_sd_unet_e2e", |b| {
        b.iter(|| {
            sd_unet_report(
                &model,
                &units,
                DataflowKind::MasAttention,
                E2eConfig::default(),
            )
            .end_to_end_reduction
        })
    });
}

criterion_group!(benches, bench_figure5, bench_sd_unet);
criterion_main!(benches);
