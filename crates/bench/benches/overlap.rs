//! Bench smoke for the overlap-aware track executor, pinned by assertions
//! so a regression fails the CI bench smoke: replaying the same trace with
//! `tracks: None` (the scalar device model) and `tracks: Some(default)`
//! (the DMA/MAC/VEC/writeback flow-shop), the overlapped makespan must be
//! ≤ the scalar one on **every** leg, and ≥ 1.2× better on the DRAM-bound
//! fine-grained decode leg — where splitting the two DMA directions onto
//! separate queues and pipelining launches on the track clocks hides the
//! appended-KV writeback (a fixed ~25% of each short-context step's
//! traffic) plus the per-launch issue overhead.
//!
//! The decode sweep walks the context axis from writeback-dominated
//! (prompt 1) to KV-stream-dominated (prompt 1024), showing the win decay
//! toward 1.0× as reads swamp the fixed writeback; the compute-bound
//! BERT-Base prefill leg shows the scalar max-of-streams model is already
//! tight when one compute queue dominates (the clamp keeps it bitwise).

use criterion::{criterion_group, criterion_main, Criterion};
use mas_dataflow::DataflowKind;
use mas_serve::{EngineConfig, EngineReport, ServeEngine, ServeRequest, TrackConfig};
use mas_workloads::{DecodeSessionSpec, DecodeStepEvent, DecodeTrace, Network};

/// `sessions` decode sessions in lockstep: step `k` of every session
/// arrives at `k · gap_s`, so cross-session steps coalesce per launch.
fn lockstep_decode(sessions: u64, steps: usize, prompt: usize, gap_s: f64) -> DecodeTrace {
    let specs: Vec<DecodeSessionSpec> = (0..sessions)
        .map(|id| DecodeSessionSpec {
            id,
            network: Network::BertSmall,
            start_s: 0.0,
            heads: 8,
            kv_heads: 8,
            embed: 64,
            prompt_len: prompt,
            steps,
            prefix_group: None,
            shared_prefix_len: 0,
        })
        .collect();
    let mut events = Vec::new();
    for step_index in 0..steps {
        for id in 0..sessions {
            events.push(DecodeStepEvent {
                session_id: id,
                step_index,
                arrival_s: step_index as f64 * gap_s + 1e-9,
            });
        }
    }
    DecodeTrace {
        sessions: specs,
        steps: events,
    }
}

/// Replays `(prefill, decode)` twice — scalar model vs track executor —
/// and returns both reports.
fn run_pair(prefill: &[ServeRequest], decode: &DecodeTrace) -> (EngineReport, EngineReport) {
    let run = |tracks: Option<TrackConfig>| {
        let config = EngineConfig {
            devices: 1,
            shared_budget_bytes: Some(3_000_000_000),
            tracks,
            ..EngineConfig::default()
        };
        ServeEngine::new(config).run(prefill, decode).unwrap()
    };
    (run(None), run(Some(TrackConfig::default())))
}

fn pin_overlap_vs_scalar_makespans(_c: &mut Criterion) {
    println!("\nscalar vs overlap-aware track executor (1 device, default tracks):");
    println!("| leg | scalar makespan | overlap makespan | win |");
    println!("|---|---|---|---|");

    // DRAM-bound decode sweep: short contexts are writeback-heavy
    // (appended k/v + o row vs a tiny KV stream), long contexts are
    // read-dominated — the per-queue memory-bound regime in both cases,
    // but the direction-split win decays with context length.
    let mut dram_bound_win = 0.0f64;
    for prompt in [1usize, 8, 64, 256, 1024] {
        let decode = lockstep_decode(16, 8, prompt, 1e-7);
        let (scalar, overlap) = run_pair(&[], &decode);
        assert_eq!(overlap.decode.completed(), scalar.decode.completed());
        assert!(
            overlap.makespan_s <= scalar.makespan_s,
            "decode prompt={prompt}: overlap {:.3e} s > scalar {:.3e} s",
            overlap.makespan_s,
            scalar.makespan_s,
        );
        let win = scalar.makespan_s / overlap.makespan_s;
        if prompt == 1 {
            dram_bound_win = win;
        }
        println!(
            "| decode ctx~{prompt} | {:.3e} s | {:.3e} s | {win:.3}x |",
            scalar.makespan_s, overlap.makespan_s,
        );
    }
    assert!(
        dram_bound_win >= 1.2,
        "the DRAM-bound fine-grained decode leg must win >= 1.2x \
         (got {dram_bound_win:.3}x)"
    );

    // Compute-bound prefill: BERT-Base attention is MAC-bound on the edge
    // config, so the scalar max-of-streams span is already overlap-tight
    // and the clamp must never lose time to the flow-shop candidate.
    let prefill: Vec<ServeRequest> = (0..12)
        .map(|i| {
            ServeRequest::new(
                i as u64,
                i as f64 * 1e-5,
                DataflowKind::MasAttention,
                Network::BertBase.attention_workload(4),
                None,
            )
        })
        .collect();
    let (scalar, overlap) = run_pair(&prefill, &DecodeTrace::empty());
    assert_eq!(overlap.prefill.completed(), scalar.prefill.completed());
    assert!(
        overlap.makespan_s <= scalar.makespan_s,
        "compute-bound prefill: overlap {:.3e} s > scalar {:.3e} s",
        overlap.makespan_s,
        scalar.makespan_s,
    );
    println!(
        "| prefill BERT-Base b4 | {:.3e} s | {:.3e} s | {:.3}x |",
        scalar.makespan_s,
        overlap.makespan_s,
        scalar.makespan_s / overlap.makespan_s,
    );
}

criterion_group!(benches, pin_overlap_vs_scalar_makespans);
criterion_main!(benches);
