//! Benchmarks of the unified prefill+decode serve engine.
//!
//! The headline measurement backs the co-scheduling acceptance criterion:
//! on a mixed trace where prefill bursts and batched decode launches
//! contend for one device at every tick, the decode-priority scheduling
//! policy must keep decode p99 within 2× of the decode-only baseline —
//! while prefill-priority visibly trades decode tail latency for prefill
//! tail latency. `pin_policy_separation` measures all three policies on
//! the deterministic contention trace and *asserts* the bar, so a
//! scheduling regression fails the CI bench smoke. A generated Poisson
//! mixed trace is also replayed for wall-clock engine throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use mas_dataflow::DataflowKind;
use mas_serve::{
    ChunkPolicy, DecodePolicy, EngineConfig, EngineReport, KvDtype, PreemptMode, SchedulePolicy,
    ServeEngine, ServeRequest,
};
use mas_workloads::{
    mixed_trace, overload_burst_trace, DecodeSessionSpec, DecodeStepEvent, DecodeTrace,
    MixedTraceConfig, Network, OverloadBurstConfig,
};

/// The deterministic contention scenario (mirrors `tests/engine_mixed.rs`):
/// 12 lockstep long-context decode sessions (DRAM-bound ~1.6 ms launches)
/// and 6-request prefill bursts, whose launches become ready 1 ms apart and
/// dispatch at the same tick — the slot the policy arbitrates.
fn contention_scenario() -> (Vec<ServeRequest>, DecodeTrace) {
    let sessions = 12u64;
    let steps = 30usize;
    let specs: Vec<DecodeSessionSpec> = (0..sessions)
        .map(|id| DecodeSessionSpec {
            id,
            network: Network::BertSmall,
            start_s: 0.0,
            heads: 8,
            kv_heads: 8,
            embed: 64,
            prompt_len: 2000,
            steps,
            prefix_group: None,
            shared_prefix_len: 0,
        })
        .collect();
    let mut events = Vec::new();
    for step_index in 0..steps {
        for id in 0..sessions {
            events.push(DecodeStepEvent {
                session_id: id,
                step_index,
                arrival_s: step_index as f64 * 0.01 + 1e-9,
            });
        }
    }
    let decode = DecodeTrace {
        sessions: specs,
        steps: events,
    };
    let workload = Network::BertSmall.attention_workload(1);
    let mut prefill = Vec::new();
    for k in 0..29usize {
        for j in 0..6usize {
            prefill.push(ServeRequest::new(
                (k * 6 + j) as u64,
                0.001 + k as f64 * 0.01,
                DataflowKind::MasAttention,
                workload.clone(),
                None,
            ));
        }
    }
    (prefill, decode)
}

fn run_policy(
    prefill: &[ServeRequest],
    decode: &DecodeTrace,
    policy: SchedulePolicy,
) -> EngineReport {
    ServeEngine::new(EngineConfig {
        policy,
        ..EngineConfig::default()
    })
    .run(prefill, decode)
    .expect("mixed replay")
}

/// Measures per-class p99 under each policy and pins the acceptance
/// criterion: decode-priority decode p99 within 2× of the decode-only
/// baseline, and the policies observably separated.
fn pin_policy_separation(_c: &mut Criterion) {
    let (prefill, decode) = contention_scenario();
    let baseline = run_policy(&[], &decode, SchedulePolicy::DecodePriority);
    let base_p99 = baseline.decode_latency().expect("baseline completes").p99_s;

    println!(
        "\nmixed-trace p99 by scheduling policy (decode-only baseline {:.3} ms):",
        base_p99 * 1e3
    );
    println!("| policy | decode p99 | prefill p99 | vs decode-only |");
    println!("|---|---|---|---|");
    let mut measured = Vec::new();
    for policy in [
        SchedulePolicy::DecodePriority,
        SchedulePolicy::FairShare,
        SchedulePolicy::PrefillPriority,
    ] {
        let report = run_policy(&prefill, &decode, policy);
        assert_eq!(report.rejected(), 0, "{}", report.summary());
        let d = report.decode_latency().expect("decode completes");
        let p = report.prefill_latency().expect("prefill completes");
        println!(
            "| {policy} | {:.3} ms | {:.3} ms | {:.2}x |",
            d.p99_s * 1e3,
            p.p99_s * 1e3,
            d.p99_s / base_p99,
        );
        measured.push((policy, d.p99_s, p.p99_s));
    }

    // Acceptance: decode-priority keeps decode p99 within 2x of the
    // decode-only baseline even under the prefill burst.
    let (_, decode_priority_p99, _) = measured[0];
    assert!(
        decode_priority_p99 <= 2.0 * base_p99,
        "decode-priority must keep decode p99 ({:.3} ms) within 2x of the \
         decode-only baseline ({:.3} ms)",
        decode_priority_p99 * 1e3,
        base_p99 * 1e3,
    );
    // And the policy lever is real: prefill-priority trades decode tail
    // latency away.
    let (_, prefill_priority_p99, _) = measured[2];
    assert!(
        prefill_priority_p99 > decode_priority_p99,
        "prefill-priority decode p99 ({:.3} ms) must exceed decode-priority's \
         ({:.3} ms)",
        prefill_priority_p99 * 1e3,
        decode_priority_p99 * 1e3,
    );
}

/// Decode tail latency by KV storage dtype on the contention trace's
/// decode half: the 2000-token-context launches are DRAM-bound, so pricing
/// the cache stream at f16 (half the bytes) must not worsen — and should
/// improve — decode p99 versus f32 storage.
fn pin_f16_decode_tail(_c: &mut Criterion) {
    let (_, decode) = contention_scenario();
    let run = |kv_dtype: KvDtype| {
        ServeEngine::new(EngineConfig {
            decode: DecodePolicy {
                kv_dtype: Some(kv_dtype),
                ..DecodePolicy::default()
            },
            ..EngineConfig::default()
        })
        .run(&[], &decode)
        .expect("decode replay")
    };
    let f32_run = run(KvDtype::F32);
    let f16_run = run(KvDtype::F16);
    let f32_p99 = f32_run.decode_latency().expect("f32 completes").p99_s;
    let f16_p99 = f16_run.decode_latency().expect("f16 completes").p99_s;

    println!("\ndecode p99 by KV storage dtype (DRAM-bound 2000-token contexts):");
    println!("| kv dtype | decode p99 | vs f32 |");
    println!("|---|---|---|");
    for (name, p99) in [("f32", f32_p99), ("f16", f16_p99)] {
        println!("| {name} | {:.3} ms | {:.2}x |", p99 * 1e3, p99 / f32_p99);
    }
    assert!(
        f16_p99 <= f32_p99,
        "halving the KV stream must not worsen decode p99: f16 {:.3} ms vs \
         f32 {:.3} ms",
        f16_p99 * 1e3,
        f32_p99 * 1e3,
    );
}

/// Decode tail latency under the overload-burst trace: a convoy of
/// distinct multi-ms monolithic prefills lands on steady decode traffic.
/// With chunked prefill + iteration-level preemption off, decode launches
/// wall behind whole prefill services; with both on, decode p99 must stay
/// within 2× of the uncontended decode-only baseline (the PR acceptance
/// bar, also pinned by `tests/engine_mixed.rs`).
fn pin_overload_tail(_c: &mut Criterion) {
    let trace = overload_burst_trace(&OverloadBurstConfig::new(Network::Llama3_8B));
    let stream = ServeRequest::stream_from_trace(&trace.prefill, DataflowKind::MasAttention, None);
    let config = |chunk: Option<ChunkPolicy>, preempt: Option<PreemptMode>| EngineConfig {
        policy: SchedulePolicy::DecodePriority,
        decode: DecodePolicy {
            step_deadline_s: Some(0.004),
            ..DecodePolicy::default()
        },
        chunked_prefill: chunk,
        preempt,
        ..EngineConfig::default()
    };
    let chunk = Some(ChunkPolicy::new(64));
    let preempt = Some(PreemptMode::Hold);
    let baseline = ServeEngine::new(config(chunk, preempt))
        .run(&[], &trace.decode)
        .expect("baseline replay");
    let base_p99 = baseline.decode_latency().expect("baseline completes").p99_s;
    let off = ServeEngine::new(config(None, None))
        .run(&stream, &trace.decode)
        .expect("features-off replay");
    let on = ServeEngine::new(config(chunk, preempt))
        .run(&stream, &trace.decode)
        .expect("features-on replay");
    let off_p99 = off.decode_latency().expect("off completes").p99_s;
    let on_p99 = on.decode_latency().expect("on completes").p99_s;

    println!(
        "\noverload-burst decode p99 (decode-only baseline {:.3} ms):",
        base_p99 * 1e3
    );
    println!("| chunked prefill + preemption | decode p99 | vs baseline | preemptions |");
    println!("|---|---|---|---|");
    println!(
        "| off | {:.3} ms | {:.2}x | {} |",
        off_p99 * 1e3,
        off_p99 / base_p99,
        off.preemptions_prefill + off.preemptions_decode,
    );
    println!(
        "| on (chunk 64, hold) | {:.3} ms | {:.2}x | {} |",
        on_p99 * 1e3,
        on_p99 / base_p99,
        on.preemptions_prefill + on.preemptions_decode,
    );

    assert!(
        off_p99 > 2.0 * base_p99,
        "the overload convoy must blow features-off decode p99 ({:.3} ms) \
         past 2x the baseline ({:.3} ms)",
        off_p99 * 1e3,
        base_p99 * 1e3,
    );
    assert!(
        on_p99 <= 2.0 * base_p99,
        "chunked prefill + preemption must bound decode p99 ({:.3} ms) to \
         2x the baseline ({:.3} ms)",
        on_p99 * 1e3,
        base_p99 * 1e3,
    );
    assert!(on.preemptions_prefill > 0, "{}", on.summary());
}

/// Wall-clock engine throughput on a generated Poisson mixed trace.
fn bench_mixed_replay(c: &mut Criterion) {
    let trace = mixed_trace(&MixedTraceConfig::poisson(
        vec![Network::BertSmall, Network::T5Mini],
        120,
        2000.0,
        20,
        300.0,
        42,
    ));
    let mut g = c.benchmark_group("serve_mixed");
    g.sample_size(10);
    // One warm engine per policy: planning amortized by the shared cache,
    // so the measurement is the replay loop itself.
    for policy in [SchedulePolicy::FairShare, SchedulePolicy::DecodePriority] {
        let mut engine = ServeEngine::new(EngineConfig {
            policy,
            ..EngineConfig::default()
        });
        engine
            .run_mixed(&trace, DataflowKind::MasAttention, Some(0.05))
            .expect("prime");
        g.bench_function(format!("replay_{policy}"), |b| {
            b.iter(|| {
                engine
                    .run_mixed(&trace, DataflowKind::MasAttention, Some(0.05))
                    .expect("mixed replay")
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    pin_policy_separation,
    pin_f16_decode_tail,
    pin_overload_tail,
    bench_mixed_replay
);
criterion_main!(benches);
