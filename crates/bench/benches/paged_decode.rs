//! Benchmarks of the paged (block-granular) KV decode path.
//!
//! Two questions, both pinned by assertions so a regression fails the CI
//! bench smoke:
//!
//! 1. **Kernel overhead** — sweeping a block table instead of one
//!    contiguous buffer must cost at most a small constant factor per step
//!    (`pin_paged_overhead` asserts ≤ 3× across the context sweep; the two
//!    paths are bit-identical numerically, so this is pure traversal
//!    overhead).
//! 2. **Sessions per GB** — the point of paged allocation: under the same
//!    KV budget, block-granular charging at actual context must admit ≥ 2×
//!    the sessions of worst-case max-context reservation
//!    (`pin_sessions_per_gb`, replayed through `DecodeRuntime` on a
//!    long-max-context/short-actual-context trace).

use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use mas_serve::{DecodePolicy, DecodeRuntime, KvDtype};
use mas_sim::HardwareConfig;
use mas_tensor::decode::{decode_attention, KvCache};
use mas_tensor::init::random_qkv;
use mas_tensor::paged::{decode_attention_paged, KvBlockPool, PagedKvCache};
use mas_tensor::Tensor;
use mas_workloads::{DecodeSessionSpec, DecodeStepEvent, DecodeTrace, Network};

const HEADS: usize = 8;
const EMBED: usize = 64;
const BLOCK_TOKENS: usize = 16;
const CONTEXTS: [usize; 3] = [64, 128, 256];

fn gather(src: &Tensor, r: usize) -> Vec<f32> {
    (0..HEADS).flat_map(|h| src.row(0, h, r).to_vec()).collect()
}

/// Builds matching contiguous and paged caches holding `context` tokens,
/// plus the step's query row.
#[allow(clippy::type_complexity)]
fn dual_setup(context: usize) -> (KvCache, KvBlockPool, PagedKvCache, Vec<f32>) {
    let (q, k, v) = random_qkv(1, HEADS, context, EMBED, 42);
    let mut contiguous = KvCache::new(HEADS, EMBED);
    let mut pool = KvBlockPool::new(BLOCK_TOKENS, HEADS, EMBED);
    let mut paged = PagedKvCache::new(HEADS, HEADS, EMBED, BLOCK_TOKENS).unwrap();
    for t in 0..context {
        let (ks, vs) = (gather(&k, t), gather(&v, t));
        contiguous.append(&ks, &vs).unwrap();
        paged.append(&mut pool, &ks, &vs).unwrap();
    }
    (contiguous, pool, paged, gather(&q, context - 1))
}

fn bench_paged_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("paged_decode_step_8h_64e");
    for context in CONTEXTS {
        let (contiguous, pool, paged, q_step) = dual_setup(context);
        let mut out = vec![0.0f32; HEADS * EMBED];
        g.bench_function(BenchmarkId::new("contiguous", context), |b| {
            b.iter(|| {
                decode_attention(black_box(&contiguous), black_box(&q_step), &mut out).unwrap()
            })
        });
        g.bench_function(BenchmarkId::new("paged_block16", context), |b| {
            b.iter(|| {
                decode_attention_paged(
                    black_box(&pool),
                    black_box(&paged),
                    black_box(&q_step),
                    &mut out,
                )
                .unwrap()
            })
        });
    }
    g.finish();
}

/// Times `f` with a short warmup, returning the mean duration per call.
fn time_per_call<F: FnMut()>(mut f: F) -> Duration {
    let warmup = Instant::now();
    let mut warm_iters: u32 = 0;
    while warmup.elapsed() < Duration::from_millis(50) || warm_iters == 0 {
        f();
        warm_iters += 1;
    }
    let per_iter = warmup.elapsed() / warm_iters;
    let iters = (Duration::from_millis(300).as_nanos() / per_iter.as_nanos().max(1))
        .clamp(1, 1_000_000) as u32;
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed() / iters
}

/// Pins the paged kernel's traversal overhead: ≤ 3× the contiguous step at
/// every context in the sweep (the arithmetic is identical; only the
/// block-table walk differs).
fn pin_paged_overhead(_c: &mut Criterion) {
    println!("\npaged vs contiguous decode step (H={HEADS}, E={EMBED}, block={BLOCK_TOKENS}):");
    println!("| context | contiguous | paged | ratio |");
    println!("|---|---|---|---|");
    for context in CONTEXTS {
        let (contiguous, pool, paged, q_step) = dual_setup(context);
        let mut out = vec![0.0f32; HEADS * EMBED];
        let c_s = time_per_call(|| {
            decode_attention(black_box(&contiguous), black_box(&q_step), &mut out).unwrap();
        });
        let p_s = time_per_call(|| {
            decode_attention_paged(
                black_box(&pool),
                black_box(&paged),
                black_box(&q_step),
                &mut out,
            )
            .unwrap();
        });
        let ratio = p_s.as_secs_f64() / c_s.as_secs_f64();
        println!(
            "| {context} | {:.2} µs | {:.2} µs | {ratio:.2}x |",
            c_s.as_secs_f64() * 1e6,
            p_s.as_secs_f64() * 1e6,
        );
        assert!(
            ratio <= 3.0,
            "paged decode must stay within 3x of the contiguous step at \
             context {context}, measured {ratio:.2}x"
        );
    }
}

/// The long-max-context/short-actual-context admission trace shared by the
/// sessions-per-GiB pins.
fn admission_trace(sessions: u64, prompt: usize, declared: usize, actual: usize) -> DecodeTrace {
    let specs: Vec<DecodeSessionSpec> = (0..sessions)
        .map(|id| DecodeSessionSpec {
            id,
            network: Network::BertSmall,
            start_s: 0.0,
            heads: HEADS,
            kv_heads: HEADS,
            embed: EMBED,
            prompt_len: prompt,
            steps: declared,
            prefix_group: None,
            shared_prefix_len: 0,
        })
        .collect();
    let mut steps = Vec::new();
    for step_index in 0..actual {
        for id in 0..sessions {
            steps.push(DecodeStepEvent {
                session_id: id,
                step_index,
                arrival_s: step_index as f64 * 0.01 + 1e-9,
            });
        }
    }
    DecodeTrace {
        sessions: specs,
        steps,
    }
}

/// Replays a long-max-context/short-actual-context trace under both
/// charging policies at the same budget and pins the sessions-per-GB win.
fn pin_sessions_per_gb(_c: &mut Criterion) {
    let hw = HardwareConfig::edge_default();
    let budget: u64 = 1 << 30; // 1 GiB of KV
    let (prompt, declared, actual) = (32usize, 480usize, 8usize);
    let trace = admission_trace(4096, prompt, declared, actual);

    let run = |kv_block_tokens: Option<usize>| {
        let policy = DecodePolicy {
            kv_budget_bytes: Some(budget),
            kv_block_tokens,
            ..DecodePolicy::default()
        };
        DecodeRuntime::new(hw.clone(), policy).run_trace(&trace)
    };
    let legacy = run(None);
    let paged = run(Some(BLOCK_TOKENS));

    println!(
        "\nsessions per GiB of KV budget (prompt {prompt}, declared max context {}):",
        prompt + declared
    );
    println!("| charging | sessions admitted | peak KV MB | frag at peak | pool overflows |");
    println!("|---|---|---|---|---|");
    for (name, r) in [("max-context", &legacy), ("paged block16", &paged)] {
        println!(
            "| {name} | {} | {:.1} | {:.1}% | {} |",
            r.sessions_admitted,
            r.kv_peak_bytes as f64 / 1e6,
            r.kv_frag_at_peak * 100.0,
            r.pool_overflows(),
        );
    }
    assert_eq!(paged.pool_overflows(), 0, "the paged run must not overflow");
    assert!(paged.kv_peak_bytes <= budget);
    assert!(
        paged.sessions_admitted >= 2 * legacy.sessions_admitted,
        "block-granular charging must admit >= 2x the sessions of \
         max-context reservation at the same budget: {} vs {}",
        paged.sessions_admitted,
        legacy.sessions_admitted
    );
}

/// Same trace and budget, paged charging, KV priced at f32 vs f16: halving
/// the stored bytes per element must admit ≥ 1.8× the sessions with no
/// budget violations and no pool overflows.
fn pin_f16_sessions_per_gb(_c: &mut Criterion) {
    let hw = HardwareConfig::edge_default();
    let budget: u64 = 1 << 30; // 1 GiB of KV
    let (prompt, declared, actual) = (32usize, 480usize, 8usize);
    // More offered sessions than even the f16 run can hold, so admission is
    // budget-limited under both dtypes and the ratio is meaningful.
    let trace = admission_trace(16384, prompt, declared, actual);

    let run = |kv_dtype: KvDtype| {
        let policy = DecodePolicy {
            kv_budget_bytes: Some(budget),
            kv_dtype: Some(kv_dtype),
            ..DecodePolicy::default()
        };
        DecodeRuntime::new(hw.clone(), policy).run_trace(&trace)
    };
    let f32_run = run(KvDtype::F32);
    let f16_run = run(KvDtype::F16);

    println!("\nsessions per GiB of KV budget by storage dtype (paged block16):");
    println!("| kv dtype | sessions admitted | sessions/GiB | peak KV MB | pool overflows |");
    println!("|---|---|---|---|---|");
    for (name, r) in [("f32", &f32_run), ("f16", &f16_run)] {
        println!(
            "| {name} | {} | {:.0} | {:.1} | {} |",
            r.sessions_admitted,
            r.sessions_admitted as f64 / (budget as f64 / (1u64 << 30) as f64),
            r.kv_peak_bytes as f64 / 1e6,
            r.pool_overflows(),
        );
    }
    for (name, r) in [("f32", &f32_run), ("f16", &f16_run)] {
        assert!(
            r.kv_peak_bytes <= budget,
            "{name} run violated the KV budget: {} > {budget}",
            r.kv_peak_bytes
        );
        assert_eq!(r.pool_overflows(), 0, "{name} run must not overflow");
    }
    let ratio = f16_run.sessions_admitted as f64 / f32_run.sessions_admitted.max(1) as f64;
    assert!(
        ratio >= 1.8,
        "f16 KV storage must admit >= 1.8x the f32 session count under the \
         same budget: {} vs {} ({ratio:.2}x)",
        f16_run.sessions_admitted,
        f32_run.sessions_admitted
    );
}

criterion_group!(
    benches,
    bench_paged_step,
    pin_paged_overhead,
    pin_sessions_per_gb,
    pin_f16_sessions_per_gb
);
criterion_main!(benches);
