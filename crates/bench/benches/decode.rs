//! Benchmarks of the autoregressive decode path: KV-cached incremental
//! steps vs full recompute per step.
//!
//! The headline measurement backs the decode acceptance criterion: at a
//! 256-token context the KV-cached step (`decode_attention` over a
//! [`KvCache`]) must be ≥ 5× faster than recomputing prefill attention over
//! the whole sequence for every generated token — and per-step cost must
//! grow ~linearly with the context for the cached path vs ~quadratically
//! for recompute. `pin_kv_advantage` measures both paths across a context
//! sweep with a plain wall-clock harness and *asserts* the 5× threshold and
//! the growth-shape separation, so a regression fails the CI bench smoke.
//!
//! [`KvCache`]: mas_tensor::decode::KvCache

use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use mas_tensor::decode::{decode_attention, KvCache};
use mas_tensor::init::random_qkv;
use mas_tensor::tiled::{fused_online_attention, TileSizes};
use mas_tensor::Tensor;

const HEADS: usize = 8;
const EMBED: usize = 64;
const CONTEXTS: [usize; 3] = [64, 128, 256];

/// Builds a KV cache holding `context` tokens plus the step's query row.
fn cached_setup(context: usize) -> (KvCache, Vec<f32>) {
    let (q, k, v) = random_qkv(1, HEADS, context, EMBED, 42);
    let mut cache = KvCache::new(HEADS, EMBED);
    let gather = |src: &Tensor, r: usize| -> Vec<f32> {
        (0..HEADS).flat_map(|h| src.row(0, h, r).to_vec()).collect()
    };
    for t in 0..context {
        cache.append(&gather(&k, t), &gather(&v, t)).unwrap();
    }
    (cache, gather(&q, context - 1))
}

fn bench_decode_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("decode_step_8h_64e");
    for context in CONTEXTS {
        let (cache, q_step) = cached_setup(context);
        let mut out = vec![0.0f32; HEADS * EMBED];
        g.bench_function(BenchmarkId::new("kv_cached", context), |b| {
            b.iter(|| decode_attention(black_box(&cache), black_box(&q_step), &mut out).unwrap())
        });

        let (q, k, v) = random_qkv(1, HEADS, context, EMBED, 42);
        let tiles = TileSizes::new(64, 64, context).unwrap();
        g.bench_function(BenchmarkId::new("recompute_prefill", context), |b| {
            b.iter(|| {
                fused_online_attention(black_box(&q), black_box(&k), black_box(&v), tiles).unwrap()
            })
        });
    }
    g.finish();
}

/// Times `f` with a short warmup, returning the mean duration per call.
fn time_per_call<F: FnMut()>(mut f: F) -> Duration {
    let warmup = Instant::now();
    let mut warm_iters: u32 = 0;
    while warmup.elapsed() < Duration::from_millis(50) || warm_iters == 0 {
        f();
        warm_iters += 1;
    }
    let per_iter = warmup.elapsed() / warm_iters;
    let iters = (Duration::from_millis(300).as_nanos() / per_iter.as_nanos().max(1))
        .clamp(1, 1_000_000) as u32;
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed() / iters
}

/// Measures the context sweep and pins the acceptance criterion: a ≥ 5×
/// KV-cache advantage at 256 tokens and linear-vs-quadratic growth shape.
fn pin_kv_advantage(_c: &mut Criterion) {
    let mut cached_s = Vec::new();
    let mut recompute_s = Vec::new();
    println!("\ndecode per-step cost (H={HEADS}, E={EMBED}):");
    println!("| context | kv-cached | recompute | ratio | kv steps/s |");
    println!("|---|---|---|---|---|");
    for context in CONTEXTS {
        let (cache, q_step) = cached_setup(context);
        let mut out = vec![0.0f32; HEADS * EMBED];
        let cached = time_per_call(|| {
            decode_attention(black_box(&cache), black_box(&q_step), &mut out).unwrap()
        });

        let (q, k, v) = random_qkv(1, HEADS, context, EMBED, 42);
        let tiles = TileSizes::new(64, 64, context).unwrap();
        let recompute = time_per_call(|| {
            black_box(
                fused_online_attention(black_box(&q), black_box(&k), black_box(&v), tiles).unwrap(),
            );
        });
        let ratio = recompute.as_secs_f64() / cached.as_secs_f64();
        println!(
            "| {context} | {:.2} µs | {:.2} µs | {ratio:.1}x | {:.0} |",
            cached.as_secs_f64() * 1e6,
            recompute.as_secs_f64() * 1e6,
            1.0 / cached.as_secs_f64(),
        );
        cached_s.push(cached.as_secs_f64());
        recompute_s.push(recompute.as_secs_f64());
    }

    // Acceptance: ≥ 5× advantage at the 256-token context (the true ratio is
    // ~the context length, so 5× leaves a wide margin for timer noise).
    let ratio_256 = recompute_s[2] / cached_s[2];
    assert!(
        ratio_256 >= 5.0,
        "KV-cached decode must be ≥ 5x faster than per-step recompute at a \
         256-token context, measured {ratio_256:.1}x"
    );

    // Growth shape: quadrupling the context (64 → 256) should scale the
    // KV-cached step ~linearly (≈4×) and recompute ~quadratically (≈16×).
    // Assert the separation rather than exact constants: recompute must grow
    // superlinearly faster than the cached path.
    let cached_growth = cached_s[2] / cached_s[0];
    let recompute_growth = recompute_s[2] / recompute_s[0];
    println!(
        "growth 64→256: kv-cached {cached_growth:.1}x (linear ≈ 4x), \
         recompute {recompute_growth:.1}x (quadratic ≈ 16x)"
    );
    assert!(
        recompute_growth > 1.8 * cached_growth,
        "recompute per-step cost must grow ~quadratically vs the KV cache's \
         ~linear growth: cached {cached_growth:.1}x vs recompute {recompute_growth:.1}x"
    );
}

criterion_group!(benches, bench_decode_step, pin_kv_advantage);
criterion_main!(benches);
