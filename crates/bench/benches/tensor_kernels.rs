//! Criterion microbenchmarks of the numerical substrate: matmul, softmax and
//! the tiled attention executors used by the golden-data checks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mas_tensor::attention::reference_attention;
use mas_tensor::init::random_qkv;
use mas_tensor::softmax::{softmax_rows, softmax_rows_online};
use mas_tensor::tiled::{fused_online_attention, tiled_attention, TileSizes};

fn bench_softmax(c: &mut Criterion) {
    let (q, k, _v) = random_qkv(1, 2, 128, 64, 1);
    let logits = mas_tensor::matmul::matmul_nt(&q, &k).unwrap();
    let mut g = c.benchmark_group("softmax");
    g.bench_function("three_pass", |b| b.iter(|| softmax_rows(&logits)));
    g.bench_function("online_chunk32", |b| {
        b.iter(|| softmax_rows_online(&logits, 32).unwrap())
    });
    g.finish();
}

fn bench_attention_executors(c: &mut Criterion) {
    let (q, k, v) = random_qkv(1, 2, 96, 64, 2);
    let tiles = TileSizes::new(32, 48, 96).unwrap();
    let mut g = c.benchmark_group("attention_numeric");
    g.bench_function("reference", |b| {
        b.iter(|| reference_attention(&q, &k, &v).unwrap())
    });
    g.bench_function("tiled_flat_mas", |b| {
        b.iter(|| tiled_attention(&q, &k, &v, tiles).unwrap())
    });
    g.bench_function("fused_online_fusemax", |b| {
        b.iter(|| fused_online_attention(&q, &k, &v, tiles).unwrap())
    });
    g.finish();
}

fn bench_matmul_sizes(c: &mut Criterion) {
    let mut g = c.benchmark_group("matmul_nt");
    for n in [32usize, 64, 128] {
        let (q, k, _v) = random_qkv(1, 1, n, 64, 3);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| mas_tensor::matmul::matmul_nt(&q, &k).unwrap())
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_softmax,
    bench_attention_executors,
    bench_matmul_sizes
);
criterion_main!(benches);
