//! Criterion benchmarks of the tiling-search algorithms (cost per candidate
//! and end-to-end tuning cost at the quick budget), plus an ablation of the
//! search objective.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mas_dataflow::{AttentionWorkload, DataflowKind};
use mas_search::cost::{CostModel, Objective};
use mas_search::grid::GridSearch;
use mas_search::mcts::MctsSearch;
use mas_search::random::RandomSearch;
use mas_search::space::SearchSpace;
use mas_search::tuner::{AutoTuner, TunerConfig};
use mas_sim::HardwareConfig;

fn workload() -> AttentionWorkload {
    AttentionWorkload::new("toy", 1, 2, 128, 64)
}

fn bench_search_algorithms(c: &mut Criterion) {
    let hw = HardwareConfig::edge_default();
    let w = workload();
    let space = SearchSpace::for_workload(&w, &hw);
    let mut g = c.benchmark_group("search_30_candidates");
    g.sample_size(10);
    g.bench_function("grid", |b| {
        b.iter(|| {
            let mut m = CostModel::new(
                DataflowKind::MasAttention,
                w.clone(),
                hw.clone(),
                Objective::Latency,
            );
            GridSearch::with_cap(30).run(&space, &mut m).best_objective
        })
    });
    g.bench_function("random", |b| {
        b.iter(|| {
            let mut m = CostModel::new(
                DataflowKind::MasAttention,
                w.clone(),
                hw.clone(),
                Objective::Latency,
            );
            RandomSearch::new(30, 1).run(&space, &mut m).best_objective
        })
    });
    g.bench_function("mcts", |b| {
        b.iter(|| {
            let mut m = CostModel::new(
                DataflowKind::MasAttention,
                w.clone(),
                hw.clone(),
                Objective::Latency,
            );
            MctsSearch::new(30, 1).run(&space, &mut m).best_objective
        })
    });
    g.finish();
}

fn bench_autotune(c: &mut Criterion) {
    let hw = HardwareConfig::edge_default();
    let w = workload();
    let mut g = c.benchmark_group("autotune_quick");
    g.sample_size(10);
    for objective in [Objective::Latency, Objective::Energy] {
        let cfg = TunerConfig {
            objective,
            ..TunerConfig::quick()
        };
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{objective:?}")),
            &cfg,
            |b, cfg| {
                b.iter(|| {
                    AutoTuner::new(*cfg, 3)
                        .tune(DataflowKind::MasAttention, &w, &hw)
                        .unwrap()
                        .best_cost
                        .cycles
                })
            },
        );
    }
    g.finish();
}

/// Wall-clock comparison of the rayon-parallel candidate-batch evaluation
/// against the serial path, on the `quick()` tuner budget. Both paths run
/// the identical search (bit-identical results); only the batch execution
/// strategy differs, so the ratio isolates the parallel speedup.
fn bench_autotune_parallel_vs_serial(c: &mut Criterion) {
    let hw = HardwareConfig::edge_default();
    let w = workload();
    let mut g = c.benchmark_group("autotune_quick_batching");
    g.sample_size(10);
    for (label, cfg) in [
        ("parallel", TunerConfig::quick()),
        ("serial", TunerConfig::quick().serial()),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &cfg, |b, cfg| {
            b.iter(|| {
                AutoTuner::new(*cfg, 3)
                    .tune(DataflowKind::MasAttention, &w, &hw)
                    .unwrap()
                    .best_cost
                    .cycles
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_search_algorithms,
    bench_autotune,
    bench_autotune_parallel_vs_serial
);
criterion_main!(benches);
