//! Bench smoke for cross-session KV prefix sharing, pinned by assertions
//! so a regression fails the CI bench smoke: on a shared-system-prompt
//! trace (every session's prompt starts with the same 64-token system
//! prompt), charging the shared prefix blocks once per group must admit
//! ≥ 2× the sessions of fully private paged charging under the same KV
//! budget, with zero pool overflows and the peak charge within budget.
//!
//! The shape mirrors an edge chat deployment: GQA 32q/8kv heads, 128-wide
//! heads, f16 KV storage, 16-token blocks. Each session privately holds
//! only its prompt tail + decode tail (1 block), while the 4 system-prompt
//! blocks are resident once group-wide — so the expected win is ~5×, well
//! clear of the 2× assertion.

use criterion::{criterion_group, criterion_main, Criterion};
use mas_serve::{DecodePolicy, DecodeRuntime, KvDtype};
use mas_sim::HardwareConfig;
use mas_workloads::{DecodeSessionSpec, DecodeStepEvent, DecodeTrace, Network};

const HEADS: usize = 32;
const KV_HEADS: usize = 8;
const EMBED: usize = 128;
const BLOCK_TOKENS: usize = 16;
const SYSTEM_PROMPT: usize = 64; // 4 whole blocks
const PROMPT: usize = 72; // system prompt + 8 private tokens
const STEPS: usize = 8; // max context 80 tokens = 5 blocks

/// `sessions` chat sessions sharing one system prompt, each replaying
/// `STEPS` decode steps in lockstep.
fn shared_prompt_trace(sessions: u64) -> DecodeTrace {
    let specs: Vec<DecodeSessionSpec> = (0..sessions)
        .map(|id| DecodeSessionSpec {
            id,
            network: Network::Llama3_8B,
            start_s: 0.0,
            heads: HEADS,
            kv_heads: KV_HEADS,
            embed: EMBED,
            prompt_len: PROMPT,
            steps: STEPS,
            prefix_group: Some(1),
            shared_prefix_len: SYSTEM_PROMPT,
        })
        .collect();
    let mut steps = Vec::new();
    for step_index in 0..STEPS {
        for id in 0..sessions {
            steps.push(DecodeStepEvent {
                session_id: id,
                step_index,
                arrival_s: step_index as f64 * 0.01 + 1e-9,
            });
        }
    }
    DecodeTrace {
        sessions: specs,
        steps,
    }
}

/// Replays the shared-system-prompt trace with prefix sharing off and on
/// at the same 1 GiB budget and pins the sessions-per-GiB win.
fn pin_shared_prefix_sessions_per_gb(_c: &mut Criterion) {
    let hw = HardwareConfig::edge_default();
    let budget: u64 = 1 << 30; // 1 GiB of KV

    // More offered sessions than even the sharing run can hold, so both
    // runs are budget-limited and the ratio is meaningful.
    let trace = shared_prompt_trace(16384);

    let run = |prefix_share: bool| {
        let policy = DecodePolicy {
            kv_budget_bytes: Some(budget),
            kv_block_tokens: Some(BLOCK_TOKENS),
            kv_dtype: Some(KvDtype::F16),
            prefix_share,
            ..DecodePolicy::default()
        };
        DecodeRuntime::new(hw.clone(), policy).run_trace(&trace)
    };
    let private = run(false);
    let shared = run(true);

    let gib = budget as f64 / f64::from(1u32 << 30);
    println!(
        "\nsessions per GiB of KV budget, {SYSTEM_PROMPT}-token shared system prompt \
         (GQA {HEADS}q/{KV_HEADS}kv, E={EMBED}, f16 KV, block {BLOCK_TOKENS}):"
    );
    println!("| charging | sessions admitted | sessions/GiB | peak KV MB | shared peak MB | pool overflows |");
    println!("|---|---|---|---|---|---|");
    for (name, r) in [("private paged", &private), ("prefix-shared", &shared)] {
        println!(
            "| {name} | {} | {:.0} | {:.1} | {:.1} | {} |",
            r.sessions_admitted,
            r.sessions_admitted as f64 / gib,
            r.kv_peak_bytes as f64 / 1e6,
            r.kv_shared_peak_bytes as f64 / 1e6,
            r.pool_overflows(),
        );
    }

    for (name, r) in [("private", &private), ("shared", &shared)] {
        assert!(
            r.kv_peak_bytes <= budget,
            "{name} run violated the KV budget: {} > {budget}",
            r.kv_peak_bytes
        );
        assert_eq!(r.pool_overflows(), 0, "{name} run must not overflow");
    }
    assert_eq!(private.shared_sessions, 0);
    assert_eq!(shared.shared_sessions, shared.sessions_admitted);
    assert!(shared.kv_shared_peak_bytes > 0);
    let ratio = shared.sessions_admitted as f64 / private.sessions_admitted.max(1) as f64;
    assert!(
        ratio >= 2.0,
        "prefix sharing must admit >= 2x the sessions of private paged \
         charging on a shared-system-prompt trace: {} vs {} ({ratio:.2}x)",
        shared.sessions_admitted,
        private.sessions_admitted
    );
}

criterion_group!(benches, pin_shared_prefix_sessions_per_gb);
criterion_main!(benches);
