//! Criterion benchmarks of the event-driven simulator itself: how fast one
//! candidate (schedule build + simulation) can be evaluated, which bounds the
//! throughput of the tiling search.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mas_dataflow::{build_dataflow, AttentionWorkload, DataflowKind, Tiling};
use mas_sim::{EnergyModel, Executor, HardwareConfig};

fn bench_build_and_simulate(c: &mut Criterion) {
    let hw = HardwareConfig::edge_default();
    let exec = Executor::new(hw.clone(), EnergyModel::edge_16nm()).without_trace();
    let w = AttentionWorkload::new("BERT-Base", 1, 12, 512, 64);
    let t = Tiling::heuristic(&w, &hw);
    let mut g = c.benchmark_group("simulate_bert_base");
    g.sample_size(20);
    for kind in [
        DataflowKind::Flat,
        DataflowKind::MasAttention,
        DataflowKind::LayerWise,
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let s = build_dataflow(kind, &w, &t, &hw).unwrap();
                    exec.run(s.graph()).unwrap().total_cycles
                })
            },
        );
    }
    g.finish();
}

fn bench_graph_scaling(c: &mut Criterion) {
    let hw = HardwareConfig::edge_default();
    let exec = Executor::new(hw.clone(), EnergyModel::edge_16nm()).without_trace();
    let mut g = c.benchmark_group("simulate_scaling_heads");
    g.sample_size(15);
    for heads in [4usize, 16, 32] {
        let w = AttentionWorkload::new("scale", 1, heads, 512, 64);
        let t = Tiling::heuristic(&w, &hw);
        g.bench_with_input(BenchmarkId::from_parameter(heads), &heads, |b, _| {
            b.iter(|| {
                let s = build_dataflow(DataflowKind::MasAttention, &w, &t, &hw).unwrap();
                exec.run(s.graph()).unwrap().total_cycles
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_build_and_simulate, bench_graph_scaling);
criterion_main!(benches);
