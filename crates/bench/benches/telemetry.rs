//! Telemetry overhead and fidelity on the mixed contention trace.
//!
//! The observability acceptance criterion is pinned from both ends
//! (mirroring the module-docs overhead contract in `mas_serve::telemetry`):
//!
//! * **End-to-end ≤ 5%** — a cold `serve_mixed` replay (engine
//!   construction, planning, replay: the serving cost a user actually
//!   pays) with recording on stays within 5% of recording off.
//! * **Marginal per-event bound** — on a warm engine, where the schedule
//!   cache removes all planning and the pure replay loop is the whole
//!   measurement, the *absolute* recording cost stays under a per-event
//!   nanosecond budget. A ratio would be meaningless here (the baseline is
//!   a few tens of microseconds), but the absolute bound catches a bloated
//!   event or a lost `reserve` immediately.
//!
//! The recorded run is also checked for fidelity: the event-reconstructed
//! report must equal the engine report exactly and the Chrome trace export
//! must validate.

use criterion::{criterion_group, criterion_main, Criterion};
use mas_dataflow::DataflowKind;
use mas_serve::{
    validate_chrome_trace, EngineConfig, SchedulePolicy, ServeEngine, ServeRequest, TelemetryConfig,
};
use mas_workloads::{DecodeSessionSpec, DecodeStepEvent, DecodeTrace, Network};

/// The deterministic contention scenario (mirrors `benches/serve_mixed.rs`):
/// 12 lockstep long-context decode sessions and 6-request prefill bursts
/// contending for one device at every tick.
fn contention_scenario() -> (Vec<ServeRequest>, DecodeTrace) {
    let sessions = 12u64;
    let steps = 30usize;
    let specs: Vec<DecodeSessionSpec> = (0..sessions)
        .map(|id| DecodeSessionSpec {
            id,
            network: Network::BertSmall,
            start_s: 0.0,
            heads: 8,
            kv_heads: 8,
            embed: 64,
            prompt_len: 2000,
            steps,
            prefix_group: None,
            shared_prefix_len: 0,
        })
        .collect();
    let mut events = Vec::new();
    for step_index in 0..steps {
        for id in 0..sessions {
            events.push(DecodeStepEvent {
                session_id: id,
                step_index,
                arrival_s: step_index as f64 * 0.01 + 1e-9,
            });
        }
    }
    let decode = DecodeTrace {
        sessions: specs,
        steps: events,
    };
    let workload = Network::BertSmall.attention_workload(1);
    let mut prefill = Vec::new();
    for k in 0..29usize {
        for j in 0..6usize {
            prefill.push(ServeRequest::new(
                (k * 6 + j) as u64,
                0.001 + k as f64 * 0.01,
                DataflowKind::MasAttention,
                workload.clone(),
                None,
            ));
        }
    }
    (prefill, decode)
}

fn engine(telemetry: Option<TelemetryConfig>) -> ServeEngine {
    ServeEngine::new(EngineConfig {
        policy: SchedulePolicy::FairShare,
        telemetry,
        ..EngineConfig::default()
    })
}

/// Fidelity of one recorded run: the event log alone must rebuild the
/// engine report bit-for-bit, conserve every arrival, keep each track
/// monotone, and export a valid Chrome trace. Returns the event count.
fn check_fidelity(prefill: &[ServeRequest], decode: &DecodeTrace) -> usize {
    let mut on = engine(Some(TelemetryConfig::default()));
    let report = on.run(prefill, decode).expect("recorded replay");
    let baseline = engine(None).run(prefill, decode).expect("plain replay");
    assert_eq!(baseline, report, "recording must not perturb results");

    let telemetry = on.telemetry().expect("recording enabled");
    let rebuilt = telemetry.report().expect("complete event log");
    assert_eq!(
        rebuilt, report,
        "event-reconstructed report must equal the engine report exactly"
    );
    telemetry.conservation_check().expect("conserved");
    telemetry.tracks_monotone().expect("monotone");
    validate_chrome_trace(&telemetry.chrome_trace_json()).expect("valid Chrome trace");
    telemetry.events().len()
}

/// Interleaved min-of-N measurement of both overhead bounds. Min-of-N is
/// robust to scheduler noise: the minimum is the intrinsic cost, which is
/// what the contract bounds.
fn pin_telemetry_overhead(_c: &mut Criterion) {
    let (prefill, decode) = contention_scenario();
    let events = check_fidelity(&prefill, &decode);

    // End-to-end bound: cold engine per round (construction + planning +
    // replay — what `serve_trace --trace-out` pays on a fresh process).
    // Adaptive round count: each ~3 ms planning round sees ~10% scheduler
    // jitter on a shared CI runner, and both minima only tighten with more
    // rounds — so keep interleaving until the ratio is comfortably inside
    // budget (or the cap is hit, at which point the overhead is real).
    const COLD_MIN_ROUNDS: usize = 12;
    const COLD_MAX_ROUNDS: usize = 96;
    let mut cold_off = f64::INFINITY;
    let mut cold_on = f64::INFINITY;
    let mut cold_overhead = f64::INFINITY;
    for round in 0..COLD_MAX_ROUNDS {
        let t = std::time::Instant::now();
        engine(None).run(&prefill, &decode).expect("plain replay");
        cold_off = cold_off.min(t.elapsed().as_secs_f64());
        let t = std::time::Instant::now();
        engine(Some(TelemetryConfig::default()))
            .run(&prefill, &decode)
            .expect("recorded replay");
        cold_on = cold_on.min(t.elapsed().as_secs_f64());
        cold_overhead = cold_on / cold_off - 1.0;
        if round + 1 >= COLD_MIN_ROUNDS && cold_overhead <= 0.03 {
            break;
        }
    }

    // Marginal bound: warm engines, pure replay loop, absolute ns/event.
    const WARM_ROUNDS: usize = 40;
    let mut off = engine(None);
    let mut on = engine(Some(TelemetryConfig::default()));
    off.run(&prefill, &decode).expect("prime");
    on.run(&prefill, &decode).expect("prime");
    let mut warm_off = f64::INFINITY;
    let mut warm_on = f64::INFINITY;
    for _ in 0..WARM_ROUNDS {
        let t = std::time::Instant::now();
        off.run(&prefill, &decode).expect("plain replay");
        warm_off = warm_off.min(t.elapsed().as_secs_f64());
        let t = std::time::Instant::now();
        on.run(&prefill, &decode).expect("recorded replay");
        warm_on = warm_on.min(t.elapsed().as_secs_f64());
    }
    let ns_per_event = (warm_on - warm_off).max(0.0) * 1e9 / events as f64;

    println!(
        "\ntelemetry overhead on the mixed contention trace ({events} events/run):\n\
         | measurement | off | on | overhead |\n|---|---|---|---|\n\
         | cold end-to-end | {:.3} ms | {:.3} ms | {:+.1}% |\n\
         | warm pure replay | {:.3} ms | {:.3} ms | {:.1} ns/event |",
        cold_off * 1e3,
        cold_on * 1e3,
        cold_overhead * 100.0,
        warm_off * 1e3,
        warm_on * 1e3,
        ns_per_event,
    );
    assert!(
        cold_overhead <= 0.05,
        "end-to-end recording overhead {:.1}% exceeds the 5% budget \
         (off {:.3} ms, on {:.3} ms)",
        cold_overhead * 100.0,
        cold_off * 1e3,
        cold_on * 1e3,
    );
    // ~14 ns/event measured; 60 allows CI-runner noise while still
    // catching a bloated event or a lost buffer reservation (4x).
    assert!(
        ns_per_event <= 60.0,
        "marginal recording cost {ns_per_event:.1} ns/event exceeds the 60 ns budget \
         (warm off {:.3} ms, on {:.3} ms)",
        warm_off * 1e3,
        warm_on * 1e3,
    );
}

/// Criterion visibility of the recorded replay's wall-clock (the pin above
/// is the gate; this group gives the usual statistical view).
fn bench_recorded_replay(c: &mut Criterion) {
    let (prefill, decode) = contention_scenario();
    let mut g = c.benchmark_group("telemetry");
    g.sample_size(10);
    for (name, telemetry) in [
        ("replay_plain", None),
        ("replay_recorded", Some(TelemetryConfig::default())),
    ] {
        let mut eng = engine(telemetry);
        eng.run(&prefill, &decode).expect("prime");
        g.bench_function(name, |b| {
            b.iter(|| eng.run(&prefill, &decode).expect("replay"))
        });
    }
    g.finish();
}

criterion_group!(benches, pin_telemetry_overhead, bench_recorded_replay);
criterion_main!(benches);
