//! Scalar-vs-dispatched throughput of the explicit SIMD kernels.
//!
//! `mas_tensor::simd` promises that the runtime-dispatched backend is
//! bit-identical to the scalar 8-lane reference — this bench pins the other
//! half of the contract: that dispatch actually pays. It times the scalar
//! reference (`simd::scalar`) against the dispatched entry points on a
//! dot-dominated attention score pass (one query row against a key matrix,
//! the shape `matmul_nt` feeds `dot_many`) plus the axpy accumulation and
//! softmax row passes, prints the selected backend and the speedups, and
//! asserts the dispatched path is never slower than scalar. With a SIMD
//! backend selected (AVX2/NEON) the score pass is expected well above the
//! bar — the batched `dot_many` hides the add-latency chain that caps a
//! single vectorized dot.

use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mas_tensor::simd;

/// Keys × embed of the score pass: a decode-like dot-dominated shape.
const KEYS: usize = 2048;
const EMBED: usize = 64;

fn filled(len: usize, seed: u32) -> Vec<f32> {
    // Small deterministic LCG; values in (-1, 1).
    let mut state = seed.wrapping_mul(2654435761).max(1);
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            (state >> 8) as f32 / (1u32 << 23) as f32 - 1.0
        })
        .collect()
}

/// Times `f` with a short warmup, returning the mean duration per call.
fn time_per_call<F: FnMut()>(mut f: F) -> Duration {
    let warmup = Instant::now();
    let mut warm_iters: u32 = 0;
    while warmup.elapsed() < Duration::from_millis(50) || warm_iters == 0 {
        f();
        warm_iters += 1;
    }
    let per_iter = warmup.elapsed() / warm_iters;
    let iters = (Duration::from_millis(300).as_nanos() / per_iter.as_nanos().max(1))
        .clamp(1, 10_000_000) as u32;
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed() / iters
}

fn bench_kernels(c: &mut Criterion) {
    let q = filled(EMBED, 7);
    let keys = filled(KEYS * EMBED, 11);
    let mut scores = vec![0.0f32; KEYS];
    let mut g = c.benchmark_group("simd_kernels");
    g.bench_function("score_pass_dispatched", |b| {
        b.iter(|| simd::dot_many(black_box(&q), black_box(&keys), &mut scores))
    });
    g.bench_function("score_pass_scalar", |b| {
        b.iter(|| {
            for (i, s) in scores.iter_mut().enumerate() {
                *s = simd::scalar::dot(black_box(&q), &keys[i * EMBED..(i + 1) * EMBED]);
            }
        })
    });
    g.finish();
}

/// Prints the selected backend and the scalar-vs-dispatched speedup per
/// kernel, asserting the dispatched path never loses to the reference.
fn pin_dispatch_speedup(_c: &mut Criterion) {
    let backend = simd::backend();
    let q = filled(EMBED, 7);
    let keys = filled(KEYS * EMBED, 11);
    let row = filled(KEYS, 13);
    let mut scores = vec![0.0f32; KEYS];
    let mut acc = vec![0.0f32; KEYS];

    let dispatched_score = time_per_call(|| {
        simd::dot_many(black_box(&q), black_box(&keys), &mut scores);
    });
    let scalar_score = time_per_call(|| {
        for (i, s) in scores.iter_mut().enumerate() {
            *s = simd::scalar::dot(black_box(&q), &keys[i * EMBED..(i + 1) * EMBED]);
        }
    });
    let dispatched_axpy = time_per_call(|| {
        simd::axpy(black_box(0.5), black_box(&row), &mut acc);
    });
    let scalar_axpy = time_per_call(|| {
        simd::scalar::axpy(black_box(0.5), black_box(&row), &mut acc);
    });
    let dispatched_softmax = time_per_call(|| {
        let m = simd::slice_max(black_box(&row));
        for (d, &x) in scores.iter_mut().zip(&row) {
            *d = (x - m).exp();
        }
        let denom = simd::sum8(&scores);
        simd::scale(1.0 / denom, &mut scores);
    });
    let scalar_softmax = time_per_call(|| {
        let m = simd::scalar::slice_max(black_box(&row));
        for (d, &x) in scores.iter_mut().zip(&row) {
            *d = (x - m).exp();
        }
        let denom = simd::scalar::sum8(&scores);
        simd::scalar::scale(1.0 / denom, &mut scores);
    });

    println!("\nsimd kernel throughput, backend `{backend}` ({KEYS} keys x {EMBED} embed):");
    println!("| kernel | scalar | dispatched | speedup |");
    println!("|---|---|---|---|");
    let rows = [
        ("score pass (dot_many)", scalar_score, dispatched_score),
        ("axpy", scalar_axpy, dispatched_axpy),
        ("softmax row passes", scalar_softmax, dispatched_softmax),
    ];
    for (name, s, d) in rows {
        println!(
            "| {name} | {:.2} µs | {:.2} µs | {:.2}x |",
            s.as_secs_f64() * 1e6,
            d.as_secs_f64() * 1e6,
            s.as_secs_f64() / d.as_secs_f64(),
        );
    }

    // With a SIMD backend the dot-dominated score pass must win outright —
    // it is the kernel dispatch exists for. Axpy and the softmax row passes
    // are memory-bound at this row length (and the exp loop is identical
    // scalar code on both sides), so they are parity kernels kept for
    // bit-compatibility: their bar only guards against a real regression
    // hiding under timing jitter. Under forced-scalar dispatch both sides
    // run the same code everywhere and every bar is a noise guard.
    let strict = if backend == "scalar" { 0.85 } else { 1.0 };
    let parity = 0.85;
    let bars = [
        (
            "score pass (dot_many)",
            scalar_score,
            dispatched_score,
            strict,
        ),
        ("axpy", scalar_axpy, dispatched_axpy, parity),
        (
            "softmax row passes",
            scalar_softmax,
            dispatched_softmax,
            parity,
        ),
    ];
    for (name, s, d, bar) in bars {
        let speedup = s.as_secs_f64() / d.as_secs_f64();
        assert!(
            speedup >= bar,
            "dispatched {name} must not lose to the scalar reference on \
             backend {backend}: {speedup:.2}x (bar {bar})"
        );
    }
}

criterion_group!(benches, bench_kernels, pin_dispatch_speedup);
criterion_main!(benches);
