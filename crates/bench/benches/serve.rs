//! Benchmarks of the `mas-serve` streaming runtime.
//!
//! The headline measurement backs the schedule-cache acceptance criterion:
//! on a replayed 200-request trace over three Table 1 networks, steady-state
//! request handling with a warm [`ScheduleCache`] must be ≥ 10× faster than
//! planning every batch from scratch (a cache hit replays the memoized
//! tiling + simulation instead of re-planning). `cold_plan_every_batch`
//! clears the cache each iteration; `warm_cache_replay` reuses it.
//!
//! [`ScheduleCache`]: mas_serve::ScheduleCache

use criterion::{criterion_group, criterion_main, Criterion};
use mas_dataflow::DataflowKind;
use mas_serve::{ScheduleCache, ServeConfig, ServeRequest, ServeRuntime};
use mas_workloads::{request_trace, Network, TraceConfig};

fn trace_200() -> Vec<ServeRequest> {
    let trace = request_trace(&TraceConfig::poisson(
        vec![Network::BertSmall, Network::VitB16, Network::T5Mini],
        200,
        2000.0,
        42,
    ));
    ServeRequest::stream_from_trace(&trace, DataflowKind::MasAttention, Some(0.05))
}

fn bench_serve_trace(c: &mut Criterion) {
    let requests = trace_200();
    let mut g = c.benchmark_group("serve_200req_3nets");
    g.sample_size(10);

    // Cold: every iteration starts with an empty cache, so every batch key
    // plans (tiling + simulation) from scratch.
    g.bench_function("cold_plan_every_batch", |b| {
        b.iter(|| {
            let mut rt = ServeRuntime::new(ServeConfig::default());
            rt.run_trace(&requests).unwrap()
        })
    });

    // Warm: one runtime keeps its cache across iterations; after the first,
    // every batch key is a hit and replay skips planning entirely.
    let mut warm_rt = ServeRuntime::new(ServeConfig::default());
    warm_rt.run_trace(&requests).unwrap(); // prime
    g.bench_function("warm_cache_replay", |b| {
        b.iter(|| warm_rt.run_trace(&requests).unwrap())
    });
    g.finish();
}

fn bench_cache_ops(c: &mut Criterion) {
    // Build a realistic cache once (all six methods × three networks).
    let mut rt = ServeRuntime::new(ServeConfig::default());
    for method in DataflowKind::all() {
        let trace = request_trace(&TraceConfig::poisson(
            vec![Network::BertSmall, Network::VitB16, Network::T5Mini],
            30,
            2000.0,
            7,
        ));
        let stream = ServeRequest::stream_from_trace(&trace, method, None);
        rt.run_trace(&stream).unwrap();
    }
    let cache = rt.into_cache();
    let text = cache.to_text();

    let mut g = c.benchmark_group("schedule_cache");
    g.bench_function("serialize", |b| b.iter(|| cache.to_text()));
    g.bench_function("parse", |b| {
        b.iter(|| ScheduleCache::from_text(&text).unwrap())
    });
    g.bench_function("merge_self", |b| {
        b.iter(|| ScheduleCache::merged(cache.clone(), &cache))
    });
    g.finish();
}

criterion_group!(benches, bench_serve_trace, bench_cache_ops);
criterion_main!(benches);
