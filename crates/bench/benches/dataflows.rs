//! Criterion benchmarks comparing the simulated latency of the six dataflows
//! (the Table 2 experiment in benchmark form) and the schedule builders'
//! construction cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mas_attention::{Method, Planner};
use mas_dataflow::{build_dataflow, DataflowKind, Tiling};
use mas_sim::HardwareConfig;
use mas_workloads::Network;

fn bench_method_comparison(c: &mut Criterion) {
    let planner = Planner::edge_default();
    let w = Network::BertSmall.attention_workload(1);
    let mut g = c.benchmark_group("planner_run_bert_small");
    g.sample_size(15);
    for method in Method::all() {
        g.bench_with_input(
            BenchmarkId::from_parameter(method.name()),
            &method,
            |b, &m| b.iter(|| planner.run(m, &w).unwrap().report.total_cycles),
        );
    }
    g.finish();
}

fn bench_schedule_construction(c: &mut Criterion) {
    let hw = HardwareConfig::edge_default();
    let w = Network::BertBase.attention_workload(1);
    let t = Tiling::heuristic(&w, &hw);
    let mut g = c.benchmark_group("build_schedule_bert_base");
    g.sample_size(20);
    for kind in [
        DataflowKind::Flat,
        DataflowKind::MasAttention,
        DataflowKind::TileFlow,
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, &kind| b.iter(|| build_dataflow(kind, &w, &t, &hw).unwrap().graph().len()),
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_method_comparison,
    bench_schedule_construction
);
criterion_main!(benches);
