//! Regenerates Figure 6: per-network energy breakdown (DRAM, L1, L0, MAC PEs,
//! VEC PEs) for every method.

use mas_bench::{compare_all_networks, fmt_gpj, Options};
use mas_dataflow::DataflowKind;

fn main() {
    let opts = Options::from_args();
    let planner = opts.planner();
    println!("Figure 6: energy breakdown per network and method (10^9 pJ)");
    println!(
        "{:<28} {:<14} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "Network", "Method", "DRAM", "L1", "L0", "MAC PEs", "VEC PEs", "Total"
    );
    for (net, report) in compare_all_networks(&planner) {
        for method in DataflowKind::all() {
            let row = report.row(method).unwrap();
            let get = |name: &str| {
                row.energy_components
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|(_, v)| *v)
                    .unwrap_or(0.0)
            };
            println!(
                "{:<28} {:<14} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
                net.name(),
                method.name(),
                fmt_gpj(get("DRAM")),
                fmt_gpj(get("L1")),
                fmt_gpj(get("L0")),
                fmt_gpj(get("MAC PEs")),
                fmt_gpj(get("VEC PEs")),
                fmt_gpj(row.energy_pj)
            );
        }
    }
}
