//! Regenerates the paper's Table 2: execution cycles and MAS-Attention
//! speedups over every baseline, for all Table 1 networks, plus the
//! geometric-mean row.

use mas_attention::report::geomean_speedup;
use mas_attention::Method;
use mas_bench::{
    baseline_columns, compare_all_networks, fmt_mcycles, fmt_ratio, report_json, Options,
};

fn main() {
    let opts = Options::from_args();
    let planner = opts.planner();
    let results = compare_all_networks(&planner);

    println!("Table 2: cycles (10^6) and speedup of MAS-Attention vs. baselines");
    println!(
        "{:<28} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} | {:>8} {:>8} {:>8} {:>8} {:>8}",
        "Network",
        "LayerWise",
        "SoftPipe",
        "FLAT",
        "TileFlow",
        "FuseMax",
        "MAS",
        "vs LW",
        "vs SP",
        "vs FLAT",
        "vs TF",
        "vs FM"
    );
    for (net, report) in &results {
        let mas = report.cycles(Method::MasAttention).unwrap();
        let cols: Vec<String> = baseline_columns()
            .iter()
            .map(|m| fmt_mcycles(report.cycles(*m).unwrap()))
            .collect();
        let speedups: Vec<String> = baseline_columns()
            .iter()
            .map(|m| fmt_ratio(report.speedup(*m, Method::MasAttention).unwrap()))
            .collect();
        println!(
            "{:<28} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} | {:>8} {:>8} {:>8} {:>8} {:>8}",
            net.name(),
            cols[0],
            cols[1],
            cols[2],
            cols[3],
            cols[4],
            fmt_mcycles(mas),
            speedups[0],
            speedups[1],
            speedups[2],
            speedups[3],
            speedups[4]
        );
    }
    let reports: Vec<_> = results.iter().map(|(_, r)| r.clone()).collect();
    let geo: Vec<String> = baseline_columns()
        .iter()
        .map(|m| fmt_ratio(geomean_speedup(&reports, *m).unwrap()))
        .collect();
    println!(
        "{:<28} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} | {:>8} {:>8} {:>8} {:>8} {:>8}",
        "Geometric Mean", "-", "-", "-", "-", "-", "-", geo[0], geo[1], geo[2], geo[3], geo[4]
    );
    if opts.json {
        for (net, report) in &results {
            println!("{}", report_json(net.name(), report));
        }
    }
}
