//! Regenerates Figure 5: normalized execution time of Layer-Wise, Soft-Pipe,
//! FLAT and MAS-Attention on the DaVinci-like NPU model, per network, with
//! the geometric-mean speedups reported in §5.2.1.

use mas_bench::table1_workloads;
use mas_dataflow::DataflowKind;
use mas_npu::NpuModel;
use mas_sim::report::geometric_mean;

fn main() {
    let model = NpuModel::kirin990();
    println!("Figure 5: normalized execution time on the DaVinci-like NPU");
    println!(
        "{:<28} {:>11} {:>11} {:>11} {:>11} | {:>9} {:>9} {:>9}",
        "Network", "Layer-Wise", "Soft-Pipe", "FLAT", "MAS", "MAS/LW", "MAS/SP", "MAS/FLAT"
    );
    let mut speedups: Vec<(f64, f64, f64)> = Vec::new();
    for (net, w) in table1_workloads() {
        let rows = model.figure5_estimates(&w);
        let get = |k: DataflowKind| rows.iter().find(|(m, _, _)| *m == k).unwrap();
        let lw = get(DataflowKind::LayerWise);
        let sp = get(DataflowKind::SoftPipe);
        let flat = get(DataflowKind::Flat);
        let mas = get(DataflowKind::MasAttention);
        println!(
            "{:<28} {:>11.3} {:>11.3} {:>11.3} {:>11.3} | {:>8.2}x {:>8.2}x {:>8.2}x",
            net.name(),
            lw.2,
            sp.2,
            flat.2,
            mas.2,
            lw.1 / mas.1,
            sp.1 / mas.1,
            flat.1 / mas.1
        );
        speedups.push((lw.1 / mas.1, sp.1 / mas.1, flat.1 / mas.1));
    }
    let lw: Vec<f64> = speedups.iter().map(|s| s.0).collect();
    let sp: Vec<f64> = speedups.iter().map(|s| s.1).collect();
    let flat: Vec<f64> = speedups.iter().map(|s| s.2).collect();
    println!(
        "{:<28} {:>11} {:>11} {:>11} {:>11} | {:>8.2}x {:>8.2}x {:>8.2}x",
        "Geometric Mean",
        "-",
        "-",
        "-",
        "-",
        geometric_mean(&lw).unwrap(),
        geometric_mean(&sp).unwrap(),
        geometric_mean(&flat).unwrap()
    );
}
