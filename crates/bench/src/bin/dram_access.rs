//! Regenerates the §5.4 DRAM-access analysis: write parity between
//! MAS-Attention and FLAT, and the read ratio (MAS may exceed FLAT when the
//! proactive overwrite strategy reloads K/V tiles).

use mas_attention::Method;
use mas_bench::{compare_all_networks, Options};

fn main() {
    let opts = Options::from_args();
    let planner = opts.planner();
    println!("Section 5.4: DRAM accesses, MAS-Attention vs FLAT");
    println!(
        "{:<28} {:>14} {:>14} {:>10} {:>14} {:>14} {:>10} {:>12}",
        "Network",
        "FLAT reads",
        "MAS reads",
        "ratio",
        "FLAT writes",
        "MAS writes",
        "ratio",
        "overwrites"
    );
    for (net, report) in compare_all_networks(&planner) {
        let flat = report.row(Method::Flat).unwrap();
        let mas = report.row(Method::MasAttention).unwrap();
        println!(
            "{:<28} {:>14} {:>14} {:>9.2}x {:>14} {:>14} {:>9.2}x {:>12}",
            net.name(),
            flat.dram_read_bytes,
            mas.dram_read_bytes,
            mas.dram_read_bytes as f64 / flat.dram_read_bytes as f64,
            flat.dram_write_bytes,
            mas.dram_write_bytes,
            mas.dram_write_bytes as f64 / flat.dram_write_bytes as f64,
            mas.overwrite_events
        );
    }
}
