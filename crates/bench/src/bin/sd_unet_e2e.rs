//! Regenerates the §5.2.2 end-to-end experiment: MAS-Attention inside a
//! reduced Stable Diffusion 1.5 UNet on the DaVinci-like NPU, reporting the
//! runtime reduction on the largest attention unit and end-to-end.

use mas_dataflow::DataflowKind;
use mas_npu::e2e::{sd_unet_report, E2eConfig};
use mas_npu::NpuModel;
use mas_workloads::sdunet::{largest_unit, sd15_reduced_unet};

fn main() {
    let model = NpuModel::kirin990();
    let units = sd15_reduced_unet(1);
    println!("SD-1.5 reduced UNet: {} attention units", units.len());
    let largest = largest_unit(&units).unwrap();
    println!(
        "largest unit: {} (H={}, N={}, E={})",
        largest.name, largest.workload.heads, largest.workload.seq_len, largest.workload.embed
    );
    for kind in [DataflowKind::Flat, DataflowKind::MasAttention] {
        let report = sd_unet_report(&model, &units, kind, E2eConfig::default());
        println!(
            "{:<14} largest-unit runtime reduction vs Layer-Wise: {:>6.1}% | end-to-end reduction: {:>5.1}%",
            kind.name(),
            report.largest_unit_reduction * 100.0,
            report.end_to_end_reduction * 100.0
        );
    }
    println!("(paper: 29.4% on the largest unit, 6% end-to-end, MAS-Attention vs Layer-Wise)");
}
