//! Regenerates the §5.6 limitation analysis: the maximum sequence length each
//! method supports in FP16 within the 5 MB shared L1 of the simulated edge
//! device.

use mas_dataflow::max_seqlen::max_seq_len_all;
use mas_sim::HardwareConfig;

fn main() {
    let hw = HardwareConfig::edge_default();
    println!(
        "Section 5.6: maximum sequence length (FP16, E=64, {} MB L1)",
        hw.l1_bytes / (1024 * 1024)
    );
    for r in max_seq_len_all(64, &hw, 1 << 23) {
        println!(
            "{:<16} max N = {:>9} tokens (working set {:>9} bytes)",
            r.kind.name(),
            r.max_seq_len,
            r.footprint_bytes
        );
    }
    println!("(paper: MAS-Attention ~1M tokens, FLAT ~2M tokens)");
}
