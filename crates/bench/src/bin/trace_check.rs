//! Validates Chrome trace-event JSON files emitted by `serve_trace
//! --trace-out` (or any other exporter of the same format).
//!
//! ```text
//! trace_check FILE [FILE]...
//! ```
//!
//! For each file, the JSON is parsed (no external parser: the validator in
//! `mas_serve::telemetry` is self-contained) and the trace is checked
//! structurally: every event object carries the required fields for its
//! phase, and complete-span (`"X"`) events never overlap on one
//! `(pid, tid)` thread row — each row is a serial queue. The invariant is
//! deliberately per *row*, not per device: under the overlap executor
//! (`serve_trace --tracks`) one device exports its scalar dispatch row
//! plus one row per DMA-in/MAC/VEC/writeback track, and spans on
//! different rows of one device overlap by design. Prints per-file
//! span/counter/instant counts; exits non-zero on the first invalid file
//! so CI can gate on it.

use mas_serve::validate_chrome_trace;

fn main() {
    let files: Vec<String> = std::env::args().skip(1).collect();
    if files.is_empty() {
        eprintln!("usage: trace_check FILE [FILE]...");
        std::process::exit(2);
    }
    let mut failed = false;
    for path in &files {
        let json = match std::fs::read_to_string(path) {
            Ok(json) => json,
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                failed = true;
                continue;
            }
        };
        match validate_chrome_trace(&json) {
            Ok(stats) => println!(
                "{path}: ok ({} events: {} spans on {} tracks, {} counter samples, {} instants)",
                stats.total_events, stats.spans, stats.span_tracks, stats.counters, stats.instants
            ),
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
