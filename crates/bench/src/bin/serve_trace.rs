//! Replays a generated request trace through the `mas-serve` streaming
//! runtime and reports per-network and aggregate serving metrics.
//!
//! ```text
//! serve_trace [--requests N] [--rate RPS] [--seed S] [--burst LEN]
//!             [--deadline-ms MS] [--devices N] [--search] [--serial]
//!             [--mixed] [--sessions N] [--session-rate RPS]
//!             [--policy decode|prefill|fair] [--kv-dtype f32|f16]
//!             [--prefix-share] [--chunked-prefill TOKENS]
//!             [--preempt hold|recompute] [--tracks]
//!             [--load-cache PATH]... [--save-cache PATH] [--json]
//!             [--trace-out PATH] [--metrics-out PATH]
//! ```
//!
//! `--load-cache` may repeat: the caches merge (commutatively) before the
//! replay, which is how sharded tuning sweeps combine. `--save-cache`
//! persists the post-replay cache for the next shard or process.
//!
//! `--trace-out` / `--metrics-out` enable structured telemetry recording
//! (`mas_serve::telemetry`) and export the replay as Chrome trace-event
//! JSON (open in Perfetto / `chrome://tracing`) and a Prometheus text
//! snapshot respectively. The Chrome trace is validated before writing.
//!
//! `--mixed` interleaves `--sessions` autoregressive decode sessions with
//! the prefill trace and replays both classes through the unified
//! `ServeEngine` on one device timeline (`--policy` selects the
//! iteration-level scheduling policy), reporting per-class latency plus the
//! shared-budget peak.
//!
//! `--prefix-share` (with `--mixed`) prepends a 64-token shared system
//! prompt to every session of a network and enables cross-session KV
//! prefix sharing: the shared prefix blocks are charged against the budget
//! once per group, and the report's decode detail shows the sharing peak.
//!
//! `--chunked-prefill TOKENS` (with `--mixed`) lowers long prefill batches
//! into chains of TOKENS-sized chunk launches, and `--preempt` enables
//! iteration-level preemption (`hold` keeps an evicted session's KV
//! swap-resident, `recompute` re-prices it on resume); together they bound
//! decode tail latency under prefill overload, with preemption counters in
//! the `--json` report.
//!
//! `--tracks` (with `--mixed`) enables the overlap-aware track executor:
//! each launch lowers into per-stage DMA-in/MAC/VEC/writeback demands
//! flow-shop scheduled on four per-device queues, committing the overlapped
//! placement whenever it strictly beats the scalar span. With `--trace-out`
//! the Chrome trace gains one thread row per track, with overlap-committed
//! launches' stage spans on those rows; `trace_check` validates each row
//! individually.

use mas_attention::planner::{PlannerConfig, TilingStrategy};
use mas_dataflow::DataflowKind;
use mas_search::tuner::TunerConfig;
use mas_serve::{
    validate_chrome_trace, ChunkPolicy, EngineConfig, KvDtype, PreemptMode, ScheduleCache,
    SchedulePolicy, ServeConfig, ServeEngine, ServeReport, ServeRequest, ServeRuntime, Telemetry,
    TelemetryConfig, TrackConfig,
};
use mas_workloads::{
    decode_trace, request_trace, DecodeTraceConfig, Network, TraceConfig, MIXED_DECODE_SEED_SALT,
};

struct Args {
    requests: usize,
    rate_rps: f64,
    seed: u64,
    burst: Option<usize>,
    deadline_ms: Option<f64>,
    devices: usize,
    search: bool,
    serial: bool,
    mixed: bool,
    sessions: usize,
    session_rate_rps: f64,
    policy: SchedulePolicy,
    kv_dtype: Option<KvDtype>,
    prefix_share: bool,
    chunked_prefill: Option<usize>,
    preempt: Option<PreemptMode>,
    tracks: bool,
    load_caches: Vec<String>,
    save_cache: Option<String>,
    json: bool,
    trace_out: Option<String>,
    metrics_out: Option<String>,
}

impl Args {
    /// Telemetry recording is enabled exactly when an exporter needs it.
    fn telemetry(&self) -> Option<TelemetryConfig> {
        (self.trace_out.is_some() || self.metrics_out.is_some()).then(TelemetryConfig::default)
    }
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().collect();
    let value = |flag: &str| -> Option<String> {
        argv.iter().position(|a| a == flag).map(|i| {
            argv.get(i + 1)
                .filter(|v| !v.starts_with("--"))
                .unwrap_or_else(|| panic!("{flag} requires a value"))
                .clone()
        })
    };
    // A present-but-unparseable value is an error, never a silent default:
    // this binary's output is recorded as experiment evidence.
    fn parsed<T: std::str::FromStr>(flag: &str, v: Option<String>) -> Option<T> {
        v.map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("{flag}: cannot parse {v:?}"))
        })
    }
    let values = |flag: &str| -> Vec<String> {
        argv.iter()
            .enumerate()
            .filter(|(_, a)| a.as_str() == flag)
            .map(|(i, _)| {
                argv.get(i + 1)
                    .filter(|v| !v.starts_with("--"))
                    .unwrap_or_else(|| panic!("{flag} requires a value"))
                    .clone()
            })
            .collect()
    };
    Args {
        requests: parsed("--requests", value("--requests")).unwrap_or(200),
        rate_rps: parsed("--rate", value("--rate")).unwrap_or(2000.0),
        seed: parsed("--seed", value("--seed")).unwrap_or(42),
        burst: parsed("--burst", value("--burst")),
        deadline_ms: parsed("--deadline-ms", value("--deadline-ms")),
        devices: parsed("--devices", value("--devices")).unwrap_or(1),
        search: argv.iter().any(|a| a == "--search"),
        serial: argv.iter().any(|a| a == "--serial"),
        mixed: argv.iter().any(|a| a == "--mixed"),
        sessions: parsed("--sessions", value("--sessions")).unwrap_or(16),
        session_rate_rps: parsed("--session-rate", value("--session-rate")).unwrap_or(200.0),
        policy: match value("--policy").as_deref() {
            None | Some("fair") => SchedulePolicy::FairShare,
            Some("decode") => SchedulePolicy::DecodePriority,
            Some("prefill") => SchedulePolicy::PrefillPriority,
            Some(other) => panic!("--policy: expected decode|prefill|fair, got {other:?}"),
        },
        kv_dtype: value("--kv-dtype").map(|v| {
            KvDtype::parse(&v).unwrap_or_else(|| panic!("--kv-dtype: expected f32|f16, got {v:?}"))
        }),
        prefix_share: argv.iter().any(|a| a == "--prefix-share"),
        chunked_prefill: parsed("--chunked-prefill", value("--chunked-prefill")),
        preempt: value("--preempt").map(|v| {
            v.parse()
                .unwrap_or_else(|e: String| panic!("--preempt: {e}"))
        }),
        tracks: argv.iter().any(|a| a == "--tracks"),
        load_caches: values("--load-cache"),
        save_cache: value("--save-cache"),
        json: argv.iter().any(|a| a == "--json"),
        trace_out: value("--trace-out"),
        metrics_out: value("--metrics-out"),
    }
}

/// Writes the requested telemetry exports. The Chrome trace is validated
/// (well-formed JSON, no overlapping spans per thread row) before it is
/// written — an invalid export is a bug, not an artifact.
fn export_telemetry(telemetry: Option<&Telemetry>, args: &Args) {
    if args.trace_out.is_none() && args.metrics_out.is_none() {
        return;
    }
    let telemetry = telemetry.expect("telemetry was enabled for export");
    if let Some(path) = &args.trace_out {
        let json = telemetry.chrome_trace_json();
        let stats = validate_chrome_trace(&json)
            .unwrap_or_else(|e| panic!("generated Chrome trace is invalid: {e}"));
        std::fs::write(path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!(
            "wrote Chrome trace to {path} ({} spans, {} counter samples, {} instants)",
            stats.spans, stats.counters, stats.instants
        );
    }
    if let Some(path) = &args.metrics_out {
        let text = telemetry.prometheus_text();
        std::fs::write(path, &text).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!(
            "wrote Prometheus snapshot to {path} ({} lines)",
            text.lines().count()
        );
    }
}

fn main() {
    let args = parse_args();
    let networks = vec![Network::BertSmall, Network::VitB16, Network::T5Mini];
    let trace_cfg = match args.burst {
        Some(len) => TraceConfig::bursty(
            networks.clone(),
            args.requests,
            args.rate_rps,
            len,
            args.seed,
        ),
        None => TraceConfig::poisson(networks.clone(), args.requests, args.rate_rps, args.seed),
    };
    let trace = request_trace(&trace_cfg);
    let stream = ServeRequest::stream_from_trace(
        &trace,
        DataflowKind::MasAttention,
        args.deadline_ms.map(|ms| ms / 1e3),
    );

    let mut config = ServeConfig {
        devices: args.devices,
        parallel_planning: !args.serial,
        telemetry: args.telemetry(),
        ..ServeConfig::default()
    };
    if args.search {
        config.planner = PlannerConfig {
            tiling: TilingStrategy::Search,
            tuner: TunerConfig::quick(),
            ..PlannerConfig::default()
        };
    }

    let mut cache = ScheduleCache::new();
    for path in &args.load_caches {
        let shard =
            ScheduleCache::load(path).unwrap_or_else(|e| panic!("loading cache {path}: {e}"));
        println!("loaded cache {path}: {} entries", shard.len());
        cache.merge(&shard);
    }
    let warm_entries = cache.len();

    if args.mixed {
        run_mixed(&args, config, cache, &stream, networks, warm_entries);
        return;
    }

    let mut runtime = ServeRuntime::with_cache(config, cache);
    let wall_start = std::time::Instant::now();
    let report = runtime
        .run_trace(&stream)
        .unwrap_or_else(|e| panic!("replaying the trace failed: {e}"));
    let wall = wall_start.elapsed();

    print_report(
        &args,
        &trace_cfg,
        &report,
        warm_entries,
        runtime.cache().len(),
    );
    println!(
        "host planning wall-clock: {:.1} ms for {} requests ({:.1} req/s offered)",
        wall.as_secs_f64() * 1e3,
        args.requests,
        args.rate_rps
    );

    if args.json {
        println!("{}", report_json(&report));
    }
    export_telemetry(runtime.telemetry(), &args);
    if let Some(path) = &args.save_cache {
        runtime
            .cache()
            .save(path)
            .unwrap_or_else(|e| panic!("saving cache {path}: {e}"));
        println!("saved cache to {path} ({} entries)", runtime.cache().len());
    }
}

/// The `--mixed` path: interleave generated decode sessions with the
/// prefill stream and replay both classes through the unified engine.
fn run_mixed(
    args: &Args,
    config: ServeConfig,
    cache: ScheduleCache,
    stream: &[ServeRequest],
    networks: Vec<Network>,
    warm_entries: usize,
) {
    let mut dconfig = DecodeTraceConfig::poisson(
        networks,
        args.sessions,
        args.session_rate_rps,
        args.seed ^ MIXED_DECODE_SEED_SALT,
    );
    if args.prefix_share {
        // A 64-token shared system prompt per network, with pool-level
        // prefix sharing enabled below. Arrival times and shapes are
        // identical to the unshared trace at the same seed.
        dconfig = dconfig.with_system_prompt(64);
    }
    let dtrace = decode_trace(&dconfig);
    let mut engine_config: EngineConfig = config.into();
    engine_config.policy = args.policy;
    engine_config.decode.kv_dtype = args.kv_dtype;
    engine_config.decode.prefix_share = args.prefix_share;
    engine_config.chunked_prefill = args.chunked_prefill.map(ChunkPolicy::new);
    engine_config.preempt = args.preempt;
    engine_config.tracks = args.tracks.then(TrackConfig::default);
    // The From<ServeConfig> lifting disables the shared budget for legacy
    // prefill-shim compatibility; a mixed replay wants the engine's real
    // default (the decode policy's half-DRAM KV budget) so the cross-class
    // memory coupling is live.
    engine_config.shared_budget_bytes = None;
    let mut engine = ServeEngine::with_cache(engine_config, cache);
    let wall_start = std::time::Instant::now();
    let report = engine
        .run(stream, &dtrace)
        .unwrap_or_else(|e| panic!("replaying the mixed trace failed: {e}"));
    let wall = wall_start.elapsed();

    println!("# mas-serve mixed trace replay (unified engine)");
    println!(
        "trace: {} prefill requests + {} decode sessions ({} steps), seed {}",
        args.requests,
        args.sessions,
        dtrace.total_steps(),
        args.seed
    );
    println!(
        "runtime: {} device(s), policy {}, kv dtype {}, prefix sharing {}, \
         chunked prefill {}, preemption {}, track overlap {}, \
         cache warm entries {} -> final {}",
        args.devices.max(1),
        args.policy,
        args.kv_dtype
            .map_or("device default".to_string(), |d| d.to_string()),
        if args.prefix_share { "on" } else { "off" },
        args.chunked_prefill
            .map_or("off".to_string(), |t| format!("{t} tokens")),
        args.preempt.map_or("off".to_string(), |m| m.to_string()),
        if args.tracks { "on" } else { "off" },
        warm_entries,
        engine.cache().len(),
    );
    println!("{}", report.summary());
    println!("  prefill detail: {}", report.prefill.summary());
    println!("  decode detail:  {}", report.decode.summary());
    println!(
        "host planning wall-clock: {:.1} ms for {} mixed events",
        wall.as_secs_f64() * 1e3,
        stream.len() + dtrace.total_steps(),
    );
    if args.json {
        let fmt_ms = |s: Option<mas_serve::LatencyStats>| {
            s.map_or((0.0, 0.0), |s| (s.p50_s * 1e3, s.p99_s * 1e3))
        };
        let (pf_p50, pf_p99) = fmt_ms(report.prefill_latency());
        let (dc_p50, dc_p99) = fmt_ms(report.decode_latency());
        println!(
            "{{\"policy\":\"{}\",\"prefill_completed\":{},\"decode_completed\":{},\
             \"rejected\":{},\"launches\":{},\"makespan_s\":{:.9},\
             \"prefill_p50_ms\":{pf_p50:.6},\"prefill_p99_ms\":{pf_p99:.6},\
             \"decode_p50_ms\":{dc_p50:.6},\"decode_p99_ms\":{dc_p99:.6},\
             \"mem_budget_bytes\":{},\"mem_peak_bytes\":{},\
             \"shared_sessions\":{},\"kv_shared_peak_bytes\":{},\
             \"preempted_prefill\":{},\"preempted_decode\":{}}}",
            report.policy,
            report.prefill.completed(),
            report.decode.completed(),
            report.rejected(),
            report.launches,
            report.makespan_s,
            report.mem_budget_bytes,
            report.mem_peak_bytes,
            report.decode.shared_sessions,
            report.decode.kv_shared_peak_bytes,
            report.preemptions_prefill,
            report.preemptions_decode,
        );
    }
    export_telemetry(engine.telemetry(), args);
    if let Some(path) = &args.save_cache {
        engine
            .cache()
            .save(path)
            .unwrap_or_else(|e| panic!("saving cache {path}: {e}"));
        println!("saved cache to {path} ({} entries)", engine.cache().len());
    }
}

fn print_report(
    args: &Args,
    trace_cfg: &TraceConfig,
    report: &ServeReport,
    warm_entries: usize,
    final_entries: usize,
) {
    println!("# mas-serve trace replay");
    println!(
        "trace: {} requests, {:?}, seed {}",
        args.requests, trace_cfg.arrivals, args.seed
    );
    println!(
        "runtime: {} device(s), {} planning, {} tiling, cache warm entries {} -> final {}",
        args.devices.max(1),
        if args.serial { "serial" } else { "pooled" },
        if args.search { "search" } else { "heuristic" },
        warm_entries,
        final_entries,
    );
    println!("{}", report.summary());

    // Per-network rollup.
    let mut names: Vec<&str> = report
        .outcomes
        .iter()
        .map(|o| o.workload.as_str())
        .collect();
    names.sort_unstable();
    names.dedup();
    println!(
        "| {:<24} | {:>5} | {:>10} | {:>10} | {:>7} |",
        "network", "reqs", "p50 ms", "max ms", "misses"
    );
    for name in names {
        let latencies: Vec<f64> = report
            .outcomes
            .iter()
            .filter(|o| o.workload == name)
            .map(|o| o.latency_s())
            .collect();
        let missed = report
            .outcomes
            .iter()
            .filter(|o| o.workload == name && !o.deadline_met)
            .count();
        println!(
            "| {:<24} | {:>5} | {:>10.3} | {:>10.3} | {:>7} |",
            name,
            latencies.len(),
            mas_serve::percentile(&latencies, 50.0).expect("non-empty group") * 1e3,
            mas_serve::percentile(&latencies, 100.0).expect("non-empty group") * 1e3,
            missed,
        );
    }
}

fn report_json(report: &ServeReport) -> String {
    format!(
        "{{\"completed\":{},\"rejected\":{},\"batches\":{},\"cache_hits\":{},\"cache_misses\":{},\
         \"throughput_rps\":{:.3},\"p50_ms\":{:.6},\"p99_ms\":{:.6},\"deadline_missed\":{},\
         \"makespan_s\":{:.9},\"total_energy_pj\":{:.3}}}",
        report.completed(),
        report.rejected.len(),
        report.batches,
        report.cache_hits,
        report.cache_misses,
        report.throughput_rps(),
        report.p50_latency_s().unwrap_or(0.0) * 1e3,
        report.p99_latency_s().unwrap_or(0.0) * 1e3,
        report.deadline_missed(),
        report.makespan_s,
        report.total_energy_pj,
    )
}
