//! Regenerates Figure 7: best-so-far execution cycles versus search
//! iterations for the MCTS + GA tuning pipeline, per method, together with
//! the §5.5 improvement factors over the naive (row-at-a-time) tiling.

use mas_dataflow::DataflowKind;
use mas_search::tuner::{AutoTuner, TunerConfig};
use mas_sim::HardwareConfig;
use mas_workloads::Network;

fn main() {
    let search_mode = std::env::args().any(|a| a == "--full");
    let budget = if search_mode {
        TunerConfig::full()
    } else {
        TunerConfig::quick()
    };
    let hw = HardwareConfig::edge_default();
    // The paper highlights BERT-Base, BERT-Large, BERT-Small, the ViT family
    // and XLM in §5.5; sweep a representative subset.
    let networks = [
        Network::BertBase,
        Network::BertSmall,
        Network::VitB16,
        Network::Xlm,
    ];

    println!("Figure 7: search convergence (best-so-far cycles vs. iterations)");
    for net in networks {
        let w = net.attention_workload(1);
        for kind in [DataflowKind::Flat, DataflowKind::MasAttention] {
            let mut tuner = AutoTuner::new(budget, 7);
            let Some(result) = tuner.tune(kind, &w, &hw) else {
                continue;
            };
            let naive = result.naive_cost.map(|c| c.cycles).unwrap_or(0);
            println!(
                "\n{} / {}: naive {:.2}M -> tuned {:.3}M cycles ({:.1}x improvement, {} evaluations)",
                net.name(), kind.name(),
                naive as f64 / 1e6,
                result.best_cost.cycles as f64 / 1e6,
                result.improvement_over_naive().unwrap_or(1.0),
                result.evaluations
            );
            print!("  trajectory:");
            for p in result.history.downsample(8) {
                print!(" ({}, {:.3}M)", p.iteration, p.best_objective / 1e6);
            }
            println!();
        }
    }
}
