//! Regenerates the paper's Table 3: energy consumption (10^9 pJ) and
//! MAS-Attention's energy savings versus every baseline, plus the
//! geometric-mean row.

use mas_attention::report::geomean_energy_saving;
use mas_attention::Method;
use mas_bench::{baseline_columns, compare_all_networks, fmt_gpj, fmt_pct, report_json, Options};

fn main() {
    let opts = Options::from_args();
    let planner = opts.planner();
    let results = compare_all_networks(&planner);

    println!("Table 3: energy (10^9 pJ) and savings of MAS-Attention vs. baselines");
    println!(
        "{:<28} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} | {:>9} {:>9} {:>9} {:>9} {:>9}",
        "Network",
        "LayerWise",
        "SoftPipe",
        "FLAT",
        "TileFlow",
        "FuseMax",
        "MAS",
        "vs LW",
        "vs SP",
        "vs FLAT",
        "vs TF",
        "vs FM"
    );
    for (net, report) in &results {
        let cols: Vec<String> = baseline_columns()
            .iter()
            .map(|m| fmt_gpj(report.energy_pj(*m).unwrap()))
            .collect();
        let savings: Vec<String> = baseline_columns()
            .iter()
            .map(|m| fmt_pct(report.energy_saving(*m, Method::MasAttention).unwrap()))
            .collect();
        println!(
            "{:<28} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} | {:>9} {:>9} {:>9} {:>9} {:>9}",
            net.name(),
            cols[0],
            cols[1],
            cols[2],
            cols[3],
            cols[4],
            fmt_gpj(report.energy_pj(Method::MasAttention).unwrap()),
            savings[0],
            savings[1],
            savings[2],
            savings[3],
            savings[4]
        );
    }
    let reports: Vec<_> = results.iter().map(|(_, r)| r.clone()).collect();
    let geo: Vec<String> = baseline_columns()
        .iter()
        .map(|m| fmt_pct(geomean_energy_saving(&reports, *m).unwrap()))
        .collect();
    println!(
        "{:<28} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} | {:>9} {:>9} {:>9} {:>9} {:>9}",
        "Geometric Mean", "-", "-", "-", "-", "-", "-", geo[0], geo[1], geo[2], geo[3], geo[4]
    );
    if opts.json {
        for (net, report) in &results {
            println!("{}", report_json(net.name(), report));
        }
    }
}
