//! Shared harness code for the experiment binaries.
//!
//! Every table and figure of the paper has a binary in `src/bin/` that
//! regenerates it (see `DESIGN.md` §5 for the index). The binaries share the
//! table-formatting and experiment-running helpers in this module.
//!
//! All binaries accept:
//!
//! * `--search` — tune tilings with the MCTS + GA pipeline instead of the
//!   heuristic tiling (slower, closer to the paper's methodology),
//! * `--json`   — additionally print machine-readable JSON records.

use mas_attention::{report::ComparisonReport, Method, Planner};
use mas_dataflow::AttentionWorkload;
use mas_search::tuner::TunerConfig;
use mas_workloads::Network;

/// Command-line options shared by the experiment binaries.
#[derive(Debug, Clone, Default)]
pub struct Options {
    /// Use the MCTS + GA search instead of the heuristic tiling.
    pub search: bool,
    /// Emit JSON records after the human-readable tables.
    pub json: bool,
}

impl Options {
    /// Parses options from `std::env::args`.
    #[must_use]
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        Self {
            search: args.iter().any(|a| a == "--search"),
            json: args.iter().any(|a| a == "--json"),
        }
    }

    /// Builds the planner corresponding to these options.
    #[must_use]
    pub fn planner(&self) -> Planner {
        if self.search {
            Planner::with_search(TunerConfig::quick())
        } else {
            Planner::edge_default()
        }
    }
}

/// The Table 1 networks with their attention workloads (batch 1).
#[must_use]
pub fn table1_workloads() -> Vec<(Network, AttentionWorkload)> {
    Network::all()
        .into_iter()
        .map(|n| (n, n.attention_workload(1)))
        .collect()
}

/// Runs the full method comparison for every Table 1 network.
///
/// # Panics
///
/// Panics if any simulation fails (the Table 1 workloads always fit the
/// default edge device).
#[must_use]
pub fn compare_all_networks(planner: &Planner) -> Vec<(Network, ComparisonReport)> {
    table1_workloads()
        .into_iter()
        .map(|(net, w)| {
            let report = planner
                .compare_all(&w)
                .unwrap_or_else(|e| panic!("simulating {net} failed: {e}"));
            (net, report)
        })
        .collect()
}

/// Formats a cycles value in millions, like the paper's Table 2.
#[must_use]
pub fn fmt_mcycles(cycles: u64) -> String {
    format!("{:.3}", cycles as f64 / 1e6)
}

/// Formats an energy value in 10⁹ pJ, like the paper's Table 3.
#[must_use]
pub fn fmt_gpj(pj: f64) -> String {
    format!("{:.3}", pj / 1e9)
}

/// Formats a ratio with two decimals and a trailing `x`.
#[must_use]
pub fn fmt_ratio(r: f64) -> String {
    format!("{r:.2}x")
}

/// Formats a fraction as a signed percentage.
#[must_use]
pub fn fmt_pct(f: f64) -> String {
    format!("{:.2}%", f * 100.0)
}

/// Prints a Markdown-style table row.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let row: Vec<String> = cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect();
    println!("| {} |", row.join(" | "));
}

/// Escapes a string for use inside a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats one network's comparison report as a single-line JSON record
/// (hand-rolled: the offline build vendors a marker-only serde shim, so
/// machine-readable output is emitted directly from the typed report).
#[must_use]
pub fn report_json(network: &str, report: &ComparisonReport) -> String {
    let mut cycles = Vec::new();
    let mut energy = Vec::new();
    for method in report.methods() {
        if let (Some(c), Some(e)) = (report.cycles(method), report.energy_pj(method)) {
            let name = json_escape(&method.to_string());
            cycles.push(format!("\"{name}\":{c}"));
            energy.push(format!("\"{name}\":{e:.3}"));
        }
    }
    format!(
        "{{\"network\":\"{}\",\"cycles\":{{{}}},\"energy_pj\":{{{}}}}}",
        json_escape(network),
        cycles.join(","),
        energy.join(",")
    )
}

/// The baseline methods in the column order of Tables 2 and 3.
#[must_use]
pub fn baseline_columns() -> [Method; 5] {
    [
        Method::LayerWise,
        Method::SoftPipe,
        Method::Flat,
        Method::TileFlow,
        Method::FuseMax,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_mcycles(1_234_000), "1.234");
        assert_eq!(fmt_gpj(2.5e9), "2.500");
        assert_eq!(fmt_ratio(1.7), "1.70x");
        assert_eq!(fmt_pct(0.25), "25.00%");
    }

    #[test]
    fn json_escape_handles_quotes_and_control_chars() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn table1_has_twelve_networks() {
        assert_eq!(table1_workloads().len(), 12);
    }

    #[test]
    fn options_default_to_heuristic_planner() {
        let o = Options::default();
        assert!(!o.search);
        let _ = o.planner();
    }
}
