//! Golden-data verification entry point (paper §5.1), extended to the
//! decode path: KV-cached autoregressive steps — contiguous and paged
//! (block-table), MHA and grouped-query — are checked differentially
//! against the prefill oracle (head-replicated for GQA).

use mas_dataflow::numeric::golden_check_method;
use mas_dataflow::{AttentionWorkload, DataflowKind, DecodeStep, Tiling};
use mas_tensor::decode::{decode_attention, expand_kv_heads, KvCache};
use mas_tensor::golden::{golden_check, GoldenReport, Tolerance};
use mas_tensor::init::random_qkv;
use mas_tensor::paged::{decode_attention_paged, KvBlockPool, PagedKvCache};
use mas_tensor::tiled::{fused_online_attention, TileSizes};
use mas_tensor::{Result, Tensor};

/// Runs the golden-data check for one method on a seeded random instance of
/// the workload: the method's tiled numerical executor must match the
/// unfused reference attention within floating-point tolerance.
///
/// For very large workloads the check is performed on a proportionally
/// scaled-down instance (the sequence length is capped at 256 and the head
/// count at 4) — the blocking structure, which is what the check validates,
/// is preserved by scaling the tiling with the workload.
///
/// # Errors
///
/// Returns a [`mas_tensor::TensorError`] if tensor shapes are inconsistent.
pub fn verify_method(
    method: DataflowKind,
    workload: &AttentionWorkload,
    tiling: &Tiling,
    seed: u64,
) -> Result<GoldenReport> {
    // Scale down huge workloads so verification stays fast while keeping the
    // same number of tiles per dimension.
    let (seq, heads) = (workload.seq_len.min(256), workload.heads.min(4));
    let scale = workload.seq_len as f64 / seq as f64;
    let scaled_tiling = Tiling::new(
        tiling.b_b,
        tiling.h_h.min(heads),
        ((tiling.n_q as f64 / scale).round() as usize).max(1),
        ((tiling.n_kv as f64 / scale).round() as usize).max(1),
        &AttentionWorkload::new("verify", workload.batch, heads, seq, workload.embed),
    );
    let (q, k, v) = random_qkv(workload.batch, heads, seq, workload.embed, seed);
    golden_check_method(method, &q, &k, &v, &scaled_tiling)
}

/// Scales a decode step's head grouping down with its head count: the
/// verification cap on `heads` must keep `kv_heads` a divisor.
fn scaled_decode_shape(step: &DecodeStep) -> (usize, usize, usize, usize) {
    let t = step.context_len.min(128);
    let heads = step.heads.min(4);
    let mut kv_heads = step.kv_heads.min(heads);
    while !heads.is_multiple_of(kv_heads) {
        kv_heads -= 1;
    }
    (t, heads, kv_heads, step.embed)
}

/// Copies row `i` of every head of `src` into the head-major `dst` slice.
fn gather_row(src: &Tensor, i: usize, dst: &mut [f32]) {
    let [_, heads, _, embed] = src.shape().dims();
    for h in 0..heads {
        dst[h * embed..(h + 1) * embed].copy_from_slice(src.row(0, h, i));
    }
}

/// Seeded random decode inputs at the step's (scaled) shape: queries with
/// `heads` heads, keys/values with `kv_heads` heads, plus the
/// head-replicated K/V the MHA oracle consumes.
#[allow(clippy::type_complexity)]
fn decode_inputs(
    step: &DecodeStep,
    seed: u64,
) -> Result<(
    usize,
    usize,
    usize,
    usize,
    Tensor,
    Tensor,
    Tensor,
    Tensor,
    Tensor,
)> {
    let (t, heads, kv_heads, embed) = scaled_decode_shape(step);
    let (q, _, _) = random_qkv(1, heads, t, embed, seed);
    let (_, k, v) = random_qkv(1, kv_heads, t, embed, seed.wrapping_add(0x9e37_79b9));
    let k_full = expand_kv_heads(&k, heads)?;
    let v_full = expand_kv_heads(&v, heads)?;
    Ok((t, heads, kv_heads, embed, q, k, v, k_full, v_full))
}

/// The prefix-prefill golden tensor: for each step `i`, row `i` holds the
/// last query row of [`fused_online_attention`] over the `(i+1)`-token
/// prefix of the (head-replicated) inputs — exactly what the decode step
/// computes. Grouped-query decode is checked against this *head-replicated
/// MHA oracle*: G query heads reading one shared KV head must match G MHA
/// heads reading G copies of it.
fn prefix_prefill_golden(q: &Tensor, k_full: &Tensor, v_full: &Tensor) -> Result<Tensor> {
    let [_, heads, t, embed] = q.shape().dims();
    let mut golden = Tensor::zeros(*q.shape());
    for i in 0..t {
        let prefix = i + 1;
        let sub = |src: &Tensor| src.block([0, 0, 0, 0], [1, heads, prefix, embed]);
        let tiles = TileSizes::new(prefix, prefix.min(32), prefix)?;
        let oracle = fused_online_attention(&sub(q)?, &sub(k_full)?, &sub(v_full)?, tiles)?;
        for h in 0..heads {
            golden.row_mut(0, h, i).copy_from_slice(oracle.row(0, h, i));
        }
    }
    Ok(golden)
}

/// Differential golden check of the KV-cached decode path: runs the full
/// autoregressive loop (append the step's `K`/`V` rows to a [`KvCache`],
/// then [`decode_attention`] for the step's query) over a seeded random
/// sequence, and compares every step's output against the prefill oracle —
/// [`fused_online_attention`] over the step's context prefix, whose last row
/// computes the same attention the decode step does. Grouped-query steps
/// (`kv_heads < heads`) are checked against the head-replicated MHA oracle.
///
/// Like [`verify_method`], huge workloads are scaled down (context capped at
/// 128 tokens, heads at 4, the head grouping scaled with them) — the check
/// validates the incremental algorithm, which is context-length independent.
/// The decode batch dimension is verified per session (batch 1): a batched
/// decode launch is numerically the per-session kernels side by side.
///
/// # Errors
///
/// Returns a [`mas_tensor::TensorError`] if tensor shapes are inconsistent.
pub fn verify_decode(step: &DecodeStep, seed: u64) -> Result<GoldenReport> {
    let (t, heads, kv_heads, embed, q, k, v, k_full, v_full) = decode_inputs(step, seed)?;

    let mut cache = KvCache::grouped(heads, kv_heads, embed)?;
    let mut decoded = Tensor::zeros(*q.shape());
    let mut q_in = vec![0.0f32; heads * embed];
    let mut k_in = vec![0.0f32; kv_heads * embed];
    let mut v_in = vec![0.0f32; kv_heads * embed];
    let mut step_out = vec![0.0f32; heads * embed];
    for i in 0..t {
        gather_row(&k, i, &mut k_in);
        gather_row(&v, i, &mut v_in);
        cache.append(&k_in, &v_in)?;
        gather_row(&q, i, &mut q_in);
        decode_attention(&cache, &q_in, &mut step_out)?;
        for h in 0..heads {
            decoded
                .row_mut(0, h, i)
                .copy_from_slice(&step_out[h * embed..(h + 1) * embed]);
        }
    }
    let golden = prefix_prefill_golden(&q, &k_full, &v_full)?;
    golden_check(&decoded, &golden, Tolerance::default())
}

/// Differential golden check of the *paged* decode path: runs the same
/// autoregressive loop as [`verify_decode`] through a
/// [`PagedKvCache`]/[`KvBlockPool`] block table at `block_tokens` tokens per
/// block, requires the result to be **bit-identical** to the contiguous
/// [`KvCache`] path at every step, and then checks it against the
/// prefix-prefill oracle within the usual tolerance.
///
/// A paged-vs-contiguous divergence is reported as a failed [`GoldenReport`]
/// (zero tolerance), so callers distinguish "the paged sweep broke"
/// (bitwise mismatch) from ordinary float drift against the oracle.
///
/// # Errors
///
/// Returns a [`mas_tensor::TensorError`] if tensor shapes are inconsistent
/// or the block geometry is invalid.
pub fn verify_decode_paged(
    step: &DecodeStep,
    block_tokens: usize,
    seed: u64,
) -> Result<GoldenReport> {
    let (t, heads, kv_heads, embed, q, k, v, k_full, v_full) = decode_inputs(step, seed)?;

    let mut contiguous = KvCache::grouped(heads, kv_heads, embed)?;
    let mut pool = KvBlockPool::new(block_tokens, kv_heads, embed);
    let mut paged = PagedKvCache::new(heads, kv_heads, embed, block_tokens)?;
    let mut decoded_contig = Tensor::zeros(*q.shape());
    let mut decoded_paged = Tensor::zeros(*q.shape());
    let mut q_in = vec![0.0f32; heads * embed];
    let mut k_in = vec![0.0f32; kv_heads * embed];
    let mut v_in = vec![0.0f32; kv_heads * embed];
    let mut out_c = vec![0.0f32; heads * embed];
    let mut out_p = vec![0.0f32; heads * embed];
    for i in 0..t {
        gather_row(&k, i, &mut k_in);
        gather_row(&v, i, &mut v_in);
        contiguous.append(&k_in, &v_in)?;
        paged.append(&mut pool, &k_in, &v_in)?;
        gather_row(&q, i, &mut q_in);
        decode_attention(&contiguous, &q_in, &mut out_c)?;
        decode_attention_paged(&pool, &paged, &q_in, &mut out_p)?;
        for h in 0..heads {
            let cols = h * embed..(h + 1) * embed;
            decoded_contig
                .row_mut(0, h, i)
                .copy_from_slice(&out_c[cols.clone()]);
            decoded_paged.row_mut(0, h, i).copy_from_slice(&out_p[cols]);
        }
    }
    // Bitwise paged-vs-contiguous equality first: any divergence is a bug in
    // the block-table sweep, not float drift.
    let exact = golden_check(
        &decoded_paged,
        &decoded_contig,
        Tolerance {
            abs_tol: 0.0,
            rel_tol: 0.0,
        },
    )?;
    if !exact.passed {
        return Ok(exact);
    }
    let golden = prefix_prefill_golden(&q, &k_full, &v_full)?;
    golden_check(&decoded_paged, &golden, Tolerance::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_method_passes_on_a_bert_like_layer() {
        let w = AttentionWorkload::new("BERT-like", 1, 12, 512, 64);
        let t = Tiling::new(1, 1, 64, 128, &w);
        for method in DataflowKind::all() {
            let report = verify_method(method, &w, &t, 11).unwrap();
            assert!(
                report.passed,
                "{method}: {} mismatches (max abs diff {})",
                report.mismatches, report.max_abs_diff
            );
            assert!(report.elements > 0);
        }
    }

    #[test]
    fn verification_scales_down_long_sequences() {
        let w = AttentionWorkload::new("long", 1, 2, 8192, 64);
        let t = Tiling::new(1, 1, 256, 1024, &w);
        let report = verify_method(DataflowKind::MasAttention, &w, &t, 3).unwrap();
        assert!(report.passed);
        // 8192 tokens would be 8192² elements per head; the scaled check is
        // bounded by 256² per head.
        assert!(report.elements <= 2 * 256 * 64);
    }

    #[test]
    fn decode_matches_the_prefill_oracle_step_by_step() {
        let step = DecodeStep::new("decode-verify", 1, 3, 40, 16);
        let report = verify_decode(&step, 29).unwrap();
        assert!(
            report.passed,
            "{} mismatches (max abs diff {})",
            report.mismatches, report.max_abs_diff
        );
        assert_eq!(report.elements, 3 * 40 * 16);
    }

    #[test]
    fn decode_verification_scales_down_long_contexts() {
        let step = DecodeStep::new("long-decode", 1, 8, 4096, 32);
        let report = verify_decode(&step, 5).unwrap();
        assert!(report.passed);
        // Context capped at 128 and heads at 4.
        assert_eq!(report.elements, 4 * 128 * 32);
    }

    #[test]
    fn grouped_query_decode_matches_the_replicated_oracle() {
        for kv_heads in [1, 2, 4] {
            let step = DecodeStep::new("gqa-verify", 1, 4, 37, 8).with_kv_heads(kv_heads);
            let report = verify_decode(&step, 13).unwrap();
            assert!(
                report.passed,
                "kv_heads={kv_heads}: {} mismatches (max abs diff {})",
                report.mismatches, report.max_abs_diff
            );
        }
    }

    #[test]
    fn grouped_scaling_keeps_the_divisor_property() {
        // 32 query heads / 8 KV heads scales to 4 query heads; kv_heads must
        // scale to a divisor of 4, and the check must still pass.
        let step = DecodeStep::new("llama-decode", 1, 32, 300, 16).with_kv_heads(8);
        let report = verify_decode(&step, 3).unwrap();
        assert!(report.passed);
        assert_eq!(report.elements, 4 * 128 * 16);
    }

    #[test]
    fn paged_decode_verifies_across_block_sizes() {
        let step = DecodeStep::new("paged-verify", 1, 3, 40, 16);
        for block_tokens in [1, 7, 16, 64] {
            let report = verify_decode_paged(&step, block_tokens, 29).unwrap();
            assert!(
                report.passed,
                "block {block_tokens}: {} mismatches (max abs diff {})",
                report.mismatches, report.max_abs_diff
            );
        }
        // Paged GQA too.
        let gqa = DecodeStep::new("paged-gqa", 1, 4, 25, 8).with_kv_heads(2);
        assert!(verify_decode_paged(&gqa, 7, 31).unwrap().passed);
    }
}
