//! Golden-data verification entry point (paper §5.1).

use mas_dataflow::numeric::golden_check_method;
use mas_dataflow::{AttentionWorkload, DataflowKind, Tiling};
use mas_tensor::golden::GoldenReport;
use mas_tensor::init::random_qkv;
use mas_tensor::Result;

/// Runs the golden-data check for one method on a seeded random instance of
/// the workload: the method's tiled numerical executor must match the
/// unfused reference attention within floating-point tolerance.
///
/// For very large workloads the check is performed on a proportionally
/// scaled-down instance (the sequence length is capped at 256 and the head
/// count at 4) — the blocking structure, which is what the check validates,
/// is preserved by scaling the tiling with the workload.
///
/// # Errors
///
/// Returns a [`mas_tensor::TensorError`] if tensor shapes are inconsistent.
pub fn verify_method(
    method: DataflowKind,
    workload: &AttentionWorkload,
    tiling: &Tiling,
    seed: u64,
) -> Result<GoldenReport> {
    // Scale down huge workloads so verification stays fast while keeping the
    // same number of tiles per dimension.
    let (seq, heads) = (workload.seq_len.min(256), workload.heads.min(4));
    let scale = workload.seq_len as f64 / seq as f64;
    let scaled_tiling = Tiling::new(
        tiling.b_b,
        tiling.h_h.min(heads),
        ((tiling.n_q as f64 / scale).round() as usize).max(1),
        ((tiling.n_kv as f64 / scale).round() as usize).max(1),
        &AttentionWorkload::new("verify", workload.batch, heads, seq, workload.embed),
    );
    let (q, k, v) = random_qkv(workload.batch, heads, seq, workload.embed, seed);
    golden_check_method(method, &q, &k, &v, &scaled_tiling)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_method_passes_on_a_bert_like_layer() {
        let w = AttentionWorkload::new("BERT-like", 1, 12, 512, 64);
        let t = Tiling::new(1, 1, 64, 128, &w);
        for method in DataflowKind::all() {
            let report = verify_method(method, &w, &t, 11).unwrap();
            assert!(
                report.passed,
                "{method}: {} mismatches (max abs diff {})",
                report.mismatches, report.max_abs_diff
            );
            assert!(report.elements > 0);
        }
    }

    #[test]
    fn verification_scales_down_long_sequences() {
        let w = AttentionWorkload::new("long", 1, 2, 8192, 64);
        let t = Tiling::new(1, 1, 256, 1024, &w);
        let report = verify_method(DataflowKind::MasAttention, &w, &t, 3).unwrap();
        assert!(report.passed);
        // 8192 tokens would be 8192² elements per head; the scaled check is
        // bounded by 256² per head.
        assert!(report.elements <= 2 * 256 * 64);
    }
}
