//! Golden-data verification entry point (paper §5.1), extended to the
//! decode path: KV-cached autoregressive steps are checked differentially
//! against the prefill oracle.

use mas_dataflow::numeric::golden_check_method;
use mas_dataflow::{AttentionWorkload, DataflowKind, DecodeStep, Tiling};
use mas_tensor::decode::{decode_attention, KvCache};
use mas_tensor::golden::{golden_check, GoldenReport, Tolerance};
use mas_tensor::init::random_qkv;
use mas_tensor::tiled::{fused_online_attention, TileSizes};
use mas_tensor::{Result, Tensor};

/// Runs the golden-data check for one method on a seeded random instance of
/// the workload: the method's tiled numerical executor must match the
/// unfused reference attention within floating-point tolerance.
///
/// For very large workloads the check is performed on a proportionally
/// scaled-down instance (the sequence length is capped at 256 and the head
/// count at 4) — the blocking structure, which is what the check validates,
/// is preserved by scaling the tiling with the workload.
///
/// # Errors
///
/// Returns a [`mas_tensor::TensorError`] if tensor shapes are inconsistent.
pub fn verify_method(
    method: DataflowKind,
    workload: &AttentionWorkload,
    tiling: &Tiling,
    seed: u64,
) -> Result<GoldenReport> {
    // Scale down huge workloads so verification stays fast while keeping the
    // same number of tiles per dimension.
    let (seq, heads) = (workload.seq_len.min(256), workload.heads.min(4));
    let scale = workload.seq_len as f64 / seq as f64;
    let scaled_tiling = Tiling::new(
        tiling.b_b,
        tiling.h_h.min(heads),
        ((tiling.n_q as f64 / scale).round() as usize).max(1),
        ((tiling.n_kv as f64 / scale).round() as usize).max(1),
        &AttentionWorkload::new("verify", workload.batch, heads, seq, workload.embed),
    );
    let (q, k, v) = random_qkv(workload.batch, heads, seq, workload.embed, seed);
    golden_check_method(method, &q, &k, &v, &scaled_tiling)
}

/// Differential golden check of the KV-cached decode path: runs the full
/// autoregressive loop (append the step's `K`/`V` rows to a [`KvCache`],
/// then [`decode_attention`] for the step's query) over a seeded random
/// sequence, and compares every step's output against the prefill oracle —
/// [`fused_online_attention`] over the step's context prefix, whose last row
/// computes the same attention the decode step does.
///
/// Like [`verify_method`], huge workloads are scaled down (context capped at
/// 128 tokens, heads at 4) — the check validates the incremental algorithm,
/// which is context-length independent. The decode batch dimension is
/// verified per session (batch 1): a batched decode launch is numerically
/// the per-session kernels side by side.
///
/// # Errors
///
/// Returns a [`mas_tensor::TensorError`] if tensor shapes are inconsistent.
pub fn verify_decode(step: &DecodeStep, seed: u64) -> Result<GoldenReport> {
    let t = step.context_len.min(128);
    let heads = step.heads.min(4);
    let embed = step.embed;
    let (q, k, v) = random_qkv(1, heads, t, embed, seed);

    let mut cache = KvCache::new(heads, embed);
    let mut decoded = Tensor::zeros(*q.shape());
    let mut step_in = vec![0.0f32; heads * embed];
    let mut step_out = vec![0.0f32; heads * embed];
    let mut golden = Tensor::zeros(*q.shape());
    for i in 0..t {
        let gather = |src: &Tensor, dst: &mut [f32]| {
            for h in 0..heads {
                dst[h * embed..(h + 1) * embed].copy_from_slice(src.row(0, h, i));
            }
        };
        gather(&k, &mut step_in);
        let mut v_in = vec![0.0f32; heads * embed];
        gather(&v, &mut v_in);
        cache.append(&step_in, &v_in)?;
        gather(&q, &mut step_in);
        decode_attention(&cache, &step_in, &mut step_out)?;
        for h in 0..heads {
            decoded
                .row_mut(0, h, i)
                .copy_from_slice(&step_out[h * embed..(h + 1) * embed]);
        }

        // Oracle: prefill over the (i+1)-token prefix; its last query row
        // attends exactly the keys the decode step attended.
        let prefix = i + 1;
        let sub = |src: &Tensor| src.block([0, 0, 0, 0], [1, heads, prefix, embed]);
        let tiles = TileSizes::new(prefix, prefix.min(32), prefix)?;
        let oracle = fused_online_attention(&sub(&q)?, &sub(&k)?, &sub(&v)?, tiles)?;
        for h in 0..heads {
            golden.row_mut(0, h, i).copy_from_slice(oracle.row(0, h, i));
        }
    }
    golden_check(&decoded, &golden, Tolerance::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_method_passes_on_a_bert_like_layer() {
        let w = AttentionWorkload::new("BERT-like", 1, 12, 512, 64);
        let t = Tiling::new(1, 1, 64, 128, &w);
        for method in DataflowKind::all() {
            let report = verify_method(method, &w, &t, 11).unwrap();
            assert!(
                report.passed,
                "{method}: {} mismatches (max abs diff {})",
                report.mismatches, report.max_abs_diff
            );
            assert!(report.elements > 0);
        }
    }

    #[test]
    fn verification_scales_down_long_sequences() {
        let w = AttentionWorkload::new("long", 1, 2, 8192, 64);
        let t = Tiling::new(1, 1, 256, 1024, &w);
        let report = verify_method(DataflowKind::MasAttention, &w, &t, 3).unwrap();
        assert!(report.passed);
        // 8192 tokens would be 8192² elements per head; the scaled check is
        // bounded by 256² per head.
        assert!(report.elements <= 2 * 256 * 64);
    }

    #[test]
    fn decode_matches_the_prefill_oracle_step_by_step() {
        let step = DecodeStep::new("decode-verify", 1, 3, 40, 16);
        let report = verify_decode(&step, 29).unwrap();
        assert!(
            report.passed,
            "{} mismatches (max abs diff {})",
            report.mismatches, report.max_abs_diff
        );
        assert_eq!(report.elements, 3 * 40 * 16);
    }

    #[test]
    fn decode_verification_scales_down_long_contexts() {
        let step = DecodeStep::new("long-decode", 1, 8, 4096, 32);
        let report = verify_decode(&step, 5).unwrap();
        assert!(report.passed);
        // Context capped at 128 and heads at 4.
        assert_eq!(report.elements, 4 * 128 * 32);
    }
}
