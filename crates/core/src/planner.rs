//! High-level planning and execution API.

use serde::{Deserialize, Serialize};

use mas_dataflow::{build_dataflow, AttentionWorkload, BuildStats, DataflowKind, Tiling};
use mas_search::tuner::{AutoTuner, TunerConfig};
use mas_sim::{EnergyModel, Executor, HardwareConfig, Result, SimReport};

use crate::report::ComparisonReport;

/// How the planner chooses tiling factors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum TilingStrategy {
    /// The hand-written heuristic tiling (fast, no search).
    #[default]
    Heuristic,
    /// Offline auto-tuning with MCTS + GA (the paper's pipeline).
    Search,
}

/// Planner configuration.
#[derive(Debug, Clone)]
pub struct PlannerConfig {
    /// Hardware model of the target device.
    pub hardware: HardwareConfig,
    /// Energy model of the target device.
    pub energy: EnergyModel,
    /// Tiling selection strategy.
    pub tiling: TilingStrategy,
    /// Search budget when [`TilingStrategy::Search`] is selected.
    pub tuner: TunerConfig,
    /// Seed for the search algorithms.
    pub seed: u64,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        Self {
            hardware: HardwareConfig::edge_default(),
            energy: EnergyModel::edge_16nm(),
            tiling: TilingStrategy::Heuristic,
            tuner: TunerConfig::quick(),
            seed: 0x5eed,
        }
    }
}

/// A tiling decision for one `(method, workload)` pair, produced without
/// simulating — the plan half of the plan/execute split used by serving
/// runtimes that cache plans across requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlannedRun {
    /// The method the plan targets.
    pub method: DataflowKind,
    /// The chosen tiling.
    pub tiling: Tiling,
    /// Whether the tiling came from a [`TilingCache`] hit rather than the
    /// planner's strategy (heuristic or search).
    pub from_cache: bool,
}

/// Hook for external tiling caches consulted by [`Planner::plan_cached`].
///
/// Implementors key on whatever identity they consider equivalent (for
/// example the workload *shape* plus a hardware fingerprint, so renamed but
/// identical workloads share plans). This is the lightweight hook for
/// callers that only want to memoize tiling decisions; `mas-serve` goes
/// further and memoizes the whole plan *and* its simulation outcome in its
/// `ScheduleCache`, built on the [`Planner::plan`] / [`Planner::execute`]
/// split below.
pub trait TilingCache {
    /// Returns a previously planned tiling for the triple, if known.
    fn get(
        &self,
        method: DataflowKind,
        workload: &AttentionWorkload,
        hardware: &HardwareConfig,
    ) -> Option<Tiling>;

    /// Records a freshly planned tiling for the triple.
    fn put(
        &mut self,
        method: DataflowKind,
        workload: &AttentionWorkload,
        hardware: &HardwareConfig,
        tiling: Tiling,
    );
}

/// Result of running one method on one workload.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The method that ran.
    pub method: DataflowKind,
    /// The tiling that was used.
    pub tiling: Tiling,
    /// Schedule-construction statistics (rounds, overwrites, reloads).
    pub build: BuildStats,
    /// Simulation report (cycles, energy, DRAM traffic, utilization).
    pub report: SimReport,
}

/// One-call entry point for simulating, comparing and tuning dataflows.
#[derive(Debug, Clone)]
pub struct Planner {
    config: PlannerConfig,
}

impl Planner {
    /// Creates a planner with an explicit configuration.
    #[must_use]
    pub fn new(config: PlannerConfig) -> Self {
        Self { config }
    }

    /// Creates a planner for the paper's simulated edge device with the
    /// heuristic tiling strategy.
    #[must_use]
    pub fn edge_default() -> Self {
        Self::new(PlannerConfig::default())
    }

    /// Creates a planner that auto-tunes tilings with the given budget.
    #[must_use]
    pub fn with_search(budget: TunerConfig) -> Self {
        Self::new(PlannerConfig {
            tiling: TilingStrategy::Search,
            tuner: budget,
            ..PlannerConfig::default()
        })
    }

    /// The planner's configuration.
    #[must_use]
    pub fn config(&self) -> &PlannerConfig {
        &self.config
    }

    /// The hardware configuration targeted by this planner.
    #[must_use]
    pub fn hardware(&self) -> &HardwareConfig {
        &self.config.hardware
    }

    /// Chooses the tiling for one method/workload pair according to the
    /// configured strategy.
    #[must_use]
    pub fn plan_tiling(&self, method: DataflowKind, workload: &AttentionWorkload) -> Tiling {
        match self.config.tiling {
            TilingStrategy::Heuristic => {
                let mut t = Tiling::heuristic(workload, &self.config.hardware);
                if method == DataflowKind::FuseMax {
                    // FuseMax uses manually selected (smaller) tiles in the
                    // paper rather than the search, to bound its on-chip
                    // accumulator state.
                    t = Tiling::new(
                        t.b_b,
                        t.h_h,
                        (t.n_q / 2).max(1),
                        (t.n_kv / 2).max(1),
                        workload,
                    );
                }
                t
            }
            TilingStrategy::Search => {
                let mut tuner = AutoTuner::new(self.config.tuner, self.config.seed);
                tuner
                    .tune(method, workload, &self.config.hardware)
                    .map(|r| r.best_tiling)
                    .unwrap_or_else(|| Tiling::heuristic(workload, &self.config.hardware))
            }
        }
    }

    /// Plan-only entry point: chooses the tiling for `method` on `workload`
    /// without building or simulating the *final* schedule.
    ///
    /// Note the cost depends on the strategy: [`TilingStrategy::Heuristic`]
    /// is a closed-form computation, while [`TilingStrategy::Search`] runs
    /// the full MCTS + GA tuner, which simulates hundreds of candidate
    /// schedules — cheap only once amortized behind a cache. Pairs with
    /// [`Planner::execute`]; serving runtimes use the split to plan once and
    /// replay the plan for every subsequent identical request.
    #[must_use]
    pub fn plan(&self, method: DataflowKind, workload: &AttentionWorkload) -> PlannedRun {
        PlannedRun {
            method,
            tiling: self.plan_tiling(method, workload),
            from_cache: false,
        }
    }

    /// Like [`Planner::plan`], but consults (and on a miss, populates) an
    /// external [`TilingCache`] before invoking the planning strategy —
    /// the hook for callers that keep their own tiling store (see the
    /// [`TilingCache`] docs for how this relates to `mas-serve`'s richer
    /// schedule cache).
    pub fn plan_cached(
        &self,
        method: DataflowKind,
        workload: &AttentionWorkload,
        cache: &mut dyn TilingCache,
    ) -> PlannedRun {
        if let Some(tiling) = cache.get(method, workload, &self.config.hardware) {
            return PlannedRun {
                method,
                tiling,
                from_cache: true,
            };
        }
        let planned = self.plan(method, workload);
        cache.put(method, workload, &self.config.hardware, planned.tiling);
        planned
    }

    /// Executes a previously produced plan (builds the schedule and
    /// simulates it).
    ///
    /// # Errors
    ///
    /// Returns a [`mas_sim::SimError`] if the configuration is invalid or
    /// the schedule fails to build.
    pub fn execute(&self, plan: &PlannedRun, workload: &AttentionWorkload) -> Result<RunResult> {
        self.run_with_tiling(plan.method, workload, &plan.tiling)
    }

    /// Builds and simulates `method` on `workload` with an explicit tiling.
    ///
    /// # Errors
    ///
    /// Returns a [`mas_sim::SimError`] if the configuration is invalid or the
    /// schedule fails to build.
    pub fn run_with_tiling(
        &self,
        method: DataflowKind,
        workload: &AttentionWorkload,
        tiling: &Tiling,
    ) -> Result<RunResult> {
        let schedule = build_dataflow(method, workload, tiling, &self.config.hardware)?;
        let executor = Executor::new(self.config.hardware.clone(), self.config.energy);
        let report = executor.run(schedule.graph())?;
        Ok(RunResult {
            method,
            tiling: *tiling,
            build: schedule.stats().clone(),
            report,
        })
    }

    /// Builds and simulates `method` on `workload`, choosing the tiling
    /// according to the planner's strategy.
    ///
    /// # Errors
    ///
    /// Returns a [`mas_sim::SimError`] if the schedule cannot be built or
    /// simulated.
    pub fn run(&self, method: DataflowKind, workload: &AttentionWorkload) -> Result<RunResult> {
        let tiling = self.plan_tiling(method, workload);
        self.run_with_tiling(method, workload, &tiling)
    }

    /// Runs several methods on the same workload and assembles a comparison
    /// report (one Table 2 / Table 3 row group).
    ///
    /// # Errors
    ///
    /// Returns a [`mas_sim::SimError`] if any method fails to build or run.
    pub fn compare(
        &self,
        workload: &AttentionWorkload,
        methods: &[DataflowKind],
    ) -> Result<ComparisonReport> {
        let mut report = ComparisonReport::new(workload.clone());
        for &method in methods {
            let result = self.run(method, workload)?;
            report.add(result);
        }
        Ok(report)
    }

    /// Runs every method of the paper's Table 2 on the workload.
    ///
    /// # Errors
    ///
    /// Returns a [`mas_sim::SimError`] if any method fails to build or run.
    pub fn compare_all(&self, workload: &AttentionWorkload) -> Result<ComparisonReport> {
        self.compare(workload, &DataflowKind::all())
    }

    /// Auto-tunes the tiling of one method regardless of the configured
    /// strategy, returning the tuning result (with convergence history).
    #[must_use]
    pub fn autotune(
        &self,
        method: DataflowKind,
        workload: &AttentionWorkload,
    ) -> Option<mas_search::tuner::TuningResult> {
        let mut tuner = AutoTuner::new(self.config.tuner, self.config.seed);
        tuner.tune(method, workload, &self.config.hardware)
    }

    /// Verifies that a method computes exact attention on a seeded random
    /// instance of the workload (the golden-data check).
    ///
    /// # Errors
    ///
    /// Returns a [`mas_tensor::TensorError`] if shapes are inconsistent.
    pub fn verify(
        &self,
        method: DataflowKind,
        workload: &AttentionWorkload,
        seed: u64,
    ) -> mas_tensor::Result<mas_tensor::golden::GoldenReport> {
        let tiling = self.plan_tiling(method, workload);
        crate::verify::verify_method(method, workload, &tiling, seed)
    }
}

impl Default for Planner {
    fn default() -> Self {
        Self::edge_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> AttentionWorkload {
        AttentionWorkload::new("toy", 1, 2, 128, 64)
    }

    #[test]
    fn run_produces_nonzero_cycles_for_every_method() {
        let planner = Planner::edge_default();
        for method in DataflowKind::all() {
            let r = planner.run(method, &toy()).unwrap();
            assert!(r.report.total_cycles > 0, "{method}");
            assert_eq!(r.method, method);
        }
    }

    #[test]
    fn compare_all_ranks_mas_first() {
        let planner = Planner::edge_default();
        let report = planner.compare_all(&toy()).unwrap();
        let mas = report.cycles(DataflowKind::MasAttention).unwrap();
        for method in DataflowKind::baselines() {
            assert!(report.cycles(method).unwrap() >= mas, "{method}");
        }
    }

    #[test]
    fn search_strategy_is_not_worse_than_heuristic() {
        let heuristic = Planner::edge_default();
        let searched = Planner::with_search(TunerConfig::quick());
        let w = AttentionWorkload::new("toy", 1, 2, 64, 32);
        let a = heuristic.run(DataflowKind::MasAttention, &w).unwrap();
        let b = searched.run(DataflowKind::MasAttention, &w).unwrap();
        assert!(b.report.total_cycles <= a.report.total_cycles);
    }

    #[test]
    fn fusemax_gets_a_manual_tiling() {
        let planner = Planner::edge_default();
        let w = toy();
        let mas_tiling = planner.plan_tiling(DataflowKind::MasAttention, &w);
        let fm_tiling = planner.plan_tiling(DataflowKind::FuseMax, &w);
        assert!(fm_tiling.n_q <= mas_tiling.n_q);
    }

    #[test]
    fn plan_then_execute_matches_run() {
        let planner = Planner::edge_default();
        let w = toy();
        let plan = planner.plan(DataflowKind::MasAttention, &w);
        assert!(!plan.from_cache);
        let split = planner.execute(&plan, &w).unwrap();
        let fused = planner.run(DataflowKind::MasAttention, &w).unwrap();
        assert_eq!(split.tiling, fused.tiling);
        assert_eq!(split.report.total_cycles, fused.report.total_cycles);
    }

    #[test]
    fn plan_cached_consults_and_populates_the_hook() {
        use std::collections::HashMap;

        #[derive(Default)]
        struct MapCache(HashMap<(DataflowKind, String), Tiling>);
        impl TilingCache for MapCache {
            fn get(
                &self,
                method: DataflowKind,
                workload: &AttentionWorkload,
                _hw: &HardwareConfig,
            ) -> Option<Tiling> {
                self.0.get(&(method, workload.name.clone())).copied()
            }
            fn put(
                &mut self,
                method: DataflowKind,
                workload: &AttentionWorkload,
                _hw: &HardwareConfig,
                tiling: Tiling,
            ) {
                self.0.insert((method, workload.name.clone()), tiling);
            }
        }

        let planner = Planner::edge_default();
        let w = toy();
        let mut cache = MapCache::default();
        let first = planner.plan_cached(DataflowKind::Flat, &w, &mut cache);
        assert!(!first.from_cache);
        assert_eq!(cache.0.len(), 1);
        let second = planner.plan_cached(DataflowKind::Flat, &w, &mut cache);
        assert!(second.from_cache);
        assert_eq!(second.tiling, first.tiling);
    }

    #[test]
    fn verify_passes_for_all_methods() {
        let planner = Planner::edge_default();
        let w = AttentionWorkload::new("tiny", 1, 1, 32, 16);
        for method in DataflowKind::all() {
            let report = planner.verify(method, &w, 7).unwrap();
            assert!(report.passed, "{method} failed the golden check");
        }
    }
}
