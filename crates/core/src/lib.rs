//! # mas-attention
//!
//! Public API of the MAS-Attention reproduction: memory-aware stream
//! processing for attention acceleration on resource-constrained edge devices
//! (MLSys 2025).
//!
//! The crate ties the substrates together behind a small surface:
//!
//! * [`Method`] — the evaluated attention dataflows (re-exported from
//!   `mas-dataflow`),
//! * [`Planner`] — one-call entry points: simulate a method on a workload
//!   ([`Planner::run`]), compare several methods ([`Planner::compare`]),
//!   auto-tune the tiling ([`Planner::autotune`]) and verify numerical
//!   exactness ([`Planner::verify`]),
//! * [`report`] — comparison tables with speedups, energy savings and
//!   geometric means, matching the layout of the paper's Tables 2 and 3.
//!
//! ## Quickstart
//!
//! ```
//! use mas_attention::{Method, Planner};
//! use mas_workloads::Network;
//!
//! let planner = Planner::edge_default();
//! let workload = Network::BertSmall.attention_workload(1);
//! let report = planner
//!     .compare(&workload, &[Method::Flat, Method::MasAttention])
//!     .unwrap();
//! let speedup = report.speedup(Method::Flat, Method::MasAttention).unwrap();
//! assert!(speedup > 1.0, "MAS-Attention outperforms FLAT");
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod planner;
pub mod report;
pub mod verify;

pub use mas_dataflow::DataflowKind as Method;
pub use planner::{PlannedRun, Planner, PlannerConfig, RunResult, TilingCache};
pub use report::{ComparisonReport, MethodRow};
pub use verify::{verify_decode, verify_decode_paged, verify_method};
