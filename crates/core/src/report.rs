//! Comparison reports in the layout of the paper's Tables 2 and 3.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use mas_dataflow::{AttentionWorkload, DataflowKind};
use mas_sim::report::geometric_mean;

use crate::planner::RunResult;

/// Per-method summary extracted from a [`RunResult`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MethodRow {
    /// Execution cycles.
    pub cycles: u64,
    /// Total energy in picojoules.
    pub energy_pj: f64,
    /// DRAM bytes read.
    pub dram_read_bytes: u64,
    /// DRAM bytes written.
    pub dram_write_bytes: u64,
    /// Per-component energy (DRAM, L1, L0, MAC PEs, VEC PEs) in pJ.
    pub energy_components: Vec<(String, f64)>,
    /// Proactive-overwrite events in the schedule.
    pub overwrite_events: usize,
    /// Extra DRAM bytes reloaded by the overwrite strategy.
    pub reload_bytes: u64,
}

/// Comparison of several methods on one workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ComparisonReport {
    /// The workload the comparison was run on.
    pub workload: AttentionWorkload,
    rows: BTreeMap<DataflowKind, MethodRow>,
}

impl ComparisonReport {
    /// Creates an empty report for a workload.
    #[must_use]
    pub fn new(workload: AttentionWorkload) -> Self {
        Self {
            workload,
            rows: BTreeMap::new(),
        }
    }

    /// Adds the result of one method run.
    pub fn add(&mut self, result: RunResult) {
        let row = MethodRow {
            cycles: result.report.total_cycles,
            energy_pj: result.report.total_energy_pj(),
            dram_read_bytes: result.report.dram_read_bytes,
            dram_write_bytes: result.report.dram_write_bytes,
            energy_components: result
                .report
                .energy
                .components()
                .iter()
                .map(|(name, v)| ((*name).to_string(), *v))
                .collect(),
            overwrite_events: result.build.overwrite_events,
            reload_bytes: result.build.reload_bytes,
        };
        self.rows.insert(result.method, row);
    }

    /// Methods present in the report.
    #[must_use]
    pub fn methods(&self) -> Vec<DataflowKind> {
        self.rows.keys().copied().collect()
    }

    /// The summary row for one method.
    #[must_use]
    pub fn row(&self, method: DataflowKind) -> Option<&MethodRow> {
        self.rows.get(&method)
    }

    /// Execution cycles of one method.
    #[must_use]
    pub fn cycles(&self, method: DataflowKind) -> Option<u64> {
        self.rows.get(&method).map(|r| r.cycles)
    }

    /// Total energy (pJ) of one method.
    #[must_use]
    pub fn energy_pj(&self, method: DataflowKind) -> Option<f64> {
        self.rows.get(&method).map(|r| r.energy_pj)
    }

    /// Speedup of `fast` relative to `baseline` (`baseline cycles / fast
    /// cycles`), the quantity tabulated in Table 2.
    #[must_use]
    pub fn speedup(&self, baseline: DataflowKind, fast: DataflowKind) -> Option<f64> {
        let b = self.cycles(baseline)? as f64;
        let f = self.cycles(fast)? as f64;
        if f == 0.0 {
            return None;
        }
        Some(b / f)
    }

    /// Energy saving of `candidate` relative to `baseline`
    /// (`1 − candidate/baseline`), the quantity tabulated in Table 3.
    /// Negative values mean the candidate consumes more energy.
    #[must_use]
    pub fn energy_saving(&self, baseline: DataflowKind, candidate: DataflowKind) -> Option<f64> {
        let b = self.energy_pj(baseline)?;
        let c = self.energy_pj(candidate)?;
        if b == 0.0 {
            return None;
        }
        Some(1.0 - c / b)
    }
}

/// Geometric mean of MAS-Attention's speedup over `baseline` across several
/// per-network reports (the "Geometric Mean" row of Table 2).
#[must_use]
pub fn geomean_speedup(reports: &[ComparisonReport], baseline: DataflowKind) -> Option<f64> {
    let values: Vec<f64> = reports
        .iter()
        .filter_map(|r| r.speedup(baseline, DataflowKind::MasAttention))
        .collect();
    if values.len() != reports.len() {
        return None;
    }
    geometric_mean(&values)
}

/// Geometric mean of MAS-Attention's energy saving versus `baseline` across
/// several reports (the "Geometric Mean" row of Table 3). Following the
/// paper, the mean is taken over the energy *ratios* and converted back to a
/// saving.
#[must_use]
pub fn geomean_energy_saving(reports: &[ComparisonReport], baseline: DataflowKind) -> Option<f64> {
    let ratios: Vec<f64> = reports
        .iter()
        .filter_map(|r| {
            let b = r.energy_pj(baseline)?;
            let m = r.energy_pj(DataflowKind::MasAttention)?;
            if b > 0.0 {
                Some(m / b)
            } else {
                None
            }
        })
        .collect();
    if ratios.len() != reports.len() {
        return None;
    }
    geometric_mean(&ratios).map(|g| 1.0 - g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::Planner;

    fn report() -> ComparisonReport {
        let planner = Planner::edge_default();
        let w = AttentionWorkload::new("toy", 1, 2, 128, 64);
        planner.compare_all(&w).unwrap()
    }

    #[test]
    fn speedups_and_savings_are_consistent_with_rows() {
        let r = report();
        let s = r
            .speedup(DataflowKind::LayerWise, DataflowKind::MasAttention)
            .unwrap();
        assert!(s > 1.0);
        let manual = r.cycles(DataflowKind::LayerWise).unwrap() as f64
            / r.cycles(DataflowKind::MasAttention).unwrap() as f64;
        assert!((s - manual).abs() < 1e-9);
        let saving = r
            .energy_saving(DataflowKind::LayerWise, DataflowKind::MasAttention)
            .unwrap();
        assert!(saving > 0.0 && saving < 1.0);
    }

    #[test]
    fn rows_capture_energy_components_and_dram_traffic() {
        let r = report();
        let row = r.row(DataflowKind::MasAttention).unwrap();
        assert_eq!(row.energy_components.len(), 5);
        assert!(row.dram_read_bytes > 0);
        assert!(row.dram_write_bytes > 0);
        assert!(row.energy_pj > 0.0);
    }

    #[test]
    fn geometric_means_aggregate_multiple_networks() {
        let planner = Planner::edge_default();
        let reports: Vec<ComparisonReport> = [
            AttentionWorkload::new("a", 1, 2, 128, 64),
            AttentionWorkload::new("b", 1, 2, 128, 32),
        ]
        .iter()
        .map(|w| planner.compare_all(w).unwrap())
        .collect();
        let speedup = geomean_speedup(&reports, DataflowKind::Flat).unwrap();
        assert!(speedup > 1.0);
        let saving = geomean_energy_saving(&reports, DataflowKind::LayerWise).unwrap();
        assert!(saving > 0.0);
    }

    #[test]
    fn missing_methods_yield_none() {
        let planner = Planner::edge_default();
        let w = AttentionWorkload::new("toy", 1, 1, 64, 32);
        let r = planner.compare(&w, &[DataflowKind::Flat]).unwrap();
        assert!(r.cycles(DataflowKind::MasAttention).is_none());
        assert!(r
            .speedup(DataflowKind::Flat, DataflowKind::MasAttention)
            .is_none());
    }
}
