//! SIMD/scalar bit-compatibility proptests.
//!
//! The dispatched kernels in `mas_tensor::simd` promise *bitwise* equality
//! with the documented scalar 8-lane reference (`mas_tensor::simd::scalar`)
//! for every input length — full 8-lane chunks, ragged tails of 1..=7
//! elements, and the empty slice. These properties drive random lengths
//! (biased to cover every tail residue) and random finite values through
//! both paths and require identical bits, so a vectorized backend that
//! reassociates the accumulation (or sneaks in an FMA) fails loudly on any
//! host where it is selected. `slice_max` is the documented exception: it
//! is value-equal, not bit-equal, and softmax outputs built on it must
//! still match bitwise (max is subtracted, so its association cannot leak
//! into the result).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mas_tensor::simd;
use mas_tensor::softmax::softmax_row;

/// Random finite values in `[-8, 8)` — wide enough to vary exponents,
/// bounded so products and sums stay finite.
fn vec_of(len: usize, rng: &mut StdRng) -> Vec<f32> {
    (0..len).map(|_| rng.gen_range(-8.0f32..8.0)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn dispatched_dot_is_bitwise_equal_to_the_scalar_reference(
        len in 0usize..133,
        seed in 0u64..10_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (x, y) = (vec_of(len, &mut rng), vec_of(len, &mut rng));
        prop_assert_eq!(
            simd::dot(&x, &y).to_bits(),
            simd::scalar::dot(&x, &y).to_bits(),
            "backend {}", simd::backend()
        );
    }

    #[test]
    fn dispatched_dot_many_is_bitwise_equal_to_per_row_scalar_dots(
        n in 1usize..132,
        rows in 1usize..10,
        seed in 0u64..10_000,
    ) {
        // dot_many batches rows for instruction-level parallelism; every
        // row must still reduce in the canonical order.
        let mut rng = StdRng::seed_from_u64(seed);
        let x = vec_of(n, &mut rng);
        let r = vec_of(rows * n, &mut rng);
        let mut out = vec![0.0f32; rows];
        simd::dot_many(&x, &r, &mut out);
        for (i, &got) in out.iter().enumerate() {
            let want = simd::scalar::dot(&x, &r[i * n..(i + 1) * n]);
            prop_assert_eq!(got.to_bits(), want.to_bits(), "row {} of {}", i, rows);
        }
    }

    #[test]
    fn dispatched_axpy_is_bitwise_equal_to_the_scalar_reference(
        len in 0usize..133,
        seed in 0u64..10_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = rng.gen_range(-4.0f32..4.0);
        let x = vec_of(len, &mut rng);
        let base = vec_of(len, &mut rng);
        let mut got = base.clone();
        let mut want = base;
        simd::axpy(a, &x, &mut got);
        simd::scalar::axpy(a, &x, &mut want);
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            prop_assert_eq!(g.to_bits(), w.to_bits(), "element {}", i);
        }
    }

    #[test]
    fn dispatched_sum8_and_scale_are_bitwise_equal_to_scalar(
        len in 0usize..133,
        seed in 0u64..10_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = vec_of(len, &mut rng);
        prop_assert_eq!(
            simd::sum8(&x).to_bits(),
            simd::scalar::sum8(&x).to_bits()
        );
        let s = rng.gen_range(-2.0f32..2.0);
        let mut got = x.clone();
        let mut want = x;
        simd::scale(s, &mut got);
        simd::scalar::scale(s, &mut want);
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            prop_assert_eq!(g.to_bits(), w.to_bits(), "element {}", i);
        }
    }

    #[test]
    fn dispatched_slice_max_is_value_equal_to_scalar(
        len in 1usize..133,
        seed in 0u64..10_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = vec_of(len, &mut rng);
        // Value equality only: max is associative over finite floats, and
        // the module docs exempt slice_max from the bitwise contract.
        prop_assert_eq!(simd::slice_max(&x), simd::scalar::slice_max(&x));
    }

    #[test]
    fn softmax_rows_are_bitwise_equal_to_the_scalar_composition(
        len in 1usize..133,
        seed in 0u64..10_000,
    ) {
        // The full softmax row pass (max, shift+exp, 8-lane denominator,
        // normalize) must produce identical bits however its inner kernels
        // dispatch: the max is subtracted out, and every other pass is
        // bitwise-pinned above.
        let mut rng = StdRng::seed_from_u64(seed);
        let x = vec_of(len, &mut rng);
        let mut got = vec![0.0f32; len];
        softmax_row(&x, &mut got);
        let row_max = simd::scalar::slice_max(&x);
        let mut want: Vec<f32> = x.iter().map(|&v| (v - row_max).exp()).collect();
        let denom = simd::scalar::sum8(&want);
        simd::scalar::scale(1.0 / denom, &mut want);
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            prop_assert_eq!(g.to_bits(), w.to_bits(), "element {} of {}", i, len);
        }
    }

    #[test]
    fn dispatched_f16_widening_matches_the_software_converter(
        len in 0usize..133,
        seed in 0u64..10_000,
    ) {
        use mas_tensor::half::{f16_bits_to_f32, f32_to_f16_bits_saturating};
        let mut rng = StdRng::seed_from_u64(seed);
        // Bits as the KV store writes them: saturating conversions of
        // finite values (never NaN payloads beyond the canonical one).
        let bits: Vec<u16> = (0..len)
            .map(|_| f32_to_f16_bits_saturating(rng.gen_range(-70000.0f32..70000.0)))
            .collect();
        let mut got = vec![0.0f32; len];
        simd::f16_to_f32_slice(&bits, &mut got);
        for (i, (&g, &b)) in got.iter().zip(&bits).enumerate() {
            prop_assert_eq!(g.to_bits(), f16_bits_to_f32(b).to_bits(), "element {}", i);
        }
    }
}
