//! Allocator invariant proptests for the paged KV block pool.
//!
//! For arbitrary interleavings of session opens, appends, window evictions,
//! releases and raw alloc/free traffic, the pool must conserve blocks
//! (`free + live == total` after every operation), reuse freed blocks
//! before growing the arena, and track a peak-live count that matches an
//! independent reference counter.
//!
//! Under cross-session prefix sharing (refcounted blocks + `PrefixIndex`),
//! conservation is over *unique* physical blocks: arbitrary
//! open-with-prefix/append/diverge/release interleavings preserve
//! `free + Σunique(live) == total`, refcounts hit zero exactly when the
//! last referencing holder releases, a copy-on-write clone never mutates
//! the source block's bytes, and LRU eviction never frees a block with a
//! session reference.

use std::collections::BTreeSet;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mas_tensor::half::KvDtype;
use mas_tensor::paged::{BlockId, KvBlockPool, PagedKvCache, PrefixIndex};

/// Deterministic K/V rows per token id, so every session appending the same
/// token writes identical bytes.
fn token_rows(token: u64, kv_heads: usize, embed: usize) -> (Vec<f32>, Vec<f32>) {
    let k = (0..kv_heads * embed)
        .map(|i| (token as f32 * 0.11 + i as f32 * 0.013).sin())
        .collect();
    let v = (0..kv_heads * embed)
        .map(|i| (token as f32 * 0.07 + i as f32 * 0.019).cos())
        .collect();
    (k, v)
}

/// Pool conservation: live + free must always equal the arena size.
fn assert_conserved(pool: &KvBlockPool) {
    assert_eq!(
        pool.live_blocks() + pool.free_blocks(),
        pool.total_blocks(),
        "block conservation violated"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Raw alloc/free interleavings against a reference counter.
    #[test]
    fn raw_alloc_free_interleavings_conserve_blocks(
        seed in 0u64..10_000,
        ops in 10usize..200,
        block_tokens in 1usize..20,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pool = KvBlockPool::new(block_tokens, 2, 4);
        let mut held: Vec<BlockId> = Vec::new();
        // Reference accounting: live count and its high-water mark.
        let mut ref_live = 0usize;
        let mut ref_peak = 0usize;
        let mut ref_total = 0usize;
        for _ in 0..ops {
            if held.is_empty() || rng.gen_range(0..100usize) < 60 {
                // Alloc. Growth may only happen when the free list is empty.
                let free_before = pool.free_blocks();
                let total_before = pool.total_blocks();
                let id = pool.alloc().unwrap();
                if free_before > 0 {
                    prop_assert_eq!(
                        pool.total_blocks(), total_before,
                        "pool grew while {} freed blocks were reusable", free_before
                    );
                } else {
                    prop_assert_eq!(pool.total_blocks(), total_before + 1);
                    ref_total += 1;
                }
                held.push(id);
                ref_live += 1;
                ref_peak = ref_peak.max(ref_live);
            } else {
                // Free a random held block.
                let idx = rng.gen_range(0..held.len());
                pool.free(held.swap_remove(idx));
                ref_live -= 1;
            }
            assert_conserved(&pool);
            prop_assert_eq!(pool.live_blocks(), ref_live);
            prop_assert_eq!(pool.peak_live_blocks(), ref_peak);
            prop_assert_eq!(pool.total_blocks(), ref_total);
        }
        // Drain: everything frees, nothing leaks.
        for id in held.drain(..) {
            pool.free(id);
        }
        prop_assert_eq!(pool.live_blocks(), 0);
        assert_conserved(&pool);
        prop_assert_eq!(pool.peak_live_blocks(), ref_peak);
    }

    // Session-level interleavings: opens, appends, windowed eviction and
    // releases over one shared pool never leak blocks, and per-session
    // block counts always cover exactly the resident tokens.
    #[test]
    fn session_interleavings_never_leak_blocks(
        seed in 0u64..10_000,
        ops in 20usize..160,
        block_tokens in 1usize..24,
        kv_heads in 1usize..4,
    ) {
        let embed = 3;
        let heads = 2 * kv_heads; // always a valid grouping
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pool = KvBlockPool::new(block_tokens, kv_heads, embed);
        let mut sessions: Vec<PagedKvCache> = Vec::new();
        let row = vec![0.5f32; kv_heads * embed];
        for _ in 0..ops {
            match rng.gen_range(0..100usize) {
                // Open a session, sometimes windowed.
                0..=19 => {
                    let mut cache =
                        PagedKvCache::new(heads, kv_heads, embed, block_tokens).unwrap();
                    if rng.gen_range(0..2usize) == 1 {
                        cache = cache.with_window(rng.gen_range(1..3 * block_tokens + 1));
                    }
                    sessions.push(cache);
                }
                // Append a burst of tokens to a random session.
                20..=79 if !sessions.is_empty() => {
                    let idx = rng.gen_range(0..sessions.len());
                    for _ in 0..rng.gen_range(1..2 * block_tokens + 1) {
                        sessions[idx].append(&mut pool, &row, &row).unwrap();
                    }
                }
                // Release a random session whole.
                _ if !sessions.is_empty() => {
                    let idx = rng.gen_range(0..sessions.len());
                    let mut cache = sessions.swap_remove(idx);
                    cache.release(&mut pool);
                    prop_assert_eq!(cache.allocated_blocks(), 0);
                }
                _ => {}
            }
            assert_conserved(&pool);
            // The pool's live blocks are exactly the sessions' tables.
            let table_blocks: usize = sessions.iter().map(PagedKvCache::allocated_blocks).sum();
            prop_assert_eq!(pool.live_blocks(), table_blocks);
            for s in &sessions {
                // Every resident token has a slot; waste is under one block
                // per session.
                let slots = s.allocated_blocks() * block_tokens;
                prop_assert!(slots >= s.resident_tokens());
                prop_assert!(slots < s.resident_tokens() + block_tokens);
                // The window bounds what decode attends, and whole-block
                // eviction keeps at most one stale block's worth of rows.
                if let Some(w) = s.window_tokens() {
                    prop_assert!(s.len() <= w);
                    prop_assert!(s.resident_tokens() < w + block_tokens);
                }
            }
        }
        // Releasing every remaining session returns the pool to empty.
        for mut s in sessions {
            s.release(&mut pool);
        }
        prop_assert_eq!(pool.live_blocks(), 0);
        assert_conserved(&pool);
    }

    // A bounded pool hands out exactly its capacity, then typed errors; a
    // free always restores exactly one allocation.
    #[test]
    fn bounded_pools_never_exceed_capacity(
        capacity in 1usize..12,
        block_tokens in 1usize..8,
    ) {
        let mut pool = KvBlockPool::new(block_tokens, 1, 2).with_max_blocks(capacity);
        let mut held = Vec::new();
        for _ in 0..capacity {
            held.push(pool.alloc().unwrap());
        }
        prop_assert!(pool.alloc().is_err());
        prop_assert_eq!(pool.live_blocks(), capacity);
        pool.free(held.pop().unwrap());
        prop_assert!(pool.alloc().is_ok());
        prop_assert!(pool.alloc().is_err());
        prop_assert_eq!(pool.peak_live_blocks(), capacity);
        assert_conserved(&pool);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Prefix-sharing interleavings: arbitrary open-with-prefix / append /
    // diverge / release / index-eviction sequences over one pool conserve
    // *unique* physical blocks (`free + Σunique(live) == total`), keep
    // every mapped block's refcount positive, and drain to an empty pool
    // once every session releases and the index evicts.
    #[test]
    fn shared_prefix_interleavings_conserve_unique_blocks(
        seed in 0u64..10_000,
        ops in 20usize..120,
        block_tokens in 1usize..8,
    ) {
        let (heads, kv_heads, embed) = (2usize, 1usize, 2usize);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pool = KvBlockPool::new(block_tokens, kv_heads, embed);
        let mut index = PrefixIndex::new(block_tokens);
        // Prompt families share a common base prefix so opens exercise
        // full-block matches, partial-tail matches (the truncated family)
        // and divergent suffixes (CoW once decode tokens land).
        let base_len = 2 * block_tokens;
        let mut prompts: Vec<Vec<u64>> = (0..3u64)
            .map(|f| {
                let mut p: Vec<u64> = (0..base_len as u64).collect();
                p.extend((0..f * block_tokens as u64 + f).map(|i| 1_000 * (f + 1) + i));
                p
            })
            .collect();
        if block_tokens > 1 {
            // A mid-block truncation of family 2: opening it after family 2
            // published resolves a partial tail into a shared block.
            let mut t = prompts[2].clone();
            t.truncate(base_len + block_tokens + 1);
            prompts.push(t);
        }
        // (cache, prompt script, tokens already in cache)
        let mut sessions: Vec<(PagedKvCache, Vec<u64>, usize)> = Vec::new();
        let mut next_decode = 1_000_000u64;
        for _ in 0..ops {
            match rng.gen_range(0..100usize) {
                0..=24 => {
                    let mut cache =
                        PagedKvCache::new(heads, kv_heads, embed, block_tokens).unwrap();
                    if rng.gen_range(0..3usize) == 0 {
                        cache = cache.with_window(rng.gen_range(1..3 * block_tokens + 1));
                    }
                    let prompt = prompts[rng.gen_range(0..prompts.len())].clone();
                    let matched = cache
                        .open_with_prefix(&mut pool, &mut index, &prompt)
                        .unwrap();
                    prop_assert!(matched <= prompt.len());
                    prop_assert_eq!(cache.appended_tokens(), matched);
                    sessions.push((cache, prompt, matched));
                }
                25..=79 if !sessions.is_empty() => {
                    let i = rng.gen_range(0..sessions.len());
                    for _ in 0..rng.gen_range(1..2 * block_tokens + 1) {
                        let (cache, prompt, appended) = &mut sessions[i];
                        // Finish the prompt script first, then unique decode
                        // tokens (deterministic rows per token id, so shared
                        // blocks are byte-equal to privately-written ones).
                        let token = if *appended < prompt.len() {
                            prompt[*appended]
                        } else {
                            next_decode += 1;
                            next_decode
                        };
                        *appended += 1;
                        let (k, v) = token_rows(token, kv_heads, embed);
                        cache
                            .append_with_prefix(&mut pool, &mut index, &k, &v)
                            .unwrap();
                    }
                }
                80..=89 if !sessions.is_empty() => {
                    let i = rng.gen_range(0..sessions.len());
                    let (mut cache, ..) = sessions.swap_remove(i);
                    cache.release(&mut pool);
                    prop_assert_eq!(cache.allocated_blocks(), 0);
                }
                _ => {
                    // Pressure: drop index-only blocks; must never touch a
                    // block any session still maps.
                    index.evict_unreferenced(&mut pool);
                }
            }
            // Conservation over unique physical blocks.
            assert_conserved(&pool);
            let mapped: Vec<BlockId> = sessions
                .iter()
                .flat_map(|(c, ..)| c.block_table().iter().copied())
                .collect();
            let unique: BTreeSet<usize> = mapped.iter().map(|b| b.index()).collect();
            for &b in &mapped {
                prop_assert!(pool.refcount(b) > 0, "mapped block must be live");
            }
            // Live = session-mapped blocks ∪ index-held blocks: at least the
            // unique mapped set, at most that plus one block per index node.
            prop_assert!(pool.live_blocks() >= unique.len());
            prop_assert!(pool.live_blocks() <= unique.len() + index.len());
            for (c, ..) in &sessions {
                let slots = c.allocated_blocks() * block_tokens;
                prop_assert!(slots >= c.resident_tokens());
                prop_assert!(slots < c.resident_tokens() + block_tokens);
                prop_assert!(c.shared_blocks() <= c.allocated_blocks());
            }
        }
        // Drain: sessions release, index evicts, nothing leaks.
        for (mut c, ..) in sessions {
            c.release(&mut pool);
        }
        index.evict_unreferenced(&mut pool);
        prop_assert_eq!(pool.live_blocks(), 0);
        prop_assert_eq!(index.len(), 0);
        assert_conserved(&pool);
    }

    // Refcounts hit zero exactly when the last referencing holder releases:
    // N sessions share one published prompt; every release before the last
    // keeps the shared blocks live, and only the final index eviction frees
    // them.
    #[test]
    fn refcounts_reach_zero_exactly_at_last_release(
        sessions in 2usize..6,
        block_tokens in 1usize..6,
        prompt_blocks in 1usize..4,
    ) {
        let (heads, kv_heads, embed) = (2usize, 1usize, 2usize);
        let mut pool = KvBlockPool::new(block_tokens, kv_heads, embed);
        let mut index = PrefixIndex::new(block_tokens);
        let prompt: Vec<u64> = (0..(prompt_blocks * block_tokens) as u64).collect();
        let mut caches = Vec::new();
        // First session publishes the prompt; the rest share it whole.
        for s in 0..sessions {
            let mut c = PagedKvCache::new(heads, kv_heads, embed, block_tokens).unwrap();
            let matched = c.open_with_prefix(&mut pool, &mut index, &prompt).unwrap();
            if s == 0 {
                prop_assert_eq!(matched, 0);
                for &t in &prompt {
                    let (k, v) = token_rows(t, kv_heads, embed);
                    c.append_with_prefix(&mut pool, &mut index, &k, &v).unwrap();
                }
            } else {
                prop_assert_eq!(matched, prompt.len());
            }
            caches.push(c);
        }
        let shared: Vec<BlockId> = caches[1].block_table().to_vec();
        prop_assert_eq!(shared.len(), prompt_blocks);
        for &b in &shared {
            // Every session + the index holds each shared block.
            prop_assert_eq!(pool.refcount(b), sessions as u32 + 1);
        }
        prop_assert_eq!(pool.live_blocks(), prompt_blocks);
        while let Some(mut c) = caches.pop() {
            c.release(&mut pool);
            let holders = caches.len() as u32 + 1; // remaining sessions + index
            for &b in &shared {
                prop_assert_eq!(pool.refcount(b), holders);
            }
            // Releasing a sharing session never frees a sibling's blocks.
            prop_assert_eq!(pool.live_blocks(), prompt_blocks);
        }
        // With sessions gone the index is the sole holder; eviction is what
        // finally returns the blocks.
        prop_assert_eq!(index.evict_unreferenced(&mut pool), prompt_blocks);
        for &b in &shared {
            prop_assert_eq!(pool.refcount(b), 0);
        }
        prop_assert_eq!(pool.live_blocks(), 0);
        assert_conserved(&pool);
    }

    // A copy-on-write clone never mutates the source block's bytes, for
    // both storage dtypes and any partial fill.
    #[test]
    fn cow_clone_never_mutates_the_source_block(
        block_tokens in 2usize..10,
        kv_heads in 1usize..3,
        f16 in 0usize..2,
        seed in 0u64..10_000,
    ) {
        let f16 = f16 == 1;
        let embed = 3;
        let heads = 2 * kv_heads;
        let mut rng = StdRng::seed_from_u64(seed);
        let filled = rng.gen_range(1..block_tokens + 1);
        let dtype = if f16 { KvDtype::F16 } else { KvDtype::F32 };
        let mut pool = KvBlockPool::new(block_tokens, kv_heads, embed).with_dtype(dtype);
        let mut cache = PagedKvCache::new(heads, kv_heads, embed, block_tokens).unwrap();
        for t in 0..filled as u64 {
            let (k, v) = token_rows(t, kv_heads, embed);
            cache.append(&mut pool, &k, &v).unwrap();
        }
        let src = cache.block_table()[0];
        let snapshot: Vec<u32> = (0..kv_heads)
            .flat_map(|h| match dtype {
                KvDtype::F32 => pool
                    .key_rows(src, h, 0, filled)
                    .iter()
                    .map(|x| x.to_bits())
                    .chain(pool.value_rows(src, h, 0, filled).iter().map(|x| x.to_bits()))
                    .collect::<Vec<u32>>(),
                KvDtype::F16 => pool
                    .key_bits(src, h, 0, filled)
                    .iter()
                    .map(|&b| u32::from(b))
                    .chain(pool.value_bits(src, h, 0, filled).iter().map(|&b| u32::from(b)))
                    .collect::<Vec<u32>>(),
            })
            .collect();
        let dst = pool.clone_block(src, filled).unwrap();
        prop_assert_ne!(dst, src);
        let read_back = |pool: &KvBlockPool, id: BlockId| -> Vec<u32> {
            (0..kv_heads)
                .flat_map(|h| match dtype {
                    KvDtype::F32 => pool
                        .key_rows(id, h, 0, filled)
                        .iter()
                        .map(|x| x.to_bits())
                        .chain(pool.value_rows(id, h, 0, filled).iter().map(|x| x.to_bits()))
                        .collect::<Vec<u32>>(),
                    KvDtype::F16 => pool
                        .key_bits(id, h, 0, filled)
                        .iter()
                        .map(|&b| u32::from(b))
                        .chain(pool.value_bits(id, h, 0, filled).iter().map(|&b| u32::from(b)))
                        .collect::<Vec<u32>>(),
                })
                .collect()
        };
        // The clone carries the source's bits and the source is untouched.
        prop_assert_eq!(read_back(&pool, dst), snapshot.clone());
        prop_assert_eq!(read_back(&pool, src), snapshot);
        prop_assert_eq!(pool.refcount(src), 1);
        prop_assert_eq!(pool.refcount(dst), 1);
        pool.free(dst);
        cache.release(&mut pool);
        assert_conserved(&pool);
    }

    // LRU eviction under pool pressure never frees a block a session still
    // references: while sharers are live, eviction finds nothing; once they
    // release, it frees exactly the index-held blocks.
    #[test]
    fn lru_eviction_never_frees_referenced_blocks(
        sharers in 1usize..4,
        block_tokens in 1usize..6,
        prompt_blocks in 1usize..4,
    ) {
        let (heads, kv_heads, embed) = (2usize, 1usize, 2usize);
        let mut pool = KvBlockPool::new(block_tokens, kv_heads, embed);
        let mut index = PrefixIndex::new(block_tokens);
        let prompt: Vec<u64> = (0..(prompt_blocks * block_tokens) as u64).collect();
        let mut publisher = PagedKvCache::new(heads, kv_heads, embed, block_tokens).unwrap();
        publisher.open_with_prefix(&mut pool, &mut index, &prompt).unwrap();
        for &t in &prompt {
            let (k, v) = token_rows(t, kv_heads, embed);
            publisher
                .append_with_prefix(&mut pool, &mut index, &k, &v)
                .unwrap();
        }
        let mut caches = vec![publisher];
        for _ in 0..sharers {
            let mut c = PagedKvCache::new(heads, kv_heads, embed, block_tokens).unwrap();
            prop_assert_eq!(
                c.open_with_prefix(&mut pool, &mut index, &prompt).unwrap(),
                prompt.len()
            );
            caches.push(c);
        }
        // Every indexed block has session holders, so LRU finds no victim.
        prop_assert_eq!(index.evict_lru(&mut pool), None);
        prop_assert_eq!(index.evict_unreferenced(&mut pool), 0);
        prop_assert_eq!(index.len(), prompt_blocks);
        prop_assert_eq!(pool.live_blocks(), prompt_blocks);
        for mut c in caches {
            c.release(&mut pool);
        }
        // Now index-only: eviction frees exactly those blocks, oldest first.
        prop_assert_eq!(index.evict_unreferenced(&mut pool), prompt_blocks);
        prop_assert_eq!(index.len(), 0);
        prop_assert_eq!(pool.live_blocks(), 0);
        assert_conserved(&pool);
    }
}
