//! Allocator invariant proptests for the paged KV block pool.
//!
//! For arbitrary interleavings of session opens, appends, window evictions,
//! releases and raw alloc/free traffic, the pool must conserve blocks
//! (`free + live == total` after every operation), reuse freed blocks
//! before growing the arena, and track a peak-live count that matches an
//! independent reference counter.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mas_tensor::paged::{BlockId, KvBlockPool, PagedKvCache};

/// Pool conservation: live + free must always equal the arena size.
fn assert_conserved(pool: &KvBlockPool) {
    assert_eq!(
        pool.live_blocks() + pool.free_blocks(),
        pool.total_blocks(),
        "block conservation violated"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Raw alloc/free interleavings against a reference counter.
    #[test]
    fn raw_alloc_free_interleavings_conserve_blocks(
        seed in 0u64..10_000,
        ops in 10usize..200,
        block_tokens in 1usize..20,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pool = KvBlockPool::new(block_tokens, 2, 4);
        let mut held: Vec<BlockId> = Vec::new();
        // Reference accounting: live count and its high-water mark.
        let mut ref_live = 0usize;
        let mut ref_peak = 0usize;
        let mut ref_total = 0usize;
        for _ in 0..ops {
            if held.is_empty() || rng.gen_range(0..100usize) < 60 {
                // Alloc. Growth may only happen when the free list is empty.
                let free_before = pool.free_blocks();
                let total_before = pool.total_blocks();
                let id = pool.alloc().unwrap();
                if free_before > 0 {
                    prop_assert_eq!(
                        pool.total_blocks(), total_before,
                        "pool grew while {} freed blocks were reusable", free_before
                    );
                } else {
                    prop_assert_eq!(pool.total_blocks(), total_before + 1);
                    ref_total += 1;
                }
                held.push(id);
                ref_live += 1;
                ref_peak = ref_peak.max(ref_live);
            } else {
                // Free a random held block.
                let idx = rng.gen_range(0..held.len());
                pool.free(held.swap_remove(idx));
                ref_live -= 1;
            }
            assert_conserved(&pool);
            prop_assert_eq!(pool.live_blocks(), ref_live);
            prop_assert_eq!(pool.peak_live_blocks(), ref_peak);
            prop_assert_eq!(pool.total_blocks(), ref_total);
        }
        // Drain: everything frees, nothing leaks.
        for id in held.drain(..) {
            pool.free(id);
        }
        prop_assert_eq!(pool.live_blocks(), 0);
        assert_conserved(&pool);
        prop_assert_eq!(pool.peak_live_blocks(), ref_peak);
    }

    // Session-level interleavings: opens, appends, windowed eviction and
    // releases over one shared pool never leak blocks, and per-session
    // block counts always cover exactly the resident tokens.
    #[test]
    fn session_interleavings_never_leak_blocks(
        seed in 0u64..10_000,
        ops in 20usize..160,
        block_tokens in 1usize..24,
        kv_heads in 1usize..4,
    ) {
        let embed = 3;
        let heads = 2 * kv_heads; // always a valid grouping
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pool = KvBlockPool::new(block_tokens, kv_heads, embed);
        let mut sessions: Vec<PagedKvCache> = Vec::new();
        let row = vec![0.5f32; kv_heads * embed];
        for _ in 0..ops {
            match rng.gen_range(0..100usize) {
                // Open a session, sometimes windowed.
                0..=19 => {
                    let mut cache =
                        PagedKvCache::new(heads, kv_heads, embed, block_tokens).unwrap();
                    if rng.gen_range(0..2usize) == 1 {
                        cache = cache.with_window(rng.gen_range(1..3 * block_tokens + 1));
                    }
                    sessions.push(cache);
                }
                // Append a burst of tokens to a random session.
                20..=79 if !sessions.is_empty() => {
                    let idx = rng.gen_range(0..sessions.len());
                    for _ in 0..rng.gen_range(1..2 * block_tokens + 1) {
                        sessions[idx].append(&mut pool, &row, &row).unwrap();
                    }
                }
                // Release a random session whole.
                _ if !sessions.is_empty() => {
                    let idx = rng.gen_range(0..sessions.len());
                    let mut cache = sessions.swap_remove(idx);
                    cache.release(&mut pool);
                    prop_assert_eq!(cache.allocated_blocks(), 0);
                }
                _ => {}
            }
            assert_conserved(&pool);
            // The pool's live blocks are exactly the sessions' tables.
            let table_blocks: usize = sessions.iter().map(PagedKvCache::allocated_blocks).sum();
            prop_assert_eq!(pool.live_blocks(), table_blocks);
            for s in &sessions {
                // Every resident token has a slot; waste is under one block
                // per session.
                let slots = s.allocated_blocks() * block_tokens;
                prop_assert!(slots >= s.resident_tokens());
                prop_assert!(slots < s.resident_tokens() + block_tokens);
                // The window bounds what decode attends, and whole-block
                // eviction keeps at most one stale block's worth of rows.
                if let Some(w) = s.window_tokens() {
                    prop_assert!(s.len() <= w);
                    prop_assert!(s.resident_tokens() < w + block_tokens);
                }
            }
        }
        // Releasing every remaining session returns the pool to empty.
        for mut s in sessions {
            s.release(&mut pool);
        }
        prop_assert_eq!(pool.live_blocks(), 0);
        assert_conserved(&pool);
    }

    // A bounded pool hands out exactly its capacity, then typed errors; a
    // free always restores exactly one allocation.
    #[test]
    fn bounded_pools_never_exceed_capacity(
        capacity in 1usize..12,
        block_tokens in 1usize..8,
    ) {
        let mut pool = KvBlockPool::new(block_tokens, 1, 2).with_max_blocks(capacity);
        let mut held = Vec::new();
        for _ in 0..capacity {
            held.push(pool.alloc().unwrap());
        }
        prop_assert!(pool.alloc().is_err());
        prop_assert_eq!(pool.live_blocks(), capacity);
        pool.free(held.pop().unwrap());
        prop_assert!(pool.alloc().is_ok());
        prop_assert!(pool.alloc().is_err());
        prop_assert_eq!(pool.peak_live_blocks(), capacity);
        assert_conserved(&pool);
    }
}
