//! Golden-data checking.
//!
//! "each workload in our experiments undergoes a rigorous golden data check
//! for all methods, including our proposed approach, ensuring that all methods
//! pass this validation" (paper §5.1). This module packages that check: a
//! candidate output is compared against the reference attention output with
//! both absolute and relative tolerances, and a structured verdict is
//! returned so experiment harnesses can record it.

use serde::{Deserialize, Serialize};

use crate::error::Result;
use crate::tensor::Tensor;

/// Tolerances for the golden-data comparison.
///
/// A candidate element `c` matches the golden element `g` if
/// `|c - g| <= abs_tol + rel_tol * |g|` — the standard mixed tolerance used by
/// numerical test suites. Defaults are generous enough for f32 accumulation
/// order differences between dataflows but tight enough to catch any actual
/// algorithmic error (which produces O(1) discrepancies).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Tolerance {
    /// Absolute tolerance floor.
    pub abs_tol: f32,
    /// Relative tolerance factor.
    pub rel_tol: f32,
}

impl Default for Tolerance {
    fn default() -> Self {
        Self {
            abs_tol: 1e-4,
            rel_tol: 1e-4,
        }
    }
}

impl Tolerance {
    /// A strict tolerance for comparing implementations expected to follow an
    /// identical accumulation order.
    #[must_use]
    pub fn strict() -> Self {
        Self {
            abs_tol: 1e-6,
            rel_tol: 1e-6,
        }
    }

    /// A loose tolerance for FP16-storage comparisons.
    #[must_use]
    pub fn half_precision() -> Self {
        Self {
            abs_tol: 5e-3,
            rel_tol: 5e-3,
        }
    }

    /// Whether the pair `(candidate, golden)` matches under this tolerance.
    #[must_use]
    pub fn matches(&self, candidate: f32, golden: f32) -> bool {
        if candidate == golden {
            return true;
        }
        if !candidate.is_finite() || !golden.is_finite() {
            return false;
        }
        (candidate - golden).abs() <= self.abs_tol + self.rel_tol * golden.abs()
    }
}

/// Result of a golden-data check.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GoldenReport {
    /// Whether every element matched within tolerance.
    pub passed: bool,
    /// Number of elements compared.
    pub elements: usize,
    /// Number of mismatching elements.
    pub mismatches: usize,
    /// Maximum absolute difference observed.
    pub max_abs_diff: f32,
    /// Maximum relative difference observed (0 when golden element is 0).
    pub max_rel_diff: f32,
    /// Index `(b, h, r, c)` of the worst mismatch, if any element mismatched.
    pub worst_index: Option<[usize; 4]>,
}

impl GoldenReport {
    /// A report for a zero-element comparison (always passes).
    #[must_use]
    pub fn empty() -> Self {
        Self {
            passed: true,
            elements: 0,
            mismatches: 0,
            max_abs_diff: 0.0,
            max_rel_diff: 0.0,
            worst_index: None,
        }
    }
}

/// Compares `candidate` against `golden` element-by-element.
///
/// # Errors
///
/// Returns a [`crate::TensorError::ShapeMismatch`] if shapes differ.
pub fn golden_check(candidate: &Tensor, golden: &Tensor, tol: Tolerance) -> Result<GoldenReport> {
    // Reuse the shape check from max_abs_diff.
    candidate.max_abs_diff(golden)?;

    // Single pass over the contiguous storage; the 4-D index of the worst
    // mismatch is reconstructed from its flat offset afterwards.
    let [_, h_n, r_n, c_n] = golden.shape().dims();
    let mut report = GoldenReport::empty();
    report.elements = golden.shape().volume();
    let mut worst_abs = -1.0f32;
    let mut worst_flat = 0usize;
    for (i, (&x, &g)) in candidate
        .data()
        .iter()
        .zip(golden.data().iter())
        .enumerate()
    {
        let abs = (x - g).abs();
        let rel = if g != 0.0 { abs / g.abs() } else { 0.0 };
        report.max_abs_diff = report.max_abs_diff.max(abs);
        report.max_rel_diff = report.max_rel_diff.max(rel);
        if !tol.matches(x, g) {
            report.mismatches += 1;
            // A NaN difference (either side NaN) is the most severe defect:
            // rank it above every finite mismatch when picking the worst.
            let severity = if abs.is_nan() { f32::INFINITY } else { abs };
            if severity > worst_abs {
                worst_abs = severity;
                worst_flat = i;
            }
        }
    }
    if report.mismatches > 0 {
        let c = worst_flat % c_n;
        let r = (worst_flat / c_n) % r_n;
        let h = (worst_flat / (c_n * r_n)) % h_n;
        let b = worst_flat / (c_n * r_n * h_n);
        report.worst_index = Some([b, h, r, c]);
    }
    report.passed = report.mismatches == 0;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::random_tensor;
    use crate::shape::Shape;

    fn shape(b: usize, h: usize, r: usize, c: usize) -> Shape {
        Shape::new(b, h, r, c).unwrap()
    }

    #[test]
    fn identical_tensors_pass() {
        let t = random_tensor(shape(1, 2, 4, 4), 1.0, 3);
        let report = golden_check(&t, &t, Tolerance::strict()).unwrap();
        assert!(report.passed);
        assert_eq!(report.mismatches, 0);
        assert_eq!(report.elements, 32);
        assert!(report.worst_index.is_none());
    }

    #[test]
    fn small_perturbation_within_default_tolerance_passes() {
        let t = random_tensor(shape(1, 1, 4, 4), 1.0, 4);
        let mut c = t.clone();
        for v in c.data_mut() {
            *v += 1e-6;
        }
        let report = golden_check(&c, &t, Tolerance::default()).unwrap();
        assert!(report.passed);
        assert!(report.max_abs_diff > 0.0);
    }

    #[test]
    fn large_error_is_detected_and_located() {
        let t = Tensor::full(shape(1, 1, 2, 2), 1.0);
        let mut c = t.clone();
        c.set(0, 0, 1, 0, 2.0).unwrap();
        let report = golden_check(&c, &t, Tolerance::default()).unwrap();
        assert!(!report.passed);
        assert_eq!(report.mismatches, 1);
        assert_eq!(report.worst_index, Some([0, 0, 1, 0]));
        assert!((report.max_abs_diff - 1.0).abs() < 1e-6);
        assert!((report.max_rel_diff - 1.0).abs() < 1e-6);
    }

    #[test]
    fn nan_never_matches() {
        let t = Tensor::full(shape(1, 1, 1, 1), 1.0);
        let mut c = t.clone();
        c.set(0, 0, 0, 0, f32::NAN).unwrap();
        let report = golden_check(&c, &t, Tolerance::default()).unwrap();
        assert!(!report.passed);
    }

    #[test]
    fn nan_mismatch_is_ranked_worst() {
        // A NaN mismatch must win the worst-index slot over a larger-looking
        // finite mismatch, wherever it appears.
        let golden = Tensor::full(shape(1, 1, 1, 4), 1.0);
        let mut c = golden.clone();
        c.set(0, 0, 0, 1, 5.0).unwrap();
        c.set(0, 0, 0, 2, f32::NAN).unwrap();
        let report = golden_check(&c, &golden, Tolerance::default()).unwrap();
        assert_eq!(report.mismatches, 2);
        assert_eq!(report.worst_index, Some([0, 0, 0, 2]));

        // NaN on the golden side is located too.
        let mut g2 = golden.clone();
        g2.set(0, 0, 0, 3, f32::NAN).unwrap();
        let report = golden_check(&golden, &g2, Tolerance::default()).unwrap();
        assert_eq!(report.mismatches, 1);
        assert_eq!(report.worst_index, Some([0, 0, 0, 3]));
    }

    #[test]
    fn shape_mismatch_errors() {
        let a = Tensor::zeros(shape(1, 1, 2, 2));
        let b = Tensor::zeros(shape(1, 1, 2, 3));
        assert!(golden_check(&a, &b, Tolerance::default()).is_err());
    }

    #[test]
    fn tolerance_presets_are_ordered() {
        let strict = Tolerance::strict();
        let default = Tolerance::default();
        let half = Tolerance::half_precision();
        assert!(strict.abs_tol < default.abs_tol);
        assert!(default.abs_tol < half.abs_tol);
        assert!(strict.matches(1.0, 1.0));
        assert!(half.matches(1.0, 1.003));
        assert!(!strict.matches(1.0, 1.003));
    }
}
