//! Error types for tensor operations.

use std::fmt;

use crate::shape::Shape;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, TensorError>;

/// Errors produced by tensor construction and kernel execution.
#[derive(Debug, Clone, PartialEq)]
pub enum TensorError {
    /// The number of provided elements does not match the shape volume.
    DataLengthMismatch {
        /// Number of elements the shape requires.
        expected: usize,
        /// Number of elements actually supplied.
        actual: usize,
    },
    /// Two tensors that must share a shape do not.
    ShapeMismatch {
        /// Shape of the left-hand operand.
        left: Shape,
        /// Shape of the right-hand operand.
        right: Shape,
        /// Human-readable description of the operation that failed.
        op: &'static str,
    },
    /// Inner dimensions of a matrix multiplication do not agree.
    MatmulDimMismatch {
        /// Columns of the left operand.
        left_cols: usize,
        /// Rows (contracted dimension) of the right operand.
        right_rows: usize,
    },
    /// An index was out of bounds for the tensor shape.
    IndexOutOfBounds {
        /// The offending index, as `(b, h, n, e)`.
        index: [usize; 4],
        /// The tensor shape.
        shape: Shape,
    },
    /// A block/tile request exceeded the tensor bounds.
    BlockOutOfBounds {
        /// Start offsets of the requested block.
        start: [usize; 4],
        /// Lengths of the requested block.
        len: [usize; 4],
        /// The tensor shape.
        shape: Shape,
    },
    /// A dimension that must be non-zero was zero.
    ZeroDimension {
        /// Name of the zero dimension.
        dim: &'static str,
    },
    /// A tiling parameter was invalid for the given extent.
    InvalidTile {
        /// Name of the dimension being tiled.
        dim: &'static str,
        /// Requested tile size.
        tile: usize,
        /// Extent of the dimension.
        extent: usize,
    },
    /// A grouped-query head configuration was invalid: `kv_heads` must be
    /// non-zero and divide the query head count (`kv_heads == heads` is plain
    /// MHA, `kv_heads == 1` is MQA).
    InvalidHeadGrouping {
        /// Query head count.
        heads: usize,
        /// Shared key/value head count.
        kv_heads: usize,
    },
    /// A KV block allocation failed because the bounded pool is full.
    BlockPoolExhausted {
        /// Capacity of the pool in blocks.
        capacity_blocks: usize,
    },
    /// Two paged-KV objects that must share a block geometry do not.
    BlockGeometryMismatch {
        /// Human-readable description of the mismatching parameter.
        param: &'static str,
        /// Value held by the pool.
        pool: usize,
        /// Value held by the cache.
        cache: usize,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::DataLengthMismatch { expected, actual } => write!(
                f,
                "data length mismatch: shape requires {expected} elements, got {actual}"
            ),
            TensorError::ShapeMismatch { left, right, op } => {
                write!(f, "shape mismatch in {op}: {left} vs {right}")
            }
            TensorError::MatmulDimMismatch {
                left_cols,
                right_rows,
            } => write!(
                f,
                "matmul inner dimension mismatch: left has {left_cols} columns, right has {right_rows} rows"
            ),
            TensorError::IndexOutOfBounds { index, shape } => write!(
                f,
                "index {index:?} out of bounds for tensor of shape {shape}"
            ),
            TensorError::BlockOutOfBounds { start, len, shape } => write!(
                f,
                "block starting at {start:?} with lengths {len:?} exceeds tensor of shape {shape}"
            ),
            TensorError::ZeroDimension { dim } => {
                write!(f, "dimension `{dim}` must be non-zero")
            }
            TensorError::InvalidTile { dim, tile, extent } => write!(
                f,
                "invalid tile size {tile} for dimension `{dim}` of extent {extent}"
            ),
            TensorError::InvalidHeadGrouping { heads, kv_heads } => write!(
                f,
                "invalid head grouping: {kv_heads} KV heads must be non-zero and divide {heads} query heads"
            ),
            TensorError::BlockPoolExhausted { capacity_blocks } => write!(
                f,
                "block pool exhausted: all {capacity_blocks} KV blocks are live"
            ),
            TensorError::BlockGeometryMismatch { param, pool, cache } => write!(
                f,
                "paged KV geometry mismatch on `{param}`: pool has {pool}, cache has {cache}"
            ),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let errors = vec![
            TensorError::DataLengthMismatch {
                expected: 4,
                actual: 2,
            },
            TensorError::MatmulDimMismatch {
                left_cols: 3,
                right_rows: 5,
            },
            TensorError::ZeroDimension { dim: "heads" },
            TensorError::InvalidTile {
                dim: "n_q",
                tile: 0,
                extent: 8,
            },
            TensorError::InvalidHeadGrouping {
                heads: 8,
                kv_heads: 3,
            },
            TensorError::BlockPoolExhausted { capacity_blocks: 4 },
            TensorError::BlockGeometryMismatch {
                param: "block_tokens",
                pool: 16,
                cache: 8,
            },
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            let first = s.chars().next().unwrap();
            assert!(
                first.is_lowercase(),
                "error message should start lowercase: {s}"
            );
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
