//! KV-cache streaming for autoregressive decode.
//!
//! Prefill attention (the paper's workload class) computes all `N` query rows
//! against all `N` key/value rows in one kernel. Autoregressive *decode*
//! instead produces one token per step: the new token's `K`/`V` rows are
//! appended to a per-session cache and the single new query row attends over
//! every cached row. With FlashAttention-style online softmax the step is a
//! single sweep over the cache — `O(t·E)` work at context length `t`, versus
//! `O(t²·E)` for re-running prefill over the whole sequence each step.
//!
//! Two pieces implement that here:
//!
//! * [`KvCache`] — appendable per-head `K`/`V` row storage with optional
//!   sliding-window capacity and eviction accounting. Rows are contiguous
//!   per head, so the decode kernel runs on the same
//!   [`dot`](crate::matmul::dot)/[`axpy`](crate::matmul::axpy) slice
//!   primitives as the prefill executors in [`crate::tiled`].
//! * [`decode_attention`] — one decode step: for each head, an
//!   online-softmax sweep of the single query row over the cached rows.
//!
//! The differential harness in `tests/decode_vs_prefill.rs` pins every decode
//! step against the full-prefill oracle
//! ([`fused_online_attention`](crate::tiled::fused_online_attention)) within
//! [`golden_check`](crate::golden::golden_check) tolerance.

use serde::{Deserialize, Serialize};

use crate::error::{Result, TensorError};
use crate::matmul::{axpy, dot};

/// Appendable per-session key/value cache for autoregressive decode.
///
/// Storage is one contiguous row-major `len × embed` matrix per head for `K`
/// and one for `V` — the decode kernel's inner loops borrow whole-cache row
/// slices per head, exactly like the `(batch, head)` slices of the prefill
/// executors.
///
/// An optional capacity turns the cache into a sliding window: appending
/// beyond `capacity_tokens` evicts the oldest rows first (StreamingLLM-style
/// recency window) and the eviction count is tracked so serving layers can
/// report cache pressure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KvCache {
    heads: usize,
    embed: usize,
    capacity_tokens: Option<usize>,
    /// Per-head contiguous `len × embed` key rows.
    k: Vec<Vec<f32>>,
    /// Per-head contiguous `len × embed` value rows.
    v: Vec<Vec<f32>>,
    appended_tokens: usize,
    evicted_tokens: usize,
}

impl KvCache {
    /// Creates an unbounded cache for `heads` heads of `embed`-wide rows.
    ///
    /// # Panics
    ///
    /// Panics if `heads` or `embed` is zero.
    #[must_use]
    pub fn new(heads: usize, embed: usize) -> Self {
        assert!(
            heads > 0 && embed > 0,
            "KV cache dimensions must be non-zero"
        );
        Self {
            heads,
            embed,
            capacity_tokens: None,
            k: vec![Vec::new(); heads],
            v: vec![Vec::new(); heads],
            appended_tokens: 0,
            evicted_tokens: 0,
        }
    }

    /// Creates a sliding-window cache holding at most `capacity_tokens`
    /// tokens; appends beyond the capacity evict the oldest rows.
    ///
    /// # Panics
    ///
    /// Panics if any dimension or the capacity is zero.
    #[must_use]
    pub fn with_capacity(heads: usize, embed: usize, capacity_tokens: usize) -> Self {
        assert!(capacity_tokens > 0, "KV cache capacity must be non-zero");
        Self {
            capacity_tokens: Some(capacity_tokens),
            ..Self::new(heads, embed)
        }
    }

    /// Number of attention heads.
    #[must_use]
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Per-head embedding width of each cached row.
    #[must_use]
    pub fn embed(&self) -> usize {
        self.embed
    }

    /// The sliding-window capacity in tokens (`None` = unbounded).
    #[must_use]
    pub fn capacity_tokens(&self) -> Option<usize> {
        self.capacity_tokens
    }

    /// Number of tokens currently resident.
    #[must_use]
    pub fn len(&self) -> usize {
        self.k[0].len() / self.embed
    }

    /// Whether no tokens are cached yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.k[0].is_empty()
    }

    /// Total tokens ever appended (resident plus evicted).
    #[must_use]
    pub fn appended_tokens(&self) -> usize {
        self.appended_tokens
    }

    /// Tokens evicted by the sliding window so far.
    #[must_use]
    pub fn evicted_tokens(&self) -> usize {
        self.evicted_tokens
    }

    /// Bytes of resident `K` plus `V` rows at `element_bytes` per element —
    /// the footprint a serving layer charges against its device KV budget.
    #[must_use]
    pub fn kv_bytes(&self, element_bytes: usize) -> usize {
        2 * self.heads * self.len() * self.embed * element_bytes
    }

    /// Appends one token: `k_step` and `v_step` hold the new row for every
    /// head, concatenated head-major (`heads × embed` values each, the same
    /// layout as one row of a `(1, H, N, E)` tensor per head). Evicts the
    /// oldest token first when the sliding window is full.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DataLengthMismatch`] if either slice is not
    /// exactly `heads · embed` long.
    pub fn append(&mut self, k_step: &[f32], v_step: &[f32]) -> Result<()> {
        let expected = self.heads * self.embed;
        for step in [k_step, v_step] {
            if step.len() != expected {
                return Err(TensorError::DataLengthMismatch {
                    expected,
                    actual: step.len(),
                });
            }
        }
        if let Some(capacity) = self.capacity_tokens {
            if self.len() == capacity {
                for h in 0..self.heads {
                    self.k[h].drain(..self.embed);
                    self.v[h].drain(..self.embed);
                }
                self.evicted_tokens += 1;
            }
        }
        for h in 0..self.heads {
            self.k[h].extend_from_slice(&k_step[h * self.embed..(h + 1) * self.embed]);
            self.v[h].extend_from_slice(&v_step[h * self.embed..(h + 1) * self.embed]);
        }
        self.appended_tokens += 1;
        Ok(())
    }

    /// The contiguous `len × embed` key rows of head `h` (oldest first).
    ///
    /// # Panics
    ///
    /// Panics if `h` is out of range.
    #[must_use]
    pub fn key_rows(&self, h: usize) -> &[f32] {
        &self.k[h]
    }

    /// The contiguous `len × embed` value rows of head `h` (oldest first).
    ///
    /// # Panics
    ///
    /// Panics if `h` is out of range.
    #[must_use]
    pub fn value_rows(&self, h: usize) -> &[f32] {
        &self.v[h]
    }
}

/// One autoregressive decode step: the single query row of each head attends
/// over every cached `K`/`V` row with an online softmax, writing the
/// attention output into `out`.
///
/// `q_step` and `out` are head-major `heads × embed` slices (the same layout
/// [`KvCache::append`] takes). The sweep keeps a running maximum `m` and
/// denominator `d` per head and rescales the output accumulator by
/// `exp(m_old − m_new)` whenever the maximum grows — identical arithmetic to
/// [`fused_online_attention`](crate::tiled::fused_online_attention) with a
/// one-row query block and single-row sub-tiles, which is why the two agree
/// within floating-point tolerance (pinned by the differential harness).
/// Cost is `O(len · embed)` per head.
///
/// # Errors
///
/// Returns [`TensorError::DataLengthMismatch`] if `q_step` or `out` is not
/// `heads · embed` long, or [`TensorError::ZeroDimension`] if the cache is
/// empty (a query attending over zero keys has no defined softmax).
pub fn decode_attention(cache: &KvCache, q_step: &[f32], out: &mut [f32]) -> Result<()> {
    let (heads, embed) = (cache.heads(), cache.embed());
    let expected = heads * embed;
    if q_step.len() != expected || out.len() != expected {
        return Err(TensorError::DataLengthMismatch {
            expected,
            actual: if q_step.len() != expected {
                q_step.len()
            } else {
                out.len()
            },
        });
    }
    if cache.is_empty() {
        return Err(TensorError::ZeroDimension { dim: "kv_cache" });
    }
    let len = cache.len();
    for h in 0..heads {
        let q_row = &q_step[h * embed..(h + 1) * embed];
        let o_row = &mut out[h * embed..(h + 1) * embed];
        o_row.fill(0.0);
        let keys = cache.key_rows(h);
        let vals = cache.value_rows(h);
        let mut row_max = f32::NEG_INFINITY;
        let mut denom = 0.0f32;
        for t in 0..len {
            let score = dot(q_row, &keys[t * embed..(t + 1) * embed]);
            if score > row_max {
                let correction = if row_max.is_finite() {
                    (row_max - score).exp()
                } else {
                    0.0
                };
                denom *= correction;
                for ov in o_row.iter_mut() {
                    *ov *= correction;
                }
                row_max = score;
            }
            let w = (score - row_max).exp();
            denom += w;
            axpy(w, &vals[t * embed..(t + 1) * embed], o_row);
        }
        let inv = 1.0 / denom;
        for ov in o_row.iter_mut() {
            *ov *= inv;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::random_qkv;
    use crate::tiled::{fused_online_attention, TileSizes};

    /// Runs `t` decode steps over the rows of seeded `(1, H, t, E)` tensors,
    /// returning the stacked per-step outputs.
    fn decode_all_steps(heads: usize, t: usize, embed: usize, seed: u64) -> Vec<Vec<f32>> {
        let (q, k, v) = random_qkv(1, heads, t, embed, seed);
        let mut cache = KvCache::new(heads, embed);
        let mut outs = Vec::with_capacity(t);
        for step in 0..t {
            let row_of = |tensor: &crate::Tensor| -> Vec<f32> {
                (0..heads)
                    .flat_map(|h| tensor.row(0, h, step).to_vec())
                    .collect()
            };
            cache.append(&row_of(&k), &row_of(&v)).unwrap();
            let mut out = vec![0.0f32; heads * embed];
            decode_attention(&cache, &row_of(&q), &mut out).unwrap();
            outs.push(out);
        }
        outs
    }

    #[test]
    fn append_grows_and_reports_bytes() {
        let mut cache = KvCache::new(2, 4);
        assert!(cache.is_empty());
        cache.append(&[1.0; 8], &[2.0; 8]).unwrap();
        cache.append(&[3.0; 8], &[4.0; 8]).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.appended_tokens(), 2);
        assert_eq!(cache.evicted_tokens(), 0);
        assert_eq!(cache.kv_bytes(2), 2 * 2 * 2 * 4 * 2);
        assert_eq!(cache.key_rows(0), &[1.0, 1.0, 1.0, 1.0, 3.0, 3.0, 3.0, 3.0]);
        assert_eq!(cache.value_rows(1).len(), 8);
    }

    #[test]
    fn wrong_row_width_is_rejected() {
        let mut cache = KvCache::new(2, 4);
        assert!(matches!(
            cache.append(&[0.0; 7], &[0.0; 8]),
            Err(TensorError::DataLengthMismatch {
                expected: 8,
                actual: 7
            })
        ));
        assert!(cache.is_empty(), "failed append must not partially apply");
    }

    #[test]
    fn sliding_window_evicts_oldest_rows() {
        let mut cache = KvCache::with_capacity(1, 2, 2);
        for t in 0..4 {
            let row = [t as f32, t as f32];
            cache.append(&row, &row).unwrap();
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.appended_tokens(), 4);
        assert_eq!(cache.evicted_tokens(), 2);
        // Only the two newest tokens remain, oldest first.
        assert_eq!(cache.key_rows(0), &[2.0, 2.0, 3.0, 3.0]);
    }

    #[test]
    fn decode_on_empty_cache_is_an_error() {
        let cache = KvCache::new(1, 2);
        let mut out = [0.0f32; 2];
        assert!(matches!(
            decode_attention(&cache, &[1.0, 0.0], &mut out),
            Err(TensorError::ZeroDimension { .. })
        ));
    }

    #[test]
    fn single_token_decode_returns_its_value_row() {
        // With one cached token the softmax weight is 1 regardless of score.
        let mut cache = KvCache::new(2, 3);
        cache
            .append(&[9.0; 6], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
            .unwrap();
        let mut out = [0.0f32; 6];
        decode_attention(&cache, &[0.5; 6], &mut out).unwrap();
        assert_eq!(out, [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn final_decode_step_matches_full_prefill_oracle() {
        let (heads, t, embed, seed) = (3, 12, 8, 17);
        let outs = decode_all_steps(heads, t, embed, seed);
        let (q, k, v) = random_qkv(1, heads, t, embed, seed);
        let tiles = TileSizes::new(4, 3, t).unwrap();
        let oracle = fused_online_attention(&q, &k, &v, tiles).unwrap();
        // The last step's query attends over the full t-token context — the
        // same computation as oracle row t-1.
        let last = &outs[t - 1];
        for h in 0..heads {
            let oracle_row = oracle.row(0, h, t - 1);
            for (c, &ov) in oracle_row.iter().enumerate() {
                assert!(
                    (last[h * embed + c] - ov).abs() < 1e-4,
                    "head {h} col {c}: decode {} vs oracle {ov}",
                    last[h * embed + c]
                );
            }
        }
    }

    #[test]
    fn every_decode_step_matches_its_prefix_oracle() {
        let (heads, t, embed, seed) = (2, 9, 4, 23);
        let outs = decode_all_steps(heads, t, embed, seed);
        let (q, k, v) = random_qkv(1, heads, t, embed, seed);
        for (step, out) in outs.iter().enumerate() {
            let prefix = step + 1;
            let sub = |t: &crate::Tensor| t.block([0, 0, 0, 0], [1, heads, prefix, embed]).unwrap();
            let tiles = TileSizes::new(prefix, 1, prefix).unwrap();
            let oracle = fused_online_attention(&sub(&q), &sub(&k), &sub(&v), tiles).unwrap();
            for h in 0..heads {
                let oracle_row = oracle.row(0, h, step);
                for (c, &ov) in oracle_row.iter().enumerate() {
                    assert!(
                        (out[h * embed + c] - ov).abs() < 1e-4,
                        "step {step} head {h} col {c}"
                    );
                }
            }
        }
    }
}
