//! KV-cache streaming for autoregressive decode.
//!
//! Prefill attention (the paper's workload class) computes all `N` query rows
//! against all `N` key/value rows in one kernel. Autoregressive *decode*
//! instead produces one token per step: the new token's `K`/`V` rows are
//! appended to a per-session cache and the single new query row attends over
//! every cached row. With FlashAttention-style online softmax the step is a
//! single sweep over the cache — `O(t·E)` work at context length `t`, versus
//! `O(t²·E)` for re-running prefill over the whole sequence each step.
//!
//! Two pieces implement that here:
//!
//! * [`KvCache`] — appendable per-head `K`/`V` row storage with optional
//!   sliding-window capacity and eviction accounting. Rows are contiguous
//!   per head, so the decode kernel runs on the same
//!   [`dot`](crate::matmul::dot)/[`axpy`](crate::matmul::axpy) slice
//!   primitives as the prefill executors in [`crate::tiled`].
//! * [`decode_attention`] — one decode step: for each head, an
//!   online-softmax sweep of the single query row over the cached rows.
//!
//! ## Grouped-query head sharing (GQA / MQA)
//!
//! Both caches support *grouped-query attention*: `kv_heads ≤ heads` shared
//! key/value heads, each read by a group of `heads / kv_heads` query heads
//! ([`KvCache::grouped`]). `kv_heads == heads` is plain multi-head attention
//! and `kv_heads == 1` is multi-query attention; invalid groupings are
//! rejected with [`TensorError::InvalidHeadGrouping`], never a panic. Head
//! sharing shrinks KV residency by `kv_heads / heads` without changing the
//! per-query-head arithmetic — query head `h` computes bit-identically to an
//! MHA cache whose K/V heads were replicated per group (the oracle
//! [`expand_kv_heads`] builds, pinned by the GQA differential tests).
//!
//! Block-granular (paged) KV storage lives in [`crate::paged`]; its
//! [`decode_attention_paged`](crate::paged::decode_attention_paged) kernel
//! shares the per-row online-softmax sweep ([`OnlineDecodeState`]) with
//! [`decode_attention`], which is why the two paths are bit-identical.
//!
//! The differential harness in `tests/decode_vs_prefill.rs` pins every decode
//! step against the full-prefill oracle
//! ([`fused_online_attention`](crate::tiled::fused_online_attention)) within
//! [`golden_check`](crate::golden::golden_check) tolerance.

use serde::{Deserialize, Serialize};

use crate::error::{Result, TensorError};
use crate::half::{f32_to_f16_bits_saturating, KvDtype};
use crate::matmul::{axpy, dot};
use crate::simd;
use crate::tensor::Tensor;

/// Tokens widened per scratch refill when sweeping an f16 cache: the stored
/// `u16` rows are expanded to f32 in runs of this many tokens (the unit a
/// device DMA engine would stream), bounding scratch at
/// `2 × F16_TILE_TOKENS × embed` floats per decode call.
pub const F16_TILE_TOKENS: usize = 64;

/// Validates a grouped-query head configuration.
///
/// # Errors
///
/// Returns [`TensorError::InvalidHeadGrouping`] unless `kv_heads` is
/// non-zero, at most `heads` and divides `heads`.
pub fn check_head_grouping(heads: usize, kv_heads: usize) -> Result<()> {
    if kv_heads == 0 || kv_heads > heads || !heads.is_multiple_of(kv_heads) {
        return Err(TensorError::InvalidHeadGrouping { heads, kv_heads });
    }
    Ok(())
}

/// Replicates the `kv_heads` heads of a `(B, kv_heads, N, E)` tensor into a
/// `(B, heads, N, E)` tensor where query head `h` holds a copy of KV head
/// `h / (heads / kv_heads)` — the head-replicated MHA oracle grouped-query
/// attention is checked against.
///
/// # Errors
///
/// Returns [`TensorError::InvalidHeadGrouping`] if `heads` is not a multiple
/// of the tensor's head count.
pub fn expand_kv_heads(src: &Tensor, heads: usize) -> Result<Tensor> {
    let [b, kv_heads, n, e] = src.shape().dims();
    check_head_grouping(heads, kv_heads)?;
    let group = heads / kv_heads;
    let mut out = Tensor::zeros(crate::Shape::new(b, heads, n, e)?);
    for bi in 0..b {
        for h in 0..heads {
            let src_slice = src.slice(bi, h / group);
            out.slice_mut(bi, h).copy_from_slice(src_slice);
        }
    }
    Ok(out)
}

/// Running online-softmax state of one query row's sweep over cached
/// `K`/`V` rows: the running maximum, the softmax denominator and the
/// unnormalized output accumulator.
///
/// Both the contiguous ([`decode_attention`]) and the paged
/// ([`crate::paged::decode_attention_paged`]) decode kernels drive this
/// state row by row in cache order, which makes them bit-identical: the
/// arithmetic is a pure function of the visited row sequence, not of the
/// storage layout. It is the same rescaling recurrence as
/// [`fused_online_attention`](crate::tiled::fused_online_attention) with a
/// one-row query block and single-row sub-tiles.
#[derive(Debug)]
pub struct OnlineDecodeState<'a> {
    q_row: &'a [f32],
    o_row: &'a mut [f32],
    row_max: f32,
    denom: f32,
}

impl<'a> OnlineDecodeState<'a> {
    /// Starts a sweep for one query row, clearing the output accumulator.
    pub fn new(q_row: &'a [f32], o_row: &'a mut [f32]) -> Self {
        o_row.fill(0.0);
        Self {
            q_row,
            o_row,
            row_max: f32::NEG_INFINITY,
            denom: 0.0,
        }
    }

    /// Feeds a contiguous run of `K`/`V` rows (`len × embed` each, oldest
    /// first) into the sweep.
    pub fn update(&mut self, keys: &[f32], vals: &[f32]) {
        let embed = self.q_row.len();
        debug_assert_eq!(keys.len(), vals.len());
        debug_assert!(keys.len().is_multiple_of(embed));
        for t in 0..keys.len() / embed {
            let score = dot(self.q_row, &keys[t * embed..(t + 1) * embed]);
            if score > self.row_max {
                let correction = if self.row_max.is_finite() {
                    (self.row_max - score).exp()
                } else {
                    0.0
                };
                self.denom *= correction;
                simd::scale(correction, self.o_row);
                self.row_max = score;
            }
            let w = (score - self.row_max).exp();
            self.denom += w;
            axpy(w, &vals[t * embed..(t + 1) * embed], self.o_row);
        }
    }

    /// Normalizes the accumulator by the softmax denominator, finishing the
    /// sweep.
    pub fn finish(self) {
        simd::scale(1.0 / self.denom, self.o_row);
    }
}

/// Appendable per-session key/value cache for autoregressive decode.
///
/// Storage is one contiguous row-major `len × embed` matrix per KV head for
/// `K` and one for `V` — the decode kernel's inner loops borrow whole-cache
/// row slices per head, exactly like the `(batch, head)` slices of the
/// prefill executors.
///
/// An optional capacity turns the cache into a sliding window: appending
/// beyond `capacity_tokens` evicts the oldest rows first (StreamingLLM-style
/// recency window) and the eviction count is tracked so serving layers can
/// report cache pressure.
///
/// With [`KvCache::grouped`] the cache stores `kv_heads < heads` shared
/// K/V heads; [`KvCache::append`] then takes `kv_heads · embed`-wide rows
/// while [`decode_attention`] still takes `heads · embed`-wide queries.
///
/// Storage precision is selectable with [`KvCache::with_dtype`]: under
/// [`KvDtype::F16`] rows live in the `u16` arenas as binary16 bits (written
/// through [`f32_to_f16_bits_saturating`], 2 bytes/element) and the decode
/// sweep widens them back to f32 in [`F16_TILE_TOKENS`]-token runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KvCache {
    heads: usize,
    kv_heads: usize,
    embed: usize,
    capacity_tokens: Option<usize>,
    dtype: KvDtype,
    /// Per-KV-head contiguous `len × embed` key rows (`F32` storage).
    k: Vec<Vec<f32>>,
    /// Per-KV-head contiguous `len × embed` value rows (`F32` storage).
    v: Vec<Vec<f32>>,
    /// Per-KV-head contiguous key rows as binary16 bits (`F16` storage).
    k16: Vec<Vec<u16>>,
    /// Per-KV-head contiguous value rows as binary16 bits (`F16` storage).
    v16: Vec<Vec<u16>>,
    appended_tokens: usize,
    evicted_tokens: usize,
}

impl KvCache {
    /// Creates an unbounded MHA cache (`kv_heads == heads`) for `heads`
    /// heads of `embed`-wide rows.
    ///
    /// # Panics
    ///
    /// Panics if `heads` or `embed` is zero.
    #[must_use]
    pub fn new(heads: usize, embed: usize) -> Self {
        assert!(
            heads > 0 && embed > 0,
            "KV cache dimensions must be non-zero"
        );
        Self {
            heads,
            kv_heads: heads,
            embed,
            capacity_tokens: None,
            dtype: KvDtype::F32,
            k: vec![Vec::new(); heads],
            v: vec![Vec::new(); heads],
            k16: vec![Vec::new(); heads],
            v16: vec![Vec::new(); heads],
            appended_tokens: 0,
            evicted_tokens: 0,
        }
    }

    /// Creates an unbounded grouped-query cache: `kv_heads` shared K/V heads
    /// read by `heads` query heads (`heads / kv_heads` queries per group).
    /// `kv_heads == heads` is plain MHA, `kv_heads == 1` is MQA.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidHeadGrouping`] if `kv_heads` is zero,
    /// exceeds `heads` or does not divide it.
    ///
    /// # Panics
    ///
    /// Panics if `heads` or `embed` is zero.
    pub fn grouped(heads: usize, kv_heads: usize, embed: usize) -> Result<Self> {
        assert!(
            heads > 0 && embed > 0,
            "KV cache dimensions must be non-zero"
        );
        check_head_grouping(heads, kv_heads)?;
        Ok(Self {
            kv_heads,
            k: vec![Vec::new(); kv_heads],
            v: vec![Vec::new(); kv_heads],
            k16: vec![Vec::new(); kv_heads],
            v16: vec![Vec::new(); kv_heads],
            ..Self::new(heads, embed)
        })
    }

    /// Creates a sliding-window MHA cache holding at most `capacity_tokens`
    /// tokens; appends beyond the capacity evict the oldest rows.
    ///
    /// # Panics
    ///
    /// Panics if any dimension or the capacity is zero.
    #[must_use]
    pub fn with_capacity(heads: usize, embed: usize, capacity_tokens: usize) -> Self {
        Self::new(heads, embed).with_window(capacity_tokens)
    }

    /// Turns the cache into a sliding window of at most `capacity_tokens`
    /// tokens (applies to grouped caches too).
    ///
    /// # Panics
    ///
    /// Panics if `capacity_tokens` is zero.
    #[must_use]
    pub fn with_window(mut self, capacity_tokens: usize) -> Self {
        assert!(capacity_tokens > 0, "KV cache capacity must be non-zero");
        self.capacity_tokens = Some(capacity_tokens);
        self
    }

    /// Selects the storage precision of the (still empty) cache.
    ///
    /// # Panics
    ///
    /// Panics if any token has already been appended — storage cannot be
    /// re-typed in flight.
    #[must_use]
    pub fn with_dtype(mut self, dtype: KvDtype) -> Self {
        assert!(
            self.appended_tokens == 0,
            "KV storage dtype must be chosen before the first append"
        );
        self.dtype = dtype;
        self
    }

    /// The storage precision of the cached rows.
    #[must_use]
    pub fn dtype(&self) -> KvDtype {
        self.dtype
    }

    /// Number of query heads served by the cache.
    #[must_use]
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Number of stored (shared) key/value heads.
    #[must_use]
    pub fn kv_heads(&self) -> usize {
        self.kv_heads
    }

    /// Query heads per shared KV head (`1` for plain MHA).
    #[must_use]
    pub fn group_size(&self) -> usize {
        self.heads / self.kv_heads
    }

    /// Per-head embedding width of each cached row.
    #[must_use]
    pub fn embed(&self) -> usize {
        self.embed
    }

    /// The sliding-window capacity in tokens (`None` = unbounded).
    #[must_use]
    pub fn capacity_tokens(&self) -> Option<usize> {
        self.capacity_tokens
    }

    /// Number of tokens currently resident.
    #[must_use]
    pub fn len(&self) -> usize {
        match self.dtype {
            KvDtype::F32 => self.k[0].len() / self.embed,
            KvDtype::F16 => self.k16[0].len() / self.embed,
        }
    }

    /// Whether no tokens are cached yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        match self.dtype {
            KvDtype::F32 => self.k[0].is_empty(),
            KvDtype::F16 => self.k16[0].is_empty(),
        }
    }

    /// Total tokens ever appended (resident plus evicted).
    #[must_use]
    pub fn appended_tokens(&self) -> usize {
        self.appended_tokens
    }

    /// Tokens evicted by the sliding window so far.
    #[must_use]
    pub fn evicted_tokens(&self) -> usize {
        self.evicted_tokens
    }

    /// Bytes of resident `K` plus `V` rows at `element_bytes` per element —
    /// the footprint a serving layer charges against its device KV budget.
    /// Grouped caches store only `kv_heads` heads, so head sharing shrinks
    /// this by `kv_heads / heads`.
    #[must_use]
    pub fn kv_bytes(&self, element_bytes: usize) -> usize {
        2 * self.kv_heads * self.len() * self.embed * element_bytes
    }

    /// Bytes of resident `K` plus `V` rows at the cache's *own* storage
    /// precision — [`KvCache::kv_bytes`] with
    /// [`KvDtype::element_bytes`](KvDtype::element_bytes): exactly half under
    /// [`KvDtype::F16`].
    #[must_use]
    pub fn storage_bytes(&self) -> usize {
        self.kv_bytes(self.dtype.element_bytes())
    }

    /// Appends one token: `k_step` and `v_step` hold the new row for every
    /// *KV* head, concatenated head-major (`kv_heads × embed` values each).
    /// Evicts the oldest token first when the sliding window is full.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DataLengthMismatch`] if either slice is not
    /// exactly `kv_heads · embed` long.
    pub fn append(&mut self, k_step: &[f32], v_step: &[f32]) -> Result<()> {
        let expected = self.kv_heads * self.embed;
        for step in [k_step, v_step] {
            if step.len() != expected {
                return Err(TensorError::DataLengthMismatch {
                    expected,
                    actual: step.len(),
                });
            }
        }
        if let Some(capacity) = self.capacity_tokens {
            if self.len() == capacity {
                for h in 0..self.kv_heads {
                    match self.dtype {
                        KvDtype::F32 => {
                            self.k[h].drain(..self.embed);
                            self.v[h].drain(..self.embed);
                        }
                        KvDtype::F16 => {
                            self.k16[h].drain(..self.embed);
                            self.v16[h].drain(..self.embed);
                        }
                    }
                }
                self.evicted_tokens += 1;
            }
        }
        for h in 0..self.kv_heads {
            let k_row = &k_step[h * self.embed..(h + 1) * self.embed];
            let v_row = &v_step[h * self.embed..(h + 1) * self.embed];
            match self.dtype {
                KvDtype::F32 => {
                    self.k[h].extend_from_slice(k_row);
                    self.v[h].extend_from_slice(v_row);
                }
                KvDtype::F16 => {
                    self.k16[h].extend(k_row.iter().map(|&x| f32_to_f16_bits_saturating(x)));
                    self.v16[h].extend(v_row.iter().map(|&x| f32_to_f16_bits_saturating(x)));
                }
            }
        }
        self.appended_tokens += 1;
        Ok(())
    }

    /// The contiguous `len × embed` key rows of KV head `h` (oldest first).
    ///
    /// # Panics
    ///
    /// Panics if `h` is out of range (`0..kv_heads`) or the cache stores
    /// [`KvDtype::F16`] (use [`KvCache::key_bits`]).
    #[must_use]
    pub fn key_rows(&self, h: usize) -> &[f32] {
        assert_eq!(self.dtype, KvDtype::F32, "f16 caches expose key_bits");
        &self.k[h]
    }

    /// The contiguous `len × embed` value rows of KV head `h` (oldest
    /// first).
    ///
    /// # Panics
    ///
    /// Panics if `h` is out of range (`0..kv_heads`) or the cache stores
    /// [`KvDtype::F16`] (use [`KvCache::value_bits`]).
    #[must_use]
    pub fn value_rows(&self, h: usize) -> &[f32] {
        assert_eq!(self.dtype, KvDtype::F32, "f16 caches expose value_bits");
        &self.v[h]
    }

    /// The contiguous `len × embed` key rows of KV head `h` as binary16 bits
    /// (oldest first).
    ///
    /// # Panics
    ///
    /// Panics if `h` is out of range (`0..kv_heads`) or the cache stores
    /// [`KvDtype::F32`] (use [`KvCache::key_rows`]).
    #[must_use]
    pub fn key_bits(&self, h: usize) -> &[u16] {
        assert_eq!(self.dtype, KvDtype::F16, "f32 caches expose key_rows");
        &self.k16[h]
    }

    /// The contiguous `len × embed` value rows of KV head `h` as binary16
    /// bits (oldest first).
    ///
    /// # Panics
    ///
    /// Panics if `h` is out of range (`0..kv_heads`) or the cache stores
    /// [`KvDtype::F32`] (use [`KvCache::value_rows`]).
    #[must_use]
    pub fn value_bits(&self, h: usize) -> &[u16] {
        assert_eq!(self.dtype, KvDtype::F16, "f32 caches expose value_rows");
        &self.v16[h]
    }
}

/// Drives `state` over an f16 row arena by widening [`F16_TILE_TOKENS`]-token
/// runs into the borrowed scratch tiles. Shared by the contiguous and paged
/// decode sweeps, so both visit identical f32 row sequences.
pub(crate) fn sweep_f16_rows(
    state: &mut OnlineDecodeState<'_>,
    key_bits: &[u16],
    val_bits: &[u16],
    k_tile: &mut [f32],
    v_tile: &mut [f32],
) {
    let tile = k_tile.len();
    debug_assert_eq!(key_bits.len(), val_bits.len());
    let mut off = 0;
    while off < key_bits.len() {
        let end = (off + tile).min(key_bits.len());
        let n = end - off;
        simd::f16_to_f32_slice(&key_bits[off..end], &mut k_tile[..n]);
        simd::f16_to_f32_slice(&val_bits[off..end], &mut v_tile[..n]);
        state.update(&k_tile[..n], &v_tile[..n]);
        off = end;
    }
}

/// One autoregressive decode step: the single query row of each query head
/// attends over every cached `K`/`V` row of its (possibly shared) KV head
/// with an online softmax, writing the attention output into `out`.
///
/// `q_step` and `out` are head-major `heads × embed` slices — the *query*
/// head count, even for grouped caches whose [`KvCache::append`] takes
/// `kv_heads × embed` rows. The sweep keeps a running maximum `m` and
/// denominator `d` per head and rescales the output accumulator by
/// `exp(m_old − m_new)` whenever the maximum grows — identical arithmetic to
/// [`fused_online_attention`](crate::tiled::fused_online_attention) with a
/// one-row query block and single-row sub-tiles, which is why the two agree
/// within floating-point tolerance (pinned by the differential harness).
/// Cost is `O(len · embed)` per query head.
///
/// # Errors
///
/// Returns [`TensorError::DataLengthMismatch`] if `q_step` or `out` is not
/// `heads · embed` long, or [`TensorError::ZeroDimension`] if the cache is
/// empty (a query attending over zero keys has no defined softmax).
pub fn decode_attention(cache: &KvCache, q_step: &[f32], out: &mut [f32]) -> Result<()> {
    let (heads, embed) = (cache.heads(), cache.embed());
    let expected = heads * embed;
    if q_step.len() != expected || out.len() != expected {
        return Err(TensorError::DataLengthMismatch {
            expected,
            actual: if q_step.len() != expected {
                q_step.len()
            } else {
                out.len()
            },
        });
    }
    if cache.is_empty() {
        return Err(TensorError::ZeroDimension { dim: "kv_cache" });
    }
    let group = cache.group_size();
    let mut scratch = match cache.dtype() {
        KvDtype::F32 => Vec::new(),
        KvDtype::F16 => vec![0.0f32; 2 * F16_TILE_TOKENS * embed],
    };
    for h in 0..heads {
        let q_row = &q_step[h * embed..(h + 1) * embed];
        let o_row = &mut out[h * embed..(h + 1) * embed];
        let kv_h = h / group;
        let mut state = OnlineDecodeState::new(q_row, o_row);
        match cache.dtype() {
            KvDtype::F32 => state.update(cache.key_rows(kv_h), cache.value_rows(kv_h)),
            KvDtype::F16 => {
                let (k_tile, v_tile) = scratch.split_at_mut(F16_TILE_TOKENS * embed);
                sweep_f16_rows(
                    &mut state,
                    cache.key_bits(kv_h),
                    cache.value_bits(kv_h),
                    k_tile,
                    v_tile,
                );
            }
        }
        state.finish();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::random_qkv;
    use crate::tiled::{fused_online_attention, TileSizes};

    /// Runs `t` decode steps over the rows of seeded `(1, H, t, E)` tensors,
    /// returning the stacked per-step outputs.
    fn decode_all_steps(heads: usize, t: usize, embed: usize, seed: u64) -> Vec<Vec<f32>> {
        let (q, k, v) = random_qkv(1, heads, t, embed, seed);
        let mut cache = KvCache::new(heads, embed);
        let mut outs = Vec::with_capacity(t);
        for step in 0..t {
            let row_of = |tensor: &crate::Tensor| -> Vec<f32> {
                (0..heads)
                    .flat_map(|h| tensor.row(0, h, step).to_vec())
                    .collect()
            };
            cache.append(&row_of(&k), &row_of(&v)).unwrap();
            let mut out = vec![0.0f32; heads * embed];
            decode_attention(&cache, &row_of(&q), &mut out).unwrap();
            outs.push(out);
        }
        outs
    }

    #[test]
    fn append_grows_and_reports_bytes() {
        let mut cache = KvCache::new(2, 4);
        assert!(cache.is_empty());
        cache.append(&[1.0; 8], &[2.0; 8]).unwrap();
        cache.append(&[3.0; 8], &[4.0; 8]).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.appended_tokens(), 2);
        assert_eq!(cache.evicted_tokens(), 0);
        assert_eq!(cache.kv_bytes(2), 2 * 2 * 2 * 4 * 2);
        assert_eq!(cache.key_rows(0), &[1.0, 1.0, 1.0, 1.0, 3.0, 3.0, 3.0, 3.0]);
        assert_eq!(cache.value_rows(1).len(), 8);
    }

    #[test]
    fn wrong_row_width_is_rejected() {
        let mut cache = KvCache::new(2, 4);
        assert!(matches!(
            cache.append(&[0.0; 7], &[0.0; 8]),
            Err(TensorError::DataLengthMismatch {
                expected: 8,
                actual: 7
            })
        ));
        assert!(cache.is_empty(), "failed append must not partially apply");
    }

    #[test]
    fn sliding_window_evicts_oldest_rows() {
        let mut cache = KvCache::with_capacity(1, 2, 2);
        for t in 0..4 {
            let row = [t as f32, t as f32];
            cache.append(&row, &row).unwrap();
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.appended_tokens(), 4);
        assert_eq!(cache.evicted_tokens(), 2);
        // Only the two newest tokens remain, oldest first.
        assert_eq!(cache.key_rows(0), &[2.0, 2.0, 3.0, 3.0]);
    }

    #[test]
    fn decode_on_empty_cache_is_an_error() {
        let cache = KvCache::new(1, 2);
        let mut out = [0.0f32; 2];
        assert!(matches!(
            decode_attention(&cache, &[1.0, 0.0], &mut out),
            Err(TensorError::ZeroDimension { .. })
        ));
    }

    #[test]
    fn single_token_decode_returns_its_value_row() {
        // With one cached token the softmax weight is 1 regardless of score.
        let mut cache = KvCache::new(2, 3);
        cache
            .append(&[9.0; 6], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
            .unwrap();
        let mut out = [0.0f32; 6];
        decode_attention(&cache, &[0.5; 6], &mut out).unwrap();
        assert_eq!(out, [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn invalid_head_groupings_are_typed_errors_not_panics() {
        for (heads, kv_heads) in [(8, 3), (8, 0), (4, 8), (6, 4)] {
            assert_eq!(
                KvCache::grouped(heads, kv_heads, 4).unwrap_err(),
                TensorError::InvalidHeadGrouping { heads, kv_heads }
            );
        }
        // Degenerate-but-valid groupings construct fine.
        assert_eq!(KvCache::grouped(8, 8, 4).unwrap().group_size(), 1); // MHA
        assert_eq!(KvCache::grouped(8, 1, 4).unwrap().group_size(), 8); // MQA
        assert_eq!(KvCache::grouped(8, 2, 4).unwrap().group_size(), 4); // GQA
    }

    #[test]
    fn grouped_append_takes_kv_head_rows_and_shrinks_bytes() {
        let mut mha = KvCache::new(4, 2);
        let mut gqa = KvCache::grouped(4, 2, 2).unwrap();
        mha.append(&[1.0; 8], &[2.0; 8]).unwrap();
        gqa.append(&[1.0; 4], &[2.0; 4]).unwrap();
        assert_eq!(gqa.len(), 1);
        assert_eq!(gqa.kv_bytes(2), mha.kv_bytes(2) / 2);
        // Appending query-head-wide rows to a grouped cache is a typed error.
        assert!(matches!(
            gqa.append(&[0.0; 8], &[0.0; 8]),
            Err(TensorError::DataLengthMismatch {
                expected: 4,
                actual: 8
            })
        ));
    }

    #[test]
    fn grouped_decode_matches_head_replicated_mha_exactly() {
        let (heads, kv_heads, t, embed, seed) = (6, 2, 9, 5, 31);
        let (q, _, _) = random_qkv(1, heads, t, embed, seed);
        let (_, k, v) = random_qkv(1, kv_heads, t, embed, seed.wrapping_add(1));
        let k_full = expand_kv_heads(&k, heads).unwrap();
        let v_full = expand_kv_heads(&v, heads).unwrap();

        let mut gqa = KvCache::grouped(heads, kv_heads, embed).unwrap();
        let mut mha = KvCache::new(heads, embed);
        let gather = |src: &crate::Tensor, r: usize| -> Vec<f32> {
            let [_, h_n, _, _] = src.shape().dims();
            (0..h_n).flat_map(|h| src.row(0, h, r).to_vec()).collect()
        };
        for i in 0..t {
            gqa.append(&gather(&k, i), &gather(&v, i)).unwrap();
            mha.append(&gather(&k_full, i), &gather(&v_full, i))
                .unwrap();
            let q_step = gather(&q, i);
            let mut out_gqa = vec![0.0f32; heads * embed];
            let mut out_mha = vec![0.0f32; heads * embed];
            decode_attention(&gqa, &q_step, &mut out_gqa).unwrap();
            decode_attention(&mha, &q_step, &mut out_mha).unwrap();
            assert_eq!(out_gqa, out_mha, "step {i}: GQA must be bit-identical");
        }
    }

    #[test]
    fn expand_kv_heads_replicates_per_group() {
        let (_, k, _) = random_qkv(1, 2, 3, 4, 7);
        let full = expand_kv_heads(&k, 6).unwrap();
        assert_eq!(full.shape().dims(), [1, 6, 3, 4]);
        for h in 0..6 {
            assert_eq!(full.slice(0, h), k.slice(0, h / 3));
        }
        assert!(matches!(
            expand_kv_heads(&k, 5),
            Err(TensorError::InvalidHeadGrouping {
                heads: 5,
                kv_heads: 2
            })
        ));
    }

    #[test]
    fn final_decode_step_matches_full_prefill_oracle() {
        let (heads, t, embed, seed) = (3, 12, 8, 17);
        let outs = decode_all_steps(heads, t, embed, seed);
        let (q, k, v) = random_qkv(1, heads, t, embed, seed);
        let tiles = TileSizes::new(4, 3, t).unwrap();
        let oracle = fused_online_attention(&q, &k, &v, tiles).unwrap();
        // The last step's query attends over the full t-token context — the
        // same computation as oracle row t-1.
        let last = &outs[t - 1];
        for h in 0..heads {
            let oracle_row = oracle.row(0, h, t - 1);
            for (c, &ov) in oracle_row.iter().enumerate() {
                assert!(
                    (last[h * embed + c] - ov).abs() < 1e-4,
                    "head {h} col {c}: decode {} vs oracle {ov}",
                    last[h * embed + c]
                );
            }
        }
    }

    #[test]
    fn f16_cache_charges_exactly_half_the_storage_bytes() {
        let mut f32c = KvCache::new(2, 4);
        let mut f16c = KvCache::new(2, 4).with_dtype(KvDtype::F16);
        for _ in 0..3 {
            f32c.append(&[1.5; 8], &[2.5; 8]).unwrap();
            f16c.append(&[1.5; 8], &[2.5; 8]).unwrap();
        }
        assert_eq!(f32c.dtype(), KvDtype::F32);
        assert_eq!(f16c.dtype(), KvDtype::F16);
        assert_eq!(f16c.len(), f32c.len());
        assert_eq!(f32c.storage_bytes(), f32c.kv_bytes(4));
        assert_eq!(f16c.storage_bytes() * 2, f32c.storage_bytes());
        assert_eq!(f16c.key_bits(0).len(), 12);
    }

    #[test]
    fn f16_decode_tracks_f32_decode_across_tile_boundaries() {
        // Context longer than one widening tile so the sweep crosses a
        // scratch-refill boundary; the tiling must not change results.
        let (heads, embed, t) = (2, 8, F16_TILE_TOKENS + 17);
        let (q, k, v) = random_qkv(1, heads, t, embed, 41);
        let mut full = KvCache::new(heads, embed);
        let mut half = KvCache::new(heads, embed).with_dtype(KvDtype::F16);
        let gather = |src: &crate::Tensor, r: usize| -> Vec<f32> {
            (0..heads).flat_map(|h| src.row(0, h, r).to_vec()).collect()
        };
        for i in 0..t {
            full.append(&gather(&k, i), &gather(&v, i)).unwrap();
            half.append(&gather(&k, i), &gather(&v, i)).unwrap();
            let q_step = gather(&q, i);
            let mut out_full = vec![0.0f32; heads * embed];
            let mut out_half = vec![0.0f32; heads * embed];
            decode_attention(&full, &q_step, &mut out_full).unwrap();
            decode_attention(&half, &q_step, &mut out_half).unwrap();
            for (c, (a, b)) in out_full.iter().zip(&out_half).enumerate() {
                assert!(
                    (a - b).abs() <= 5e-3 * a.abs().max(1.0),
                    "step {i} col {c}: f32 {a} vs f16 {b}"
                );
            }
        }
    }

    #[test]
    fn f16_store_saturates_large_logits_instead_of_poisoning_softmax() {
        // A key row whose dot with the query would be huge: stored as f16
        // it must clamp to ±F16_MAX, not round to inf (which would make
        // every later softmax inf - inf = NaN).
        let mut cache = KvCache::new(1, 4).with_dtype(KvDtype::F16);
        cache.append(&[1e6; 4], &[1.0; 4]).unwrap();
        cache.append(&[0.5; 4], &[2.0; 4]).unwrap();
        assert!(cache
            .key_bits(0)
            .iter()
            .all(|&b| crate::half::f16_bits_to_f32(b).is_finite()));
        let mut out = [0.0f32; 4];
        decode_attention(&cache, &[1.0; 4], &mut out).unwrap();
        assert!(out.iter().all(|v| v.is_finite()), "out {out:?}");
    }

    #[test]
    fn f16_sliding_window_evicts_oldest_rows() {
        let mut cache = KvCache::with_capacity(1, 2, 2).with_dtype(KvDtype::F16);
        for t in 0..4 {
            let row = [t as f32, t as f32];
            cache.append(&row, &row).unwrap();
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evicted_tokens(), 2);
        let resident: Vec<f32> = cache
            .key_bits(0)
            .iter()
            .map(|&b| crate::half::f16_bits_to_f32(b))
            .collect();
        assert_eq!(resident, vec![2.0, 2.0, 3.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "before the first append")]
    fn retyping_a_nonempty_cache_panics() {
        let mut cache = KvCache::new(1, 2);
        cache.append(&[1.0; 2], &[1.0; 2]).unwrap();
        let _ = cache.with_dtype(KvDtype::F16);
    }

    #[test]
    fn every_decode_step_matches_its_prefix_oracle() {
        let (heads, t, embed, seed) = (2, 9, 4, 23);
        let outs = decode_all_steps(heads, t, embed, seed);
        let (q, k, v) = random_qkv(1, heads, t, embed, seed);
        for (step, out) in outs.iter().enumerate() {
            let prefix = step + 1;
            let sub = |t: &crate::Tensor| t.block([0, 0, 0, 0], [1, heads, prefix, embed]).unwrap();
            let tiles = TileSizes::new(prefix, 1, prefix).unwrap();
            let oracle = fused_online_attention(&sub(&q), &sub(&k), &sub(&v), tiles).unwrap();
            for h in 0..heads {
                let oracle_row = oracle.row(0, h, step);
                for (c, &ov) in oracle_row.iter().enumerate() {
                    assert!(
                        (out[h * embed + c] - ov).abs() < 1e-4,
                        "step {step} head {h} col {c}"
                    );
                }
            }
        }
    }
}
