//! Block-granular (paged) KV-cache storage for autoregressive decode.
//!
//! The contiguous [`KvCache`](crate::decode::KvCache) grows one dense buffer
//! per session, so a serving layer must reserve worst-case max-context bytes
//! per session up front — the fragmentation/over-reservation problem that
//! caps concurrent sessions on DRAM-starved edge devices. This module
//! provides the vLLM-style alternative: fixed-size *token blocks* drawn from
//! a shared pool, with per-session block tables.
//!
//! * [`KvBlockPool`] — the physical block store (the `BlockAllocator`): a
//!   flat arena of `block_tokens`-token K/V blocks with a LIFO free list,
//!   optional capacity bound, and live/peak accounting. Freed blocks are
//!   always reused before the arena grows.
//! * [`PagedKvCache`] — one session's logical cache: a table of pool block
//!   ids covering its tokens in order, plus append/sliding-window logic.
//!   Eviction returns *whole blocks* to the pool (a block is freed once all
//!   of its tokens fall outside the window), while the attended token set
//!   stays exactly the window's newest tokens — identical to the contiguous
//!   cache's.
//! * [`decode_attention_paged`] — the decode kernel generalized to sweep a
//!   block table. It drives the same per-row online-softmax recurrence
//!   ([`OnlineDecodeState`](crate::decode::OnlineDecodeState)) as the
//!   contiguous [`decode_attention`](crate::decode::decode_attention) over
//!   the same rows in the same order, so the two paths are **bit-identical**
//!   (pinned by `tests/paged_vs_contiguous.rs`).
//!
//! ## Block-table layout invariants
//!
//! 1. **Blocks are token-aligned to the resident stream.** Resident token
//!    `r` (zero-based from the oldest token still in a pool block, i.e.
//!    absolute token `freed_tokens + r`) lives in `table[r / block_tokens]`,
//!    slot `r % block_tokens`. Window eviction only frees whole front
//!    blocks, so it advances `freed_tokens` in `block_tokens` steps and
//!    preserves the alignment; [`PagedKvCache::release`] drops every block
//!    and restarts the resident stream at slot 0 of the next block.
//! 2. **Rows are contiguous per `(block, kv_head)`.** Inside a block, the
//!    `block_tokens` K rows of one KV head are one contiguous
//!    `block_tokens × embed` slice (likewise V), so the kernel sweeps each
//!    block with the same [`dot`](crate::matmul::dot)/
//!    [`axpy`](crate::matmul::axpy) slice primitives as the contiguous
//!    cache — a block is to the paged kernel what the whole cache is to the
//!    contiguous one.
//! 3. **Only the tail block is partially filled.** Every table entry except
//!    possibly the last holds exactly `block_tokens` tokens; the attended
//!    range within the table is `[window_start, appended)` and never
//!    touches slots beyond the fill point.
//! 4. **Pool conservation.** `free_blocks + live_blocks == total_blocks` at
//!    every step; `peak_live_blocks` is the high-water mark of
//!    `live_blocks` (pinned by the allocator proptests in
//!    `crates/tensor/tests/paged_alloc.rs`).

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

use crate::decode::{check_head_grouping, sweep_f16_rows, OnlineDecodeState, F16_TILE_TOKENS};
use crate::error::{Result, TensorError};
use crate::half::{f32_to_f16_bits_saturating, KvDtype};

/// Source of unique pool identity tokens: block ids are raw arena indices,
/// so a cache must never be used with a pool other than the one that
/// allocated its blocks — the identity check turns that logic error into a
/// typed error instead of an out-of-bounds panic or a silent read of
/// another session's rows.
static NEXT_POOL_ID: AtomicU64 = AtomicU64::new(1);

/// Handle to one block in a [`KvBlockPool`].
///
/// Ids are indices into the pool's arena; they are only meaningful for the
/// pool that allocated them and may be reused after [`KvBlockPool::free`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BlockId(usize);

impl BlockId {
    /// The raw arena index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// The physical KV block store shared by paged caches: a flat arena of
/// fixed-geometry blocks (`block_tokens` tokens × `kv_heads` heads ×
/// `embed` lanes, for K and V), a LIFO free list and live/peak accounting.
///
/// Allocation policy: freed blocks are always reused (free-list pop) before
/// the arena grows; growth beyond an optional `max_blocks` bound fails with
/// [`TensorError::BlockPoolExhausted`] instead of allocating.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KvBlockPool {
    /// Unique identity token (see [`NEXT_POOL_ID`]); clones share it, since
    /// a clone holds the same arena contents and its block ids stay valid.
    id: u64,
    block_tokens: usize,
    kv_heads: usize,
    embed: usize,
    max_blocks: Option<usize>,
    /// Storage dtype of the arenas. Exactly one pair of arenas (`k`/`v` for
    /// [`KvDtype::F32`], `k16`/`v16` for [`KvDtype::F16`]) is populated.
    #[serde(default)]
    dtype: KvDtype,
    /// Arena of key rows: `total_blocks × kv_heads × block_tokens × embed`,
    /// block-major then head-major (invariant 2 of the module docs).
    k: Vec<f32>,
    /// Arena of value rows, same layout as `k`.
    v: Vec<f32>,
    /// f16 key arena (same layout as `k`, one `u16` of f16 bits per
    /// element); used instead of `k` under [`KvDtype::F16`].
    #[serde(default)]
    k16: Vec<u16>,
    /// f16 value arena, same layout as `k16`.
    #[serde(default)]
    v16: Vec<u16>,
    /// Indices of freed blocks, reused LIFO.
    free: Vec<usize>,
    live: usize,
    peak_live: usize,
}

impl KvBlockPool {
    /// Creates an unbounded pool of `block_tokens`-token blocks for
    /// `kv_heads` KV heads of `embed`-wide rows. The arena starts empty and
    /// grows on demand.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn new(block_tokens: usize, kv_heads: usize, embed: usize) -> Self {
        assert!(
            block_tokens > 0 && kv_heads > 0 && embed > 0,
            "block pool dimensions must be non-zero"
        );
        Self {
            id: NEXT_POOL_ID.fetch_add(1, Ordering::Relaxed),
            block_tokens,
            kv_heads,
            embed,
            max_blocks: None,
            dtype: KvDtype::F32,
            k: Vec::new(),
            v: Vec::new(),
            k16: Vec::new(),
            v16: Vec::new(),
            free: Vec::new(),
            live: 0,
            peak_live: 0,
        }
    }

    /// Bounds the pool at `max_blocks` blocks: allocations beyond the bound
    /// fail with [`TensorError::BlockPoolExhausted`].
    #[must_use]
    pub fn with_max_blocks(mut self, max_blocks: usize) -> Self {
        self.max_blocks = Some(max_blocks);
        self
    }

    /// Selects the storage dtype of the pool's arenas. Under
    /// [`KvDtype::F16`] each written element is converted with the
    /// saturating f16 store
    /// ([`f32_to_f16_bits_saturating`](crate::half::f32_to_f16_bits_saturating))
    /// and blocks charge half the bytes of f32 blocks.
    ///
    /// # Panics
    ///
    /// Panics if the pool has already created blocks: the storage dtype must
    /// be chosen before the first allocation.
    #[must_use]
    pub fn with_dtype(mut self, dtype: KvDtype) -> Self {
        assert_eq!(
            self.total_blocks(),
            0,
            "KV storage dtype must be chosen before the first block allocation"
        );
        self.dtype = dtype;
        self
    }

    /// Storage dtype of the pool's arenas.
    #[must_use]
    pub fn dtype(&self) -> KvDtype {
        self.dtype
    }

    /// Tokens per block.
    #[must_use]
    pub fn block_tokens(&self) -> usize {
        self.block_tokens
    }

    /// Stored KV heads per block.
    #[must_use]
    pub fn kv_heads(&self) -> usize {
        self.kv_heads
    }

    /// Per-head embedding width of each row.
    #[must_use]
    pub fn embed(&self) -> usize {
        self.embed
    }

    /// Elements of one head's rows within a block (`block_tokens · embed`).
    fn head_stride(&self) -> usize {
        self.block_tokens * self.embed
    }

    /// Elements of one block per arena (`kv_heads · block_tokens · embed`).
    fn block_stride(&self) -> usize {
        self.kv_heads * self.head_stride()
    }

    /// Blocks ever created in the arena (live plus free).
    #[must_use]
    pub fn total_blocks(&self) -> usize {
        if self.block_stride() == 0 {
            return 0;
        }
        let elements = match self.dtype {
            KvDtype::F32 => self.k.len(),
            KvDtype::F16 => self.k16.len(),
        };
        elements / self.block_stride()
    }

    /// Blocks currently allocated to caches.
    #[must_use]
    pub fn live_blocks(&self) -> usize {
        self.live
    }

    /// Blocks on the free list, awaiting reuse.
    #[must_use]
    pub fn free_blocks(&self) -> usize {
        self.free.len()
    }

    /// High-water mark of [`KvBlockPool::live_blocks`].
    #[must_use]
    pub fn peak_live_blocks(&self) -> usize {
        self.peak_live
    }

    /// `K` plus `V` bytes of one block at `element_bytes` per element.
    #[must_use]
    pub fn block_bytes(&self, element_bytes: usize) -> usize {
        2 * self.block_stride() * element_bytes
    }

    /// Bytes of all live blocks — what a serving layer charges against its
    /// KV budget under block-granular accounting.
    #[must_use]
    pub fn live_bytes(&self, element_bytes: usize) -> usize {
        self.live * self.block_bytes(element_bytes)
    }

    /// `K` plus `V` bytes of one block at the pool's own storage dtype
    /// ([`KvBlockPool::block_bytes`] with
    /// [`KvDtype::element_bytes`]) — exactly half under [`KvDtype::F16`].
    #[must_use]
    pub fn storage_block_bytes(&self) -> usize {
        self.block_bytes(self.dtype.element_bytes())
    }

    /// Bytes of all live blocks at the pool's own storage dtype.
    #[must_use]
    pub fn live_storage_bytes(&self) -> usize {
        self.live * self.storage_block_bytes()
    }

    /// Allocates one block, reusing the most recently freed block if any,
    /// growing the arena otherwise. The block's contents are zeroed.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::BlockPoolExhausted`] if the pool is bounded
    /// and every block is live.
    pub fn alloc(&mut self) -> Result<BlockId> {
        let id = if let Some(reused) = self.free.pop() {
            let stride = self.block_stride();
            match self.dtype {
                KvDtype::F32 => {
                    self.k[reused * stride..(reused + 1) * stride].fill(0.0);
                    self.v[reused * stride..(reused + 1) * stride].fill(0.0);
                }
                KvDtype::F16 => {
                    self.k16[reused * stride..(reused + 1) * stride].fill(0);
                    self.v16[reused * stride..(reused + 1) * stride].fill(0);
                }
            }
            reused
        } else {
            if let Some(max) = self.max_blocks {
                if self.total_blocks() >= max {
                    return Err(TensorError::BlockPoolExhausted {
                        capacity_blocks: max,
                    });
                }
            }
            let id = self.total_blocks();
            let stride = self.block_stride();
            match self.dtype {
                KvDtype::F32 => {
                    self.k.resize(self.k.len() + stride, 0.0);
                    self.v.resize(self.v.len() + stride, 0.0);
                }
                KvDtype::F16 => {
                    self.k16.resize(self.k16.len() + stride, 0);
                    self.v16.resize(self.v16.len() + stride, 0);
                }
            }
            id
        };
        self.live += 1;
        self.peak_live = self.peak_live.max(self.live);
        Ok(BlockId(id))
    }

    /// Returns a block to the free list for reuse.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range, or (debug builds only — the scan is
    /// linear in the free list) if the block is already free: a double free
    /// is a logic error in the caller's block table, not a recoverable
    /// state.
    pub fn free(&mut self, id: BlockId) {
        assert!(id.0 < self.total_blocks(), "freed block id out of range");
        debug_assert!(!self.free.contains(&id.0), "double free of block {}", id.0);
        self.free.push(id.0);
        self.live -= 1;
    }

    /// The contiguous key rows `[slot_start, slot_end)` of KV head `h` in
    /// block `id` (each row `embed` wide).
    ///
    /// # Panics
    ///
    /// Panics unless the pool stores [`KvDtype::F32`]; use
    /// [`KvBlockPool::key_bits`] for f16 pools.
    #[must_use]
    pub fn key_rows(&self, id: BlockId, h: usize, slot_start: usize, slot_end: usize) -> &[f32] {
        assert_eq!(self.dtype, KvDtype::F32, "key_rows requires an f32 pool");
        let base = id.0 * self.block_stride() + h * self.head_stride();
        &self.k[base + slot_start * self.embed..base + slot_end * self.embed]
    }

    /// The contiguous value rows `[slot_start, slot_end)` of KV head `h` in
    /// block `id`.
    ///
    /// # Panics
    ///
    /// Panics unless the pool stores [`KvDtype::F32`]; use
    /// [`KvBlockPool::value_bits`] for f16 pools.
    #[must_use]
    pub fn value_rows(&self, id: BlockId, h: usize, slot_start: usize, slot_end: usize) -> &[f32] {
        assert_eq!(self.dtype, KvDtype::F32, "value_rows requires an f32 pool");
        let base = id.0 * self.block_stride() + h * self.head_stride();
        &self.v[base + slot_start * self.embed..base + slot_end * self.embed]
    }

    /// The raw f16 bits of key rows `[slot_start, slot_end)` of KV head `h`
    /// in block `id` (each row `embed` wide).
    ///
    /// # Panics
    ///
    /// Panics unless the pool stores [`KvDtype::F16`].
    #[must_use]
    pub fn key_bits(&self, id: BlockId, h: usize, slot_start: usize, slot_end: usize) -> &[u16] {
        assert_eq!(self.dtype, KvDtype::F16, "key_bits requires an f16 pool");
        let base = id.0 * self.block_stride() + h * self.head_stride();
        &self.k16[base + slot_start * self.embed..base + slot_end * self.embed]
    }

    /// The raw f16 bits of value rows `[slot_start, slot_end)` of KV head
    /// `h` in block `id`.
    ///
    /// # Panics
    ///
    /// Panics unless the pool stores [`KvDtype::F16`].
    #[must_use]
    pub fn value_bits(&self, id: BlockId, h: usize, slot_start: usize, slot_end: usize) -> &[u16] {
        assert_eq!(self.dtype, KvDtype::F16, "value_bits requires an f16 pool");
        let base = id.0 * self.block_stride() + h * self.head_stride();
        &self.v16[base + slot_start * self.embed..base + slot_end * self.embed]
    }

    /// Writes one token's K/V rows (head-major, `kv_heads × embed` each)
    /// into slot `slot` of block `id`, converting with the saturating f16
    /// store when the pool holds [`KvDtype::F16`].
    fn write_token(&mut self, id: BlockId, slot: usize, k_step: &[f32], v_step: &[f32]) {
        let (embed, head_stride, block_stride) =
            (self.embed, self.head_stride(), self.block_stride());
        for h in 0..self.kv_heads {
            let base = id.0 * block_stride + h * head_stride + slot * embed;
            let (k_src, v_src) = (
                &k_step[h * embed..(h + 1) * embed],
                &v_step[h * embed..(h + 1) * embed],
            );
            match self.dtype {
                KvDtype::F32 => {
                    self.k[base..base + embed].copy_from_slice(k_src);
                    self.v[base..base + embed].copy_from_slice(v_src);
                }
                KvDtype::F16 => {
                    for (dst, &x) in self.k16[base..base + embed].iter_mut().zip(k_src) {
                        *dst = f32_to_f16_bits_saturating(x);
                    }
                    for (dst, &x) in self.v16[base..base + embed].iter_mut().zip(v_src) {
                        *dst = f32_to_f16_bits_saturating(x);
                    }
                }
            }
        }
    }
}

/// One session's paged KV cache: a block table over a shared
/// [`KvBlockPool`], with grouped-query head sharing and an optional sliding
/// window whose eviction returns whole blocks to the pool.
///
/// The cache holds no K/V data itself — callers pass the pool to
/// [`PagedKvCache::append`] and [`decode_attention_paged`], mirroring the
/// block-table / physical-memory split of paged-attention serving systems
/// (many sessions, one pool).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PagedKvCache {
    heads: usize,
    kv_heads: usize,
    embed: usize,
    block_tokens: usize,
    window_tokens: Option<usize>,
    /// Pool blocks covering tokens `[freed_tokens, appended_tokens)`,
    /// oldest first.
    table: Vec<BlockId>,
    appended_tokens: usize,
    /// Tokens dropped from the front by whole-block eviction; always a
    /// multiple of `block_tokens`.
    freed_tokens: usize,
    /// Identity of the pool the table's blocks were allocated from (`None`
    /// until the first successful append, reset by release): block ids are
    /// raw arena indices, so operations against any *other* pool are
    /// rejected with a typed error even when the geometry matches.
    bound_pool_id: Option<u64>,
}

impl PagedKvCache {
    /// Creates an unbounded paged cache for `heads` query heads over
    /// `kv_heads` shared KV heads, in `block_tokens`-token blocks.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidHeadGrouping`] if `kv_heads` is zero,
    /// exceeds `heads` or does not divide it.
    ///
    /// # Panics
    ///
    /// Panics if `heads`, `embed` or `block_tokens` is zero.
    pub fn new(heads: usize, kv_heads: usize, embed: usize, block_tokens: usize) -> Result<Self> {
        assert!(
            heads > 0 && embed > 0 && block_tokens > 0,
            "paged KV cache dimensions must be non-zero"
        );
        check_head_grouping(heads, kv_heads)?;
        Ok(Self {
            heads,
            kv_heads,
            embed,
            block_tokens,
            window_tokens: None,
            table: Vec::new(),
            appended_tokens: 0,
            freed_tokens: 0,
            bound_pool_id: None,
        })
    }

    /// Turns the cache into a sliding window: decode attends at most the
    /// newest `window_tokens` tokens — the *same* attended set as a
    /// contiguous cache with that capacity — and a block is freed back to
    /// the pool once every one of its tokens leaves the window.
    ///
    /// # Panics
    ///
    /// Panics if `window_tokens` is zero.
    #[must_use]
    pub fn with_window(mut self, window_tokens: usize) -> Self {
        assert!(window_tokens > 0, "KV window must be non-zero");
        self.window_tokens = Some(window_tokens);
        self
    }

    /// Number of query heads served by the cache.
    #[must_use]
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Number of stored (shared) KV heads.
    #[must_use]
    pub fn kv_heads(&self) -> usize {
        self.kv_heads
    }

    /// Query heads per shared KV head.
    #[must_use]
    pub fn group_size(&self) -> usize {
        self.heads / self.kv_heads
    }

    /// Per-head embedding width of each row.
    #[must_use]
    pub fn embed(&self) -> usize {
        self.embed
    }

    /// Tokens per block.
    #[must_use]
    pub fn block_tokens(&self) -> usize {
        self.block_tokens
    }

    /// The sliding-window length in tokens (`None` = unbounded).
    #[must_use]
    pub fn window_tokens(&self) -> Option<usize> {
        self.window_tokens
    }

    /// Tokens the next decode step attends: `min(window, appended)` — the
    /// same value as the contiguous cache's `len()` — bounded by the tokens
    /// still resident in pool blocks (zero right after
    /// [`PagedKvCache::release`]).
    #[must_use]
    pub fn len(&self) -> usize {
        let resident = self.resident_tokens();
        self.window_tokens
            .map_or(resident, |w| w.min(self.appended_tokens).min(resident))
    }

    /// Whether no tokens are attended yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total tokens ever appended.
    #[must_use]
    pub fn appended_tokens(&self) -> usize {
        self.appended_tokens
    }

    /// Tokens no longer attended (outside the sliding window, or dropped by
    /// [`PagedKvCache::release`]) — matches the contiguous cache's
    /// `evicted_tokens` count under window eviction, even though physical
    /// blocks are only freed whole.
    #[must_use]
    pub fn evicted_tokens(&self) -> usize {
        self.appended_tokens - self.len()
    }

    /// Tokens physically returned to the pool (whole-block window eviction
    /// plus [`PagedKvCache::release`]); never more than
    /// [`PagedKvCache::evicted_tokens`].
    #[must_use]
    pub fn freed_tokens(&self) -> usize {
        self.freed_tokens
    }

    /// Tokens resident in pool blocks (`appended − freed`).
    #[must_use]
    pub fn resident_tokens(&self) -> usize {
        self.appended_tokens - self.freed_tokens
    }

    /// The session's block table, oldest block first.
    #[must_use]
    pub fn block_table(&self) -> &[BlockId] {
        &self.table
    }

    /// Blocks currently held by the session.
    #[must_use]
    pub fn allocated_blocks(&self) -> usize {
        self.table.len()
    }

    /// Bytes of the session's allocated blocks at `element_bytes` per
    /// element — block-granular residency (allocated blocks, not max
    /// context).
    #[must_use]
    pub fn kv_bytes(&self, pool: &KvBlockPool, element_bytes: usize) -> usize {
        self.table.len() * pool.block_bytes(element_bytes)
    }

    /// Internal fragmentation of the session's blocks: the fraction of
    /// allocated token slots not holding a resident token (`0.0` when every
    /// slot is used, approaching `1.0` for a nearly empty tail block).
    #[must_use]
    pub fn fragmentation(&self) -> f64 {
        let slots = self.table.len() * self.block_tokens;
        if slots == 0 {
            return 0.0;
        }
        1.0 - self.resident_tokens() as f64 / slots as f64
    }

    /// Ensures the pool geometry matches the cache's, and — once the cache
    /// holds blocks — that `pool` is the *same pool* they were allocated
    /// from: block ids are raw arena indices, meaningless in any other
    /// pool, so a same-geometry-different-pool call must be a typed error,
    /// not an out-of-bounds panic or a silent read of foreign rows.
    fn check_pool(&self, pool: &KvBlockPool) -> Result<()> {
        for (param, p, c) in [
            ("block_tokens", pool.block_tokens(), self.block_tokens),
            ("kv_heads", pool.kv_heads(), self.kv_heads),
            ("embed", pool.embed(), self.embed),
        ] {
            if p != c {
                return Err(TensorError::BlockGeometryMismatch {
                    param,
                    pool: p,
                    cache: c,
                });
            }
        }
        if let Some(bound) = self.bound_pool_id {
            if bound != pool.id {
                return Err(TensorError::BlockGeometryMismatch {
                    param: "pool identity",
                    pool: pool.id as usize,
                    cache: bound as usize,
                });
            }
        }
        Ok(())
    }

    /// Appends one token: `k_step` and `v_step` hold the new row for every
    /// KV head (`kv_heads × embed` values each, the same layout as
    /// [`KvCache::append`](crate::decode::KvCache::append)). Allocates a new
    /// block from `pool` when the previous one is full and frees front
    /// blocks that slid fully out of the window.
    ///
    /// # Errors
    ///
    /// * [`TensorError::DataLengthMismatch`] if a slice is not
    ///   `kv_heads · embed` long,
    /// * [`TensorError::BlockGeometryMismatch`] if `pool` was built for a
    ///   different block geometry, or is not the pool the cache's existing
    ///   blocks came from (`param: "pool identity"`),
    /// * [`TensorError::BlockPoolExhausted`] if a new block is needed and
    ///   the bounded pool is full — the cache is left unchanged.
    pub fn append(&mut self, pool: &mut KvBlockPool, k_step: &[f32], v_step: &[f32]) -> Result<()> {
        self.check_pool(pool)?;
        let expected = self.kv_heads * self.embed;
        for step in [k_step, v_step] {
            if step.len() != expected {
                return Err(TensorError::DataLengthMismatch {
                    expected,
                    actual: step.len(),
                });
            }
        }
        let slot = (self.appended_tokens - self.freed_tokens) % self.block_tokens;
        let needs_block =
            self.appended_tokens - self.freed_tokens == self.table.len() * self.block_tokens;
        if needs_block {
            let id = pool.alloc()?;
            self.table.push(id);
        }
        let block = *self.table.last().expect("tail block exists");
        pool.write_token(block, slot, k_step, v_step);
        self.appended_tokens += 1;
        self.bound_pool_id = Some(pool.id);

        // Whole-block eviction: free front blocks whose every token left the
        // attended window.
        if self.window_tokens.is_some() {
            let attended_start = self.appended_tokens - self.len();
            while self.freed_tokens + self.block_tokens <= attended_start {
                let front = self.table.remove(0);
                pool.free(front);
                self.freed_tokens += self.block_tokens;
            }
        }
        Ok(())
    }

    /// Releases every block back to the pool, leaving the cache empty:
    /// [`PagedKvCache::len`] drops to zero (so a decode attempt is the usual
    /// empty-cache error, not a panic) and appending again restarts cleanly
    /// at slot 0 of a fresh block — in any pool, since the identity binding
    /// is cleared along with the table. Used when a session closes.
    ///
    /// # Panics
    ///
    /// Panics if the cache holds blocks and `pool` is not the pool they
    /// were allocated from (freeing foreign ids would corrupt that pool's
    /// free list).
    pub fn release(&mut self, pool: &mut KvBlockPool) {
        if !self.table.is_empty() {
            assert_eq!(
                self.bound_pool_id,
                Some(pool.id),
                "release must target the pool the cache's blocks came from"
            );
        }
        for id in self.table.drain(..) {
            pool.free(id);
        }
        self.freed_tokens = self.appended_tokens;
        self.bound_pool_id = None;
    }
}

/// One autoregressive decode step over a paged cache: each query head's
/// single query row attends over the attended-window rows of its shared KV
/// head, swept block by block through the session's block table with the
/// same online-softmax recurrence as the contiguous kernel — the visited
/// row sequence is identical, so the result is bit-identical to
/// [`decode_attention`](crate::decode::decode_attention) on a contiguous
/// cache holding the same tokens.
///
/// `q_step` and `out` are head-major `heads × embed` slices.
///
/// # Errors
///
/// Returns [`TensorError::DataLengthMismatch`] if `q_step` or `out` is not
/// `heads · embed` long, [`TensorError::BlockGeometryMismatch`] if `pool`
/// does not match the cache geometry or is not the pool the cache's blocks
/// were allocated from (`param: "pool identity"`), or
/// [`TensorError::ZeroDimension`] if no tokens are attended yet.
pub fn decode_attention_paged(
    pool: &KvBlockPool,
    cache: &PagedKvCache,
    q_step: &[f32],
    out: &mut [f32],
) -> Result<()> {
    cache.check_pool(pool)?;
    let (heads, embed) = (cache.heads(), cache.embed());
    let expected = heads * embed;
    if q_step.len() != expected || out.len() != expected {
        return Err(TensorError::DataLengthMismatch {
            expected,
            actual: if q_step.len() != expected {
                q_step.len()
            } else {
                out.len()
            },
        });
    }
    if cache.is_empty() {
        return Err(TensorError::ZeroDimension { dim: "kv_cache" });
    }
    // Attended tokens relative to the table's first resident token
    // (`attended <= resident` by construction of `len`).
    let attended = cache.len();
    let end = cache.resident_tokens();
    let start = end - attended;
    let block_tokens = cache.block_tokens();
    let group = cache.group_size();
    // f16 pools widen each slot run through the same fixed-size scratch
    // tiles as the contiguous kernel (`sweep_f16_rows`), so paged and
    // contiguous f16 decode visit identical f32 row sequences.
    let mut scratch = match pool.dtype() {
        KvDtype::F32 => Vec::new(),
        KvDtype::F16 => vec![0.0f32; 2 * F16_TILE_TOKENS * embed],
    };
    for h in 0..heads {
        let q_row = &q_step[h * embed..(h + 1) * embed];
        let o_row = &mut out[h * embed..(h + 1) * embed];
        let kv_h = h / group;
        let mut state = OnlineDecodeState::new(q_row, o_row);
        // Sweep the block table oldest-first, one contiguous slot run per
        // block (invariant 2: rows per (block, head) are contiguous).
        let mut token = start;
        while token < end {
            let block_index = token / block_tokens;
            let slot_start = token % block_tokens;
            let slot_end = (end - block_index * block_tokens).min(block_tokens);
            let id = cache.block_table()[block_index];
            match pool.dtype() {
                KvDtype::F32 => state.update(
                    pool.key_rows(id, kv_h, slot_start, slot_end),
                    pool.value_rows(id, kv_h, slot_start, slot_end),
                ),
                KvDtype::F16 => {
                    let (k_tile, v_tile) = scratch.split_at_mut(F16_TILE_TOKENS * embed);
                    sweep_f16_rows(
                        &mut state,
                        pool.key_bits(id, kv_h, slot_start, slot_end),
                        pool.value_bits(id, kv_h, slot_start, slot_end),
                        k_tile,
                        v_tile,
                    );
                }
            }
            token = block_index * block_tokens + slot_end;
        }
        state.finish();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::{decode_attention, KvCache};
    use crate::init::random_qkv;
    use crate::Tensor;

    fn gather(src: &Tensor, r: usize) -> Vec<f32> {
        let [_, heads, _, _] = src.shape().dims();
        (0..heads).flat_map(|h| src.row(0, h, r).to_vec()).collect()
    }

    #[test]
    fn pool_conserves_blocks_and_tracks_peak() {
        let mut pool = KvBlockPool::new(4, 2, 8);
        assert_eq!(pool.total_blocks(), 0);
        let a = pool.alloc().unwrap();
        let b = pool.alloc().unwrap();
        assert_eq!((pool.live_blocks(), pool.free_blocks()), (2, 0));
        pool.free(a);
        assert_eq!((pool.live_blocks(), pool.free_blocks()), (1, 1));
        assert_eq!(pool.total_blocks(), 2);
        // Reuse before growth: the freed block comes back.
        let c = pool.alloc().unwrap();
        assert_eq!(c, a, "freed blocks are reused LIFO before the pool grows");
        assert_eq!(pool.total_blocks(), 2);
        assert_eq!(pool.peak_live_blocks(), 2);
        pool.free(b);
        pool.free(c);
        assert_eq!(pool.live_blocks(), 0);
        assert_eq!(pool.free_blocks() + pool.live_blocks(), pool.total_blocks());
    }

    #[test]
    fn bounded_pool_exhaustion_is_a_typed_error() {
        let mut pool = KvBlockPool::new(2, 1, 4).with_max_blocks(2);
        let _a = pool.alloc().unwrap();
        let b = pool.alloc().unwrap();
        assert_eq!(
            pool.alloc().unwrap_err(),
            TensorError::BlockPoolExhausted { capacity_blocks: 2 }
        );
        pool.free(b);
        assert!(pool.alloc().is_ok(), "freeing restores capacity");
    }

    #[test]
    fn reused_blocks_come_back_zeroed() {
        let mut pool = KvBlockPool::new(1, 1, 2);
        let mut cache = PagedKvCache::new(1, 1, 2, 1).unwrap();
        cache.append(&mut pool, &[7.0, 7.0], &[7.0, 7.0]).unwrap();
        cache.release(&mut pool);
        let id = pool.alloc().unwrap();
        assert_eq!(pool.key_rows(id, 0, 0, 1), &[0.0, 0.0]);
    }

    #[test]
    fn geometry_mismatch_is_a_typed_error() {
        let mut pool = KvBlockPool::new(4, 2, 8);
        let mut cache = PagedKvCache::new(2, 2, 8, 8).unwrap();
        assert!(matches!(
            cache.append(&mut pool, &[0.0; 16], &[0.0; 16]),
            Err(TensorError::BlockGeometryMismatch {
                param: "block_tokens",
                ..
            })
        ));
    }

    #[test]
    fn foreign_pool_with_matching_geometry_is_a_typed_error() {
        // Two pools, identical geometry: a cache bound to pool A must not
        // be readable (or appendable) against pool B — block ids are raw
        // arena indices into A.
        let mut pool_a = KvBlockPool::new(2, 1, 2);
        let pool_b = KvBlockPool::new(2, 1, 2);
        let mut cache = PagedKvCache::new(1, 1, 2, 2).unwrap();
        cache.append(&mut pool_a, &[1.0, 2.0], &[3.0, 4.0]).unwrap();
        let mut out = [0.0f32; 2];
        assert!(matches!(
            decode_attention_paged(&pool_b, &cache, &[1.0, 0.0], &mut out),
            Err(TensorError::BlockGeometryMismatch {
                param: "pool identity",
                ..
            })
        ));
        let mut pool_b = pool_b;
        assert!(matches!(
            cache.append(&mut pool_b, &[5.0, 6.0], &[7.0, 8.0]),
            Err(TensorError::BlockGeometryMismatch {
                param: "pool identity",
                ..
            })
        ));
        // The bound pool keeps working, and release clears the binding so
        // the cache can start over in another pool.
        decode_attention_paged(&pool_a, &cache, &[1.0, 0.0], &mut out).unwrap();
        cache.release(&mut pool_a);
        cache.append(&mut pool_b, &[5.0, 6.0], &[7.0, 8.0]).unwrap();
        decode_attention_paged(&pool_b, &cache, &[1.0, 0.0], &mut out).unwrap();
        assert_eq!(out, [7.0, 8.0]);
    }

    #[test]
    #[should_panic(expected = "release must target the pool")]
    fn releasing_into_a_foreign_pool_panics() {
        let mut pool_a = KvBlockPool::new(2, 1, 2);
        let mut pool_b = KvBlockPool::new(2, 1, 2);
        let mut cache = PagedKvCache::new(1, 1, 2, 2).unwrap();
        cache.append(&mut pool_a, &[1.0, 2.0], &[3.0, 4.0]).unwrap();
        cache.release(&mut pool_b);
    }

    #[test]
    fn failed_block_alloc_leaves_the_cache_unchanged() {
        let mut pool = KvBlockPool::new(1, 1, 2).with_max_blocks(1);
        let mut cache = PagedKvCache::new(1, 1, 2, 1).unwrap();
        cache.append(&mut pool, &[1.0, 1.0], &[1.0, 1.0]).unwrap();
        let before = cache.clone();
        assert!(matches!(
            cache.append(&mut pool, &[2.0, 2.0], &[2.0, 2.0]),
            Err(TensorError::BlockPoolExhausted { .. })
        ));
        assert_eq!(cache, before, "failed append must not partially apply");
    }

    #[test]
    fn paged_decode_is_bit_identical_to_contiguous() {
        let (heads, t, embed, seed) = (3, 23, 8, 41);
        for block_tokens in [1usize, 7, 16, 64] {
            let (q, k, v) = random_qkv(1, heads, t, embed, seed);
            let mut contiguous = KvCache::new(heads, embed);
            let mut pool = KvBlockPool::new(block_tokens, heads, embed);
            let mut paged = PagedKvCache::new(heads, heads, embed, block_tokens).unwrap();
            let mut out_c = vec![0.0f32; heads * embed];
            let mut out_p = vec![0.0f32; heads * embed];
            for i in 0..t {
                let (ks, vs, qs) = (gather(&k, i), gather(&v, i), gather(&q, i));
                contiguous.append(&ks, &vs).unwrap();
                paged.append(&mut pool, &ks, &vs).unwrap();
                decode_attention(&contiguous, &qs, &mut out_c).unwrap();
                decode_attention_paged(&pool, &paged, &qs, &mut out_p).unwrap();
                assert_eq!(out_c, out_p, "block {block_tokens} step {i}");
            }
            assert_eq!(paged.allocated_blocks(), t.div_ceil(block_tokens));
        }
    }

    #[test]
    fn f16_paged_decode_is_bit_identical_to_f16_contiguous() {
        // Paged slot runs and the contiguous sweep deliver rows to
        // `sweep_f16_rows` in different tile groupings, but the online
        // recurrence is a pure function of the visited row sequence — so
        // the two f16 paths must agree bitwise, just like the f32 ones.
        // `t` crosses F16_TILE_TOKENS to exercise contiguous tiling.
        let (heads, embed, seed) = (3, 8, 41);
        let t = F16_TILE_TOKENS + 9;
        for block_tokens in [1usize, 7, 16, 64] {
            let (q, k, v) = random_qkv(1, heads, t, embed, seed);
            let mut contiguous = KvCache::new(heads, embed).with_dtype(KvDtype::F16);
            let mut pool = KvBlockPool::new(block_tokens, heads, embed).with_dtype(KvDtype::F16);
            let mut paged = PagedKvCache::new(heads, heads, embed, block_tokens).unwrap();
            let mut out_c = vec![0.0f32; heads * embed];
            let mut out_p = vec![0.0f32; heads * embed];
            for i in 0..t {
                let (ks, vs, qs) = (gather(&k, i), gather(&v, i), gather(&q, i));
                contiguous.append(&ks, &vs).unwrap();
                paged.append(&mut pool, &ks, &vs).unwrap();
                decode_attention(&contiguous, &qs, &mut out_c).unwrap();
                decode_attention_paged(&pool, &paged, &qs, &mut out_p).unwrap();
                assert_eq!(out_c, out_p, "block {block_tokens} step {i}");
            }
        }
    }

    #[test]
    fn f16_pool_charges_exactly_half_the_block_bytes() {
        let f32_pool = KvBlockPool::new(16, 2, 8);
        let mut f16_pool = KvBlockPool::new(16, 2, 8).with_dtype(KvDtype::F16);
        assert_eq!(f16_pool.dtype(), KvDtype::F16);
        assert_eq!(
            2 * f16_pool.storage_block_bytes(),
            f32_pool.storage_block_bytes()
        );
        let _ = f16_pool.alloc().unwrap();
        let _ = f16_pool.alloc().unwrap();
        assert_eq!(
            f16_pool.live_storage_bytes(),
            2 * f16_pool.storage_block_bytes()
        );
    }

    #[test]
    fn reused_f16_blocks_come_back_zeroed() {
        let mut pool = KvBlockPool::new(1, 1, 2).with_dtype(KvDtype::F16);
        let mut cache = PagedKvCache::new(1, 1, 2, 1).unwrap();
        cache.append(&mut pool, &[7.0, 7.0], &[7.0, 7.0]).unwrap();
        cache.release(&mut pool);
        let id = pool.alloc().unwrap();
        assert_eq!(pool.key_bits(id, 0, 0, 1), &[0u16, 0u16]);
        assert_eq!(pool.value_bits(id, 0, 0, 1), &[0u16, 0u16]);
    }

    #[test]
    #[should_panic(expected = "before the first block allocation")]
    fn retyping_a_nonempty_pool_panics() {
        let mut pool = KvBlockPool::new(2, 1, 2);
        let _ = pool.alloc().unwrap();
        let _ = pool.with_dtype(KvDtype::F16);
    }

    #[test]
    fn windowed_paged_decode_attends_the_same_tokens_as_contiguous() {
        let (heads, t, embed, window, block_tokens, seed) = (2, 29, 4, 6, 4, 9);
        let (q, k, v) = random_qkv(1, heads, t, embed, seed);
        let mut contiguous = KvCache::with_capacity(heads, embed, window);
        let mut pool = KvBlockPool::new(block_tokens, heads, embed);
        let mut paged = PagedKvCache::new(heads, heads, embed, block_tokens)
            .unwrap()
            .with_window(window);
        let mut out_c = vec![0.0f32; heads * embed];
        let mut out_p = vec![0.0f32; heads * embed];
        for i in 0..t {
            let (ks, vs, qs) = (gather(&k, i), gather(&v, i), gather(&q, i));
            contiguous.append(&ks, &vs).unwrap();
            paged.append(&mut pool, &ks, &vs).unwrap();
            decode_attention(&contiguous, &qs, &mut out_c).unwrap();
            decode_attention_paged(&pool, &paged, &qs, &mut out_p).unwrap();
            assert_eq!(out_c, out_p, "step {i}");
            assert_eq!(paged.len(), contiguous.len());
            assert_eq!(paged.evicted_tokens(), contiguous.evicted_tokens());
        }
        // Whole-block eviction keeps at most window + block_tokens resident
        // tokens and returns everything older to the pool.
        assert!(paged.resident_tokens() <= window + block_tokens);
        assert!(paged.freed_tokens() > 0);
        assert_eq!(pool.live_blocks() + pool.free_blocks(), pool.total_blocks());
    }

    #[test]
    fn grouped_paged_decode_matches_grouped_contiguous() {
        let (heads, kv_heads, t, embed, block_tokens, seed) = (4, 2, 11, 6, 3, 13);
        let (q, _, _) = random_qkv(1, heads, t, embed, seed);
        let (_, k, v) = random_qkv(1, kv_heads, t, embed, seed + 1);
        let mut contiguous = KvCache::grouped(heads, kv_heads, embed).unwrap();
        let mut pool = KvBlockPool::new(block_tokens, kv_heads, embed);
        let mut paged = PagedKvCache::new(heads, kv_heads, embed, block_tokens).unwrap();
        let mut out_c = vec![0.0f32; heads * embed];
        let mut out_p = vec![0.0f32; heads * embed];
        for i in 0..t {
            let (ks, vs, qs) = (gather(&k, i), gather(&v, i), gather(&q, i));
            contiguous.append(&ks, &vs).unwrap();
            paged.append(&mut pool, &ks, &vs).unwrap();
            decode_attention(&contiguous, &qs, &mut out_c).unwrap();
            decode_attention_paged(&pool, &paged, &qs, &mut out_p).unwrap();
            assert_eq!(out_c, out_p, "step {i}");
        }
    }

    #[test]
    fn fragmentation_reflects_the_partial_tail_block() {
        let mut pool = KvBlockPool::new(8, 1, 2);
        let mut cache = PagedKvCache::new(1, 1, 2, 8).unwrap();
        assert_eq!(cache.fragmentation(), 0.0);
        cache.append(&mut pool, &[0.0; 2], &[0.0; 2]).unwrap();
        // 1 of 8 slots used.
        assert!((cache.fragmentation() - 7.0 / 8.0).abs() < 1e-12);
        for _ in 1..8 {
            cache.append(&mut pool, &[0.0; 2], &[0.0; 2]).unwrap();
        }
        assert_eq!(cache.fragmentation(), 0.0);
    }

    #[test]
    fn invalid_grouping_is_a_typed_error() {
        assert_eq!(
            PagedKvCache::new(8, 3, 4, 16).unwrap_err(),
            TensorError::InvalidHeadGrouping {
                heads: 8,
                kv_heads: 3
            }
        );
    }

    #[test]
    fn released_cache_is_empty_and_restartable() {
        // Regression: after release, len() must drop to zero so decode is
        // the usual empty-cache error (not an arithmetic panic), and a
        // fresh append must restart cleanly at slot 0 of a new block.
        let mut pool = KvBlockPool::new(2, 1, 2);
        let mut cache = PagedKvCache::new(1, 1, 2, 2).unwrap();
        for _ in 0..5 {
            cache.append(&mut pool, &[1.0, 2.0], &[3.0, 4.0]).unwrap();
        }
        cache.release(&mut pool);
        assert_eq!(cache.len(), 0);
        assert!(cache.is_empty());
        assert_eq!(cache.resident_tokens(), 0);
        assert_eq!(cache.evicted_tokens(), 5);
        let mut out = [0.0f32; 2];
        assert!(matches!(
            decode_attention_paged(&pool, &cache, &[1.0, 0.0], &mut out),
            Err(TensorError::ZeroDimension { .. })
        ));
        // Restart: appending again works and decode sees only the new token.
        cache.append(&mut pool, &[0.0, 0.0], &[7.0, 8.0]).unwrap();
        assert_eq!((cache.len(), cache.allocated_blocks()), (1, 1));
        decode_attention_paged(&pool, &cache, &[1.0, 0.0], &mut out).unwrap();
        assert_eq!(out, [7.0, 8.0]);
        // A released *windowed* cache behaves the same.
        let mut windowed = PagedKvCache::new(1, 1, 2, 2).unwrap().with_window(3);
        for _ in 0..5 {
            windowed
                .append(&mut pool, &[1.0, 2.0], &[3.0, 4.0])
                .unwrap();
        }
        windowed.release(&mut pool);
        assert_eq!(windowed.len(), 0);
        assert!(matches!(
            decode_attention_paged(&pool, &windowed, &[1.0, 0.0], &mut out),
            Err(TensorError::ZeroDimension { .. })
        ));
    }

    #[test]
    fn release_returns_every_block() {
        let mut pool = KvBlockPool::new(2, 1, 2);
        let mut a = PagedKvCache::new(1, 1, 2, 2).unwrap();
        let mut b = PagedKvCache::new(1, 1, 2, 2).unwrap();
        for _ in 0..5 {
            a.append(&mut pool, &[1.0; 2], &[1.0; 2]).unwrap();
            b.append(&mut pool, &[2.0; 2], &[2.0; 2]).unwrap();
        }
        assert_eq!(pool.live_blocks(), 6);
        a.release(&mut pool);
        assert_eq!(pool.live_blocks(), 3);
        assert_eq!(a.allocated_blocks(), 0);
        b.release(&mut pool);
        assert_eq!(pool.live_blocks(), 0);
        assert_eq!(pool.peak_live_blocks(), 6);
    }
}
