//! Block-granular (paged) KV-cache storage for autoregressive decode.
//!
//! The contiguous [`KvCache`](crate::decode::KvCache) grows one dense buffer
//! per session, so a serving layer must reserve worst-case max-context bytes
//! per session up front — the fragmentation/over-reservation problem that
//! caps concurrent sessions on DRAM-starved edge devices. This module
//! provides the vLLM-style alternative: fixed-size *token blocks* drawn from
//! a shared pool, with per-session block tables.
//!
//! * [`KvBlockPool`] — the physical block store (the `BlockAllocator`): a
//!   flat arena of `block_tokens`-token K/V blocks with a LIFO free list,
//!   per-block reference counts, optional capacity bound, and live/peak
//!   accounting. Freed blocks are always reused before the arena grows.
//! * [`PagedKvCache`] — one session's logical cache: a table of pool block
//!   ids covering its tokens in order, plus append/sliding-window logic.
//!   Eviction returns *whole blocks* to the pool (a block is freed once all
//!   of its tokens fall outside the window), while the attended token set
//!   stays exactly the window's newest tokens — identical to the contiguous
//!   cache's.
//! * [`PrefixIndex`] — a radix tree over token-block contents (SGLang
//!   RadixAttention style) enabling *cross-session prefix sharing*: sessions
//!   whose prompts share a block-aligned prefix map the same physical
//!   blocks via [`PagedKvCache::open_with_prefix`], with copy-on-write on
//!   divergence and LRU eviction of index-only blocks under pool pressure.
//! * [`decode_attention_paged`] — the decode kernel generalized to sweep a
//!   block table. It drives the same per-row online-softmax recurrence
//!   ([`OnlineDecodeState`](crate::decode::OnlineDecodeState)) as the
//!   contiguous [`decode_attention`](crate::decode::decode_attention) over
//!   the same rows in the same order, so the two paths are **bit-identical**
//!   (pinned by `tests/paged_vs_contiguous.rs`).
//!
//! ## Block-table layout invariants
//!
//! 1. **Blocks are token-aligned to the resident stream.** Resident token
//!    `r` (zero-based from the oldest token still in a pool block, i.e.
//!    absolute token `freed_tokens + r`) lives in `table[r / block_tokens]`,
//!    slot `r % block_tokens`. Window eviction only frees whole front
//!    blocks, so it advances `freed_tokens` in `block_tokens` steps and
//!    preserves the alignment; [`PagedKvCache::release`] drops every block
//!    and restarts the resident stream at slot 0 of the next block.
//! 2. **Rows are contiguous per `(block, kv_head)`.** Inside a block, the
//!    `block_tokens` K rows of one KV head are one contiguous
//!    `block_tokens × embed` slice (likewise V), so the kernel sweeps each
//!    block with the same [`dot`](crate::matmul::dot)/
//!    [`axpy`](crate::matmul::axpy) slice primitives as the contiguous
//!    cache — a block is to the paged kernel what the whole cache is to the
//!    contiguous one.
//! 3. **Only the tail block is partially filled.** Every table entry except
//!    possibly the last holds exactly `block_tokens` tokens; the attended
//!    range within the table is `[window_start, appended)` and never
//!    touches slots beyond the fill point.
//! 4. **Pool conservation.** `free_blocks + live_blocks == total_blocks` at
//!    every step; `peak_live_blocks` is the high-water mark of
//!    `live_blocks` (pinned by the allocator proptests in
//!    `crates/tensor/tests/paged_alloc.rs`).
//!
//! ## Prefix-sharing invariants
//!
//! 5. **Blocks are refcounted; a free is a decref.** [`KvBlockPool::alloc`]
//!    creates a block with refcount 1, [`KvBlockPool::retain`] adds a
//!    holder, and [`KvBlockPool::free`] drops one — the block only returns
//!    to the free list (and leaves the live count) when the *last* holder
//!    drops it, so releasing one sharing session can never free blocks a
//!    sibling session (or the prefix index) still references. `live_blocks`
//!    counts **unique** physical blocks with refcount > 0, so conservation
//!    (invariant 4) is unchanged under sharing.
//! 6. **The prefix index shares only verified content, only within one
//!    pool.** [`PrefixIndex`] nodes key full blocks by a content hash of
//!    their token ids *and* verify exact token equality on lookup (hash
//!    collisions cannot alias prefixes). The index binds to the first
//!    pool's identity and [`KvDtype`] it is used with; resolving or
//!    publishing against any other pool (or a differently-typed clone) is a
//!    typed [`TensorError::BlockGeometryMismatch`], never a silent read of
//!    foreign rows. The index holds its own refcount on every indexed
//!    block, so shared prefixes outlive their publishing session; LRU
//!    eviction reclaims only *leaf* nodes whose block has refcount 1 (the
//!    index's own) — it never frees a block any session still maps.
//! 7. **Shared table entries are read-only until copy-on-write.** A session
//!    opened with [`PagedKvCache::open_with_prefix`] counts its leading
//!    shared table entries; all of them except possibly a partially-matched
//!    tail are full and never written again. The first append *into* a
//!    shared tail block clones the written-prefix rows into a private block
//!    (dropping one ref on the source, whose bytes are never mutated);
//!    window-evicting *past* a shared block likewise just drops the
//!    session's ref. Decode reads only resident slots, so a partially
//!    matched tail's extra rows are never attended — shared-prefix decode
//!    is bit-identical to a fully private session with the same tokens
//!    (pinned by the shared-prefix oracle in
//!    `tests/paged_vs_contiguous.rs`).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

use crate::decode::{check_head_grouping, sweep_f16_rows, OnlineDecodeState, F16_TILE_TOKENS};
use crate::error::{Result, TensorError};
use crate::half::{f32_to_f16_bits_saturating, KvDtype};

/// Source of unique pool identity tokens: block ids are raw arena indices,
/// so a cache must never be used with a pool other than the one that
/// allocated its blocks — the identity check turns that logic error into a
/// typed error instead of an out-of-bounds panic or a silent read of
/// another session's rows.
static NEXT_POOL_ID: AtomicU64 = AtomicU64::new(1);

/// Handle to one block in a [`KvBlockPool`].
///
/// Ids are indices into the pool's arena; they are only meaningful for the
/// pool that allocated them and may be reused after [`KvBlockPool::free`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BlockId(usize);

impl BlockId {
    /// The raw arena index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// The physical KV block store shared by paged caches: a flat arena of
/// fixed-geometry blocks (`block_tokens` tokens × `kv_heads` heads ×
/// `embed` lanes, for K and V), a LIFO free list and live/peak accounting.
///
/// Allocation policy: freed blocks are always reused (free-list pop) before
/// the arena grows; growth beyond an optional `max_blocks` bound fails with
/// [`TensorError::BlockPoolExhausted`] instead of allocating.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KvBlockPool {
    /// Unique identity token (see [`NEXT_POOL_ID`]); clones share it, since
    /// a clone holds the same arena contents and its block ids stay valid.
    id: u64,
    block_tokens: usize,
    kv_heads: usize,
    embed: usize,
    max_blocks: Option<usize>,
    /// Storage dtype of the arenas. Exactly one pair of arenas (`k`/`v` for
    /// [`KvDtype::F32`], `k16`/`v16` for [`KvDtype::F16`]) is populated.
    #[serde(default)]
    dtype: KvDtype,
    /// Arena of key rows: `total_blocks × kv_heads × block_tokens × embed`,
    /// block-major then head-major (invariant 2 of the module docs).
    k: Vec<f32>,
    /// Arena of value rows, same layout as `k`.
    v: Vec<f32>,
    /// f16 key arena (same layout as `k`, one `u16` of f16 bits per
    /// element); used instead of `k` under [`KvDtype::F16`].
    #[serde(default)]
    k16: Vec<u16>,
    /// f16 value arena, same layout as `k16`.
    #[serde(default)]
    v16: Vec<u16>,
    /// Indices of freed blocks, reused LIFO.
    free: Vec<usize>,
    /// Per-block reference counts, parallel to the arena. A block is live
    /// iff its refcount is non-zero; [`KvBlockPool::free`] is a decref and
    /// only returns the block to the free list at zero (module invariant 5).
    #[serde(default)]
    refs: Vec<u32>,
    live: usize,
    peak_live: usize,
}

impl KvBlockPool {
    /// Creates an unbounded pool of `block_tokens`-token blocks for
    /// `kv_heads` KV heads of `embed`-wide rows. The arena starts empty and
    /// grows on demand.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn new(block_tokens: usize, kv_heads: usize, embed: usize) -> Self {
        assert!(
            block_tokens > 0 && kv_heads > 0 && embed > 0,
            "block pool dimensions must be non-zero"
        );
        Self {
            id: NEXT_POOL_ID.fetch_add(1, Ordering::Relaxed),
            block_tokens,
            kv_heads,
            embed,
            max_blocks: None,
            dtype: KvDtype::F32,
            k: Vec::new(),
            v: Vec::new(),
            k16: Vec::new(),
            v16: Vec::new(),
            free: Vec::new(),
            refs: Vec::new(),
            live: 0,
            peak_live: 0,
        }
    }

    /// Bounds the pool at `max_blocks` blocks: allocations beyond the bound
    /// fail with [`TensorError::BlockPoolExhausted`].
    #[must_use]
    pub fn with_max_blocks(mut self, max_blocks: usize) -> Self {
        self.max_blocks = Some(max_blocks);
        self
    }

    /// Selects the storage dtype of the pool's arenas. Under
    /// [`KvDtype::F16`] each written element is converted with the
    /// saturating f16 store
    /// ([`f32_to_f16_bits_saturating`](crate::half::f32_to_f16_bits_saturating))
    /// and blocks charge half the bytes of f32 blocks.
    ///
    /// # Panics
    ///
    /// Panics if the pool has already created blocks: the storage dtype must
    /// be chosen before the first allocation.
    #[must_use]
    pub fn with_dtype(mut self, dtype: KvDtype) -> Self {
        assert_eq!(
            self.total_blocks(),
            0,
            "KV storage dtype must be chosen before the first block allocation"
        );
        self.dtype = dtype;
        self
    }

    /// Storage dtype of the pool's arenas.
    #[must_use]
    pub fn dtype(&self) -> KvDtype {
        self.dtype
    }

    /// Tokens per block.
    #[must_use]
    pub fn block_tokens(&self) -> usize {
        self.block_tokens
    }

    /// Stored KV heads per block.
    #[must_use]
    pub fn kv_heads(&self) -> usize {
        self.kv_heads
    }

    /// Per-head embedding width of each row.
    #[must_use]
    pub fn embed(&self) -> usize {
        self.embed
    }

    /// Elements of one head's rows within a block (`block_tokens · embed`).
    fn head_stride(&self) -> usize {
        self.block_tokens * self.embed
    }

    /// Elements of one block per arena (`kv_heads · block_tokens · embed`).
    fn block_stride(&self) -> usize {
        self.kv_heads * self.head_stride()
    }

    /// Blocks ever created in the arena (live plus free).
    #[must_use]
    pub fn total_blocks(&self) -> usize {
        if self.block_stride() == 0 {
            return 0;
        }
        let elements = match self.dtype {
            KvDtype::F32 => self.k.len(),
            KvDtype::F16 => self.k16.len(),
        };
        elements / self.block_stride()
    }

    /// Blocks currently allocated to caches.
    #[must_use]
    pub fn live_blocks(&self) -> usize {
        self.live
    }

    /// Blocks on the free list, awaiting reuse.
    #[must_use]
    pub fn free_blocks(&self) -> usize {
        self.free.len()
    }

    /// High-water mark of [`KvBlockPool::live_blocks`].
    #[must_use]
    pub fn peak_live_blocks(&self) -> usize {
        self.peak_live
    }

    /// `K` plus `V` bytes of one block at `element_bytes` per element.
    #[must_use]
    pub fn block_bytes(&self, element_bytes: usize) -> usize {
        2 * self.block_stride() * element_bytes
    }

    /// Bytes of all live blocks — what a serving layer charges against its
    /// KV budget under block-granular accounting.
    #[must_use]
    pub fn live_bytes(&self, element_bytes: usize) -> usize {
        self.live * self.block_bytes(element_bytes)
    }

    /// `K` plus `V` bytes of one block at the pool's own storage dtype
    /// ([`KvBlockPool::block_bytes`] with
    /// [`KvDtype::element_bytes`]) — exactly half under [`KvDtype::F16`].
    #[must_use]
    pub fn storage_block_bytes(&self) -> usize {
        self.block_bytes(self.dtype.element_bytes())
    }

    /// Bytes of all live blocks at the pool's own storage dtype.
    #[must_use]
    pub fn live_storage_bytes(&self) -> usize {
        self.live * self.storage_block_bytes()
    }

    /// Allocates one block, reusing the most recently freed block if any,
    /// growing the arena otherwise. The block's contents are zeroed and its
    /// refcount starts at 1 (the caller is the sole holder).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::BlockPoolExhausted`] if the pool is bounded
    /// and every block is live.
    pub fn alloc(&mut self) -> Result<BlockId> {
        let id = if let Some(reused) = self.free.pop() {
            let stride = self.block_stride();
            match self.dtype {
                KvDtype::F32 => {
                    self.k[reused * stride..(reused + 1) * stride].fill(0.0);
                    self.v[reused * stride..(reused + 1) * stride].fill(0.0);
                }
                KvDtype::F16 => {
                    self.k16[reused * stride..(reused + 1) * stride].fill(0);
                    self.v16[reused * stride..(reused + 1) * stride].fill(0);
                }
            }
            reused
        } else {
            if let Some(max) = self.max_blocks {
                if self.total_blocks() >= max {
                    return Err(TensorError::BlockPoolExhausted {
                        capacity_blocks: max,
                    });
                }
            }
            let id = self.total_blocks();
            let stride = self.block_stride();
            match self.dtype {
                KvDtype::F32 => {
                    self.k.resize(self.k.len() + stride, 0.0);
                    self.v.resize(self.v.len() + stride, 0.0);
                }
                KvDtype::F16 => {
                    self.k16.resize(self.k16.len() + stride, 0);
                    self.v16.resize(self.v16.len() + stride, 0);
                }
            }
            self.refs.push(0);
            id
        };
        self.refs[id] = 1;
        self.live += 1;
        self.peak_live = self.peak_live.max(self.live);
        Ok(BlockId(id))
    }

    /// Adds one holder to a live block — how a sharing session (or the
    /// [`PrefixIndex`]) maps an existing physical block into its table.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range or the block is not live.
    pub fn retain(&mut self, id: BlockId) {
        assert!(id.0 < self.total_blocks(), "retained block id out of range");
        assert!(self.refs[id.0] > 0, "retain of a free block {}", id.0);
        self.refs[id.0] += 1;
    }

    /// The number of holders of a block (0 for a freed block).
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn refcount(&self, id: BlockId) -> u32 {
        assert!(id.0 < self.total_blocks(), "block id out of range");
        self.refs[id.0]
    }

    /// Drops one holder of a block; the block returns to the free list for
    /// reuse only when the last holder drops it (module invariant 5 — a
    /// sharing sibling's or the prefix index's reference keeps it live).
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range or the block is already free: a
    /// double free is a logic error in the caller's block table, not a
    /// recoverable state.
    pub fn free(&mut self, id: BlockId) {
        assert!(id.0 < self.total_blocks(), "freed block id out of range");
        assert!(self.refs[id.0] > 0, "double free of block {}", id.0);
        self.refs[id.0] -= 1;
        if self.refs[id.0] == 0 {
            self.free.push(id.0);
            self.live -= 1;
        }
    }

    /// Copies the K and V rows of slots `[0, slots)` (every KV head) from
    /// `src` into `dst` — the copy-on-write clone step. `dst` is typically
    /// freshly allocated (zeroed), so after the copy it is byte-identical
    /// to a block that had the same `slots` tokens appended privately.
    fn copy_rows(&mut self, src: BlockId, dst: BlockId, slots: usize) {
        debug_assert!(slots <= self.block_tokens);
        let (embed, head_stride, block_stride) =
            (self.embed, self.head_stride(), self.block_stride());
        for h in 0..self.kv_heads {
            let s = src.0 * block_stride + h * head_stride;
            let d = dst.0 * block_stride + h * head_stride;
            let len = slots * embed;
            match self.dtype {
                KvDtype::F32 => {
                    self.k.copy_within(s..s + len, d);
                    self.v.copy_within(s..s + len, d);
                }
                KvDtype::F16 => {
                    self.k16.copy_within(s..s + len, d);
                    self.v16.copy_within(s..s + len, d);
                }
            }
        }
    }

    /// Allocates a private copy of `src` holding its first `slots` tokens'
    /// rows — the copy-on-write clone. The source block's bytes are never
    /// mutated and its refcount is unchanged (the caller decides whether to
    /// drop its own reference).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::BlockPoolExhausted`] if the bounded pool is
    /// full.
    pub fn clone_block(&mut self, src: BlockId, slots: usize) -> Result<BlockId> {
        let dst = self.alloc()?;
        self.copy_rows(src, dst, slots);
        Ok(dst)
    }

    /// The contiguous key rows `[slot_start, slot_end)` of KV head `h` in
    /// block `id` (each row `embed` wide).
    ///
    /// # Panics
    ///
    /// Panics unless the pool stores [`KvDtype::F32`]; use
    /// [`KvBlockPool::key_bits`] for f16 pools.
    #[must_use]
    pub fn key_rows(&self, id: BlockId, h: usize, slot_start: usize, slot_end: usize) -> &[f32] {
        assert_eq!(self.dtype, KvDtype::F32, "key_rows requires an f32 pool");
        let base = id.0 * self.block_stride() + h * self.head_stride();
        &self.k[base + slot_start * self.embed..base + slot_end * self.embed]
    }

    /// The contiguous value rows `[slot_start, slot_end)` of KV head `h` in
    /// block `id`.
    ///
    /// # Panics
    ///
    /// Panics unless the pool stores [`KvDtype::F32`]; use
    /// [`KvBlockPool::value_bits`] for f16 pools.
    #[must_use]
    pub fn value_rows(&self, id: BlockId, h: usize, slot_start: usize, slot_end: usize) -> &[f32] {
        assert_eq!(self.dtype, KvDtype::F32, "value_rows requires an f32 pool");
        let base = id.0 * self.block_stride() + h * self.head_stride();
        &self.v[base + slot_start * self.embed..base + slot_end * self.embed]
    }

    /// The raw f16 bits of key rows `[slot_start, slot_end)` of KV head `h`
    /// in block `id` (each row `embed` wide).
    ///
    /// # Panics
    ///
    /// Panics unless the pool stores [`KvDtype::F16`].
    #[must_use]
    pub fn key_bits(&self, id: BlockId, h: usize, slot_start: usize, slot_end: usize) -> &[u16] {
        assert_eq!(self.dtype, KvDtype::F16, "key_bits requires an f16 pool");
        let base = id.0 * self.block_stride() + h * self.head_stride();
        &self.k16[base + slot_start * self.embed..base + slot_end * self.embed]
    }

    /// The raw f16 bits of value rows `[slot_start, slot_end)` of KV head
    /// `h` in block `id`.
    ///
    /// # Panics
    ///
    /// Panics unless the pool stores [`KvDtype::F16`].
    #[must_use]
    pub fn value_bits(&self, id: BlockId, h: usize, slot_start: usize, slot_end: usize) -> &[u16] {
        assert_eq!(self.dtype, KvDtype::F16, "value_bits requires an f16 pool");
        let base = id.0 * self.block_stride() + h * self.head_stride();
        &self.v16[base + slot_start * self.embed..base + slot_end * self.embed]
    }

    /// Writes one token's K/V rows (head-major, `kv_heads × embed` each)
    /// into slot `slot` of block `id`, converting with the saturating f16
    /// store when the pool holds [`KvDtype::F16`].
    fn write_token(&mut self, id: BlockId, slot: usize, k_step: &[f32], v_step: &[f32]) {
        let (embed, head_stride, block_stride) =
            (self.embed, self.head_stride(), self.block_stride());
        for h in 0..self.kv_heads {
            let base = id.0 * block_stride + h * head_stride + slot * embed;
            let (k_src, v_src) = (
                &k_step[h * embed..(h + 1) * embed],
                &v_step[h * embed..(h + 1) * embed],
            );
            match self.dtype {
                KvDtype::F32 => {
                    self.k[base..base + embed].copy_from_slice(k_src);
                    self.v[base..base + embed].copy_from_slice(v_src);
                }
                KvDtype::F16 => {
                    for (dst, &x) in self.k16[base..base + embed].iter_mut().zip(k_src) {
                        *dst = f32_to_f16_bits_saturating(x);
                    }
                    for (dst, &x) in self.v16[base..base + embed].iter_mut().zip(v_src) {
                        *dst = f32_to_f16_bits_saturating(x);
                    }
                }
            }
        }
    }
}

/// FNV-1a over the little-endian bytes of a token-id run — the content
/// hash keying radix children. Lookups verify exact token equality after
/// the hash match, so collisions cost a scan, never a false share.
fn hash_tokens(tokens: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &t in tokens {
        for b in t.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// The pool identity and storage dtype a [`PrefixIndex`] is bound to (set
/// at first use): block ids and row bytes are only meaningful within one
/// pool, so cross-pool or cross-dtype use is a typed error, never a match.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct IndexBinding {
    pool_id: u64,
    dtype: KvDtype,
}

/// One radix node: a full block's token ids, the physical block holding
/// their rows (the index holds one refcount on it), and hash-keyed child
/// buckets for the next block of deeper prefixes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct PrefixNode {
    /// Exactly `block_tokens` token ids — the block's verified content.
    tokens: Vec<u64>,
    block: BlockId,
    parent: Option<usize>,
    /// Content hash → node slots of children (buckets are collision
    /// chains; empty buckets are removed, so a leaf has an empty map).
    children: BTreeMap<u64, Vec<usize>>,
    /// Logical-clock timestamp of the last resolve/publish touching the
    /// node — the LRU eviction key.
    last_use: u64,
}

/// The longest indexed prefix of a prompt: matched full-block node slots in
/// chain order, an optional partially-matched tail node (taken only when
/// the remaining prompt is a strict prefix of one block's content), the
/// matched token count, and the deepest full-block node to keep publishing
/// under.
struct ResolvedPrefix {
    slots: Vec<usize>,
    partial: Option<usize>,
    matched: usize,
    parent: Option<(usize, u64)>,
}

/// A radix tree over token-block contents, mapping block-aligned prompt
/// prefixes to the physical [`KvBlockPool`] blocks that already hold their
/// K/V rows (module invariant 6). Sessions resolve their longest shared
/// prefix at open via [`PagedKvCache::open_with_prefix`] and publish their
/// own full prompt blocks as they fill via
/// [`PagedKvCache::append_with_prefix`]; under pool pressure,
/// least-recently-used index-only leaves are evicted to make room.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrefixIndex {
    block_tokens: usize,
    bound: Option<IndexBinding>,
    /// Node slab; freed slots are `None` and reusable.
    nodes: Vec<Option<PrefixNode>>,
    /// Per-slot generation counters, bumped on eviction so a publisher's
    /// stale parent handle can never attach under a recycled slot.
    gens: Vec<u64>,
    free_slots: Vec<usize>,
    /// Content hash → node slots of depth-0 blocks (prompt starts).
    roots: BTreeMap<u64, Vec<usize>>,
    /// Logical clock driving `last_use` (monotone per index).
    clock: u64,
}

impl PrefixIndex {
    /// Creates an empty index over `block_tokens`-token blocks.
    ///
    /// # Panics
    ///
    /// Panics if `block_tokens` is zero.
    #[must_use]
    pub fn new(block_tokens: usize) -> Self {
        assert!(block_tokens > 0, "prefix index block size must be non-zero");
        Self {
            block_tokens,
            bound: None,
            nodes: Vec::new(),
            gens: Vec::new(),
            free_slots: Vec::new(),
            roots: BTreeMap::new(),
            clock: 0,
        }
    }

    /// Tokens per indexed block.
    #[must_use]
    pub fn block_tokens(&self) -> usize {
        self.block_tokens
    }

    /// Number of indexed blocks (radix nodes).
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_some()).count()
    }

    /// Whether the index holds no blocks.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Binds the index to `pool` on first use; afterwards, use with any
    /// other pool — or a differently-typed pool — is a typed error
    /// (module invariant 6): a prefix indexed under one pool identity or
    /// [`KvDtype`] must never match in another.
    ///
    /// # Errors
    ///
    /// [`TensorError::BlockGeometryMismatch`] with `param: "block_tokens"`
    /// (geometry), `"kv dtype"` (stored dtype differs from the binding) or
    /// `"pool identity"` (different pool than the binding).
    fn ensure_bound(&mut self, pool: &KvBlockPool) -> Result<()> {
        if pool.block_tokens() != self.block_tokens {
            return Err(TensorError::BlockGeometryMismatch {
                param: "block_tokens",
                pool: pool.block_tokens(),
                cache: self.block_tokens,
            });
        }
        match self.bound {
            None => {
                self.bound = Some(IndexBinding {
                    pool_id: pool.id,
                    dtype: pool.dtype(),
                });
                Ok(())
            }
            Some(b) if b.dtype != pool.dtype() => Err(TensorError::BlockGeometryMismatch {
                param: "kv dtype",
                pool: pool.dtype().element_bytes(),
                cache: b.dtype.element_bytes(),
            }),
            Some(b) if b.pool_id != pool.id => Err(TensorError::BlockGeometryMismatch {
                param: "pool identity",
                pool: pool.id as usize,
                cache: b.pool_id as usize,
            }),
            Some(_) => Ok(()),
        }
    }

    /// Bumps the LRU clock on a node.
    fn touch(&mut self, slot: usize) {
        self.clock += 1;
        if let Some(node) = &mut self.nodes[slot] {
            node.last_use = self.clock;
        }
    }

    /// The child of `parent` (or root) whose tokens equal `tokens` exactly.
    fn find_child(&self, parent: Option<usize>, tokens: &[u64]) -> Option<usize> {
        let bucket = match parent {
            Some(p) => self.nodes[p].as_ref()?.children.get(&hash_tokens(tokens)),
            None => self.roots.get(&hash_tokens(tokens)),
        }?;
        bucket
            .iter()
            .copied()
            .find(|&s| self.nodes[s].as_ref().is_some_and(|n| n.tokens == tokens))
    }

    /// The first child of `parent` (or root) whose content *starts with*
    /// `prefix` — the partial-tail share. Buckets are scanned in
    /// deterministic (`BTreeMap`) order; any match is correct since decode
    /// only reads the matched slots.
    fn find_child_by_prefix(&self, parent: Option<usize>, prefix: &[u64]) -> Option<usize> {
        let children = match parent {
            Some(p) => &self.nodes[p].as_ref()?.children,
            None => &self.roots,
        };
        children.values().flatten().copied().find(|&s| {
            self.nodes[s]
                .as_ref()
                .is_some_and(|n| n.tokens.starts_with(prefix))
        })
    }

    /// The longest indexed prefix of `tokens`: full-block chain matches,
    /// then an optional partial-tail match covering the *entire* remainder.
    /// Touches every matched node for LRU.
    fn resolve(&mut self, tokens: &[u64]) -> ResolvedPrefix {
        let bt = self.block_tokens;
        let mut slots = Vec::new();
        let mut parent: Option<usize> = None;
        let mut matched = 0;
        while matched + bt <= tokens.len() {
            match self.find_child(parent, &tokens[matched..matched + bt]) {
                Some(slot) => {
                    self.touch(slot);
                    slots.push(slot);
                    parent = Some(slot);
                    matched += bt;
                }
                None => break,
            }
        }
        let mut partial = None;
        if matched < tokens.len() && tokens.len() - matched < bt {
            if let Some(slot) = self.find_child_by_prefix(parent, &tokens[matched..]) {
                self.touch(slot);
                partial = Some(slot);
                matched = tokens.len();
            }
        }
        let parent = parent.map(|p| (p, self.gens[p]));
        ResolvedPrefix {
            slots,
            partial,
            matched,
            parent,
        }
    }

    /// The number of leading tokens of `tokens` the index would share
    /// (counting only full-block chain matches), without touching LRU state
    /// — a read-only probe for tests and diagnostics.
    #[must_use]
    pub fn probe(&self, tokens: &[u64]) -> usize {
        let bt = self.block_tokens;
        let mut parent: Option<usize> = None;
        let mut matched = 0;
        while matched + bt <= tokens.len() {
            match self.find_child(parent, &tokens[matched..matched + bt]) {
                Some(slot) => {
                    parent = Some(slot);
                    matched += bt;
                }
                None => break,
            }
        }
        matched
    }

    /// The physical block of node `slot`.
    fn node_block(&self, slot: usize) -> BlockId {
        self.nodes[slot].as_ref().expect("occupied node slot").block
    }

    /// Publishes one full block under `parent` (a `(slot, generation)`
    /// handle, `None` for a prompt-start block). If an equal-content child
    /// already exists, it is adopted (deduplicated) and `block` keeps its
    /// current holders only; otherwise the index retains `block` as its own
    /// holder and inserts a node. Returns the handle to chain the next
    /// block under, or `None` when `parent` was evicted (stale generation)
    /// — the publisher stops publishing.
    fn insert(
        &mut self,
        pool: &mut KvBlockPool,
        parent: Option<(usize, u64)>,
        tokens: &[u64],
        block: BlockId,
    ) -> Option<(usize, u64)> {
        debug_assert_eq!(tokens.len(), self.block_tokens);
        let parent_slot = match parent {
            None => None,
            Some((slot, gen)) => {
                if self.gens.get(slot) != Some(&gen) || self.nodes[slot].is_none() {
                    return None;
                }
                Some(slot)
            }
        };
        if let Some(existing) = self.find_child(parent_slot, tokens) {
            self.touch(existing);
            return Some((existing, self.gens[existing]));
        }
        pool.retain(block);
        self.clock += 1;
        let node = PrefixNode {
            tokens: tokens.to_vec(),
            block,
            parent: parent_slot,
            children: BTreeMap::new(),
            last_use: self.clock,
        };
        let slot = match self.free_slots.pop() {
            Some(s) => {
                self.nodes[s] = Some(node);
                s
            }
            None => {
                self.nodes.push(Some(node));
                self.gens.push(0);
                self.nodes.len() - 1
            }
        };
        let hash = hash_tokens(tokens);
        match parent_slot {
            Some(p) => self.nodes[p]
                .as_mut()
                .expect("validated parent")
                .children
                .entry(hash)
                .or_default()
                .push(slot),
            None => self.roots.entry(hash).or_default().push(slot),
        }
        Some((slot, self.gens[slot]))
    }

    /// Evicts the least-recently-used *leaf* node whose block has refcount
    /// 1 — i.e. held only by the index itself — freeing the block back to
    /// the pool. Returns the freed block, or `None` when every node is
    /// either interior or still mapped by a session (eviction never frees a
    /// referenced block; module invariant 6).
    pub fn evict_lru(&mut self, pool: &mut KvBlockPool) -> Option<BlockId> {
        let mut victim: Option<(u64, usize)> = None;
        for (slot, entry) in self.nodes.iter().enumerate() {
            if let Some(node) = entry {
                if node.children.is_empty() && pool.refcount(node.block) == 1 {
                    match victim {
                        Some((lu, _)) if lu <= node.last_use => {}
                        _ => victim = Some((node.last_use, slot)),
                    }
                }
            }
        }
        let (_, slot) = victim?;
        let node = self.nodes[slot].take().expect("victim slot occupied");
        let hash = hash_tokens(&node.tokens);
        match node.parent {
            Some(p) => {
                let children = &mut self.nodes[p].as_mut().expect("live parent").children;
                if let Some(bucket) = children.get_mut(&hash) {
                    bucket.retain(|&s| s != slot);
                    if bucket.is_empty() {
                        children.remove(&hash);
                    }
                }
            }
            None => {
                if let Some(bucket) = self.roots.get_mut(&hash) {
                    bucket.retain(|&s| s != slot);
                    if bucket.is_empty() {
                        self.roots.remove(&hash);
                    }
                }
            }
        }
        self.gens[slot] += 1;
        self.free_slots.push(slot);
        pool.free(node.block);
        Some(node.block)
    }

    /// Evicts every index-only leaf (LRU-first, cascading up freed chains),
    /// returning the number of blocks freed — full pressure relief.
    pub fn evict_unreferenced(&mut self, pool: &mut KvBlockPool) -> usize {
        let mut freed = 0;
        while self.evict_lru(pool).is_some() {
            freed += 1;
        }
        freed
    }
}

/// Allocates from `pool`, reclaiming LRU index-only prefix blocks on
/// exhaustion (the pool-pressure path of module invariant 6).
fn alloc_with_reclaim(pool: &mut KvBlockPool, index: Option<&mut PrefixIndex>) -> Result<BlockId> {
    match pool.alloc() {
        Ok(id) => Ok(id),
        Err(TensorError::BlockPoolExhausted { .. }) if index.is_some() => {
            let ix = index.expect("checked above");
            while ix.evict_lru(pool).is_some() {
                if let Ok(id) = pool.alloc() {
                    return Ok(id);
                }
            }
            pool.alloc()
        }
        Err(e) => Err(e),
    }
}

/// One session's paged KV cache: a block table over a shared
/// [`KvBlockPool`], with grouped-query head sharing and an optional sliding
/// window whose eviction returns whole blocks to the pool.
///
/// The cache holds no K/V data itself — callers pass the pool to
/// [`PagedKvCache::append`] and [`decode_attention_paged`], mirroring the
/// block-table / physical-memory split of paged-attention serving systems
/// (many sessions, one pool).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PagedKvCache {
    heads: usize,
    kv_heads: usize,
    embed: usize,
    block_tokens: usize,
    window_tokens: Option<usize>,
    /// Pool blocks covering tokens `[freed_tokens, appended_tokens)`,
    /// oldest first.
    table: Vec<BlockId>,
    appended_tokens: usize,
    /// Tokens dropped from the front by whole-block eviction; always a
    /// multiple of `block_tokens`.
    freed_tokens: usize,
    /// Identity of the pool the table's blocks were allocated from (`None`
    /// until the first successful append, reset by release): block ids are
    /// raw arena indices, so operations against any *other* pool are
    /// rejected with a typed error even when the geometry matches.
    bound_pool_id: Option<u64>,
    /// Leading table entries mapped (read-only) from the prefix index.
    /// Every one except possibly the last is full; the first append into a
    /// partially-filled shared tail triggers copy-on-write, and window
    /// eviction past a shared front just drops the session's reference
    /// (module invariant 7).
    #[serde(default)]
    shared_blocks: usize,
    /// Publishing state while the session's own prompt blocks are being
    /// appended and inserted into the prefix index; `None` once the prompt
    /// is exhausted (decode tokens are never published).
    #[serde(default)]
    publish: Option<PublishState>,
}

/// Publishing bookkeeping for a session opened with
/// [`PagedKvCache::open_with_prefix`]: the unmatched prompt tail still to
/// append, the token ids accumulated into the current tail block, and the
/// radix node to chain the next published block under.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct PublishState {
    /// Prompt tokens not yet appended; `pending[cursor..]` remain.
    pending: Vec<u64>,
    cursor: usize,
    /// Token ids of the (block-aligned) tail block being filled — exactly
    /// the slots written so far.
    block: Vec<u64>,
    /// `(slot, generation)` of the deepest chained node, `None` at the
    /// radix root. A stale generation (the node was evicted) cleanly stops
    /// publishing.
    parent: Option<(usize, u64)>,
}

impl PagedKvCache {
    /// Creates an unbounded paged cache for `heads` query heads over
    /// `kv_heads` shared KV heads, in `block_tokens`-token blocks.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidHeadGrouping`] if `kv_heads` is zero,
    /// exceeds `heads` or does not divide it.
    ///
    /// # Panics
    ///
    /// Panics if `heads`, `embed` or `block_tokens` is zero.
    pub fn new(heads: usize, kv_heads: usize, embed: usize, block_tokens: usize) -> Result<Self> {
        assert!(
            heads > 0 && embed > 0 && block_tokens > 0,
            "paged KV cache dimensions must be non-zero"
        );
        check_head_grouping(heads, kv_heads)?;
        Ok(Self {
            heads,
            kv_heads,
            embed,
            block_tokens,
            window_tokens: None,
            table: Vec::new(),
            appended_tokens: 0,
            freed_tokens: 0,
            bound_pool_id: None,
            shared_blocks: 0,
            publish: None,
        })
    }

    /// Turns the cache into a sliding window: decode attends at most the
    /// newest `window_tokens` tokens — the *same* attended set as a
    /// contiguous cache with that capacity — and a block is freed back to
    /// the pool once every one of its tokens leaves the window.
    ///
    /// # Panics
    ///
    /// Panics if `window_tokens` is zero.
    #[must_use]
    pub fn with_window(mut self, window_tokens: usize) -> Self {
        assert!(window_tokens > 0, "KV window must be non-zero");
        self.window_tokens = Some(window_tokens);
        self
    }

    /// Number of query heads served by the cache.
    #[must_use]
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Number of stored (shared) KV heads.
    #[must_use]
    pub fn kv_heads(&self) -> usize {
        self.kv_heads
    }

    /// Query heads per shared KV head.
    #[must_use]
    pub fn group_size(&self) -> usize {
        self.heads / self.kv_heads
    }

    /// Per-head embedding width of each row.
    #[must_use]
    pub fn embed(&self) -> usize {
        self.embed
    }

    /// Tokens per block.
    #[must_use]
    pub fn block_tokens(&self) -> usize {
        self.block_tokens
    }

    /// The sliding-window length in tokens (`None` = unbounded).
    #[must_use]
    pub fn window_tokens(&self) -> Option<usize> {
        self.window_tokens
    }

    /// Tokens the next decode step attends: `min(window, appended)` — the
    /// same value as the contiguous cache's `len()` — bounded by the tokens
    /// still resident in pool blocks (zero right after
    /// [`PagedKvCache::release`]).
    #[must_use]
    pub fn len(&self) -> usize {
        let resident = self.resident_tokens();
        self.window_tokens
            .map_or(resident, |w| w.min(self.appended_tokens).min(resident))
    }

    /// Whether no tokens are attended yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total tokens ever appended.
    #[must_use]
    pub fn appended_tokens(&self) -> usize {
        self.appended_tokens
    }

    /// Tokens no longer attended (outside the sliding window, or dropped by
    /// [`PagedKvCache::release`]) — matches the contiguous cache's
    /// `evicted_tokens` count under window eviction, even though physical
    /// blocks are only freed whole.
    #[must_use]
    pub fn evicted_tokens(&self) -> usize {
        self.appended_tokens - self.len()
    }

    /// Tokens physically returned to the pool (whole-block window eviction
    /// plus [`PagedKvCache::release`]); never more than
    /// [`PagedKvCache::evicted_tokens`].
    #[must_use]
    pub fn freed_tokens(&self) -> usize {
        self.freed_tokens
    }

    /// Tokens resident in pool blocks (`appended − freed`).
    #[must_use]
    pub fn resident_tokens(&self) -> usize {
        self.appended_tokens - self.freed_tokens
    }

    /// The session's block table, oldest block first.
    #[must_use]
    pub fn block_table(&self) -> &[BlockId] {
        &self.table
    }

    /// Blocks currently held by the session.
    #[must_use]
    pub fn allocated_blocks(&self) -> usize {
        self.table.len()
    }

    /// Bytes of the session's allocated blocks at `element_bytes` per
    /// element — block-granular residency (allocated blocks, not max
    /// context).
    #[must_use]
    pub fn kv_bytes(&self, pool: &KvBlockPool, element_bytes: usize) -> usize {
        self.table.len() * pool.block_bytes(element_bytes)
    }

    /// Internal fragmentation of the session's blocks: the fraction of
    /// allocated token slots not holding a resident token (`0.0` when every
    /// slot is used, approaching `1.0` for a nearly empty tail block).
    #[must_use]
    pub fn fragmentation(&self) -> f64 {
        let slots = self.table.len() * self.block_tokens;
        if slots == 0 {
            return 0.0;
        }
        1.0 - self.resident_tokens() as f64 / slots as f64
    }

    /// Ensures the pool geometry matches the cache's, and — once the cache
    /// holds blocks — that `pool` is the *same pool* they were allocated
    /// from: block ids are raw arena indices, meaningless in any other
    /// pool, so a same-geometry-different-pool call must be a typed error,
    /// not an out-of-bounds panic or a silent read of foreign rows.
    fn check_pool(&self, pool: &KvBlockPool) -> Result<()> {
        for (param, p, c) in [
            ("block_tokens", pool.block_tokens(), self.block_tokens),
            ("kv_heads", pool.kv_heads(), self.kv_heads),
            ("embed", pool.embed(), self.embed),
        ] {
            if p != c {
                return Err(TensorError::BlockGeometryMismatch {
                    param,
                    pool: p,
                    cache: c,
                });
            }
        }
        if let Some(bound) = self.bound_pool_id {
            if bound != pool.id {
                return Err(TensorError::BlockGeometryMismatch {
                    param: "pool identity",
                    pool: pool.id as usize,
                    cache: bound as usize,
                });
            }
        }
        Ok(())
    }

    /// Appends one token: `k_step` and `v_step` hold the new row for every
    /// KV head (`kv_heads × embed` values each, the same layout as
    /// [`KvCache::append`](crate::decode::KvCache::append)). Allocates a new
    /// block from `pool` when the previous one is full, copies a shared
    /// tail block on write (module invariant 7), and frees front blocks
    /// that slid fully out of the window.
    ///
    /// A plain append stops prefix publishing for the session (the token
    /// stream diverged from the declared prompt); use
    /// [`PagedKvCache::append_with_prefix`] to keep publishing prompt
    /// blocks into the index.
    ///
    /// # Errors
    ///
    /// * [`TensorError::DataLengthMismatch`] if a slice is not
    ///   `kv_heads · embed` long,
    /// * [`TensorError::BlockGeometryMismatch`] if `pool` was built for a
    ///   different block geometry, or is not the pool the cache's existing
    ///   blocks came from (`param: "pool identity"`),
    /// * [`TensorError::BlockPoolExhausted`] if a new block (or a
    ///   copy-on-write clone) is needed and the bounded pool is full — the
    ///   cache is left unchanged.
    pub fn append(&mut self, pool: &mut KvBlockPool, k_step: &[f32], v_step: &[f32]) -> Result<()> {
        self.check_pool(pool)?;
        self.publish = None;
        self.append_impl(pool, None, k_step, v_step)
    }

    /// [`PagedKvCache::append`] with the prefix index attached: new blocks
    /// can reclaim LRU index-only blocks under pool pressure, and — while
    /// the [`PagedKvCache::open_with_prefix`] prompt lasts — each filled
    /// prompt block is published into the index for later sessions to
    /// share. Decode-step appends may keep using this method; once the
    /// declared prompt is exhausted publishing stops by itself.
    ///
    /// # Errors
    ///
    /// As [`PagedKvCache::append`], plus the index binding checks of
    /// [`PagedKvCache::open_with_prefix`].
    pub fn append_with_prefix(
        &mut self,
        pool: &mut KvBlockPool,
        index: &mut PrefixIndex,
        k_step: &[f32],
        v_step: &[f32],
    ) -> Result<()> {
        self.check_pool(pool)?;
        index.ensure_bound(pool)?;
        self.append_impl(pool, Some(index), k_step, v_step)
    }

    /// The shared append body: CoW-aware write, optional index-pressure
    /// reclaim, publishing, and window eviction.
    fn append_impl(
        &mut self,
        pool: &mut KvBlockPool,
        mut index: Option<&mut PrefixIndex>,
        k_step: &[f32],
        v_step: &[f32],
    ) -> Result<()> {
        let expected = self.kv_heads * self.embed;
        for step in [k_step, v_step] {
            if step.len() != expected {
                return Err(TensorError::DataLengthMismatch {
                    expected,
                    actual: step.len(),
                });
            }
        }
        let slot = (self.appended_tokens - self.freed_tokens) % self.block_tokens;
        let needs_block =
            self.appended_tokens - self.freed_tokens == self.table.len() * self.block_tokens;
        if needs_block {
            let id = alloc_with_reclaim(pool, index.as_deref_mut())?;
            self.table.push(id);
        } else if self.table.len() == self.shared_blocks {
            // Copy-on-write: the write targets the partially-matched shared
            // tail. Clone its written slots into a private block (sole
            // holder short-circuit: if no sibling or index holds it, it is
            // already private — just un-share it in place).
            let src = *self.table.last().expect("shared tail exists");
            if pool.refcount(src) > 1 {
                let dst = alloc_with_reclaim(pool, index.as_deref_mut())?;
                pool.copy_rows(src, dst, slot);
                pool.free(src);
                *self.table.last_mut().expect("tail block exists") = dst;
            }
            self.shared_blocks -= 1;
        }
        let block = *self.table.last().expect("tail block exists");
        pool.write_token(block, slot, k_step, v_step);
        self.appended_tokens += 1;
        self.bound_pool_id = Some(pool.id);

        // Whole-block eviction: free front blocks whose every token left the
        // attended window. Evicting a shared front just drops this session's
        // reference — siblings and the index keep the block alive.
        if self.window_tokens.is_some() {
            let attended_start = self.appended_tokens - self.len();
            while self.freed_tokens + self.block_tokens <= attended_start {
                let front = self.table.remove(0);
                pool.free(front);
                self.freed_tokens += self.block_tokens;
                self.shared_blocks = self.shared_blocks.saturating_sub(1);
            }
        }

        // Publishing: consume one pending prompt token; when it fills the
        // tail block, insert that block into the index (deduplicating
        // against an existing equal-content child). The tail block cannot
        // have been evicted above — it holds the newest attended token.
        let mut stop_publishing = false;
        if let Some(p) = &mut self.publish {
            if p.cursor < p.pending.len() {
                let token = p.pending[p.cursor];
                p.cursor += 1;
                p.block.push(token);
                if p.block.len() == self.block_tokens {
                    let ix = index
                        .take()
                        .expect("publishing runs only with the index attached");
                    let published = *self.table.last().expect("tail block exists");
                    match ix.insert(pool, p.parent, &p.block, published) {
                        Some(handle) => {
                            p.parent = Some(handle);
                            p.block.clear();
                        }
                        None => stop_publishing = true,
                    }
                }
            } else {
                // The prompt is exhausted: the next appended token is a
                // decode token and its block must never be indexed.
                stop_publishing = true;
            }
        }
        if stop_publishing {
            self.publish = None;
        }
        Ok(())
    }

    /// Opens a fresh session from its full prompt token ids: resolves the
    /// longest indexed prefix of `tokens` in `index`, maps those physical
    /// blocks into the table (retaining each — module invariants 5–7), and
    /// arms publishing so the *unmatched* prompt tail appended via
    /// [`PagedKvCache::append_with_prefix`] is inserted into the index for
    /// later sessions. Returns the number of prompt tokens covered by
    /// shared blocks; the caller appends K/V rows for exactly the remaining
    /// `tokens.len() - matched` prompt tokens (then decode tokens as
    /// usual).
    ///
    /// A partially-filled shared tail is taken only when it covers the
    /// entire remaining prompt, so the matched count is always either
    /// block-aligned or the whole prompt. Window eviction applies
    /// immediately (a prompt longer than the window drops stale front
    /// blocks' references).
    ///
    /// # Errors
    ///
    /// [`TensorError::BlockGeometryMismatch`] if `pool` does not match the
    /// cache geometry, the index's block size, or the index's bound pool
    /// identity / [`KvDtype`] (`param: "pool identity"` / `"kv dtype"`).
    ///
    /// # Panics
    ///
    /// Panics if the cache is not fresh (tokens were already appended).
    pub fn open_with_prefix(
        &mut self,
        pool: &mut KvBlockPool,
        index: &mut PrefixIndex,
        tokens: &[u64],
    ) -> Result<usize> {
        assert!(
            self.appended_tokens == 0 && self.table.is_empty(),
            "open_with_prefix requires a fresh cache"
        );
        self.check_pool(pool)?;
        index.ensure_bound(pool)?;
        let resolved = index.resolve(tokens);
        for &slot in &resolved.slots {
            let block = index.node_block(slot);
            pool.retain(block);
            self.table.push(block);
        }
        if let Some(slot) = resolved.partial {
            let block = index.node_block(slot);
            pool.retain(block);
            self.table.push(block);
        }
        self.appended_tokens = resolved.matched;
        self.shared_blocks = self.table.len();
        self.bound_pool_id = (!self.table.is_empty()).then_some(pool.id);
        self.publish = (resolved.matched < tokens.len()).then(|| PublishState {
            pending: tokens[resolved.matched..].to_vec(),
            cursor: 0,
            block: Vec::new(),
            parent: resolved.parent,
        });
        // A prompt longer than the window sheds stale shared fronts
        // immediately (dropping references, not bytes — invariant 7).
        if self.window_tokens.is_some() {
            let attended_start = self.appended_tokens - self.len();
            while self.freed_tokens + self.block_tokens <= attended_start {
                let front = self.table.remove(0);
                pool.free(front);
                self.freed_tokens += self.block_tokens;
                self.shared_blocks = self.shared_blocks.saturating_sub(1);
            }
        }
        Ok(resolved.matched)
    }

    /// Leading table entries still mapped read-only from the prefix index
    /// (each would be copied on write; see module invariant 7).
    #[must_use]
    pub fn shared_blocks(&self) -> usize {
        self.shared_blocks
    }

    /// Releases every block back to the pool, leaving the cache empty:
    /// [`PagedKvCache::len`] drops to zero (so a decode attempt is the usual
    /// empty-cache error, not a panic) and appending again restarts cleanly
    /// at slot 0 of a fresh block — in any pool, since the identity binding
    /// is cleared along with the table. Used when a session closes.
    ///
    /// Each drop is a refcount decref: blocks shared with sibling sessions
    /// or the prefix index stay live until their last holder releases
    /// (module invariant 5), so closing one sharing session can never free
    /// a sibling's rows.
    ///
    /// # Panics
    ///
    /// Panics if the cache holds blocks and `pool` is not the pool they
    /// were allocated from (freeing foreign ids would corrupt that pool's
    /// free list).
    pub fn release(&mut self, pool: &mut KvBlockPool) {
        if !self.table.is_empty() {
            assert_eq!(
                self.bound_pool_id,
                Some(pool.id),
                "release must target the pool the cache's blocks came from"
            );
        }
        for id in self.table.drain(..) {
            pool.free(id);
        }
        self.freed_tokens = self.appended_tokens;
        self.bound_pool_id = None;
        self.shared_blocks = 0;
        self.publish = None;
    }
}

/// One autoregressive decode step over a paged cache: each query head's
/// single query row attends over the attended-window rows of its shared KV
/// head, swept block by block through the session's block table with the
/// same online-softmax recurrence as the contiguous kernel — the visited
/// row sequence is identical, so the result is bit-identical to
/// [`decode_attention`](crate::decode::decode_attention) on a contiguous
/// cache holding the same tokens.
///
/// `q_step` and `out` are head-major `heads × embed` slices.
///
/// # Errors
///
/// Returns [`TensorError::DataLengthMismatch`] if `q_step` or `out` is not
/// `heads · embed` long, [`TensorError::BlockGeometryMismatch`] if `pool`
/// does not match the cache geometry or is not the pool the cache's blocks
/// were allocated from (`param: "pool identity"`), or
/// [`TensorError::ZeroDimension`] if no tokens are attended yet.
pub fn decode_attention_paged(
    pool: &KvBlockPool,
    cache: &PagedKvCache,
    q_step: &[f32],
    out: &mut [f32],
) -> Result<()> {
    cache.check_pool(pool)?;
    let (heads, embed) = (cache.heads(), cache.embed());
    let expected = heads * embed;
    if q_step.len() != expected || out.len() != expected {
        return Err(TensorError::DataLengthMismatch {
            expected,
            actual: if q_step.len() != expected {
                q_step.len()
            } else {
                out.len()
            },
        });
    }
    if cache.is_empty() {
        return Err(TensorError::ZeroDimension { dim: "kv_cache" });
    }
    // Attended tokens relative to the table's first resident token
    // (`attended <= resident` by construction of `len`).
    let attended = cache.len();
    let end = cache.resident_tokens();
    let start = end - attended;
    let block_tokens = cache.block_tokens();
    let group = cache.group_size();
    // f16 pools widen each slot run through the same fixed-size scratch
    // tiles as the contiguous kernel (`sweep_f16_rows`), so paged and
    // contiguous f16 decode visit identical f32 row sequences.
    let mut scratch = match pool.dtype() {
        KvDtype::F32 => Vec::new(),
        KvDtype::F16 => vec![0.0f32; 2 * F16_TILE_TOKENS * embed],
    };
    for h in 0..heads {
        let q_row = &q_step[h * embed..(h + 1) * embed];
        let o_row = &mut out[h * embed..(h + 1) * embed];
        let kv_h = h / group;
        let mut state = OnlineDecodeState::new(q_row, o_row);
        // Sweep the block table oldest-first, one contiguous slot run per
        // block (invariant 2: rows per (block, head) are contiguous).
        let mut token = start;
        while token < end {
            let block_index = token / block_tokens;
            let slot_start = token % block_tokens;
            let slot_end = (end - block_index * block_tokens).min(block_tokens);
            let id = cache.block_table()[block_index];
            match pool.dtype() {
                KvDtype::F32 => state.update(
                    pool.key_rows(id, kv_h, slot_start, slot_end),
                    pool.value_rows(id, kv_h, slot_start, slot_end),
                ),
                KvDtype::F16 => {
                    let (k_tile, v_tile) = scratch.split_at_mut(F16_TILE_TOKENS * embed);
                    sweep_f16_rows(
                        &mut state,
                        pool.key_bits(id, kv_h, slot_start, slot_end),
                        pool.value_bits(id, kv_h, slot_start, slot_end),
                        k_tile,
                        v_tile,
                    );
                }
            }
            token = block_index * block_tokens + slot_end;
        }
        state.finish();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::{decode_attention, KvCache};
    use crate::init::random_qkv;
    use crate::Tensor;

    fn gather(src: &Tensor, r: usize) -> Vec<f32> {
        let [_, heads, _, _] = src.shape().dims();
        (0..heads).flat_map(|h| src.row(0, h, r).to_vec()).collect()
    }

    #[test]
    fn pool_conserves_blocks_and_tracks_peak() {
        let mut pool = KvBlockPool::new(4, 2, 8);
        assert_eq!(pool.total_blocks(), 0);
        let a = pool.alloc().unwrap();
        let b = pool.alloc().unwrap();
        assert_eq!((pool.live_blocks(), pool.free_blocks()), (2, 0));
        pool.free(a);
        assert_eq!((pool.live_blocks(), pool.free_blocks()), (1, 1));
        assert_eq!(pool.total_blocks(), 2);
        // Reuse before growth: the freed block comes back.
        let c = pool.alloc().unwrap();
        assert_eq!(c, a, "freed blocks are reused LIFO before the pool grows");
        assert_eq!(pool.total_blocks(), 2);
        assert_eq!(pool.peak_live_blocks(), 2);
        pool.free(b);
        pool.free(c);
        assert_eq!(pool.live_blocks(), 0);
        assert_eq!(pool.free_blocks() + pool.live_blocks(), pool.total_blocks());
    }

    #[test]
    fn bounded_pool_exhaustion_is_a_typed_error() {
        let mut pool = KvBlockPool::new(2, 1, 4).with_max_blocks(2);
        let _a = pool.alloc().unwrap();
        let b = pool.alloc().unwrap();
        assert_eq!(
            pool.alloc().unwrap_err(),
            TensorError::BlockPoolExhausted { capacity_blocks: 2 }
        );
        pool.free(b);
        assert!(pool.alloc().is_ok(), "freeing restores capacity");
    }

    #[test]
    fn reused_blocks_come_back_zeroed() {
        let mut pool = KvBlockPool::new(1, 1, 2);
        let mut cache = PagedKvCache::new(1, 1, 2, 1).unwrap();
        cache.append(&mut pool, &[7.0, 7.0], &[7.0, 7.0]).unwrap();
        cache.release(&mut pool);
        let id = pool.alloc().unwrap();
        assert_eq!(pool.key_rows(id, 0, 0, 1), &[0.0, 0.0]);
    }

    #[test]
    fn geometry_mismatch_is_a_typed_error() {
        let mut pool = KvBlockPool::new(4, 2, 8);
        let mut cache = PagedKvCache::new(2, 2, 8, 8).unwrap();
        assert!(matches!(
            cache.append(&mut pool, &[0.0; 16], &[0.0; 16]),
            Err(TensorError::BlockGeometryMismatch {
                param: "block_tokens",
                ..
            })
        ));
    }

    #[test]
    fn foreign_pool_with_matching_geometry_is_a_typed_error() {
        // Two pools, identical geometry: a cache bound to pool A must not
        // be readable (or appendable) against pool B — block ids are raw
        // arena indices into A.
        let mut pool_a = KvBlockPool::new(2, 1, 2);
        let pool_b = KvBlockPool::new(2, 1, 2);
        let mut cache = PagedKvCache::new(1, 1, 2, 2).unwrap();
        cache.append(&mut pool_a, &[1.0, 2.0], &[3.0, 4.0]).unwrap();
        let mut out = [0.0f32; 2];
        assert!(matches!(
            decode_attention_paged(&pool_b, &cache, &[1.0, 0.0], &mut out),
            Err(TensorError::BlockGeometryMismatch {
                param: "pool identity",
                ..
            })
        ));
        let mut pool_b = pool_b;
        assert!(matches!(
            cache.append(&mut pool_b, &[5.0, 6.0], &[7.0, 8.0]),
            Err(TensorError::BlockGeometryMismatch {
                param: "pool identity",
                ..
            })
        ));
        // The bound pool keeps working, and release clears the binding so
        // the cache can start over in another pool.
        decode_attention_paged(&pool_a, &cache, &[1.0, 0.0], &mut out).unwrap();
        cache.release(&mut pool_a);
        cache.append(&mut pool_b, &[5.0, 6.0], &[7.0, 8.0]).unwrap();
        decode_attention_paged(&pool_b, &cache, &[1.0, 0.0], &mut out).unwrap();
        assert_eq!(out, [7.0, 8.0]);
    }

    #[test]
    #[should_panic(expected = "release must target the pool")]
    fn releasing_into_a_foreign_pool_panics() {
        let mut pool_a = KvBlockPool::new(2, 1, 2);
        let mut pool_b = KvBlockPool::new(2, 1, 2);
        let mut cache = PagedKvCache::new(1, 1, 2, 2).unwrap();
        cache.append(&mut pool_a, &[1.0, 2.0], &[3.0, 4.0]).unwrap();
        cache.release(&mut pool_b);
    }

    #[test]
    fn failed_block_alloc_leaves_the_cache_unchanged() {
        let mut pool = KvBlockPool::new(1, 1, 2).with_max_blocks(1);
        let mut cache = PagedKvCache::new(1, 1, 2, 1).unwrap();
        cache.append(&mut pool, &[1.0, 1.0], &[1.0, 1.0]).unwrap();
        let before = cache.clone();
        assert!(matches!(
            cache.append(&mut pool, &[2.0, 2.0], &[2.0, 2.0]),
            Err(TensorError::BlockPoolExhausted { .. })
        ));
        assert_eq!(cache, before, "failed append must not partially apply");
    }

    #[test]
    fn paged_decode_is_bit_identical_to_contiguous() {
        let (heads, t, embed, seed) = (3, 23, 8, 41);
        for block_tokens in [1usize, 7, 16, 64] {
            let (q, k, v) = random_qkv(1, heads, t, embed, seed);
            let mut contiguous = KvCache::new(heads, embed);
            let mut pool = KvBlockPool::new(block_tokens, heads, embed);
            let mut paged = PagedKvCache::new(heads, heads, embed, block_tokens).unwrap();
            let mut out_c = vec![0.0f32; heads * embed];
            let mut out_p = vec![0.0f32; heads * embed];
            for i in 0..t {
                let (ks, vs, qs) = (gather(&k, i), gather(&v, i), gather(&q, i));
                contiguous.append(&ks, &vs).unwrap();
                paged.append(&mut pool, &ks, &vs).unwrap();
                decode_attention(&contiguous, &qs, &mut out_c).unwrap();
                decode_attention_paged(&pool, &paged, &qs, &mut out_p).unwrap();
                assert_eq!(out_c, out_p, "block {block_tokens} step {i}");
            }
            assert_eq!(paged.allocated_blocks(), t.div_ceil(block_tokens));
        }
    }

    #[test]
    fn f16_paged_decode_is_bit_identical_to_f16_contiguous() {
        // Paged slot runs and the contiguous sweep deliver rows to
        // `sweep_f16_rows` in different tile groupings, but the online
        // recurrence is a pure function of the visited row sequence — so
        // the two f16 paths must agree bitwise, just like the f32 ones.
        // `t` crosses F16_TILE_TOKENS to exercise contiguous tiling.
        let (heads, embed, seed) = (3, 8, 41);
        let t = F16_TILE_TOKENS + 9;
        for block_tokens in [1usize, 7, 16, 64] {
            let (q, k, v) = random_qkv(1, heads, t, embed, seed);
            let mut contiguous = KvCache::new(heads, embed).with_dtype(KvDtype::F16);
            let mut pool = KvBlockPool::new(block_tokens, heads, embed).with_dtype(KvDtype::F16);
            let mut paged = PagedKvCache::new(heads, heads, embed, block_tokens).unwrap();
            let mut out_c = vec![0.0f32; heads * embed];
            let mut out_p = vec![0.0f32; heads * embed];
            for i in 0..t {
                let (ks, vs, qs) = (gather(&k, i), gather(&v, i), gather(&q, i));
                contiguous.append(&ks, &vs).unwrap();
                paged.append(&mut pool, &ks, &vs).unwrap();
                decode_attention(&contiguous, &qs, &mut out_c).unwrap();
                decode_attention_paged(&pool, &paged, &qs, &mut out_p).unwrap();
                assert_eq!(out_c, out_p, "block {block_tokens} step {i}");
            }
        }
    }

    #[test]
    fn f16_pool_charges_exactly_half_the_block_bytes() {
        let f32_pool = KvBlockPool::new(16, 2, 8);
        let mut f16_pool = KvBlockPool::new(16, 2, 8).with_dtype(KvDtype::F16);
        assert_eq!(f16_pool.dtype(), KvDtype::F16);
        assert_eq!(
            2 * f16_pool.storage_block_bytes(),
            f32_pool.storage_block_bytes()
        );
        let _ = f16_pool.alloc().unwrap();
        let _ = f16_pool.alloc().unwrap();
        assert_eq!(
            f16_pool.live_storage_bytes(),
            2 * f16_pool.storage_block_bytes()
        );
    }

    #[test]
    fn reused_f16_blocks_come_back_zeroed() {
        let mut pool = KvBlockPool::new(1, 1, 2).with_dtype(KvDtype::F16);
        let mut cache = PagedKvCache::new(1, 1, 2, 1).unwrap();
        cache.append(&mut pool, &[7.0, 7.0], &[7.0, 7.0]).unwrap();
        cache.release(&mut pool);
        let id = pool.alloc().unwrap();
        assert_eq!(pool.key_bits(id, 0, 0, 1), &[0u16, 0u16]);
        assert_eq!(pool.value_bits(id, 0, 0, 1), &[0u16, 0u16]);
    }

    #[test]
    #[should_panic(expected = "before the first block allocation")]
    fn retyping_a_nonempty_pool_panics() {
        let mut pool = KvBlockPool::new(2, 1, 2);
        let _ = pool.alloc().unwrap();
        let _ = pool.with_dtype(KvDtype::F16);
    }

    #[test]
    fn windowed_paged_decode_attends_the_same_tokens_as_contiguous() {
        let (heads, t, embed, window, block_tokens, seed) = (2, 29, 4, 6, 4, 9);
        let (q, k, v) = random_qkv(1, heads, t, embed, seed);
        let mut contiguous = KvCache::with_capacity(heads, embed, window);
        let mut pool = KvBlockPool::new(block_tokens, heads, embed);
        let mut paged = PagedKvCache::new(heads, heads, embed, block_tokens)
            .unwrap()
            .with_window(window);
        let mut out_c = vec![0.0f32; heads * embed];
        let mut out_p = vec![0.0f32; heads * embed];
        for i in 0..t {
            let (ks, vs, qs) = (gather(&k, i), gather(&v, i), gather(&q, i));
            contiguous.append(&ks, &vs).unwrap();
            paged.append(&mut pool, &ks, &vs).unwrap();
            decode_attention(&contiguous, &qs, &mut out_c).unwrap();
            decode_attention_paged(&pool, &paged, &qs, &mut out_p).unwrap();
            assert_eq!(out_c, out_p, "step {i}");
            assert_eq!(paged.len(), contiguous.len());
            assert_eq!(paged.evicted_tokens(), contiguous.evicted_tokens());
        }
        // Whole-block eviction keeps at most window + block_tokens resident
        // tokens and returns everything older to the pool.
        assert!(paged.resident_tokens() <= window + block_tokens);
        assert!(paged.freed_tokens() > 0);
        assert_eq!(pool.live_blocks() + pool.free_blocks(), pool.total_blocks());
    }

    #[test]
    fn grouped_paged_decode_matches_grouped_contiguous() {
        let (heads, kv_heads, t, embed, block_tokens, seed) = (4, 2, 11, 6, 3, 13);
        let (q, _, _) = random_qkv(1, heads, t, embed, seed);
        let (_, k, v) = random_qkv(1, kv_heads, t, embed, seed + 1);
        let mut contiguous = KvCache::grouped(heads, kv_heads, embed).unwrap();
        let mut pool = KvBlockPool::new(block_tokens, kv_heads, embed);
        let mut paged = PagedKvCache::new(heads, kv_heads, embed, block_tokens).unwrap();
        let mut out_c = vec![0.0f32; heads * embed];
        let mut out_p = vec![0.0f32; heads * embed];
        for i in 0..t {
            let (ks, vs, qs) = (gather(&k, i), gather(&v, i), gather(&q, i));
            contiguous.append(&ks, &vs).unwrap();
            paged.append(&mut pool, &ks, &vs).unwrap();
            decode_attention(&contiguous, &qs, &mut out_c).unwrap();
            decode_attention_paged(&pool, &paged, &qs, &mut out_p).unwrap();
            assert_eq!(out_c, out_p, "step {i}");
        }
    }

    #[test]
    fn fragmentation_reflects_the_partial_tail_block() {
        let mut pool = KvBlockPool::new(8, 1, 2);
        let mut cache = PagedKvCache::new(1, 1, 2, 8).unwrap();
        assert_eq!(cache.fragmentation(), 0.0);
        cache.append(&mut pool, &[0.0; 2], &[0.0; 2]).unwrap();
        // 1 of 8 slots used.
        assert!((cache.fragmentation() - 7.0 / 8.0).abs() < 1e-12);
        for _ in 1..8 {
            cache.append(&mut pool, &[0.0; 2], &[0.0; 2]).unwrap();
        }
        assert_eq!(cache.fragmentation(), 0.0);
    }

    #[test]
    fn invalid_grouping_is_a_typed_error() {
        assert_eq!(
            PagedKvCache::new(8, 3, 4, 16).unwrap_err(),
            TensorError::InvalidHeadGrouping {
                heads: 8,
                kv_heads: 3
            }
        );
    }

    #[test]
    fn released_cache_is_empty_and_restartable() {
        // Regression: after release, len() must drop to zero so decode is
        // the usual empty-cache error (not an arithmetic panic), and a
        // fresh append must restart cleanly at slot 0 of a new block.
        let mut pool = KvBlockPool::new(2, 1, 2);
        let mut cache = PagedKvCache::new(1, 1, 2, 2).unwrap();
        for _ in 0..5 {
            cache.append(&mut pool, &[1.0, 2.0], &[3.0, 4.0]).unwrap();
        }
        cache.release(&mut pool);
        assert_eq!(cache.len(), 0);
        assert!(cache.is_empty());
        assert_eq!(cache.resident_tokens(), 0);
        assert_eq!(cache.evicted_tokens(), 5);
        let mut out = [0.0f32; 2];
        assert!(matches!(
            decode_attention_paged(&pool, &cache, &[1.0, 0.0], &mut out),
            Err(TensorError::ZeroDimension { .. })
        ));
        // Restart: appending again works and decode sees only the new token.
        cache.append(&mut pool, &[0.0, 0.0], &[7.0, 8.0]).unwrap();
        assert_eq!((cache.len(), cache.allocated_blocks()), (1, 1));
        decode_attention_paged(&pool, &cache, &[1.0, 0.0], &mut out).unwrap();
        assert_eq!(out, [7.0, 8.0]);
        // A released *windowed* cache behaves the same.
        let mut windowed = PagedKvCache::new(1, 1, 2, 2).unwrap().with_window(3);
        for _ in 0..5 {
            windowed
                .append(&mut pool, &[1.0, 2.0], &[3.0, 4.0])
                .unwrap();
        }
        windowed.release(&mut pool);
        assert_eq!(windowed.len(), 0);
        assert!(matches!(
            decode_attention_paged(&pool, &windowed, &[1.0, 0.0], &mut out),
            Err(TensorError::ZeroDimension { .. })
        ));
    }

    #[test]
    fn release_returns_every_block() {
        let mut pool = KvBlockPool::new(2, 1, 2);
        let mut a = PagedKvCache::new(1, 1, 2, 2).unwrap();
        let mut b = PagedKvCache::new(1, 1, 2, 2).unwrap();
        for _ in 0..5 {
            a.append(&mut pool, &[1.0; 2], &[1.0; 2]).unwrap();
            b.append(&mut pool, &[2.0; 2], &[2.0; 2]).unwrap();
        }
        assert_eq!(pool.live_blocks(), 6);
        a.release(&mut pool);
        assert_eq!(pool.live_blocks(), 3);
        assert_eq!(a.allocated_blocks(), 0);
        b.release(&mut pool);
        assert_eq!(pool.live_blocks(), 0);
        assert_eq!(pool.peak_live_blocks(), 6);
    }

    /// Deterministic K/V rows per token id: any two sessions appending the
    /// same token write identical bytes, so shared blocks are byte-equal to
    /// privately written ones.
    fn token_rows(token: u64, kv_heads: usize, embed: usize) -> (Vec<f32>, Vec<f32>) {
        let k = (0..kv_heads * embed)
            .map(|i| (token as f32 * 0.11 + i as f32 * 0.013).sin())
            .collect();
        let v = (0..kv_heads * embed)
            .map(|i| (token as f32 * 0.07 + i as f32 * 0.019).cos())
            .collect();
        (k, v)
    }

    #[test]
    fn refcounted_free_returns_a_block_only_at_zero() {
        let mut pool = KvBlockPool::new(2, 1, 2);
        let a = pool.alloc().unwrap();
        assert_eq!(pool.refcount(a), 1);
        pool.retain(a);
        assert_eq!(pool.refcount(a), 2);
        pool.free(a);
        assert_eq!((pool.live_blocks(), pool.free_blocks()), (1, 0));
        pool.free(a);
        assert_eq!((pool.live_blocks(), pool.free_blocks()), (0, 1));
        assert_eq!(pool.refcount(a), 0);
    }

    #[test]
    fn clone_block_copies_prefix_rows_and_never_mutates_the_source() {
        let mut pool = KvBlockPool::new(4, 1, 2);
        let src = pool.alloc().unwrap();
        pool.write_token(src, 0, &[1.0, 2.0], &[3.0, 4.0]);
        pool.write_token(src, 1, &[5.0, 6.0], &[7.0, 8.0]);
        let (before_k, before_v) = (
            pool.key_rows(src, 0, 0, 4).to_vec(),
            pool.value_rows(src, 0, 0, 4).to_vec(),
        );
        let dst = pool.clone_block(src, 1).unwrap();
        assert_eq!(pool.key_rows(dst, 0, 0, 1), &[1.0, 2.0]);
        assert_eq!(pool.value_rows(dst, 0, 0, 1), &[3.0, 4.0]);
        // Uncopied slots of the clone are zeroed (fresh allocation).
        assert_eq!(pool.key_rows(dst, 0, 1, 4), &[0.0; 6]);
        assert_eq!(pool.key_rows(src, 0, 0, 4), &before_k[..]);
        assert_eq!(pool.value_rows(src, 0, 0, 4), &before_v[..]);
        assert_eq!(pool.refcount(src), 1);
    }

    #[test]
    fn shared_prefix_maps_the_same_physical_blocks() {
        let (kv_heads, embed, bt) = (2, 4, 4);
        let mut pool = KvBlockPool::new(bt, kv_heads, embed);
        let mut index = PrefixIndex::new(bt);
        let prompt: Vec<u64> = (0..8).collect();
        let mut a = PagedKvCache::new(2, kv_heads, embed, bt).unwrap();
        assert_eq!(
            a.open_with_prefix(&mut pool, &mut index, &prompt).unwrap(),
            0
        );
        for &t in &prompt {
            let (k, v) = token_rows(t, kv_heads, embed);
            a.append_with_prefix(&mut pool, &mut index, &k, &v).unwrap();
        }
        assert_eq!(index.len(), 2);
        assert_eq!(index.probe(&prompt), 8);

        let mut b = PagedKvCache::new(2, kv_heads, embed, bt).unwrap();
        assert_eq!(
            b.open_with_prefix(&mut pool, &mut index, &prompt).unwrap(),
            8
        );
        assert_eq!(b.block_table(), a.block_table(), "same physical blocks");
        assert_eq!(b.shared_blocks(), 2);
        // Holders of each block: a's table, the index, b's table.
        for &id in b.block_table() {
            assert_eq!(pool.refcount(id), 3);
        }
        assert_eq!(pool.live_blocks(), 2, "two sessions, one set of blocks");

        let q = vec![0.3f32; 2 * embed];
        let mut out_a = vec![0.0f32; 2 * embed];
        let mut out_b = vec![0.0f32; 2 * embed];
        decode_attention_paged(&pool, &a, &q, &mut out_a).unwrap();
        decode_attention_paged(&pool, &b, &q, &mut out_b).unwrap();
        assert_eq!(out_a, out_b, "shared decode is bitwise-equal to private");
    }

    #[test]
    fn releasing_a_sharing_session_keeps_sibling_blocks_live() {
        // Regression pin for the latent release hazard: before refcounts,
        // release returned every table block unconditionally, so closing
        // one sharing session would hand its siblings' prefix blocks back
        // to the free list for reuse.
        let (kv_heads, embed, bt) = (1, 4, 4);
        let mut pool = KvBlockPool::new(bt, kv_heads, embed);
        let mut index = PrefixIndex::new(bt);
        let prompt: Vec<u64> = (0..8).collect();
        let mut a = PagedKvCache::new(1, kv_heads, embed, bt).unwrap();
        a.open_with_prefix(&mut pool, &mut index, &prompt).unwrap();
        for &t in &prompt {
            let (k, v) = token_rows(t, kv_heads, embed);
            a.append_with_prefix(&mut pool, &mut index, &k, &v).unwrap();
        }
        let mut b = PagedKvCache::new(1, kv_heads, embed, bt).unwrap();
        b.open_with_prefix(&mut pool, &mut index, &prompt).unwrap();

        let q = vec![0.5f32; embed];
        let mut before = vec![0.0f32; embed];
        decode_attention_paged(&pool, &b, &q, &mut before).unwrap();

        a.release(&mut pool);
        assert_eq!(pool.live_blocks(), 2, "shared blocks survive the release");
        // A third session allocating new blocks must not be handed b's rows.
        let mut c = PagedKvCache::new(1, kv_heads, embed, bt).unwrap();
        for t in 100..104u64 {
            let (k, v) = token_rows(t, kv_heads, embed);
            c.append(&mut pool, &k, &v).unwrap();
        }
        let mut after = vec![0.0f32; embed];
        decode_attention_paged(&pool, &b, &q, &mut after).unwrap();
        assert_eq!(before, after, "sibling decode unchanged after release");
    }

    #[test]
    fn cow_divergence_clones_the_shared_tail_and_matches_private() {
        let (kv_heads, embed, bt) = (1, 4, 4);
        let mut pool = KvBlockPool::new(bt, kv_heads, embed);
        let mut index = PrefixIndex::new(bt);
        // Publisher: 8-token prompt -> two indexed full blocks.
        let full: Vec<u64> = (0..8).collect();
        let mut a = PagedKvCache::new(1, kv_heads, embed, bt).unwrap();
        a.open_with_prefix(&mut pool, &mut index, &full).unwrap();
        for &t in &full {
            let (k, v) = token_rows(t, kv_heads, embed);
            a.append_with_prefix(&mut pool, &mut index, &k, &v).unwrap();
        }
        // Sharer: 6-token prompt = block 0 (full match) + tokens {4,5} as a
        // partial-tail match into the second indexed block.
        let short: Vec<u64> = (0..6).collect();
        let mut b = PagedKvCache::new(1, kv_heads, embed, bt).unwrap();
        assert_eq!(
            b.open_with_prefix(&mut pool, &mut index, &short).unwrap(),
            6
        );
        assert_eq!(b.shared_blocks(), 2);
        assert_eq!(b.block_table()[1], a.block_table()[1]);
        let src = b.block_table()[1];
        let src_k = pool.key_rows(src, 0, 0, bt).to_vec();

        // Divergence: b appends a token a never saw -> CoW of the tail.
        let (k, v) = token_rows(99, kv_heads, embed);
        b.append(&mut pool, &k, &v).unwrap();
        assert_ne!(b.block_table()[1], src, "tail was cloned, not written");
        assert_eq!(b.shared_blocks(), 1, "tail is private now");
        assert_eq!(
            pool.key_rows(src, 0, 0, bt),
            &src_k[..],
            "CoW never mutates the source block"
        );

        // b is now bitwise-equal to a fully private session with the same
        // token history.
        let mut private = PagedKvCache::new(1, kv_heads, embed, bt).unwrap();
        for &t in short.iter().chain([99u64].iter()) {
            let (k, v) = token_rows(t, kv_heads, embed);
            private.append(&mut pool, &k, &v).unwrap();
        }
        let q = vec![0.4f32; embed];
        let mut out_b = vec![0.0f32; embed];
        let mut out_p = vec![0.0f32; embed];
        decode_attention_paged(&pool, &b, &q, &mut out_b).unwrap();
        decode_attention_paged(&pool, &private, &q, &mut out_p).unwrap();
        assert_eq!(out_b, out_p);
    }

    #[test]
    fn prefix_index_is_bound_to_one_pool_and_dtype() {
        let bt = 2;
        let mut pool_a = KvBlockPool::new(bt, 1, 2);
        let mut index = PrefixIndex::new(bt);
        let mut cache = PagedKvCache::new(1, 1, 2, bt).unwrap();
        cache
            .open_with_prefix(&mut pool_a, &mut index, &[1, 2])
            .unwrap();

        // Same geometry, different pool: block ids would be foreign.
        let mut pool_b = KvBlockPool::new(bt, 1, 2);
        let mut fresh = PagedKvCache::new(1, 1, 2, bt).unwrap();
        assert!(matches!(
            fresh.open_with_prefix(&mut pool_b, &mut index, &[1, 2]),
            Err(TensorError::BlockGeometryMismatch {
                param: "pool identity",
                ..
            })
        ));
        // A differently-typed pool: stored bytes are not interchangeable.
        let mut pool_h = KvBlockPool::new(bt, 1, 2).with_dtype(KvDtype::F16);
        assert!(matches!(
            fresh.open_with_prefix(&mut pool_h, &mut index, &[1, 2]),
            Err(TensorError::BlockGeometryMismatch {
                param: "kv dtype",
                ..
            })
        ));
        // A block-size-mismatched index can never resolve against the pool.
        let mut index4 = PrefixIndex::new(4);
        assert!(matches!(
            fresh.open_with_prefix(&mut pool_a, &mut index4, &[1, 2]),
            Err(TensorError::BlockGeometryMismatch {
                param: "block_tokens",
                ..
            })
        ));
        // The bound pool keeps working.
        let mut ok = PagedKvCache::new(1, 1, 2, bt).unwrap();
        assert_eq!(
            ok.open_with_prefix(&mut pool_a, &mut index, &[1, 2])
                .unwrap(),
            0,
            "clean miss (nothing published yet), not an error"
        );
    }

    #[test]
    fn pool_pressure_reclaims_lru_index_only_blocks() {
        let (kv_heads, embed, bt) = (1, 2, 2);
        let mut pool = KvBlockPool::new(bt, kv_heads, embed).with_max_blocks(3);
        let mut index = PrefixIndex::new(bt);
        let mut a = PagedKvCache::new(1, kv_heads, embed, bt).unwrap();
        a.open_with_prefix(&mut pool, &mut index, &[0, 1, 2, 3])
            .unwrap();
        for t in 0..4u64 {
            let (k, v) = token_rows(t, kv_heads, embed);
            a.append_with_prefix(&mut pool, &mut index, &k, &v).unwrap();
        }
        a.release(&mut pool);
        assert_eq!(index.len(), 2);
        assert_eq!(pool.live_blocks(), 2, "index-only blocks stay live");

        // A private session needing 3 blocks forces LRU reclaim of both
        // index-only blocks (deepest leaf first, then its parent).
        let mut b = PagedKvCache::new(1, kv_heads, embed, bt).unwrap();
        for t in 10..16u64 {
            let (k, v) = token_rows(t, kv_heads, embed);
            b.append_with_prefix(&mut pool, &mut index, &k, &v).unwrap();
        }
        assert_eq!(b.allocated_blocks(), 3);
        assert_eq!(index.len(), 0, "pressure evicted the unreferenced prefix");
        // With the index empty and every block referenced, the next block
        // is a typed exhaustion error — eviction never frees b's blocks.
        let (k, v) = token_rows(99, kv_heads, embed);
        assert!(matches!(
            b.append_with_prefix(&mut pool, &mut index, &k, &v),
            Err(TensorError::BlockPoolExhausted { .. })
        ));
    }

    #[test]
    fn concurrent_publishers_deduplicate_equal_content_blocks() {
        let (kv_heads, embed, bt) = (1, 2, 2);
        let mut pool = KvBlockPool::new(bt, kv_heads, embed);
        let mut index = PrefixIndex::new(bt);
        let prompt: Vec<u64> = (0..4).collect();
        // Both sessions open before either publishes: both miss and both
        // publish the same content.
        let mut a = PagedKvCache::new(1, kv_heads, embed, bt).unwrap();
        let mut b = PagedKvCache::new(1, kv_heads, embed, bt).unwrap();
        assert_eq!(
            a.open_with_prefix(&mut pool, &mut index, &prompt).unwrap(),
            0
        );
        assert_eq!(
            b.open_with_prefix(&mut pool, &mut index, &prompt).unwrap(),
            0
        );
        for &t in &prompt {
            let (k, v) = token_rows(t, kv_heads, embed);
            a.append_with_prefix(&mut pool, &mut index, &k, &v).unwrap();
            b.append_with_prefix(&mut pool, &mut index, &k, &v).unwrap();
        }
        assert_eq!(index.len(), 2, "equal-content blocks deduplicated");
        // a won the race: its blocks are indexed (refcount 2); b's stayed
        // private (refcount 1).
        for &id in a.block_table() {
            assert_eq!(pool.refcount(id), 2);
        }
        for &id in b.block_table() {
            assert_eq!(pool.refcount(id), 1);
        }
        // A later session shares the indexed copy.
        let mut c = PagedKvCache::new(1, kv_heads, embed, bt).unwrap();
        assert_eq!(
            c.open_with_prefix(&mut pool, &mut index, &prompt).unwrap(),
            4
        );
        assert_eq!(c.block_table(), a.block_table());
    }

    #[test]
    fn decode_tokens_are_never_published() {
        let (kv_heads, embed, bt) = (1, 2, 2);
        let mut pool = KvBlockPool::new(bt, kv_heads, embed);
        let mut index = PrefixIndex::new(bt);
        // 3-token prompt: one full block publishes, the partial tail block
        // then fills with a decode token and must not be indexed.
        let prompt: Vec<u64> = vec![7, 8, 9];
        let mut a = PagedKvCache::new(1, kv_heads, embed, bt).unwrap();
        a.open_with_prefix(&mut pool, &mut index, &prompt).unwrap();
        for &t in &prompt {
            let (k, v) = token_rows(t, kv_heads, embed);
            a.append_with_prefix(&mut pool, &mut index, &k, &v).unwrap();
        }
        assert_eq!(index.len(), 1);
        for t in 50..53u64 {
            let (k, v) = token_rows(t, kv_heads, embed);
            a.append_with_prefix(&mut pool, &mut index, &k, &v).unwrap();
        }
        assert_eq!(index.len(), 1, "decode blocks stay private");
        assert_eq!(index.probe(&[7, 8]), 2);
        assert_eq!(index.probe(&[7, 8, 9, 50]), 2, "only the prompt block");
    }

    #[test]
    fn windowed_sharing_evicts_past_the_shared_region() {
        // A sharing session whose window slides past the shared prefix
        // drops references (never bytes) and stays bit-identical to a
        // private windowed session with the same history.
        let (kv_heads, embed, bt, window) = (1, 3, 2, 3);
        let mut pool = KvBlockPool::new(bt, kv_heads, embed);
        let mut index = PrefixIndex::new(bt);
        let prompt: Vec<u64> = (0..4).collect();
        let mut a = PagedKvCache::new(1, kv_heads, embed, bt).unwrap();
        a.open_with_prefix(&mut pool, &mut index, &prompt).unwrap();
        for &t in &prompt {
            let (k, v) = token_rows(t, kv_heads, embed);
            a.append_with_prefix(&mut pool, &mut index, &k, &v).unwrap();
        }

        let mut b = PagedKvCache::new(1, kv_heads, embed, bt)
            .unwrap()
            .with_window(window);
        let mut private = PagedKvCache::new(1, kv_heads, embed, bt)
            .unwrap()
            .with_window(window);
        assert_eq!(
            b.open_with_prefix(&mut pool, &mut index, &prompt).unwrap(),
            4
        );
        assert_eq!(b.shared_blocks(), 2);
        for &t in &prompt {
            let (k, v) = token_rows(t, kv_heads, embed);
            private.append(&mut pool, &k, &v).unwrap();
        }
        let q = vec![0.6f32; embed];
        let (mut out_b, mut out_p) = (vec![0.0f32; embed], vec![0.0f32; embed]);
        for t in 200..208u64 {
            let (k, v) = token_rows(t, kv_heads, embed);
            b.append(&mut pool, &k, &v).unwrap();
            private.append(&mut pool, &k, &v).unwrap();
            decode_attention_paged(&pool, &b, &q, &mut out_b).unwrap();
            decode_attention_paged(&pool, &private, &q, &mut out_p).unwrap();
            assert_eq!(out_b, out_p);
        }
        assert_eq!(b.shared_blocks(), 0, "window slid past the shared region");
        // The publisher still decodes its full prompt — eviction only
        // dropped b's references.
        let mut out_a = vec![0.0f32; embed];
        decode_attention_paged(&pool, &a, &q, &mut out_a).unwrap();
    }
}
