//! Four-dimensional tensor shapes in the paper's `B × H × N × E` layout.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::error::{Result, TensorError};

/// Shape of a 4-D tensor `(batch, heads, rows, cols)`.
///
/// All attention operands in the paper are 4-D: `Q, K, V ∈ R^{B×H×N×E}` and
/// the intermediates `C, P ∈ R^{B×H×N×N}`. We keep the four dimensions
/// explicit rather than using a general N-d shape because every kernel in the
/// reproduction operates on exactly this layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    batch: usize,
    heads: usize,
    rows: usize,
    cols: usize,
}

impl Shape {
    /// Creates a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ZeroDimension`] if any dimension is zero.
    pub fn new(batch: usize, heads: usize, rows: usize, cols: usize) -> Result<Self> {
        for (dim, value) in [
            ("batch", batch),
            ("heads", heads),
            ("rows", rows),
            ("cols", cols),
        ] {
            if value == 0 {
                return Err(TensorError::ZeroDimension { dim });
            }
        }
        Ok(Self {
            batch,
            heads,
            rows,
            cols,
        })
    }

    /// Batch dimension `B`.
    #[must_use]
    pub const fn batch(&self) -> usize {
        self.batch
    }

    /// Head dimension `H`.
    #[must_use]
    pub const fn heads(&self) -> usize {
        self.heads
    }

    /// Row dimension (sequence length `N` for `Q/K/V`, query rows for `C/P`).
    #[must_use]
    pub const fn rows(&self) -> usize {
        self.rows
    }

    /// Column dimension (embedding `E` for `Q/K/V/O`, key length for `C/P`).
    #[must_use]
    pub const fn cols(&self) -> usize {
        self.cols
    }

    /// The four dimensions as `[B, H, rows, cols]`.
    #[must_use]
    pub const fn dims(&self) -> [usize; 4] {
        [self.batch, self.heads, self.rows, self.cols]
    }

    /// Total number of elements.
    #[must_use]
    pub const fn volume(&self) -> usize {
        self.batch * self.heads * self.rows * self.cols
    }

    /// Number of `(batch, head)` slices.
    #[must_use]
    pub const fn slices(&self) -> usize {
        self.batch * self.heads
    }

    /// Size in bytes when stored with elements of `bytes_per_elem` bytes.
    #[must_use]
    pub const fn size_bytes(&self, bytes_per_elem: usize) -> usize {
        self.volume() * bytes_per_elem
    }

    /// Linear (row-major) offset of element `(b, h, r, c)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if the index is outside the
    /// shape.
    pub fn offset(&self, b: usize, h: usize, r: usize, c: usize) -> Result<usize> {
        if b >= self.batch || h >= self.heads || r >= self.rows || c >= self.cols {
            return Err(TensorError::IndexOutOfBounds {
                index: [b, h, r, c],
                shape: *self,
            });
        }
        Ok(((b * self.heads + h) * self.rows + r) * self.cols + c)
    }

    /// Linear offset without bounds checking. The caller must guarantee the
    /// index is in range; out-of-range indices yield a nonsensical offset (but
    /// no undefined behaviour — the tensor access itself is still checked).
    #[must_use]
    pub const fn offset_unchecked(&self, b: usize, h: usize, r: usize, c: usize) -> usize {
        ((b * self.heads + h) * self.rows + r) * self.cols + c
    }

    /// Returns a shape with the same `B, H` but different row/col extents.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ZeroDimension`] if `rows` or `cols` is zero.
    pub fn with_matrix(&self, rows: usize, cols: usize) -> Result<Self> {
        Shape::new(self.batch, self.heads, rows, cols)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}, {}, {}, {}]",
            self.batch, self.heads, self.rows, self.cols
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_and_slices() {
        let s = Shape::new(2, 3, 5, 7).unwrap();
        assert_eq!(s.volume(), 2 * 3 * 5 * 7);
        assert_eq!(s.slices(), 6);
        assert_eq!(s.dims(), [2, 3, 5, 7]);
    }

    #[test]
    fn zero_dimension_rejected() {
        assert!(matches!(
            Shape::new(0, 1, 1, 1),
            Err(TensorError::ZeroDimension { dim: "batch" })
        ));
        assert!(matches!(
            Shape::new(1, 1, 1, 0),
            Err(TensorError::ZeroDimension { dim: "cols" })
        ));
    }

    #[test]
    fn offsets_are_row_major_and_dense() {
        let s = Shape::new(2, 2, 3, 4).unwrap();
        let mut seen = vec![false; s.volume()];
        for b in 0..2 {
            for h in 0..2 {
                for r in 0..3 {
                    for c in 0..4 {
                        let off = s.offset(b, h, r, c).unwrap();
                        assert_eq!(off, s.offset_unchecked(b, h, r, c));
                        assert!(!seen[off], "offset {off} visited twice");
                        seen[off] = true;
                    }
                }
            }
        }
        assert!(seen.iter().all(|&v| v));
    }

    #[test]
    fn out_of_bounds_offset_errors() {
        let s = Shape::new(1, 1, 2, 2).unwrap();
        assert!(s.offset(0, 0, 2, 0).is_err());
        assert!(s.offset(1, 0, 0, 0).is_err());
    }

    #[test]
    fn size_bytes_scales_with_dtype() {
        let s = Shape::new(1, 2, 8, 16).unwrap();
        assert_eq!(s.size_bytes(2) * 2, s.size_bytes(4));
    }

    #[test]
    fn display_contains_all_dims() {
        let s = Shape::new(1, 12, 512, 64).unwrap();
        let str = format!("{s}");
        for token in ["1", "12", "512", "64"] {
            assert!(str.contains(token));
        }
    }
}
