//! Runtime-dispatched SIMD kernels with a fixed accumulation contract.
//!
//! The paper's roofline places edge attention on the vector/MAC pipes and the
//! DRAM stream; this module supplies the explicit `std::arch` inner loops the
//! tiled and fused executors run on, replacing reliance on LLVM
//! autovectorization. Three backends exist:
//!
//! * **AVX2** on `x86_64` (plus an F16C fast path for widening stored f16 KV
//!   rows),
//! * **NEON** on `aarch64` (two 128-bit registers emulate one 8-lane vector),
//! * a **scalar** fallback on everything else, exposed verbatim in
//!   [`scalar`].
//!
//! The backend is chosen **once** per process via
//! `std::arch::is_*_feature_detected!` and cached; setting the environment
//! variable `MAS_FORCE_SCALAR=1` before first use pins the scalar fallback
//! (CI runs the whole suite under it).
//!
//! ## Accumulation-order contract
//!
//! Every reduction in this module — dispatched or scalar — produces
//! **bit-identical** results by construction, because all backends follow one
//! fixed accumulation order:
//!
//! 1. **Eight independent lanes.** A reduction over `n` elements maintains
//!    [`LANES`] (= 8) partial accumulators; element `i` of a full 8-wide
//!    chunk updates lane `i % 8` with exactly one rounding per operation
//!    (`lane += x * y` is one f32 multiply then one f32 add — never a fused
//!    multiply-add, which rounds once and would diverge from the scalar
//!    path).
//! 2. **Scalar tail.** The final `n % 8` elements accumulate left-to-right
//!    into a single scalar `tail` accumulator.
//! 3. **Fixed lane reduction.** The result is
//!    `((((lane0 + lane1) + lane2) + …) + lane7) + tail` — lanes summed
//!    left-to-right, then the tail added last.
//!
//! Elementwise kernels ([`axpy`], [`scale`]) perform the same single-rounding
//! operation per element in every backend, so they are trivially
//! bit-identical. [`slice_max`] is reduced in a different association
//! (pairwise in the vector backends) which is value-equal for every input
//! without NaNs; like hardware min/max trees, it does not define NaN
//! propagation order. Property tests in `tests/simd_bitcompat.rs` pin the
//! dispatched backend to [`scalar`] bit-for-bit.

use std::sync::OnceLock;

use crate::half::f16_bits_to_f32;

/// Number of independent accumulator lanes in every reduction (one 256-bit
/// f32 vector; NEON splits them into two 128-bit registers).
pub const LANES: usize = 8;

#[derive(Clone, Copy)]
struct Caps {
    avx2: bool,
    f16c: bool,
    neon: bool,
}

const SCALAR_CAPS: Caps = Caps {
    avx2: false,
    f16c: false,
    neon: false,
};

fn detect() -> Caps {
    #[cfg(target_arch = "x86_64")]
    {
        let avx2 = std::arch::is_x86_feature_detected!("avx2");
        Caps {
            avx2,
            f16c: avx2 && std::arch::is_x86_feature_detected!("f16c"),
            neon: false,
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        Caps {
            avx2: false,
            f16c: false,
            neon: std::arch::is_aarch64_feature_detected!("neon"),
        }
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        SCALAR_CAPS
    }
}

fn caps() -> Caps {
    static CAPS: OnceLock<Caps> = OnceLock::new();
    *CAPS.get_or_init(|| {
        if std::env::var("MAS_FORCE_SCALAR").is_ok_and(|v| v == "1") {
            return SCALAR_CAPS;
        }
        detect()
    })
}

/// Name of the backend selected at first use: `"scalar"`, `"avx2"`,
/// `"avx2+f16c"`, or `"neon"`. Benches print this next to their throughput
/// numbers.
#[must_use]
pub fn backend() -> &'static str {
    let c = caps();
    if c.f16c {
        "avx2+f16c"
    } else if c.avx2 {
        "avx2"
    } else if c.neon {
        "neon"
    } else {
        "scalar"
    }
}

/// Dot product of two equal-length slices under the module's fixed 8-lane
/// accumulation order.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
#[inline]
pub fn dot(x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "dot operands must have equal length");
    #[cfg(target_arch = "x86_64")]
    if caps().avx2 {
        // SAFETY: AVX2 support was verified by the cached feature detection.
        return unsafe { x86::dot(x, y) };
    }
    #[cfg(target_arch = "aarch64")]
    if caps().neon {
        // SAFETY: NEON support was verified by the cached feature detection.
        return unsafe { neon::dot(x, y) };
    }
    scalar::dot(x, y)
}

/// Dot products of `x` against `out.len()` consecutive rows of `rows`, each
/// of length `x.len()`, writing result `r` to `out[r]`.
///
/// This is the matmul-NT inner loop: the rows share every load of `x`, and
/// the AVX2 backend keeps six independent row accumulators in flight to hide
/// the add-latency chain a single running dot is bound by. Each row's result
/// follows the canonical accumulation order exactly, so any grouping is
/// bit-identical to `out[r] = dot(x, row_r)`.
///
/// # Panics
///
/// Panics if `rows.len() != out.len() * x.len()`.
#[inline]
pub fn dot_many(x: &[f32], rows: &[f32], out: &mut [f32]) {
    let k = x.len();
    assert_eq!(
        rows.len(),
        out.len() * k,
        "dot_many rows must hold out.len() rows of x.len() elements"
    );
    #[cfg(target_arch = "x86_64")]
    if caps().avx2 {
        // SAFETY: AVX2 support was verified by the cached feature detection.
        unsafe { x86::dot_many(x, rows, out) };
        return;
    }
    #[cfg(target_arch = "aarch64")]
    if caps().neon {
        // SAFETY: NEON support was verified by the cached feature detection.
        unsafe { neon::dot_many(x, rows, out) };
        return;
    }
    for (r, o) in out.iter_mut().enumerate() {
        *o = scalar::dot(x, &rows[r * k..(r + 1) * k]);
    }
}

/// `out += a * x` over equal-length slices; one multiply and one add
/// rounding per element in every backend.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn axpy(a: f32, x: &[f32], out: &mut [f32]) {
    assert_eq!(x.len(), out.len(), "axpy operands must have equal length");
    #[cfg(target_arch = "x86_64")]
    if caps().avx2 {
        // SAFETY: AVX2 support was verified by the cached feature detection.
        unsafe { x86::axpy(a, x, out) };
        return;
    }
    #[cfg(target_arch = "aarch64")]
    if caps().neon {
        // SAFETY: NEON support was verified by the cached feature detection.
        unsafe { neon::axpy(a, x, out) };
        return;
    }
    scalar::axpy(a, x, out);
}

/// Maximum value of a slice (`-inf` when empty). Value-equal across backends
/// for NaN-free input; the reduction association is backend-defined.
#[must_use]
#[inline]
pub fn slice_max(x: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if caps().avx2 {
        // SAFETY: AVX2 support was verified by the cached feature detection.
        return unsafe { x86::slice_max(x) };
    }
    #[cfg(target_arch = "aarch64")]
    if caps().neon {
        // SAFETY: NEON support was verified by the cached feature detection.
        return unsafe { neon::slice_max(x) };
    }
    scalar::slice_max(x)
}

/// Sum of a slice under the module's fixed 8-lane accumulation order (the
/// softmax denominator pass).
#[must_use]
#[inline]
pub fn sum8(x: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if caps().avx2 {
        // SAFETY: AVX2 support was verified by the cached feature detection.
        return unsafe { x86::sum8(x) };
    }
    #[cfg(target_arch = "aarch64")]
    if caps().neon {
        // SAFETY: NEON support was verified by the cached feature detection.
        return unsafe { neon::sum8(x) };
    }
    scalar::sum8(x)
}

/// Multiplies every element of `xs` by `s` in place (the softmax normalize
/// pass); one rounding per element in every backend.
#[inline]
pub fn scale(s: f32, xs: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if caps().avx2 {
        // SAFETY: AVX2 support was verified by the cached feature detection.
        unsafe { x86::scale(s, xs) };
        return;
    }
    #[cfg(target_arch = "aarch64")]
    if caps().neon {
        // SAFETY: NEON support was verified by the cached feature detection.
        unsafe { neon::scale(s, xs) };
        return;
    }
    scalar::scale(s, xs);
}

/// Widens a slice of binary16 bit patterns to `f32` (the KV load path).
///
/// The F16C backend (`vcvtph2ps`) is exact and bit-identical to the software
/// converter for every pattern the KV store path can produce: all non-NaN
/// values plus the canonical quiet NaN `0x7e00` that
/// [`f32_to_f16_bits_saturating`](crate::half::f32_to_f16_bits_saturating)
/// emits.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn f16_to_f32_slice(bits: &[u16], out: &mut [f32]) {
    assert_eq!(bits.len(), out.len(), "f16 widen length mismatch");
    #[cfg(target_arch = "x86_64")]
    if caps().f16c {
        // SAFETY: AVX2+F16C support was verified by the cached detection.
        unsafe { x86::f16_to_f32_slice(bits, out) };
        return;
    }
    scalar::f16_to_f32_slice(bits, out);
}

/// The scalar reference implementations of every dispatched kernel: the
/// 8-lane accumulation-order contract, written as plain Rust. The vector
/// backends are pinned bit-for-bit against these in `tests/simd_bitcompat.rs`
/// (and run in their place under `MAS_FORCE_SCALAR=1`).
pub mod scalar {
    use super::{f16_bits_to_f32, LANES};

    /// Reference dot product: 8 independent lanes, scalar tail, fixed
    /// left-to-right lane reduction.
    #[must_use]
    #[inline]
    pub fn dot(x: &[f32], y: &[f32]) -> f32 {
        let split = x.len() - x.len() % LANES;
        let mut lanes = [0.0f32; LANES];
        for (xv, yv) in x[..split]
            .chunks_exact(LANES)
            .zip(y[..split].chunks_exact(LANES))
        {
            for l in 0..LANES {
                lanes[l] += xv[l] * yv[l];
            }
        }
        let mut tail = 0.0f32;
        for (a, b) in x[split..].iter().zip(&y[split..]) {
            tail += a * b;
        }
        lanes.iter().sum::<f32>() + tail
    }

    /// Reference AXPY: `out[i] += a * x[i]`, one multiply and one add
    /// rounding per element.
    #[inline]
    pub fn axpy(a: f32, x: &[f32], out: &mut [f32]) {
        for (o, &v) in out.iter_mut().zip(x) {
            *o += a * v;
        }
    }

    /// Reference maximum: a left-to-right `f32::max` fold (`-inf` when
    /// empty).
    #[must_use]
    #[inline]
    pub fn slice_max(x: &[f32]) -> f32 {
        x.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v))
    }

    /// Reference sum: 8 independent lanes, scalar tail, fixed left-to-right
    /// lane reduction.
    #[must_use]
    #[inline]
    pub fn sum8(x: &[f32]) -> f32 {
        let split = x.len() - x.len() % LANES;
        let mut lanes = [0.0f32; LANES];
        for chunk in x[..split].chunks_exact(LANES) {
            for l in 0..LANES {
                lanes[l] += chunk[l];
            }
        }
        let mut tail = 0.0f32;
        for &v in &x[split..] {
            tail += v;
        }
        lanes.iter().sum::<f32>() + tail
    }

    /// Reference in-place scale: `xs[i] *= s`, one rounding per element.
    #[inline]
    pub fn scale(s: f32, xs: &mut [f32]) {
        for v in xs.iter_mut() {
            *v *= s;
        }
    }

    /// Reference f16 widening via the software converter.
    #[inline]
    pub fn f16_to_f32_slice(bits: &[u16], out: &mut [f32]) {
        for (o, &b) in out.iter_mut().zip(bits) {
            *o = f16_bits_to_f32(b);
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{f16_bits_to_f32, LANES};
    use core::arch::x86_64::*;

    /// # Safety
    ///
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot(x: &[f32], y: &[f32]) -> f32 {
        let n = x.len();
        let chunks = n / LANES;
        let xp = x.as_ptr();
        let yp = y.as_ptr();
        let mut acc = _mm256_setzero_ps();
        for c in 0..chunks {
            let xv = _mm256_loadu_ps(xp.add(c * LANES));
            let yv = _mm256_loadu_ps(yp.add(c * LANES));
            // add(mul(...)) — two roundings, matching the scalar lanes; FMA
            // would round once and break bit-compatibility.
            acc = _mm256_add_ps(acc, _mm256_mul_ps(xv, yv));
        }
        let mut lanes = [0.0f32; LANES];
        _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
        let split = chunks * LANES;
        let mut tail = 0.0f32;
        for (a, b) in x[split..].iter().zip(&y[split..]) {
            tail += a * b;
        }
        lanes.iter().sum::<f32>() + tail
    }

    /// `K` simultaneous dots of `x` against `K` consecutive `stride`-spaced
    /// rows, sharing each load of `x`. Every row follows the canonical
    /// accumulation order independently.
    ///
    /// # Safety
    ///
    /// Requires AVX2; `rows` must hold `K` rows of `x.len()` elements.
    #[target_feature(enable = "avx2")]
    unsafe fn dotn<const K: usize>(x: &[f32], rows: &[f32], out: &mut [f32]) {
        let n = x.len();
        let chunks = n / LANES;
        let xp = x.as_ptr();
        let rp = rows.as_ptr();
        let mut acc = [_mm256_setzero_ps(); K];
        for c in 0..chunks {
            let xv = _mm256_loadu_ps(xp.add(c * LANES));
            for (k, a) in acc.iter_mut().enumerate() {
                let yv = _mm256_loadu_ps(rp.add(k * n + c * LANES));
                *a = _mm256_add_ps(*a, _mm256_mul_ps(xv, yv));
            }
        }
        let split = chunks * LANES;
        for (k, a) in acc.iter().enumerate() {
            let mut lanes = [0.0f32; LANES];
            _mm256_storeu_ps(lanes.as_mut_ptr(), *a);
            let row = &rows[k * n..(k + 1) * n];
            let mut tail = 0.0f32;
            for (xa, ya) in x[split..].iter().zip(&row[split..]) {
                tail += xa * ya;
            }
            out[k] = lanes.iter().sum::<f32>() + tail;
        }
    }

    /// # Safety
    ///
    /// Requires AVX2; `rows.len() == out.len() * x.len()`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot_many(x: &[f32], rows: &[f32], out: &mut [f32]) {
        // Six rows in flight: enough independent accumulators to hide the
        // vaddps latency chain without spilling (measured fastest of 2/4/6/8
        // on AVX2 hosts).
        const GROUP: usize = 6;
        let k = x.len();
        let n = out.len();
        let mut r = 0;
        while r + GROUP <= n {
            dotn::<GROUP>(x, &rows[r * k..(r + GROUP) * k], &mut out[r..r + GROUP]);
            r += GROUP;
        }
        let rows = &rows[r * k..];
        let out = &mut out[r..];
        match n - r {
            1 => dotn::<1>(x, rows, out),
            2 => dotn::<2>(x, rows, out),
            3 => dotn::<3>(x, rows, out),
            4 => dotn::<4>(x, rows, out),
            5 => dotn::<5>(x, rows, out),
            _ => {}
        }
    }

    /// # Safety
    ///
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn axpy(a: f32, x: &[f32], out: &mut [f32]) {
        let n = x.len();
        let chunks = n / LANES;
        let av = _mm256_set1_ps(a);
        let xp = x.as_ptr();
        let op = out.as_mut_ptr();
        for c in 0..chunks {
            let xv = _mm256_loadu_ps(xp.add(c * LANES));
            let ov = _mm256_loadu_ps(op.add(c * LANES));
            _mm256_storeu_ps(op.add(c * LANES), _mm256_add_ps(ov, _mm256_mul_ps(av, xv)));
        }
        let split = chunks * LANES;
        for (o, &v) in out[split..].iter_mut().zip(&x[split..]) {
            *o += a * v;
        }
    }

    /// # Safety
    ///
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn slice_max(x: &[f32]) -> f32 {
        let n = x.len();
        let chunks = n / LANES;
        let xp = x.as_ptr();
        let mut acc = _mm256_set1_ps(f32::NEG_INFINITY);
        for c in 0..chunks {
            acc = _mm256_max_ps(acc, _mm256_loadu_ps(xp.add(c * LANES)));
        }
        let mut lanes = [0.0f32; LANES];
        _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
        let mut m = lanes.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        for &v in &x[chunks * LANES..] {
            m = m.max(v);
        }
        m
    }

    /// # Safety
    ///
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn sum8(x: &[f32]) -> f32 {
        let n = x.len();
        let chunks = n / LANES;
        let xp = x.as_ptr();
        let mut acc = _mm256_setzero_ps();
        for c in 0..chunks {
            acc = _mm256_add_ps(acc, _mm256_loadu_ps(xp.add(c * LANES)));
        }
        let mut lanes = [0.0f32; LANES];
        _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
        let mut tail = 0.0f32;
        for &v in &x[chunks * LANES..] {
            tail += v;
        }
        lanes.iter().sum::<f32>() + tail
    }

    /// # Safety
    ///
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn scale(s: f32, xs: &mut [f32]) {
        let n = xs.len();
        let chunks = n / LANES;
        let sv = _mm256_set1_ps(s);
        let p = xs.as_mut_ptr();
        for c in 0..chunks {
            let v = _mm256_loadu_ps(p.add(c * LANES));
            _mm256_storeu_ps(p.add(c * LANES), _mm256_mul_ps(v, sv));
        }
        for v in &mut xs[chunks * LANES..] {
            *v *= s;
        }
    }

    /// # Safety
    ///
    /// Requires AVX2 and F16C.
    #[target_feature(enable = "avx2,f16c")]
    pub unsafe fn f16_to_f32_slice(bits: &[u16], out: &mut [f32]) {
        let n = bits.len();
        let chunks = n / LANES;
        let bp = bits.as_ptr();
        let op = out.as_mut_ptr();
        for c in 0..chunks {
            let h = _mm_loadu_si128(bp.add(c * LANES).cast());
            _mm256_storeu_ps(op.add(c * LANES), _mm256_cvtph_ps(h));
        }
        let split = chunks * LANES;
        for (o, &b) in out[split..].iter_mut().zip(&bits[split..]) {
            *o = f16_bits_to_f32(b);
        }
    }
}

#[cfg(target_arch = "aarch64")]
mod neon {
    use super::LANES;
    use core::arch::aarch64::*;

    /// # Safety
    ///
    /// Requires NEON.
    #[target_feature(enable = "neon")]
    pub unsafe fn dot(x: &[f32], y: &[f32]) -> f32 {
        let n = x.len();
        let chunks = n / LANES;
        let xp = x.as_ptr();
        let yp = y.as_ptr();
        // Two 128-bit registers form lanes 0..=3 and 4..=7 of the contract.
        let mut lo = vdupq_n_f32(0.0);
        let mut hi = vdupq_n_f32(0.0);
        for c in 0..chunks {
            let x0 = vld1q_f32(xp.add(c * LANES));
            let x1 = vld1q_f32(xp.add(c * LANES + 4));
            let y0 = vld1q_f32(yp.add(c * LANES));
            let y1 = vld1q_f32(yp.add(c * LANES + 4));
            lo = vaddq_f32(lo, vmulq_f32(x0, y0));
            hi = vaddq_f32(hi, vmulq_f32(x1, y1));
        }
        let mut lanes = [0.0f32; LANES];
        vst1q_f32(lanes.as_mut_ptr(), lo);
        vst1q_f32(lanes.as_mut_ptr().add(4), hi);
        let split = chunks * LANES;
        let mut tail = 0.0f32;
        for (a, b) in x[split..].iter().zip(&y[split..]) {
            tail += a * b;
        }
        lanes.iter().sum::<f32>() + tail
    }

    /// # Safety
    ///
    /// Requires NEON; `rows.len() == out.len() * x.len()`.
    #[target_feature(enable = "neon")]
    pub unsafe fn dot_many(x: &[f32], rows: &[f32], out: &mut [f32]) {
        let k = x.len();
        for (r, o) in out.iter_mut().enumerate() {
            *o = dot(x, &rows[r * k..(r + 1) * k]);
        }
    }

    /// # Safety
    ///
    /// Requires NEON.
    #[target_feature(enable = "neon")]
    pub unsafe fn axpy(a: f32, x: &[f32], out: &mut [f32]) {
        let n = x.len();
        let chunks = n / LANES;
        let av = vdupq_n_f32(a);
        let xp = x.as_ptr();
        let op = out.as_mut_ptr();
        for c in 0..chunks {
            let x0 = vld1q_f32(xp.add(c * LANES));
            let x1 = vld1q_f32(xp.add(c * LANES + 4));
            let o0 = vld1q_f32(op.add(c * LANES));
            let o1 = vld1q_f32(op.add(c * LANES + 4));
            vst1q_f32(op.add(c * LANES), vaddq_f32(o0, vmulq_f32(av, x0)));
            vst1q_f32(op.add(c * LANES + 4), vaddq_f32(o1, vmulq_f32(av, x1)));
        }
        let split = chunks * LANES;
        for (o, &v) in out[split..].iter_mut().zip(&x[split..]) {
            *o += a * v;
        }
    }

    /// # Safety
    ///
    /// Requires NEON.
    #[target_feature(enable = "neon")]
    pub unsafe fn slice_max(x: &[f32]) -> f32 {
        let n = x.len();
        let chunks = n / LANES;
        let xp = x.as_ptr();
        let mut lo = vdupq_n_f32(f32::NEG_INFINITY);
        let mut hi = vdupq_n_f32(f32::NEG_INFINITY);
        for c in 0..chunks {
            lo = vmaxq_f32(lo, vld1q_f32(xp.add(c * LANES)));
            hi = vmaxq_f32(hi, vld1q_f32(xp.add(c * LANES + 4)));
        }
        let mut lanes = [0.0f32; LANES];
        vst1q_f32(lanes.as_mut_ptr(), lo);
        vst1q_f32(lanes.as_mut_ptr().add(4), hi);
        let mut m = lanes.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        for &v in &x[chunks * LANES..] {
            m = m.max(v);
        }
        m
    }

    /// # Safety
    ///
    /// Requires NEON.
    #[target_feature(enable = "neon")]
    pub unsafe fn sum8(x: &[f32]) -> f32 {
        let n = x.len();
        let chunks = n / LANES;
        let xp = x.as_ptr();
        let mut lo = vdupq_n_f32(0.0);
        let mut hi = vdupq_n_f32(0.0);
        for c in 0..chunks {
            lo = vaddq_f32(lo, vld1q_f32(xp.add(c * LANES)));
            hi = vaddq_f32(hi, vld1q_f32(xp.add(c * LANES + 4)));
        }
        let mut lanes = [0.0f32; LANES];
        vst1q_f32(lanes.as_mut_ptr(), lo);
        vst1q_f32(lanes.as_mut_ptr().add(4), hi);
        let mut tail = 0.0f32;
        for &v in &x[chunks * LANES..] {
            tail += v;
        }
        lanes.iter().sum::<f32>() + tail
    }

    /// # Safety
    ///
    /// Requires NEON.
    #[target_feature(enable = "neon")]
    pub unsafe fn scale(s: f32, xs: &mut [f32]) {
        let n = xs.len();
        let chunks = n / LANES;
        let sv = vdupq_n_f32(s);
        let p = xs.as_mut_ptr();
        for c in 0..chunks {
            let v0 = vld1q_f32(p.add(c * LANES));
            let v1 = vld1q_f32(p.add(c * LANES + 4));
            vst1q_f32(p.add(c * LANES), vmulq_f32(v0, sv));
            vst1q_f32(p.add(c * LANES + 4), vmulq_f32(v1, sv));
        }
        for v in &mut xs[chunks * LANES..] {
            *v *= s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::half::f32_to_f16_bits_saturating;

    fn vecs(len: usize, seed: u32) -> (Vec<f32>, Vec<f32>) {
        // Cheap deterministic LCG values in roughly [-4, 4).
        let mut state = seed as u64 * 2654435761 + 1;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 28) as f32) - 4.0
        };
        let x: Vec<f32> = (0..len).map(|_| next()).collect();
        let y: Vec<f32> = (0..len).map(|_| next()).collect();
        (x, y)
    }

    #[test]
    fn dispatched_dot_matches_scalar_bitwise() {
        for len in [0, 1, 3, 7, 8, 9, 15, 16, 17, 48, 63, 64, 65, 257] {
            let (x, y) = vecs(len, len as u32 + 1);
            assert_eq!(
                dot(&x, &y).to_bits(),
                scalar::dot(&x, &y).to_bits(),
                "len {len} backend {}",
                backend()
            );
        }
    }

    #[test]
    fn dot_many_matches_per_row_dot_bitwise() {
        for (k, n) in [(1, 1), (7, 3), (8, 6), (64, 13), (65, 29), (96, 7)] {
            let (x, _) = vecs(k, 3);
            let (rows, _) = vecs(k * n, 5);
            let mut out = vec![0.0f32; n];
            dot_many(&x, &rows, &mut out);
            for (r, &o) in out.iter().enumerate() {
                let expect = scalar::dot(&x, &rows[r * k..(r + 1) * k]);
                assert_eq!(o.to_bits(), expect.to_bits(), "k={k} n={n} row {r}");
            }
        }
    }

    #[test]
    fn dispatched_axpy_matches_scalar_bitwise() {
        for len in [0, 1, 7, 8, 9, 16, 31, 64, 100] {
            let (x, base) = vecs(len, 7 + len as u32);
            let mut fast = base.clone();
            let mut slow = base.clone();
            axpy(1.7, &x, &mut fast);
            scalar::axpy(1.7, &x, &mut slow);
            for (f, s) in fast.iter().zip(&slow) {
                assert_eq!(f.to_bits(), s.to_bits(), "len {len}");
            }
        }
    }

    #[test]
    fn dispatched_reductions_match_scalar() {
        for len in [0, 1, 7, 8, 9, 16, 31, 64, 129] {
            let (x, _) = vecs(len, 11 + len as u32);
            assert_eq!(sum8(&x).to_bits(), scalar::sum8(&x).to_bits(), "len {len}");
            assert_eq!(slice_max(&x), scalar::slice_max(&x), "len {len}");
        }
    }

    #[test]
    fn dispatched_scale_matches_scalar_bitwise() {
        let (base, _) = vecs(41, 13);
        let mut fast = base.clone();
        let mut slow = base;
        scale(0.37, &mut fast);
        scalar::scale(0.37, &mut slow);
        for (f, s) in fast.iter().zip(&slow) {
            assert_eq!(f.to_bits(), s.to_bits());
        }
    }

    #[test]
    fn dispatched_f16_widen_matches_software_converter() {
        // Every pattern the KV store path can produce: saturated finite
        // values, zeros, subnormals and the canonical quiet NaN.
        let mut values: Vec<f32> = vec![0.0, -0.0, 1.0, -2.5, 65504.0, 1e6, -1e6, 3e-6, 1e-9];
        let (mut more, _) = vecs(37, 17);
        values.append(&mut more);
        values.push(f32::NAN);
        values.push(f32::INFINITY);
        let bits: Vec<u16> = values
            .iter()
            .map(|&v| f32_to_f16_bits_saturating(v))
            .collect();
        let mut fast = vec![0.0f32; bits.len()];
        let mut slow = vec![0.0f32; bits.len()];
        f16_to_f32_slice(&bits, &mut fast);
        scalar::f16_to_f32_slice(&bits, &mut slow);
        for (i, (f, s)) in fast.iter().zip(&slow).enumerate() {
            assert_eq!(f.to_bits(), s.to_bits(), "index {i} bits {:#06x}", bits[i]);
        }
    }

    #[test]
    fn backend_reports_a_known_name() {
        assert!(["scalar", "avx2", "avx2+f16c", "neon"].contains(&backend()));
    }
}
