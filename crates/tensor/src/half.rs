//! IEEE-754 binary16 (half precision) storage emulation.
//!
//! The paper's edge deployments store activations in FP16 (§5.6 analyses the
//! maximum sequence length "in half precision (FP16)"). This module provides
//! a software f32↔f16 round-trip so the reproduction can (a) account for FP16
//! footprints and (b) quantify the numerical effect of storing intermediates
//! in half precision, without pulling in an external `half` crate.
//!
//! The conversion implements round-to-nearest-even, gradual underflow to
//! subnormals, and saturation to ±infinity, which is what edge NPUs implement
//! in hardware.

use crate::tensor::Tensor;

/// Converts an `f32` to its nearest IEEE-754 binary16 bit pattern
/// (round-to-nearest-even).
#[must_use]
pub fn f32_to_f16_bits(value: f32) -> u16 {
    let bits = value.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let mant = bits & 0x007f_ffff;

    if exp == 0xff {
        // NaN or infinity.
        if mant != 0 {
            return sign | 0x7e00; // quiet NaN
        }
        return sign | 0x7c00; // infinity
    }

    // Re-bias exponent from 127 (f32) to 15 (f16).
    let unbiased = exp - 127;
    let new_exp = unbiased + 15;

    if new_exp >= 0x1f {
        // Overflow: saturate to infinity.
        return sign | 0x7c00;
    }

    if new_exp <= 0 {
        // Subnormal or zero in f16.
        if new_exp < -10 {
            // Too small: flush to signed zero.
            return sign;
        }
        // Build the subnormal mantissa: implicit leading 1 plus stored bits,
        // shifted right by the deficit.
        let mant_with_hidden = mant | 0x0080_0000;
        let shift = (14 - new_exp) as u32;
        let half_mant = mant_with_hidden >> shift;
        // Round to nearest even.
        let round_bit = 1u32 << (shift - 1);
        let remainder = mant_with_hidden & ((1u32 << shift) - 1);
        let mut result = half_mant as u16;
        if remainder > round_bit || (remainder == round_bit && (half_mant & 1) == 1) {
            result += 1;
        }
        return sign | result;
    }

    // Normalized result. Round mantissa from 23 to 10 bits, nearest even.
    let mut half_exp = new_exp as u16;
    let mut half_mant = (mant >> 13) as u16;
    let remainder = mant & 0x1fff;
    if remainder > 0x1000 || (remainder == 0x1000 && (half_mant & 1) == 1) {
        half_mant += 1;
        if half_mant == 0x400 {
            // Mantissa overflowed into the exponent.
            half_mant = 0;
            half_exp += 1;
            if half_exp >= 0x1f {
                return sign | 0x7c00;
            }
        }
    }
    sign | (half_exp << 10) | half_mant
}

/// Converts an IEEE-754 binary16 bit pattern back to `f32`.
#[must_use]
pub fn f16_bits_to_f32(bits: u16) -> f32 {
    let sign = u32::from(bits & 0x8000) << 16;
    let exp = (bits >> 10) & 0x1f;
    let mant = u32::from(bits & 0x03ff);

    let out_bits = if exp == 0 {
        if mant == 0 {
            sign
        } else {
            // Subnormal: normalize it.
            let mut e = 0i32;
            let mut m = mant;
            while m & 0x0400 == 0 {
                m <<= 1;
                e -= 1;
            }
            m &= 0x03ff;
            let new_exp = (127 - 15 + e + 1) as u32;
            sign | (new_exp << 23) | (m << 13)
        }
    } else if exp == 0x1f {
        if mant == 0 {
            sign | 0x7f80_0000
        } else {
            sign | 0x7fc0_0000
        }
    } else {
        let new_exp = u32::from(exp) + 127 - 15;
        sign | (new_exp << 23) | (mant << 13)
    };
    f32::from_bits(out_bits)
}

/// Rounds an `f32` value through binary16 precision and back.
#[must_use]
pub fn round_to_f16(value: f32) -> f32 {
    f16_bits_to_f32(f32_to_f16_bits(value))
}

/// Rounds every element of a tensor through binary16 precision, simulating
/// FP16 on-chip storage of intermediates.
#[must_use]
pub fn quantize_tensor_f16(t: &Tensor) -> Tensor {
    let mut out = t.clone();
    for v in out.data_mut() {
        *v = round_to_f16(*v);
    }
    out
}

/// Maximum finite value representable in binary16 (65504.0).
pub const F16_MAX: f32 = 65504.0;

/// Smallest positive normal binary16 value (2⁻¹⁴).
pub const F16_MIN_POSITIVE: f32 = 6.103_515_6e-5;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::random_tensor;
    use crate::shape::Shape;

    #[test]
    fn exact_small_integers_round_trip() {
        for v in [-8.0f32, -1.0, -0.5, 0.0, 0.5, 1.0, 2.0, 3.0, 100.0, 2048.0] {
            assert_eq!(round_to_f16(v), v, "value {v} should be exact in f16");
        }
    }

    #[test]
    fn known_bit_patterns() {
        assert_eq!(f32_to_f16_bits(0.0), 0x0000);
        assert_eq!(f32_to_f16_bits(-0.0), 0x8000);
        assert_eq!(f32_to_f16_bits(1.0), 0x3c00);
        assert_eq!(f32_to_f16_bits(-2.0), 0xc000);
        assert_eq!(f32_to_f16_bits(65504.0), 0x7bff);
        assert_eq!(f32_to_f16_bits(f32::INFINITY), 0x7c00);
        assert_eq!(f32_to_f16_bits(f32::NEG_INFINITY), 0xfc00);
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        assert!(f16_bits_to_f32(f32_to_f16_bits(1e6)).is_infinite());
        assert!(f16_bits_to_f32(f32_to_f16_bits(-1e6)).is_infinite());
    }

    #[test]
    fn tiny_values_flush_or_become_subnormal() {
        let tiny = 1e-9f32;
        let rt = round_to_f16(tiny);
        assert!(rt == 0.0 || rt.abs() < F16_MIN_POSITIVE);
        // A representable subnormal survives approximately.
        let sub = 3.0e-6f32;
        let rt = round_to_f16(sub);
        assert!(rt > 0.0);
        assert!((rt - sub).abs() / sub < 0.2);
    }

    #[test]
    fn nan_round_trips_as_nan() {
        assert!(f16_bits_to_f32(f32_to_f16_bits(f32::NAN)).is_nan());
    }

    #[test]
    fn relative_error_is_bounded_for_normal_range() {
        // binary16 has 11 significand bits: relative error <= 2^-11.
        let t = random_tensor(Shape::new(1, 1, 32, 32).unwrap(), 100.0, 13);
        for &v in t.data() {
            let r = round_to_f16(v);
            if v.abs() > F16_MIN_POSITIVE {
                assert!(((r - v) / v).abs() <= 1.0 / 2048.0 + 1e-7, "v={v} r={r}");
            }
        }
    }

    #[test]
    fn quantize_tensor_preserves_shape_and_is_idempotent() {
        let t = random_tensor(Shape::new(2, 2, 4, 4).unwrap(), 10.0, 5);
        let q1 = quantize_tensor_f16(&t);
        let q2 = quantize_tensor_f16(&q1);
        assert_eq!(q1.shape(), t.shape());
        assert_eq!(q1, q2, "f16 quantization must be idempotent");
    }
}
