//! IEEE-754 binary16 (half precision) storage emulation.
//!
//! The paper's edge deployments store activations in FP16 (§5.6 analyses the
//! maximum sequence length "in half precision (FP16)"). This module provides
//! a software f32↔f16 round-trip so the reproduction can (a) account for FP16
//! footprints and (b) quantify the numerical effect of storing intermediates
//! in half precision, without pulling in an external `half` crate.
//!
//! The conversion implements round-to-nearest-even, gradual underflow to
//! subnormals, and saturation to ±infinity, which is what edge NPUs implement
//! in hardware.

use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Element type used for KV-cache *storage* (as opposed to the f32 compute
/// type every kernel consumes).
///
/// With [`F16`](KvDtype::F16) the contiguous and paged caches store K/V rows
/// as raw binary16 bit patterns (`u16`), written through the saturating
/// converter [`f32_to_f16_bits_saturating`] and expanded back to f32 per row
/// tile inside the decode sweep — the same place a device DMA engine would
/// widen the stream. This halves the resident KV bytes and the decode-step
/// DRAM traffic relative to [`F32`](KvDtype::F32).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum KvDtype {
    /// Full-precision storage: K/V rows are kept as `f32` (4 bytes/element).
    #[default]
    F32,
    /// Half-precision storage: K/V rows are kept as binary16 bits
    /// (2 bytes/element) and widened to f32 on load.
    F16,
}

impl KvDtype {
    /// Bytes per stored KV element (4 for f32, 2 for f16).
    #[must_use]
    pub const fn element_bytes(self) -> usize {
        match self {
            KvDtype::F32 => 4,
            KvDtype::F16 => 2,
        }
    }

    /// Lower-case display name (`"f32"` / `"f16"`).
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            KvDtype::F32 => "f32",
            KvDtype::F16 => "f16",
        }
    }

    /// Parses a case-insensitive dtype name as accepted by the CLI bins.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "f32" | "fp32" => Some(KvDtype::F32),
            "f16" | "fp16" | "half" => Some(KvDtype::F16),
            _ => None,
        }
    }
}

impl std::fmt::Display for KvDtype {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Converts an `f32` to its nearest IEEE-754 binary16 bit pattern
/// (round-to-nearest-even).
#[must_use]
pub fn f32_to_f16_bits(value: f32) -> u16 {
    let bits = value.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let mant = bits & 0x007f_ffff;

    if exp == 0xff {
        // NaN or infinity.
        if mant != 0 {
            return sign | 0x7e00; // quiet NaN
        }
        return sign | 0x7c00; // infinity
    }

    // Re-bias exponent from 127 (f32) to 15 (f16).
    let unbiased = exp - 127;
    let new_exp = unbiased + 15;

    if new_exp >= 0x1f {
        // Overflow: saturate to infinity.
        return sign | 0x7c00;
    }

    if new_exp <= 0 {
        // Subnormal or zero in f16.
        if new_exp < -10 {
            // Too small: flush to signed zero.
            return sign;
        }
        // Build the subnormal mantissa: implicit leading 1 plus stored bits,
        // shifted right by the deficit.
        let mant_with_hidden = mant | 0x0080_0000;
        let shift = (14 - new_exp) as u32;
        let half_mant = mant_with_hidden >> shift;
        // Round to nearest even.
        let round_bit = 1u32 << (shift - 1);
        let remainder = mant_with_hidden & ((1u32 << shift) - 1);
        let mut result = half_mant as u16;
        if remainder > round_bit || (remainder == round_bit && (half_mant & 1) == 1) {
            result += 1;
        }
        return sign | result;
    }

    // Normalized result. Round mantissa from 23 to 10 bits, nearest even.
    let mut half_exp = new_exp as u16;
    let mut half_mant = (mant >> 13) as u16;
    let remainder = mant & 0x1fff;
    if remainder > 0x1000 || (remainder == 0x1000 && (half_mant & 1) == 1) {
        half_mant += 1;
        if half_mant == 0x400 {
            // Mantissa overflowed into the exponent.
            half_mant = 0;
            half_exp += 1;
            if half_exp >= 0x1f {
                return sign | 0x7c00;
            }
        }
    }
    sign | (half_exp << 10) | half_mant
}

/// Converts an `f32` to binary16 bits, saturating finite overflow to
/// ±[`F16_MAX`] (`0x7bff` / `0xfbff`) instead of rounding to infinity.
///
/// [`f32_to_f16_bits`] follows IEEE round-to-nearest-even, under which any
/// finite magnitude ≥ 65520 becomes ±infinity. That is correct for activation
/// quantization, but fatal for KV storage: one outsized logit row stored as
/// `inf` turns the softmax of every later decode step that attends to it into
/// `inf - inf = NaN`, poisoning the whole session. KV writes therefore clamp
/// finite values into the representable range and only pass through genuine
/// infinities and NaNs (which were already poisoned upstream).
#[must_use]
pub fn f32_to_f16_bits_saturating(value: f32) -> u16 {
    if value.is_infinite() || value.is_nan() {
        return f32_to_f16_bits(value);
    }
    if value > F16_MAX {
        return 0x7bff;
    }
    if value < -F16_MAX {
        return 0xfbff;
    }
    f32_to_f16_bits(value)
}

/// Converts an IEEE-754 binary16 bit pattern back to `f32`.
#[must_use]
pub fn f16_bits_to_f32(bits: u16) -> f32 {
    let sign = u32::from(bits & 0x8000) << 16;
    let exp = (bits >> 10) & 0x1f;
    let mant = u32::from(bits & 0x03ff);

    let out_bits = if exp == 0 {
        if mant == 0 {
            sign
        } else {
            // Subnormal: normalize it.
            let mut e = 0i32;
            let mut m = mant;
            while m & 0x0400 == 0 {
                m <<= 1;
                e -= 1;
            }
            m &= 0x03ff;
            let new_exp = (127 - 15 + e + 1) as u32;
            sign | (new_exp << 23) | (m << 13)
        }
    } else if exp == 0x1f {
        if mant == 0 {
            sign | 0x7f80_0000
        } else {
            sign | 0x7fc0_0000
        }
    } else {
        let new_exp = u32::from(exp) + 127 - 15;
        sign | (new_exp << 23) | (mant << 13)
    };
    f32::from_bits(out_bits)
}

/// Rounds an `f32` value through binary16 precision and back.
#[must_use]
pub fn round_to_f16(value: f32) -> f32 {
    f16_bits_to_f32(f32_to_f16_bits(value))
}

/// Rounds every element of a tensor through binary16 precision, simulating
/// FP16 on-chip storage of intermediates.
#[must_use]
pub fn quantize_tensor_f16(t: &Tensor) -> Tensor {
    let mut out = t.clone();
    for v in out.data_mut() {
        *v = round_to_f16(*v);
    }
    out
}

/// Maximum finite value representable in binary16 (65504.0).
pub const F16_MAX: f32 = 65504.0;

/// Smallest positive normal binary16 value (2⁻¹⁴).
pub const F16_MIN_POSITIVE: f32 = 6.103_515_6e-5;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::random_tensor;
    use crate::shape::Shape;

    #[test]
    fn exact_small_integers_round_trip() {
        for v in [-8.0f32, -1.0, -0.5, 0.0, 0.5, 1.0, 2.0, 3.0, 100.0, 2048.0] {
            assert_eq!(round_to_f16(v), v, "value {v} should be exact in f16");
        }
    }

    #[test]
    fn known_bit_patterns() {
        assert_eq!(f32_to_f16_bits(0.0), 0x0000);
        assert_eq!(f32_to_f16_bits(-0.0), 0x8000);
        assert_eq!(f32_to_f16_bits(1.0), 0x3c00);
        assert_eq!(f32_to_f16_bits(-2.0), 0xc000);
        assert_eq!(f32_to_f16_bits(65504.0), 0x7bff);
        assert_eq!(f32_to_f16_bits(f32::INFINITY), 0x7c00);
        assert_eq!(f32_to_f16_bits(f32::NEG_INFINITY), 0xfc00);
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        assert!(f16_bits_to_f32(f32_to_f16_bits(1e6)).is_infinite());
        assert!(f16_bits_to_f32(f32_to_f16_bits(-1e6)).is_infinite());
    }

    #[test]
    fn tiny_values_flush_or_become_subnormal() {
        let tiny = 1e-9f32;
        let rt = round_to_f16(tiny);
        assert!(rt == 0.0 || rt.abs() < F16_MIN_POSITIVE);
        // A representable subnormal survives approximately.
        let sub = 3.0e-6f32;
        let rt = round_to_f16(sub);
        assert!(rt > 0.0);
        assert!((rt - sub).abs() / sub < 0.2);
    }

    #[test]
    fn nan_round_trips_as_nan() {
        assert!(f16_bits_to_f32(f32_to_f16_bits(f32::NAN)).is_nan());
    }

    #[test]
    fn relative_error_is_bounded_for_normal_range() {
        // binary16 has 11 significand bits: relative error <= 2^-11.
        let t = random_tensor(Shape::new(1, 1, 32, 32).unwrap(), 100.0, 13);
        for &v in t.data() {
            let r = round_to_f16(v);
            if v.abs() > F16_MIN_POSITIVE {
                assert!(((r - v) / v).abs() <= 1.0 / 2048.0 + 1e-7, "v={v} r={r}");
            }
        }
    }

    #[test]
    fn quantize_tensor_preserves_shape_and_is_idempotent() {
        let t = random_tensor(Shape::new(2, 2, 4, 4).unwrap(), 10.0, 5);
        let q1 = quantize_tensor_f16(&t);
        let q2 = quantize_tensor_f16(&q1);
        assert_eq!(q1.shape(), t.shape());
        assert_eq!(q1, q2, "f16 quantization must be idempotent");
    }

    #[test]
    fn saturating_conversion_clamps_finite_overflow_to_f16_max() {
        // Regression: the rounding converter sends these to ±inf, which would
        // poison softmax for every step attending to the stored row.
        for v in [65520.0f32, 1e6, 3.4e38, f32::MAX] {
            assert_eq!(f32_to_f16_bits_saturating(v), 0x7bff, "v={v}");
            assert_eq!(f32_to_f16_bits_saturating(-v), 0xfbff, "v=-{v}");
            assert!(f16_bits_to_f32(f32_to_f16_bits(v)).is_infinite());
        }
        assert_eq!(f16_bits_to_f32(0x7bff), F16_MAX);
        // In-range values and specials are untouched.
        for v in [0.0f32, -0.5, 1.0, 2048.0, F16_MAX, -F16_MAX] {
            assert_eq!(f32_to_f16_bits_saturating(v), f32_to_f16_bits(v));
        }
        assert_eq!(f32_to_f16_bits_saturating(f32::INFINITY), 0x7c00);
        assert_eq!(f32_to_f16_bits_saturating(f32::NEG_INFINITY), 0xfc00);
        assert!(f16_bits_to_f32(f32_to_f16_bits_saturating(f32::NAN)).is_nan());
    }

    #[test]
    fn all_65536_bit_patterns_round_trip() {
        for bits in 0..=u16::MAX {
            let f = f16_bits_to_f32(bits);
            let exp = (bits >> 10) & 0x1f;
            let mant = bits & 0x03ff;
            if exp == 0x1f && mant != 0 {
                // NaN payloads collapse to the canonical quiet NaN but must
                // stay NaN with the sign preserved.
                assert!(f.is_nan(), "bits {bits:#06x} must decode to NaN");
                let back = f32_to_f16_bits(f);
                assert_eq!(back, (bits & 0x8000) | 0x7e00, "bits {bits:#06x}");
                assert_eq!(f32_to_f16_bits_saturating(f), back);
            } else {
                // Every non-NaN pattern (zeros, subnormals, normals,
                // infinities) is exactly representable: identity round trip.
                assert_eq!(f32_to_f16_bits(f), bits, "bits {bits:#06x} f={f}");
                assert_eq!(
                    f32_to_f16_bits_saturating(f),
                    bits,
                    "bits {bits:#06x} f={f}"
                );
            }
        }
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4096))]

            #[test]
            fn round_to_f16_relative_error_within_2_pow_neg_11(
                mant in 0u32..(1 << 24),
                exp in 0u32..30,
                sign in 0u32..2,
            ) {
                // A float with uniform significand in [1, 2) and an exponent
                // spanning the whole f16 normal range 2^-14 ..= 2^15.
                let frac = 1.0 + mant as f32 / (1u32 << 24) as f32;
                let v = if sign == 0 { frac } else { -frac }
                    * 2.0f32.powi(exp as i32 - 14);
                // binary16 keeps 11 significand bits: round-to-nearest-even
                // guarantees relative error <= 2^-11. In the top binade the
                // rounding converter overflows to inf above 65504 + half an
                // ulp, so the saturating converter (the KV store path) takes
                // over; its clamp to ±F16_MAX stays within the same bound for
                // every magnitude below 2^16.
                let r = f16_bits_to_f32(f32_to_f16_bits_saturating(v));
                prop_assert!(r.is_finite());
                prop_assert!(((r - v) / v).abs() <= 1.0 / 2048.0, "v={v} r={r}");
                if v.abs() < 32768.0 {
                    let r = round_to_f16(v);
                    prop_assert!(r.is_finite());
                    prop_assert!(((r - v) / v).abs() <= 1.0 / 2048.0, "v={v} r={r}");
                }
            }
        }
    }
}
