//! # mas-tensor
//!
//! Dense tensor substrate for the MAS-Attention reproduction.
//!
//! The paper ("MAS-Attention: Memory-Aware Stream Processing for Attention
//! Acceleration on Resource-Constrained Edge Devices", MLSys 2025) evaluates
//! *exact* attention dataflows: every method — Layer-Wise, Soft-Pipe, FLAT,
//! TileFlow, FuseMax and MAS-Attention — must produce the same output as the
//! unfused reference ("golden data check", §5.1). This crate provides:
//!
//! * a small, self-contained 4-D tensor type ([`Tensor`]) laid out as
//!   `(batch, heads, rows, cols)` — the `B × H × N × E` layout used throughout
//!   the paper,
//! * the numerical kernels attention is built from ([`matmul`], [`softmax`]),
//!   including the *online* (streaming) softmax used by FuseMax-style
//!   decompositions,
//! * a reference attention implementation ([`attention::reference_attention`]),
//! * tiled numerical executors mirroring Algorithms 1–4 of the paper and each
//!   baseline's blocking structure ([`tiled`]),
//! * KV-cache streaming for autoregressive decode ([`decode`]): an
//!   appendable per-session [`decode::KvCache`] plus the incremental
//!   [`decode::decode_attention`] kernel — a single-query online-softmax
//!   sweep over the cached rows, `O(t)` per step instead of the `O(t²)`
//!   full-prefill recompute, pinned step-by-step against
//!   [`tiled::fused_online_attention`] by a differential test harness, with
//!   grouped-query/multi-query head sharing (`kv_heads ≤ heads`,
//!   [`decode::KvCache::grouped`]),
//! * block-granular (paged, vLLM-style) KV storage ([`paged`]): a shared
//!   [`paged::KvBlockPool`] block allocator plus per-session
//!   [`paged::PagedKvCache`] block tables and the
//!   [`paged::decode_attention_paged`] kernel, bit-identical to the
//!   contiguous decode path (see the module docs for the block-table layout
//!   invariants), and
//! * the golden-data checker ([`golden`]) and deterministic input generation
//!   ([`init`]).
//!
//! The crate is deliberately dependency-light (`rand` for input generation,
//! `rayon` for the per-`(batch, head)` kernel fan-out) and uses `f32`
//! arithmetic with an `f16` *storage* emulation ([`half`]) for footprint
//! analyses.
//!
//! ## f16 KV storage layout
//!
//! Compute is always `f32`; KV-cache *storage* is selectable per cache via
//! [`half::KvDtype`]. Under `KvDtype::F16` both the contiguous
//! [`decode::KvCache`] and the paged [`paged::KvBlockPool`] keep their K/V
//! rows as raw binary16 bit patterns (`u16`, same `kv_heads × tokens × embed`
//! row-major layout as the `f32` arenas — 2 bytes per element instead of 4).
//! Rows are written through the saturating converter
//! [`half::f32_to_f16_bits_saturating`] (finite overflow clamps to
//! ±[`half::F16_MAX`] so one outsized logit cannot poison a session's softmax
//! with `inf`) and widened back to `f32` a row tile at a time inside the
//! decode sweep via [`simd::f16_to_f32_slice`] — the point where a device DMA
//! engine would expand the stream. Storage accounting (`kv_bytes`,
//! `block_bytes`, the serve engine's budget charging) scales by
//! `KvDtype::element_bytes`, so f16 sessions charge exactly half the bytes of
//! f32 ones.
//!
//! ## Slice-view invariants
//!
//! All kernels are built on contiguous views of the row-major
//! `(B, H, rows, cols)` storage, and rely on these invariants:
//!
//! 1. **Rows are contiguous.** `Tensor::row(b, h, r)` is exactly
//!    `data[offset(b, h, r, 0) .. offset(b, h, r, 0) + cols]`; element
//!    `(b, h, r, c)` is `row(b, h, r)[c]`. There is no stride or padding.
//! 2. **`(batch, head)` matrices are contiguous.** `Tensor::slice(b, h)` is
//!    the `rows × cols` row-major matrix of that slice, and the full storage
//!    is the concatenation of the `B · H` matrices in `(b, h)` order — which
//!    is what lets kernels partition `data_mut()` into disjoint
//!    `rows * cols` chunks and process them in parallel.
//! 3. **Kernels never index per element on the hot path.** Inner loops are
//!    dot products ([`matmul::dot`]), AXPY updates ([`matmul::axpy`]) and
//!    single-row softmax passes ([`softmax::softmax_row`]) over `&[f32]`,
//!    which bounds-check once per row and run on the explicitly vectorized
//!    [`simd`] kernels. The scalar element accessors (`get`/`set`) remain
//!    for tests and one-off edits.
//! 4. **Accumulation order is fixed but not left-to-right.** Reductions
//!    follow the explicit 8-lane contract of the [`simd`] module (eight
//!    independent accumulator lanes, scalar tail, fixed lane-reduction
//!    order), so results are deterministic run-to-run *and* bit-identical
//!    between the runtime-dispatched SIMD backends and the scalar fallback —
//!    yet may differ from a strict left-to-right sum by `f32` rounding;
//!    golden checks compare against [`golden::Tolerance`], never bit
//!    equality.
//!
//! ## Example
//!
//! ```
//! use mas_tensor::{init::random_qkv, attention::reference_attention};
//!
//! // A tiny attention layer: batch 1, 2 heads, 8 tokens, embedding 4.
//! let (q, k, v) = random_qkv(1, 2, 8, 4, 42);
//! let o = reference_attention(&q, &k, &v).unwrap();
//! assert_eq!(o.shape().dims(), [1, 2, 8, 4]);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod attention;
pub mod decode;
pub mod dtype;
pub mod error;
pub mod golden;
pub mod half;
pub mod init;
pub mod matmul;
pub mod paged;
pub mod shape;
pub mod simd;
pub mod softmax;
pub mod tensor;
pub mod tiled;

pub use dtype::DType;
pub use error::{Result, TensorError};
pub use shape::Shape;
pub use tensor::Tensor;
