//! Row-wise softmax kernels.
//!
//! The paper applies softmax "to every row of `QKᵀ`" (§4, Eq. 2) and stresses
//! that softmax's row-wise nature drives the row-granularity tiling of `C`
//! and `P` (Algorithm 3). Two implementations are provided:
//!
//! * [`softmax_rows`] — the classic max/exp-sum/normalize kernel applied
//!   independently to every row (what the VEC unit executes per tile). Each
//!   pass runs over the contiguous row slice ([`softmax_row`]), and the
//!   `(batch, head)` slices fan out across threads.
//! * [`OnlineSoftmax`] — a streaming (single-pass over chunks) softmax with
//!   running max/denominator correction, the decomposition FuseMax-style
//!   pipelines use when the row arrives in pieces.
//!
//! Both produce identical results up to floating-point rounding; property
//! tests assert this equivalence.

use rayon::prelude::*;

use crate::error::{Result, TensorError};
use crate::simd;
use crate::tensor::Tensor;

/// Maximum value of a slice (`-inf` when empty), dispatched to the
/// runtime-selected SIMD backend.
#[must_use]
#[inline]
pub fn slice_max(x: &[f32]) -> f32 {
    simd::slice_max(x)
}

/// Numerically stable softmax of one row: `dst[j] = exp(src[j] - max(src)) /
/// Σ exp(src - max(src))`. `src` and `dst` may not alias; use
/// [`softmax_row_in_place`] to normalize a row in its own storage.
///
/// The three row passes run on the dispatched [`crate::simd`] kernels: a
/// vector max, an elementwise `exp` (shared scalar code in every backend),
/// and an 8-lane denominator sum followed by a vector normalize — so SIMD
/// and scalar dispatch produce bit-identical probabilities.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn softmax_row(src: &[f32], dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len(), "softmax row length mismatch");
    let row_max = simd::slice_max(src);
    for (d, &x) in dst.iter_mut().zip(src) {
        *d = (x - row_max).exp();
    }
    let denom = simd::sum8(dst);
    simd::scale(1.0 / denom, dst);
}

/// In-place variant of [`softmax_row`].
#[inline]
pub fn softmax_row_in_place(row: &mut [f32]) {
    let row_max = simd::slice_max(row);
    for v in row.iter_mut() {
        *v = (*v - row_max).exp();
    }
    let denom = simd::sum8(row);
    simd::scale(1.0 / denom, row);
}

/// Applies softmax to every row (`cols` dimension) of every `(batch, head)`
/// slice of `t`, returning a new tensor of identical shape.
///
/// The kernel uses the numerically stable max-subtraction form:
/// `softmax(x)_j = exp(x_j - max(x)) / Σ_k exp(x_k - max(x))`, computed per
/// contiguous row slice; `(batch, head)` slices are processed in parallel.
#[must_use]
pub fn softmax_rows(t: &Tensor) -> Tensor {
    let [_, h_n, r_n, c_n] = t.shape().dims();
    let mut out = Tensor::zeros(*t.shape());
    out.data_mut()
        .par_chunks_mut(r_n * c_n)
        .enumerate()
        .for_each(|(s, dst_mat)| {
            let (bi, hi) = (s / h_n, s % h_n);
            for (r, dst_row) in dst_mat.chunks_exact_mut(c_n).enumerate() {
                softmax_row(t.row(bi, hi, r), dst_row);
            }
        });
    out
}

/// Streaming softmax over one logical row delivered in chunks.
///
/// This mirrors the "online softmax" decomposition used by FuseMax-style
/// pipelines: as each chunk of logits arrives, the running maximum `m` and
/// running denominator `d` are updated, and previously emitted unnormalized
/// weights are rescaled by `exp(m_old - m_new)`. After all chunks have been
/// absorbed, [`OnlineSoftmax::finalize`] produces the normalized
/// probabilities for the whole row. Every pass (chunk max, history rescale,
/// weight emission) runs over contiguous slices.
///
/// ```
/// use mas_tensor::softmax::OnlineSoftmax;
///
/// let mut online = OnlineSoftmax::new();
/// online.absorb(&[1.0, 2.0]);
/// online.absorb(&[3.0]);
/// let p = online.finalize();
/// let total: f32 = p.iter().sum();
/// assert!((total - 1.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct OnlineSoftmax {
    running_max: f32,
    running_denom: f32,
    /// Unnormalized weights emitted so far, already referenced to
    /// `running_max`.
    weights: Vec<f32>,
}

impl Default for OnlineSoftmax {
    fn default() -> Self {
        Self::new()
    }
}

impl OnlineSoftmax {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self {
            running_max: f32::NEG_INFINITY,
            running_denom: 0.0,
            weights: Vec::new(),
        }
    }

    /// Absorbs the next chunk of logits for this row.
    pub fn absorb(&mut self, chunk: &[f32]) {
        if chunk.is_empty() {
            return;
        }
        let chunk_max = simd::slice_max(chunk);
        let new_max = self.running_max.max(chunk_max);
        // Rescale history to the new reference maximum (one slice pass).
        if self.running_max.is_finite() && new_max > self.running_max {
            let correction = (self.running_max - new_max).exp();
            self.running_denom *= correction;
            simd::scale(correction, &mut self.weights);
        }
        self.running_max = new_max;
        // Emit the chunk's weights (one slice pass over the new tail).
        let start = self.weights.len();
        self.weights
            .extend(chunk.iter().map(|&x| (x - new_max).exp()));
        self.running_denom += simd::sum8(&self.weights[start..]);
    }

    /// Number of logits absorbed so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether any logits have been absorbed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Current running maximum (`-inf` before any chunk is absorbed).
    #[must_use]
    pub fn running_max(&self) -> f32 {
        self.running_max
    }

    /// Produces the normalized probabilities for the absorbed row.
    ///
    /// Returns an empty vector if nothing was absorbed.
    #[must_use]
    pub fn finalize(&self) -> Vec<f32> {
        if self.weights.is_empty() {
            return Vec::new();
        }
        let inv = 1.0 / self.running_denom;
        self.weights.iter().map(|&w| w * inv).collect()
    }
}

/// Applies softmax to every row of `t` using the online (chunked) algorithm
/// with the given chunk width, primarily to validate that the streaming
/// decomposition is exact. Chunks are borrowed directly from the contiguous
/// row slices — no per-element staging buffer.
///
/// # Errors
///
/// Returns [`TensorError::InvalidTile`] if `chunk` is zero.
pub fn softmax_rows_online(t: &Tensor, chunk: usize) -> Result<Tensor> {
    if chunk == 0 {
        return Err(TensorError::InvalidTile {
            dim: "softmax chunk",
            tile: chunk,
            extent: t.shape().cols(),
        });
    }
    let [_, h_n, r_n, c_n] = t.shape().dims();
    let mut out = Tensor::zeros(*t.shape());
    out.data_mut()
        .par_chunks_mut(r_n * c_n)
        .enumerate()
        .for_each(|(s, dst_mat)| {
            let (bi, hi) = (s / h_n, s % h_n);
            for (r, dst_row) in dst_mat.chunks_exact_mut(c_n).enumerate() {
                let mut online = OnlineSoftmax::new();
                for piece in t.row(bi, hi, r).chunks(chunk) {
                    online.absorb(piece);
                }
                dst_row.copy_from_slice(&online.finalize());
            }
        });
    Ok(out)
}

/// The pre-slice scalar softmax, retained verbatim as the oracle for the
/// equivalence tests of the slice kernels.
#[cfg(test)]
pub(crate) mod naive {
    use super::*;

    /// Scalar per-element three-pass softmax (the seed implementation).
    pub fn softmax_rows(t: &Tensor) -> Tensor {
        let [b_n, h_n, r_n, c_n] = t.shape().dims();
        let mut out = Tensor::zeros(*t.shape());
        for b in 0..b_n {
            for h in 0..h_n {
                for r in 0..r_n {
                    let mut row_max = f32::NEG_INFINITY;
                    for c in 0..c_n {
                        row_max = row_max.max(t.get(b, h, r, c).expect("index in range"));
                    }
                    let mut denom = 0.0f32;
                    let mut exps = vec![0.0f32; c_n];
                    for (c, e) in exps.iter_mut().enumerate() {
                        let x = t.get(b, h, r, c).expect("index in range");
                        *e = (x - row_max).exp();
                        denom += *e;
                    }
                    for (c, e) in exps.iter().enumerate() {
                        out.set(b, h, r, c, e / denom).expect("index in range");
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::{adversarial_logits, random_tensor};
    use crate::shape::Shape;

    fn shape(b: usize, h: usize, r: usize, c: usize) -> Shape {
        Shape::new(b, h, r, c).unwrap()
    }

    #[test]
    fn rows_sum_to_one() {
        let t = random_tensor(shape(2, 3, 8, 16), 4.0, 11);
        let p = softmax_rows(&t);
        let [bn, hn, rn, cn] = p.shape().dims();
        for b in 0..bn {
            for h in 0..hn {
                for r in 0..rn {
                    let sum: f32 = (0..cn).map(|c| p.get(b, h, r, c).unwrap()).sum();
                    assert!((sum - 1.0).abs() < 1e-5, "row sum {sum}");
                }
            }
        }
    }

    #[test]
    fn slice_softmax_matches_naive_oracle() {
        for (r, c) in [(1, 1), (3, 5), (8, 16), (5, 33)] {
            let t = random_tensor(shape(2, 2, r, c), 6.0, 31);
            let fast = softmax_rows(&t);
            let slow = naive::softmax_rows(&t);
            assert!(
                fast.max_abs_diff(&slow).unwrap() < 1e-6,
                "softmax ({r},{c}) diverged from the oracle"
            );
        }
    }

    #[test]
    fn in_place_row_matches_out_of_place() {
        let t = random_tensor(shape(1, 1, 1, 37), 5.0, 17);
        let src = t.data().to_vec();
        let mut dst = vec![0.0f32; src.len()];
        softmax_row(&src, &mut dst);
        let mut inplace = src.clone();
        softmax_row_in_place(&mut inplace);
        for (a, b) in dst.iter().zip(&inplace) {
            assert!((a - b).abs() < 1e-7);
        }
    }

    #[test]
    fn uniform_logits_give_uniform_probabilities() {
        let t = Tensor::full(shape(1, 1, 2, 4), 3.0);
        let p = softmax_rows(&t);
        for c in 0..4 {
            assert!((p.get(0, 0, 0, c).unwrap() - 0.25).abs() < 1e-6);
        }
    }

    #[test]
    fn large_magnitude_logits_are_stable() {
        let t = adversarial_logits(shape(1, 2, 4, 8), 2000.0);
        let p = softmax_rows(&t);
        assert!(p.data().iter().all(|v| v.is_finite()));
        assert!(p.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn online_matches_naive_for_various_chunks() {
        let t = random_tensor(shape(1, 2, 5, 17), 3.0, 21);
        let reference = softmax_rows(&t);
        for chunk in [1, 2, 3, 5, 16, 17, 64] {
            let online = softmax_rows_online(&t, chunk).unwrap();
            assert!(
                reference.max_abs_diff(&online).unwrap() < 1e-5,
                "chunk {chunk} diverged"
            );
        }
    }

    #[test]
    fn online_zero_chunk_rejected() {
        let t = random_tensor(shape(1, 1, 2, 4), 1.0, 1);
        assert!(softmax_rows_online(&t, 0).is_err());
    }

    #[test]
    fn online_accumulator_tracks_length_and_max() {
        let mut o = OnlineSoftmax::new();
        assert!(o.is_empty());
        o.absorb(&[1.0, 5.0]);
        o.absorb(&[]);
        o.absorb(&[-2.0]);
        assert_eq!(o.len(), 3);
        assert_eq!(o.running_max(), 5.0);
        let p = o.finalize();
        assert_eq!(p.len(), 3);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        // The largest logit gets the largest probability.
        assert!(p[1] > p[0] && p[1] > p[2]);
    }

    #[test]
    fn empty_online_finalizes_to_empty() {
        let o = OnlineSoftmax::new();
        assert!(o.finalize().is_empty());
    }
}
