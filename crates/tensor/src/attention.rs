//! Reference (unfused) exact attention.
//!
//! This is the "Layer-Wise" computation of the paper's Eq. 1–3 with the whole
//! intermediate matrices materialized:
//!
//! ```text
//! C = Q Kᵀ          (B × H × N × N)
//! P = softmax(C)    (row-wise)
//! O = P V           (B × H × N × E)
//! ```
//!
//! Every tiled dataflow in [`crate::tiled`] is checked against this function —
//! the "golden data check" of §5.1.

use crate::error::{Result, TensorError};
use crate::matmul::{matmul_nn, matmul_nt, scale_in_place};
use crate::softmax::softmax_rows;
use crate::tensor::Tensor;

/// Computes exact attention output `O = softmax(Q Kᵀ) · V`.
///
/// `q`, `k`, `v` must all have the same `B × H × N × E` shape. No logit
/// scaling is applied (the paper's formulation, Eq. 1–3, omits the
/// `1/sqrt(E)` factor; use [`reference_attention_scaled`] when a scaled
/// variant is wanted).
///
/// # Errors
///
/// Returns a [`TensorError`] if the operand shapes are inconsistent.
pub fn reference_attention(q: &Tensor, k: &Tensor, v: &Tensor) -> Result<Tensor> {
    check_same_shape(q, k, "reference_attention(q, k)")?;
    check_same_shape(k, v, "reference_attention(k, v)")?;
    let c = matmul_nt(q, k)?;
    let p = softmax_rows(&c);
    matmul_nn(&p, v)
}

/// Computes scaled-dot-product attention `O = softmax(Q Kᵀ / sqrt(E)) · V`.
///
/// # Errors
///
/// Returns a [`TensorError`] if the operand shapes are inconsistent.
pub fn reference_attention_scaled(q: &Tensor, k: &Tensor, v: &Tensor) -> Result<Tensor> {
    check_same_shape(q, k, "reference_attention_scaled(q, k)")?;
    check_same_shape(k, v, "reference_attention_scaled(k, v)")?;
    let e = q.shape().cols() as f32;
    let mut c = matmul_nt(q, k)?;
    scale_in_place(&mut c, 1.0 / e.sqrt());
    let p = softmax_rows(&c);
    matmul_nn(&p, v)
}

/// Returns the intermediate attention matrices `(C, P, O)` for inspection.
///
/// Useful in tests that need to compare tiled intermediates (e.g. the on-chip
/// `C_i`/`P_i` blocks of Algorithms 2–3) and not only the final output.
///
/// # Errors
///
/// Returns a [`TensorError`] if the operand shapes are inconsistent.
pub fn reference_attention_intermediates(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
) -> Result<(Tensor, Tensor, Tensor)> {
    check_same_shape(q, k, "reference_attention_intermediates(q, k)")?;
    check_same_shape(k, v, "reference_attention_intermediates(k, v)")?;
    let c = matmul_nt(q, k)?;
    let p = softmax_rows(&c);
    let o = matmul_nn(&p, v)?;
    Ok((c, p, o))
}

fn check_same_shape(a: &Tensor, b: &Tensor, op: &'static str) -> Result<()> {
    if a.shape() != b.shape() {
        return Err(TensorError::ShapeMismatch {
            left: *a.shape(),
            right: *b.shape(),
            op,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::random_qkv;
    use crate::shape::Shape;

    #[test]
    fn output_shape_matches_input() {
        let (q, k, v) = random_qkv(2, 3, 8, 4, 7);
        let o = reference_attention(&q, &k, &v).unwrap();
        assert_eq!(o.shape(), q.shape());
    }

    #[test]
    fn attention_with_uniform_scores_averages_values() {
        // If Q is all zeros, every logit is 0, softmax is uniform, and the
        // output is the mean of the value rows.
        let shape = Shape::new(1, 1, 4, 2).unwrap();
        let q = Tensor::zeros(shape);
        let k = Tensor::zeros(shape);
        let v = Tensor::from_fn(shape, |_, _, r, c| (r * 2 + c) as f32);
        let o = reference_attention(&q, &k, &v).unwrap();
        // Mean over rows of v: column 0 -> (0+2+4+6)/4 = 3, column 1 -> 4.
        for r in 0..4 {
            assert!((o.get(0, 0, r, 0).unwrap() - 3.0).abs() < 1e-5);
            assert!((o.get(0, 0, r, 1).unwrap() - 4.0).abs() < 1e-5);
        }
    }

    #[test]
    fn one_hot_attention_selects_a_value_row() {
        // Make one key hugely aligned with every query so softmax is ~one-hot.
        let shape = Shape::new(1, 1, 3, 2).unwrap();
        let q = Tensor::full(shape, 10.0);
        let k = Tensor::from_fn(shape, |_, _, r, _| if r == 1 { 10.0 } else { -10.0 });
        let v = Tensor::from_fn(shape, |_, _, r, c| (r * 10 + c) as f32);
        let o = reference_attention(&q, &k, &v).unwrap();
        for r in 0..3 {
            assert!((o.get(0, 0, r, 0).unwrap() - 10.0).abs() < 1e-3);
            assert!((o.get(0, 0, r, 1).unwrap() - 11.0).abs() < 1e-3);
        }
    }

    #[test]
    fn scaled_and_unscaled_differ_but_are_both_valid() {
        let (q, k, v) = random_qkv(1, 2, 8, 16, 3);
        let o1 = reference_attention(&q, &k, &v).unwrap();
        let o2 = reference_attention_scaled(&q, &k, &v).unwrap();
        assert!(o1.max_abs_diff(&o2).unwrap() > 0.0);
        assert!(o1.data().iter().all(|v| v.is_finite()));
        assert!(o2.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn intermediates_are_consistent() {
        let (q, k, v) = random_qkv(1, 1, 6, 4, 5);
        let (c, p, o) = reference_attention_intermediates(&q, &k, &v).unwrap();
        assert_eq!(c.shape().dims(), [1, 1, 6, 6]);
        assert_eq!(p.shape().dims(), [1, 1, 6, 6]);
        let direct = reference_attention(&q, &k, &v).unwrap();
        assert!(o.max_abs_diff(&direct).unwrap() < 1e-6);
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let (q, k, _) = random_qkv(1, 1, 4, 4, 1);
        let v_bad = Tensor::zeros(Shape::new(1, 1, 4, 8).unwrap());
        assert!(reference_attention(&q, &k, &v_bad).is_err());
    }
}
