//! Deterministic input generation for attention workloads.
//!
//! The paper's workloads are defined entirely by their layer shapes; the
//! numerical values only matter for the golden-data exactness check (§5.1).
//! We therefore generate `Q`, `K`, `V` from a seeded RNG so that every
//! experiment is reproducible bit-for-bit across runs and machines.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::shape::Shape;
use crate::tensor::Tensor;

/// Generates a tensor with values drawn uniformly from `[-scale, scale)`.
///
/// The generator is [`StdRng`] seeded with `seed`, so results are
/// reproducible across platforms.
#[must_use]
pub fn random_tensor(shape: Shape, scale: f32, seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let data = (0..shape.volume())
        .map(|_| rng.gen_range(-scale..scale))
        .collect();
    Tensor::from_vec(shape, data).expect("generated data length matches shape volume")
}

/// Generates a `(Q, K, V)` triple for an attention layer of shape
/// `B × H × N × E`, with values scaled like typical post-layernorm
/// activations (roughly unit range, further scaled by `1/sqrt(E)` for `Q`
/// so logits stay in a numerically comfortable range).
///
/// Each operand uses a distinct stream derived from `seed` so that `Q`, `K`
/// and `V` are mutually independent.
///
/// # Panics
///
/// Panics if any dimension is zero (attention layers always have non-zero
/// dimensions; synthetic sweeps should filter degenerate shapes earlier).
#[must_use]
pub fn random_qkv(
    batch: usize,
    heads: usize,
    seq: usize,
    embed: usize,
    seed: u64,
) -> (Tensor, Tensor, Tensor) {
    let shape = Shape::new(batch, heads, seq, embed).expect("non-zero attention dimensions");
    let q_scale = 1.0 / (embed as f32).sqrt();
    let q = random_tensor(shape, q_scale, seed.wrapping_mul(3).wrapping_add(1));
    let k = random_tensor(shape, 1.0, seed.wrapping_mul(3).wrapping_add(2));
    let v = random_tensor(shape, 1.0, seed.wrapping_mul(3).wrapping_add(3));
    (q, k, v)
}

/// Generates a tensor whose values form an adversarial pattern for softmax:
/// alternating large positive/negative magnitudes. Used by tests to exercise
/// the max-subtraction path of the softmax kernels.
#[must_use]
pub fn adversarial_logits(shape: Shape, magnitude: f32) -> Tensor {
    Tensor::from_fn(shape, |b, h, r, c| {
        let sign = if (b + h + r + c) % 2 == 0 { 1.0 } else { -1.0 };
        sign * magnitude * (1.0 + (c as f32) / (shape.cols() as f32))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_tensor_is_deterministic() {
        let s = Shape::new(1, 2, 4, 8).unwrap();
        let a = random_tensor(s, 1.0, 7);
        let b = random_tensor(s, 1.0, 7);
        assert_eq!(a, b);
        let c = random_tensor(s, 1.0, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn random_tensor_respects_scale() {
        let s = Shape::new(1, 1, 16, 16).unwrap();
        let t = random_tensor(s, 0.25, 3);
        assert!(t.max_abs() <= 0.25);
        assert!(t.max_abs() > 0.0);
    }

    #[test]
    fn qkv_are_independent_and_shaped() {
        let (q, k, v) = random_qkv(2, 4, 16, 8, 99);
        assert_eq!(q.shape().dims(), [2, 4, 16, 8]);
        assert_eq!(k.shape().dims(), [2, 4, 16, 8]);
        assert_eq!(v.shape().dims(), [2, 4, 16, 8]);
        assert_ne!(q, k);
        assert_ne!(k, v);
    }

    #[test]
    fn qkv_deterministic_across_calls() {
        let (q1, k1, v1) = random_qkv(1, 2, 8, 4, 5);
        let (q2, k2, v2) = random_qkv(1, 2, 8, 4, 5);
        assert_eq!(q1, q2);
        assert_eq!(k1, k2);
        assert_eq!(v1, v2);
    }

    #[test]
    fn adversarial_logits_alternate_sign() {
        let s = Shape::new(1, 1, 2, 4).unwrap();
        let t = adversarial_logits(s, 50.0);
        assert!(t.get(0, 0, 0, 0).unwrap() > 0.0);
        assert!(t.get(0, 0, 0, 1).unwrap() < 0.0);
        assert!(t.max_abs() >= 50.0);
    }
}
