//! Batched matrix multiplication kernels.
//!
//! Two entry points are provided:
//!
//! * [`matmul_nt`] — `A · Bᵀ`, the form of the first attention MatMul
//!   `C = Q Kᵀ` (both operands are stored `N × E`).
//! * [`matmul_nn`] — `A · B`, the form of the second MatMul `O = P V`.
//!
//! Both kernels operate per `(batch, head)` slice and accept an accumulation
//! flag so that tiled executors can accumulate partial products over the
//! contracted dimension exactly as Algorithm 4 of the paper does
//! (`O_i = O_i + P_{i,j} V_{i,j}`).

use crate::error::{Result, TensorError};
use crate::shape::Shape;
use crate::tensor::Tensor;

/// Computes `out = A · Bᵀ` per `(batch, head)` slice.
///
/// `a` has shape `B × H × M × K` and `b` has shape `B × H × N × K`; the result
/// has shape `B × H × M × N`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the batch/head dimensions differ
/// and [`TensorError::MatmulDimMismatch`] if the contracted dimensions differ.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (ba, ha, m, ka) = dims(a);
    let (bb, hb, n, kb) = dims(b);
    check_batch_heads(a, b, ba, ha, bb, hb, "matmul_nt")?;
    if ka != kb {
        return Err(TensorError::MatmulDimMismatch {
            left_cols: ka,
            right_rows: kb,
        });
    }
    let out_shape = Shape::new(ba, ha, m, n)?;
    let mut out = Tensor::zeros(out_shape);
    for bi in 0..ba {
        for hi in 0..ha {
            for i in 0..m {
                for j in 0..n {
                    let mut acc = 0.0f32;
                    for p in 0..ka {
                        let av = a.get(bi, hi, i, p)?;
                        let bv = b.get(bi, hi, j, p)?;
                        acc += av * bv;
                    }
                    out.set(bi, hi, i, j, acc)?;
                }
            }
        }
    }
    Ok(out)
}

/// Computes `out = A · B` per `(batch, head)` slice, optionally accumulating
/// into an existing output.
///
/// `a` has shape `B × H × M × K` and `b` has shape `B × H × K × N`; the result
/// has shape `B × H × M × N`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] / [`TensorError::MatmulDimMismatch`]
/// on inconsistent operand shapes.
pub fn matmul_nn(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (ba, ha, m, _) = dims(a);
    let (_, _, _, n) = dims(b);
    let out_shape = Shape::new(ba, ha, m, n)?;
    let mut out = Tensor::zeros(out_shape);
    matmul_nn_acc(a, b, &mut out)?;
    Ok(out)
}

/// Computes `out += A · B` per `(batch, head)` slice, accumulating into `out`.
///
/// This is the primitive used by the tiled executors to accumulate partial
/// `P_{i,j} V_{i,j}` products (Algorithm 4, line 9).
///
/// # Errors
///
/// Returns shape errors as in [`matmul_nn`]; `out` must have shape
/// `B × H × M × N`.
pub fn matmul_nn_acc(a: &Tensor, b: &Tensor, out: &mut Tensor) -> Result<()> {
    let (ba, ha, m, ka) = dims(a);
    let (bb, hb, kb, n) = dims(b);
    check_batch_heads(a, b, ba, ha, bb, hb, "matmul_nn")?;
    if ka != kb {
        return Err(TensorError::MatmulDimMismatch {
            left_cols: ka,
            right_rows: kb,
        });
    }
    let expected = Shape::new(ba, ha, m, n)?;
    if *out.shape() != expected {
        return Err(TensorError::ShapeMismatch {
            left: *out.shape(),
            right: expected,
            op: "matmul_nn_acc output",
        });
    }
    for bi in 0..ba {
        for hi in 0..ha {
            for i in 0..m {
                for j in 0..n {
                    let mut acc = out.get(bi, hi, i, j)?;
                    for p in 0..ka {
                        acc += a.get(bi, hi, i, p)? * b.get(bi, hi, p, j)?;
                    }
                    out.set(bi, hi, i, j, acc)?;
                }
            }
        }
    }
    Ok(())
}

/// Scales every element of a tensor by `s` (used for the `1/sqrt(E)` logit
/// scaling applied by some callers before softmax).
#[must_use]
pub fn scale(t: &Tensor, s: f32) -> Tensor {
    let mut out = t.clone();
    for v in out.data_mut() {
        *v *= s;
    }
    out
}

fn dims(t: &Tensor) -> (usize, usize, usize, usize) {
    let [b, h, r, c] = t.shape().dims();
    (b, h, r, c)
}

#[allow(clippy::too_many_arguments)]
fn check_batch_heads(
    a: &Tensor,
    b: &Tensor,
    ba: usize,
    ha: usize,
    bb: usize,
    hb: usize,
    op: &'static str,
) -> Result<()> {
    if ba != bb || ha != hb {
        return Err(TensorError::ShapeMismatch {
            left: *a.shape(),
            right: *b.shape(),
            op,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::random_tensor;

    fn shape(b: usize, h: usize, r: usize, c: usize) -> Shape {
        Shape::new(b, h, r, c).unwrap()
    }

    #[test]
    fn matmul_nt_identity_like() {
        // A 2x2 identity times itself transposed is the identity.
        let a = Tensor::from_vec(shape(1, 1, 2, 2), vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        let out = matmul_nt(&a, &a).unwrap();
        assert_eq!(out.data(), &[1.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn matmul_nt_known_values() {
        // A = [[1,2],[3,4]], B = [[5,6],[7,8]]  =>  A·Bᵀ = [[17,23],[39,53]]
        let a = Tensor::from_vec(shape(1, 1, 2, 2), vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Tensor::from_vec(shape(1, 1, 2, 2), vec![5.0, 6.0, 7.0, 8.0]).unwrap();
        let out = matmul_nt(&a, &b).unwrap();
        assert_eq!(out.data(), &[17.0, 23.0, 39.0, 53.0]);
    }

    #[test]
    fn matmul_nn_known_values() {
        // A = [[1,2],[3,4]], B = [[5,6],[7,8]]  =>  A·B = [[19,22],[43,50]]
        let a = Tensor::from_vec(shape(1, 1, 2, 2), vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Tensor::from_vec(shape(1, 1, 2, 2), vec![5.0, 6.0, 7.0, 8.0]).unwrap();
        let out = matmul_nn(&a, &b).unwrap();
        assert_eq!(out.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_nn_acc_accumulates() {
        let a = Tensor::from_vec(shape(1, 1, 1, 2), vec![1.0, 1.0]).unwrap();
        let b = Tensor::from_vec(shape(1, 1, 2, 1), vec![2.0, 3.0]).unwrap();
        let mut out = Tensor::full(shape(1, 1, 1, 1), 10.0);
        matmul_nn_acc(&a, &b, &mut out).unwrap();
        assert_eq!(out.data(), &[15.0]);
    }

    #[test]
    fn nt_equals_nn_with_manual_transpose() {
        let a = random_tensor(shape(2, 2, 3, 4), 1.0, 1);
        let b = random_tensor(shape(2, 2, 5, 4), 1.0, 2);
        // Manually transpose b: B^T has shape (2,2,4,5).
        let bt = Tensor::from_fn(shape(2, 2, 4, 5), |bi, hi, r, c| {
            b.get(bi, hi, c, r).unwrap()
        });
        let via_nt = matmul_nt(&a, &b).unwrap();
        let via_nn = matmul_nn(&a, &bt).unwrap();
        assert!(via_nt.max_abs_diff(&via_nn).unwrap() < 1e-5);
    }

    #[test]
    fn mismatched_inner_dims_error() {
        let a = Tensor::zeros(shape(1, 1, 2, 3));
        let b = Tensor::zeros(shape(1, 1, 2, 4));
        assert!(matches!(
            matmul_nt(&a, &b),
            Err(TensorError::MatmulDimMismatch { .. })
        ));
    }

    #[test]
    fn mismatched_batch_heads_error() {
        let a = Tensor::zeros(shape(1, 2, 2, 3));
        let b = Tensor::zeros(shape(1, 3, 2, 3));
        assert!(matches!(
            matmul_nt(&a, &b),
            Err(TensorError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn scale_multiplies_every_element() {
        let a = Tensor::from_vec(shape(1, 1, 1, 3), vec![1.0, -2.0, 4.0]).unwrap();
        let s = scale(&a, 0.5);
        assert_eq!(s.data(), &[0.5, -1.0, 2.0]);
    }
}
