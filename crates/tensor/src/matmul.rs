//! Batched matrix multiplication kernels.
//!
//! Two entry points are provided:
//!
//! * [`matmul_nt`] — `A · Bᵀ`, the form of the first attention MatMul
//!   `C = Q Kᵀ` (both operands are stored `N × E`).
//! * [`matmul_nn`] — `A · B`, the form of the second MatMul `O = P V`.
//!
//! Both kernels operate per `(batch, head)` slice and accept an accumulation
//! flag so that tiled executors can accumulate partial products over the
//! contracted dimension exactly as Algorithm 4 of the paper does
//! (`O_i = O_i + P_{i,j} V_{i,j}`).
//!
//! ## Kernel structure
//!
//! The inner loops run on contiguous row slices (see [`Tensor::row`]): the NT
//! form reduces to batched row·row dot products ([`crate::simd::dot_many`])
//! and the NN form to rank-1 AXPY updates ([`axpy`]) in `ikj` order, both
//! executed by the runtime-dispatched [`crate::simd`] kernels. The
//! `(batch, head)` slices are independent and fan out across threads with
//! rayon. The pre-slice scalar implementations are retained under
//! `#[cfg(test)]` as oracles (see `naive` in the test module) and the
//! equivalence tests in this file pin the kernels to them.

use rayon::prelude::*;

use crate::error::{Result, TensorError};
use crate::shape::Shape;
use crate::simd;
use crate::tensor::Tensor;

/// Dot product of two equal-length slices using [`simd::LANES`] independent
/// accumulators, dispatched to the runtime-selected SIMD backend (see
/// [`crate::simd`] for the accumulation-order contract).
///
/// The accumulation order differs from a strict left-to-right sum, so results
/// may differ from a scalar loop by normal `f32` rounding (well inside the
/// golden-check tolerances) — but SIMD and scalar backends are bit-identical.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
#[inline]
pub fn dot(x: &[f32], y: &[f32]) -> f32 {
    simd::dot(x, y)
}

/// `out += a * x` over equal-length slices (the AXPY update of the `ikj`
/// matmul order), dispatched to the runtime-selected SIMD backend.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn axpy(a: f32, x: &[f32], out: &mut [f32]) {
    simd::axpy(a, x, out);
}

/// Slice-level NT kernel: `c[m × n] = a[m × k] · b[n × k]ᵀ`, row-major.
///
/// The `n` output dots of one `a` row run as one [`simd::dot_many`] batch:
/// the rows of `b` are contiguous at stride `k`, so the batch shares every
/// load of the `a` row across several independent accumulators.
#[inline]
pub(crate) fn matmul_nt_slice(a: &[f32], b: &[f32], c: &mut [f32], m: usize, n: usize, k: usize) {
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        simd::dot_many(a_row, &b[..n * k], c_row);
    }
}

/// Slice-level NN kernel in `ikj` order: `c[m × n] += a[m × k] · b[k × n]`.
#[inline]
pub(crate) fn matmul_nn_slice_acc(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (p, &av) in a_row.iter().enumerate() {
            axpy(av, &b[p * n..(p + 1) * n], c_row);
        }
    }
}

/// Computes `out = A · Bᵀ` per `(batch, head)` slice.
///
/// `a` has shape `B × H × M × K` and `b` has shape `B × H × N × K`; the result
/// has shape `B × H × M × N`. The `(batch, head)` slices are evaluated in
/// parallel.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the batch/head dimensions differ
/// and [`TensorError::MatmulDimMismatch`] if the contracted dimensions differ.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (ba, ha, m, ka) = dims(a);
    let (bb, hb, n, kb) = dims(b);
    check_batch_heads(a, b, ba, ha, bb, hb, "matmul_nt")?;
    if ka != kb {
        return Err(TensorError::MatmulDimMismatch {
            left_cols: ka,
            right_rows: kb,
        });
    }
    let out_shape = Shape::new(ba, ha, m, n)?;
    let mut out = Tensor::zeros(out_shape);
    out.data_mut()
        .par_chunks_mut(m * n)
        .enumerate()
        .for_each(|(s, c_mat)| {
            let (bi, hi) = (s / ha, s % ha);
            matmul_nt_slice(a.slice(bi, hi), b.slice(bi, hi), c_mat, m, n, ka);
        });
    Ok(out)
}

/// Computes `out = A · B` per `(batch, head)` slice, optionally accumulating
/// into an existing output.
///
/// `a` has shape `B × H × M × K` and `b` has shape `B × H × K × N`; the result
/// has shape `B × H × M × N`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] / [`TensorError::MatmulDimMismatch`]
/// on inconsistent operand shapes.
pub fn matmul_nn(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (ba, ha, m, _) = dims(a);
    let (_, _, _, n) = dims(b);
    let out_shape = Shape::new(ba, ha, m, n)?;
    let mut out = Tensor::zeros(out_shape);
    matmul_nn_acc(a, b, &mut out)?;
    Ok(out)
}

/// Computes `out += A · B` per `(batch, head)` slice, accumulating into `out`.
///
/// This is the primitive used by the tiled executors to accumulate partial
/// `P_{i,j} V_{i,j}` products (Algorithm 4, line 9). The `(batch, head)`
/// slices are evaluated in parallel.
///
/// # Errors
///
/// Returns shape errors as in [`matmul_nn`]; `out` must have shape
/// `B × H × M × N`.
pub fn matmul_nn_acc(a: &Tensor, b: &Tensor, out: &mut Tensor) -> Result<()> {
    let (ba, ha, m, ka) = dims(a);
    let (bb, hb, kb, n) = dims(b);
    check_batch_heads(a, b, ba, ha, bb, hb, "matmul_nn")?;
    if ka != kb {
        return Err(TensorError::MatmulDimMismatch {
            left_cols: ka,
            right_rows: kb,
        });
    }
    let expected = Shape::new(ba, ha, m, n)?;
    if *out.shape() != expected {
        return Err(TensorError::ShapeMismatch {
            left: *out.shape(),
            right: expected,
            op: "matmul_nn_acc output",
        });
    }
    out.data_mut()
        .par_chunks_mut(m * n)
        .enumerate()
        .for_each(|(s, c_mat)| {
            let (bi, hi) = (s / ha, s % ha);
            matmul_nn_slice_acc(a.slice(bi, hi), b.slice(bi, hi), c_mat, m, ka, n);
        });
    Ok(())
}

/// Scales every element of a tensor by `s` (used for the `1/sqrt(E)` logit
/// scaling applied by some callers before softmax).
#[must_use]
pub fn scale(t: &Tensor, s: f32) -> Tensor {
    let mut out = t.clone();
    scale_in_place(&mut out, s);
    out
}

/// Scales every element of `t` by `s` in place.
pub fn scale_in_place(t: &mut Tensor, s: f32) {
    for v in t.data_mut() {
        *v *= s;
    }
}

fn dims(t: &Tensor) -> (usize, usize, usize, usize) {
    let [b, h, r, c] = t.shape().dims();
    (b, h, r, c)
}

#[allow(clippy::too_many_arguments)]
fn check_batch_heads(
    a: &Tensor,
    b: &Tensor,
    ba: usize,
    ha: usize,
    bb: usize,
    hb: usize,
    op: &'static str,
) -> Result<()> {
    if ba != bb || ha != hb {
        return Err(TensorError::ShapeMismatch {
            left: *a.shape(),
            right: *b.shape(),
            op,
        });
    }
    Ok(())
}

/// The pre-slice scalar kernels, retained verbatim as oracles for the
/// equivalence tests of the vectorizable kernels.
#[cfg(test)]
pub(crate) mod naive {
    use super::*;

    /// Scalar per-element `A · Bᵀ` (the seed implementation).
    pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
        let (ba, ha, m, ka) = dims(a);
        let (_, _, n, _) = dims(b);
        let out_shape = Shape::new(ba, ha, m, n)?;
        let mut out = Tensor::zeros(out_shape);
        for bi in 0..ba {
            for hi in 0..ha {
                for i in 0..m {
                    for j in 0..n {
                        let mut acc = 0.0f32;
                        for p in 0..ka {
                            acc += a.get(bi, hi, i, p)? * b.get(bi, hi, j, p)?;
                        }
                        out.set(bi, hi, i, j, acc)?;
                    }
                }
            }
        }
        Ok(out)
    }

    /// Scalar per-element `out += A · B` (the seed implementation).
    pub fn matmul_nn_acc(a: &Tensor, b: &Tensor, out: &mut Tensor) -> Result<()> {
        let (ba, ha, m, ka) = dims(a);
        let (_, _, _, n) = dims(b);
        for bi in 0..ba {
            for hi in 0..ha {
                for i in 0..m {
                    for j in 0..n {
                        let mut acc = out.get(bi, hi, i, j)?;
                        for p in 0..ka {
                            acc += a.get(bi, hi, i, p)? * b.get(bi, hi, p, j)?;
                        }
                        out.set(bi, hi, i, j, acc)?;
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::random_tensor;

    fn shape(b: usize, h: usize, r: usize, c: usize) -> Shape {
        Shape::new(b, h, r, c).unwrap()
    }

    #[test]
    fn matmul_nt_identity_like() {
        // A 2x2 identity times itself transposed is the identity.
        let a = Tensor::from_vec(shape(1, 1, 2, 2), vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        let out = matmul_nt(&a, &a).unwrap();
        assert_eq!(out.data(), &[1.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn matmul_nt_known_values() {
        // A = [[1,2],[3,4]], B = [[5,6],[7,8]]  =>  A·Bᵀ = [[17,23],[39,53]]
        let a = Tensor::from_vec(shape(1, 1, 2, 2), vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Tensor::from_vec(shape(1, 1, 2, 2), vec![5.0, 6.0, 7.0, 8.0]).unwrap();
        let out = matmul_nt(&a, &b).unwrap();
        assert_eq!(out.data(), &[17.0, 23.0, 39.0, 53.0]);
    }

    #[test]
    fn matmul_nn_known_values() {
        // A = [[1,2],[3,4]], B = [[5,6],[7,8]]  =>  A·B = [[19,22],[43,50]]
        let a = Tensor::from_vec(shape(1, 1, 2, 2), vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Tensor::from_vec(shape(1, 1, 2, 2), vec![5.0, 6.0, 7.0, 8.0]).unwrap();
        let out = matmul_nn(&a, &b).unwrap();
        assert_eq!(out.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_nn_acc_accumulates() {
        let a = Tensor::from_vec(shape(1, 1, 1, 2), vec![1.0, 1.0]).unwrap();
        let b = Tensor::from_vec(shape(1, 1, 2, 1), vec![2.0, 3.0]).unwrap();
        let mut out = Tensor::full(shape(1, 1, 1, 1), 10.0);
        matmul_nn_acc(&a, &b, &mut out).unwrap();
        assert_eq!(out.data(), &[15.0]);
    }

    #[test]
    fn nt_equals_nn_with_manual_transpose() {
        let a = random_tensor(shape(2, 2, 3, 4), 1.0, 1);
        let b = random_tensor(shape(2, 2, 5, 4), 1.0, 2);
        // Manually transpose b: B^T has shape (2,2,4,5).
        let bt = Tensor::from_fn(shape(2, 2, 4, 5), |bi, hi, r, c| {
            b.get(bi, hi, c, r).unwrap()
        });
        let via_nt = matmul_nt(&a, &b).unwrap();
        let via_nn = matmul_nn(&a, &bt).unwrap();
        assert!(via_nt.max_abs_diff(&via_nn).unwrap() < 1e-5);
    }

    #[test]
    fn slice_nt_matches_naive_oracle() {
        // Dimensions straddle the DOT_LANES boundary (tail handling).
        for (m, n, k) in [(1, 1, 1), (3, 5, 7), (8, 8, 8), (13, 9, 17), (16, 32, 64)] {
            let a = random_tensor(shape(2, 3, m, k), 1.0, 11);
            let b = random_tensor(shape(2, 3, n, k), 1.0, 12);
            let fast = matmul_nt(&a, &b).unwrap();
            let slow = naive::matmul_nt(&a, &b).unwrap();
            let tol = 1e-4 * slow.max_abs().max(1.0);
            assert!(
                fast.max_abs_diff(&slow).unwrap() <= tol,
                "matmul_nt ({m},{n},{k}) diverged from the oracle"
            );
        }
    }

    #[test]
    fn slice_nn_acc_matches_naive_oracle() {
        for (m, k, n) in [(1, 1, 1), (3, 7, 5), (8, 8, 8), (13, 17, 9)] {
            let a = random_tensor(shape(1, 2, m, k), 1.0, 21);
            let b = random_tensor(shape(1, 2, k, n), 1.0, 22);
            let mut fast = random_tensor(shape(1, 2, m, n), 1.0, 23);
            let mut slow = fast.clone();
            matmul_nn_acc(&a, &b, &mut fast).unwrap();
            naive::matmul_nn_acc(&a, &b, &mut slow).unwrap();
            let tol = 1e-4 * slow.max_abs().max(1.0);
            assert!(
                fast.max_abs_diff(&slow).unwrap() <= tol,
                "matmul_nn_acc ({m},{k},{n}) diverged from the oracle"
            );
        }
    }

    #[test]
    fn dot_and_axpy_handle_lane_tails() {
        for len in [0, 1, 7, 8, 9, 16, 31] {
            let x: Vec<f32> = (0..len).map(|i| i as f32 * 0.5).collect();
            let y: Vec<f32> = (0..len).map(|i| 1.0 - i as f32 * 0.25).collect();
            let expected: f32 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
            assert!((dot(&x, &y) - expected).abs() <= 1e-4 * expected.abs().max(1.0));

            let mut out = vec![1.0f32; len];
            axpy(2.0, &x, &mut out);
            for (i, &o) in out.iter().enumerate() {
                assert!((o - (1.0 + 2.0 * x[i])).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn mismatched_inner_dims_error() {
        let a = Tensor::zeros(shape(1, 1, 2, 3));
        let b = Tensor::zeros(shape(1, 1, 2, 4));
        assert!(matches!(
            matmul_nt(&a, &b),
            Err(TensorError::MatmulDimMismatch { .. })
        ));
    }

    #[test]
    fn mismatched_batch_heads_error() {
        let a = Tensor::zeros(shape(1, 2, 2, 3));
        let b = Tensor::zeros(shape(1, 3, 2, 3));
        assert!(matches!(
            matmul_nt(&a, &b),
            Err(TensorError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn scale_multiplies_every_element() {
        let a = Tensor::from_vec(shape(1, 1, 1, 3), vec![1.0, -2.0, 4.0]).unwrap();
        let s = scale(&a, 0.5);
        assert_eq!(s.data(), &[0.5, -1.0, 2.0]);
        let mut b = a.clone();
        scale_in_place(&mut b, 0.5);
        assert_eq!(b.data(), s.data());
    }
}
