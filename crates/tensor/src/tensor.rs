//! Dense 4-D tensor storage with block (tile) extraction and insertion.

use serde::{Deserialize, Serialize};

use crate::error::{Result, TensorError};
use crate::shape::Shape;

/// A dense, row-major 4-D tensor of `f32` values.
///
/// The layout is `(batch, heads, rows, cols)`, matching the paper's
/// `B × H × N × E` operand convention. Arithmetic is always `f32`; reduced
/// precision is modelled separately (see [`crate::half`]) since the paper's
/// workloads use FP16 *storage* but the numerical comparisons in this
/// reproduction are made in single precision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    #[must_use]
    pub fn zeros(shape: Shape) -> Self {
        Self {
            shape,
            data: vec![0.0; shape.volume()],
        }
    }

    /// Creates a tensor filled with a constant value.
    #[must_use]
    pub fn full(shape: Shape, value: f32) -> Self {
        Self {
            shape,
            data: vec![value; shape.volume()],
        }
    }

    /// Creates a tensor from raw row-major data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DataLengthMismatch`] if `data.len()` does not
    /// equal the shape volume.
    pub fn from_vec(shape: Shape, data: Vec<f32>) -> Result<Self> {
        if data.len() != shape.volume() {
            return Err(TensorError::DataLengthMismatch {
                expected: shape.volume(),
                actual: data.len(),
            });
        }
        Ok(Self { shape, data })
    }

    /// Builds a tensor by evaluating `f(b, h, r, c)` at every position.
    #[must_use]
    pub fn from_fn<F>(shape: Shape, mut f: F) -> Self
    where
        F: FnMut(usize, usize, usize, usize) -> f32,
    {
        let mut data = Vec::with_capacity(shape.volume());
        let [b_n, h_n, r_n, c_n] = shape.dims();
        for b in 0..b_n {
            for h in 0..h_n {
                for r in 0..r_n {
                    for c in 0..c_n {
                        data.push(f(b, h, r, c));
                    }
                }
            }
        }
        Self { shape, data }
    }

    /// The tensor's shape.
    #[must_use]
    pub const fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Immutable view of the underlying row-major data.
    #[must_use]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Borrows one contiguous row `(b, h, r, ..)` as a `cols`-long slice.
    ///
    /// This is the primitive the slice-based kernels are built on: a row is
    /// always contiguous in the row-major `(B, H, N, E)` layout, so per-row
    /// kernels (dot products, softmax passes, AXPY accumulations) can run on
    /// `&[f32]` without any per-element offset computation or bounds check.
    ///
    /// # Panics
    ///
    /// Panics if `(b, h, r)` is out of range.
    #[must_use]
    #[inline]
    pub fn row(&self, b: usize, h: usize, r: usize) -> &[f32] {
        let [bn, hn, rn, cn] = self.shape.dims();
        assert!(
            b < bn && h < hn && r < rn,
            "row ({b}, {h}, {r}) out of range for {}",
            self.shape
        );
        let start = self.shape.offset_unchecked(b, h, r, 0);
        &self.data[start..start + cn]
    }

    /// Mutably borrows one contiguous row `(b, h, r, ..)`.
    ///
    /// # Panics
    ///
    /// Panics if `(b, h, r)` is out of range.
    #[inline]
    pub fn row_mut(&mut self, b: usize, h: usize, r: usize) -> &mut [f32] {
        let [bn, hn, rn, cn] = self.shape.dims();
        assert!(
            b < bn && h < hn && r < rn,
            "row ({b}, {h}, {r}) out of range for {}",
            self.shape
        );
        let start = self.shape.offset_unchecked(b, h, r, 0);
        &mut self.data[start..start + cn]
    }

    /// Borrows one `(batch, head)` matrix as a contiguous `rows × cols`
    /// row-major slice (the borrowing counterpart of [`Tensor::matrix`]).
    ///
    /// # Panics
    ///
    /// Panics if `(b, h)` is out of range.
    #[must_use]
    #[inline]
    pub fn slice(&self, b: usize, h: usize) -> &[f32] {
        let [bn, hn, rn, cn] = self.shape.dims();
        assert!(
            b < bn && h < hn,
            "slice ({b}, {h}) out of range for {}",
            self.shape
        );
        let start = self.shape.offset_unchecked(b, h, 0, 0);
        &self.data[start..start + rn * cn]
    }

    /// Mutably borrows one `(batch, head)` matrix as a contiguous
    /// `rows × cols` row-major slice.
    ///
    /// # Panics
    ///
    /// Panics if `(b, h)` is out of range.
    #[inline]
    pub fn slice_mut(&mut self, b: usize, h: usize) -> &mut [f32] {
        let [bn, hn, rn, cn] = self.shape.dims();
        assert!(
            b < bn && h < hn,
            "slice ({b}, {h}) out of range for {}",
            self.shape
        );
        let start = self.shape.offset_unchecked(b, h, 0, 0);
        &mut self.data[start..start + rn * cn]
    }

    /// Reads the element at `(b, h, r, c)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] for indices outside the shape.
    pub fn get(&self, b: usize, h: usize, r: usize, c: usize) -> Result<f32> {
        let off = self.shape.offset(b, h, r, c)?;
        Ok(self.data[off])
    }

    /// Writes the element at `(b, h, r, c)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] for indices outside the shape.
    pub fn set(&mut self, b: usize, h: usize, r: usize, c: usize, value: f32) -> Result<()> {
        let off = self.shape.offset(b, h, r, c)?;
        self.data[off] = value;
        Ok(())
    }

    /// Extracts a contiguous block (tile) starting at `start` with extents
    /// `len`, as its own tensor. This mirrors the DRAM→on-chip tile loads in
    /// Algorithms 2–4 of the paper.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::BlockOutOfBounds`] if the block exceeds the
    /// tensor, or [`TensorError::ZeroDimension`] if any length is zero.
    pub fn block(&self, start: [usize; 4], len: [usize; 4]) -> Result<Tensor> {
        let [b0, h0, r0, c0] = start;
        let [bl, hl, rl, cl] = len;
        let [bn, hn, rn, cn] = self.shape.dims();
        if b0 + bl > bn || h0 + hl > hn || r0 + rl > rn || c0 + cl > cn {
            return Err(TensorError::BlockOutOfBounds {
                start,
                len,
                shape: self.shape,
            });
        }
        let out_shape = Shape::new(bl, hl, rl, cl)?;
        let mut out = Tensor::zeros(out_shape);
        for b in 0..bl {
            for h in 0..hl {
                for r in 0..rl {
                    let src = self.shape.offset_unchecked(b0 + b, h0 + h, r0 + r, c0);
                    let dst = out_shape.offset_unchecked(b, h, r, 0);
                    out.data[dst..dst + cl].copy_from_slice(&self.data[src..src + cl]);
                }
            }
        }
        Ok(out)
    }

    /// Writes a block produced by [`Tensor::block`] back at `start`, the
    /// on-chip→DRAM store of an output tile.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::BlockOutOfBounds`] if the block does not fit.
    pub fn set_block(&mut self, start: [usize; 4], block: &Tensor) -> Result<()> {
        let [b0, h0, r0, c0] = start;
        let [bl, hl, rl, cl] = block.shape.dims();
        let [bn, hn, rn, cn] = self.shape.dims();
        if b0 + bl > bn || h0 + hl > hn || r0 + rl > rn || c0 + cl > cn {
            return Err(TensorError::BlockOutOfBounds {
                start,
                len: [bl, hl, rl, cl],
                shape: self.shape,
            });
        }
        for b in 0..bl {
            for h in 0..hl {
                for r in 0..rl {
                    let dst = self.shape.offset_unchecked(b0 + b, h0 + h, r0 + r, c0);
                    let src = block.shape.offset_unchecked(b, h, r, 0);
                    self.data[dst..dst + cl].copy_from_slice(&block.data[src..src + cl]);
                }
            }
        }
        Ok(())
    }

    /// Returns one `(batch, head)` matrix slice as a row-major `rows × cols`
    /// vector of values (the owning counterpart of [`Tensor::slice`]).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if `b` or `h` is out of range.
    pub fn matrix(&self, b: usize, h: usize) -> Result<Vec<f32>> {
        let [bn, hn, ..] = self.shape.dims();
        if b >= bn || h >= hn {
            return Err(TensorError::IndexOutOfBounds {
                index: [b, h, 0, 0],
                shape: self.shape,
            });
        }
        Ok(self.slice(b, h).to_vec())
    }

    /// Maximum absolute element value (0.0 for an all-zero tensor).
    #[must_use]
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }

    /// Maximum absolute difference between two tensors of the same shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> Result<f32> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.shape,
                right: other.shape,
                op: "max_abs_diff",
            });
        }
        Ok(self
            .data
            .iter()
            .zip(other.data.iter())
            .fold(0.0f32, |m, (&a, &b)| m.max((a - b).abs())))
    }

    /// Elementwise sum of all values (useful for cheap smoke checks).
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.data.iter().map(|&v| f64::from(v)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(b: usize, h: usize, r: usize, c: usize) -> Shape {
        Shape::new(b, h, r, c).unwrap()
    }

    #[test]
    fn zeros_and_full() {
        let z = Tensor::zeros(shape(1, 2, 3, 4));
        assert_eq!(z.data().len(), 24);
        assert!(z.data().iter().all(|&v| v == 0.0));
        let f = Tensor::full(shape(1, 1, 2, 2), 3.5);
        assert!(f.data().iter().all(|&v| (v - 3.5).abs() < f32::EPSILON));
    }

    #[test]
    fn from_vec_checks_length() {
        let s = shape(1, 1, 2, 2);
        assert!(Tensor::from_vec(s, vec![1.0; 4]).is_ok());
        assert!(matches!(
            Tensor::from_vec(s, vec![1.0; 5]),
            Err(TensorError::DataLengthMismatch { .. })
        ));
    }

    #[test]
    fn get_set_round_trip() {
        let mut t = Tensor::zeros(shape(2, 2, 2, 2));
        t.set(1, 0, 1, 1, 7.0).unwrap();
        assert_eq!(t.get(1, 0, 1, 1).unwrap(), 7.0);
        assert_eq!(t.get(0, 0, 0, 0).unwrap(), 0.0);
        assert!(t.get(2, 0, 0, 0).is_err());
    }

    #[test]
    fn from_fn_matches_manual_indexing() {
        let t = Tensor::from_fn(shape(2, 3, 4, 5), |b, h, r, c| {
            (b * 1000 + h * 100 + r * 10 + c) as f32
        });
        assert_eq!(t.get(1, 2, 3, 4).unwrap(), 1234.0);
        assert_eq!(t.get(0, 0, 0, 0).unwrap(), 0.0);
    }

    #[test]
    fn block_extract_and_insert_round_trip() {
        let t = Tensor::from_fn(shape(1, 2, 6, 4), |b, h, r, c| {
            (b * 1000 + h * 100 + r * 10 + c) as f32
        });
        let blk = t.block([0, 1, 2, 0], [1, 1, 3, 4]).unwrap();
        assert_eq!(blk.shape().dims(), [1, 1, 3, 4]);
        assert_eq!(blk.get(0, 0, 0, 0).unwrap(), 120.0);
        assert_eq!(blk.get(0, 0, 2, 3).unwrap(), 143.0);

        let mut dst = Tensor::zeros(*t.shape());
        dst.set_block([0, 1, 2, 0], &blk).unwrap();
        assert_eq!(dst.get(0, 1, 3, 2).unwrap(), 132.0);
        assert_eq!(dst.get(0, 0, 0, 0).unwrap(), 0.0);
    }

    #[test]
    fn block_out_of_bounds_rejected() {
        let t = Tensor::zeros(shape(1, 1, 4, 4));
        assert!(matches!(
            t.block([0, 0, 2, 0], [1, 1, 3, 4]),
            Err(TensorError::BlockOutOfBounds { .. })
        ));
    }

    #[test]
    fn row_views_match_element_accessors() {
        let t = Tensor::from_fn(shape(2, 3, 4, 5), |b, h, r, c| {
            (b * 1000 + h * 100 + r * 10 + c) as f32
        });
        for b in 0..2 {
            for h in 0..3 {
                for r in 0..4 {
                    let row = t.row(b, h, r);
                    assert_eq!(row.len(), 5);
                    for (c, &v) in row.iter().enumerate() {
                        assert_eq!(v, t.get(b, h, r, c).unwrap());
                    }
                }
            }
        }
    }

    #[test]
    fn row_mut_writes_through() {
        let mut t = Tensor::zeros(shape(1, 2, 3, 4));
        t.row_mut(0, 1, 2).copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.get(0, 1, 2, 3).unwrap(), 4.0);
        assert_eq!(t.get(0, 1, 1, 3).unwrap(), 0.0);
    }

    #[test]
    fn slice_views_cover_one_matrix() {
        let t = Tensor::from_fn(shape(1, 3, 2, 2), |_, h, r, c| {
            (h * 100 + r * 10 + c) as f32
        });
        assert_eq!(t.slice(0, 1), &[100.0, 101.0, 110.0, 111.0]);
        let mut u = t.clone();
        u.slice_mut(0, 2).fill(7.0);
        assert_eq!(u.get(0, 2, 1, 1).unwrap(), 7.0);
        assert_eq!(u.get(0, 1, 1, 1).unwrap(), 111.0, "other slices untouched");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn row_view_out_of_range_panics() {
        let t = Tensor::zeros(shape(1, 1, 2, 2));
        let _ = t.row(0, 0, 2);
    }

    #[test]
    fn matrix_slice_is_contiguous() {
        let t = Tensor::from_fn(shape(1, 3, 2, 2), |_, h, r, c| {
            (h * 100 + r * 10 + c) as f32
        });
        let m = t.matrix(0, 1).unwrap();
        assert_eq!(m, vec![100.0, 101.0, 110.0, 111.0]);
        assert!(t.matrix(0, 3).is_err());
    }

    #[test]
    fn diff_and_max_abs() {
        let a = Tensor::full(shape(1, 1, 2, 2), 1.0);
        let mut b = a.clone();
        b.set(0, 0, 1, 1, -3.0).unwrap();
        assert_eq!(a.max_abs(), 1.0);
        assert_eq!(b.max_abs(), 3.0);
        assert_eq!(a.max_abs_diff(&b).unwrap(), 4.0);
        let c = Tensor::zeros(shape(1, 1, 2, 3));
        assert!(a.max_abs_diff(&c).is_err());
    }
}
