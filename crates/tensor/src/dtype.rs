//! Element data types used for footprint and bandwidth accounting.
//!
//! The simulator and the dataflow footprint analyses (paper §5.6) only need
//! the *size* of an element; arithmetic in this crate is always performed in
//! `f32`. `F16`/`BF16` are storage formats emulated by [`crate::half`].

use serde::{Deserialize, Serialize};
use std::fmt;

/// Numeric element type of a tensor as stored on-device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum DType {
    /// IEEE-754 half precision (2 bytes). The paper's edge experiments and the
    /// §5.6 maximum-sequence-length analysis use FP16.
    #[default]
    F16,
    /// bfloat16 (2 bytes).
    BF16,
    /// IEEE-754 single precision (4 bytes).
    F32,
    /// 8-bit integer (quantized activations; 1 byte).
    I8,
}

impl DType {
    /// Size of one element in bytes.
    ///
    /// ```
    /// use mas_tensor::DType;
    /// assert_eq!(DType::F16.size_bytes(), 2);
    /// assert_eq!(DType::F32.size_bytes(), 4);
    /// ```
    #[must_use]
    pub const fn size_bytes(self) -> usize {
        match self {
            DType::F16 | DType::BF16 => 2,
            DType::F32 => 4,
            DType::I8 => 1,
        }
    }

    /// Size of one element in bits.
    #[must_use]
    pub const fn size_bits(self) -> usize {
        self.size_bytes() * 8
    }

    /// All supported data types, useful for sweeps.
    #[must_use]
    pub const fn all() -> [DType; 4] {
        [DType::F16, DType::BF16, DType::F32, DType::I8]
    }

    /// Short lowercase name (`"f16"`, `"bf16"`, `"f32"`, `"i8"`).
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            DType::F16 => "f16",
            DType::BF16 => "bf16",
            DType::F32 => "f32",
            DType::I8 => "i8",
        }
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_consistent() {
        for dt in DType::all() {
            assert_eq!(dt.size_bits(), dt.size_bytes() * 8);
        }
    }

    #[test]
    fn default_is_f16() {
        assert_eq!(DType::default(), DType::F16);
    }

    #[test]
    fn display_matches_name() {
        for dt in DType::all() {
            assert_eq!(format!("{dt}"), dt.name());
        }
    }

    #[test]
    fn all_lists_each_variant_once() {
        let all = DType::all();
        assert_eq!(all.len(), 4);
        for (i, a) in all.iter().enumerate() {
            for (j, b) in all.iter().enumerate() {
                if i != j {
                    assert_ne!(a, b);
                }
            }
        }
    }
}
