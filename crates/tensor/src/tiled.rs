//! Tiled numerical executors mirroring the paper's dataflows.
//!
//! The scheduling crates (`mas-dataflow`, `mas-sim`) model *when* each tile is
//! computed and what it costs; this module computes *what* each tile contains,
//! so that every dataflow can be validated to produce exact attention output
//! (the paper's "golden data check", §5.1).
//!
//! Three numerical structures cover all six evaluated methods:
//!
//! | Methods | Numerical structure |
//! |---|---|
//! | Layer-Wise, Soft-Pipe | full intermediates ([`crate::attention::reference_attention`]); Soft-Pipe differs only in *where* `P` lives, not in its values |
//! | FLAT, TileFlow, MAS-Attention | [`tiled_attention`]: per query row-block `Q_i`, build `C_i` by sweeping `K` sub-tiles (Alg. 2), softmax rows of `C_i` (Alg. 3), then accumulate `O_i` by sweeping `V` sub-tiles (Alg. 4) |
//! | FuseMax (and FlashAttention-style fusions) | [`fused_online_attention`]: single sweep over `K/V` sub-tiles with an online softmax and output rescaling |
//!
//! All executors accept a [`TileSizes`] describing the row-granularity query
//! block `n_q` and the sub-matrix key/value block `n_kv` — the same
//! `N_Q`/`N_{K,V}` parameters that the tiling search optimizes.

use serde::{Deserialize, Serialize};

use crate::error::{Result, TensorError};
use crate::shape::Shape;
use crate::softmax::softmax_rows;
use crate::tensor::Tensor;

/// Tiling factors for the numerical executors.
///
/// `n_q` is the number of query rows processed per outer iteration
/// (Algorithm 1 divides `Q` into `⌈N/N_Q⌉` blocks); `n_kv` is the number of
/// key/value rows per inner sub-tile (Algorithms 2 and 4 divide `K`/`V` into
/// `⌈N/N_{K,V}⌉` blocks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TileSizes {
    /// Query-row block size `N_Q` (≥ 1).
    pub n_q: usize,
    /// Key/value-row block size `N_{K,V}` (≥ 1).
    pub n_kv: usize,
}

impl TileSizes {
    /// Creates a tile-size pair, validating against the sequence length.
    ///
    /// Tiles larger than the sequence are clamped (a tile may cover the whole
    /// sequence), but zero tiles are rejected.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidTile`] if either size is zero.
    pub fn new(n_q: usize, n_kv: usize, seq_len: usize) -> Result<Self> {
        if n_q == 0 {
            return Err(TensorError::InvalidTile {
                dim: "n_q",
                tile: n_q,
                extent: seq_len,
            });
        }
        if n_kv == 0 {
            return Err(TensorError::InvalidTile {
                dim: "n_kv",
                tile: n_kv,
                extent: seq_len,
            });
        }
        Ok(Self {
            n_q: n_q.min(seq_len),
            n_kv: n_kv.min(seq_len),
        })
    }

    /// Number of query row-blocks for a sequence of length `seq_len`.
    #[must_use]
    pub fn query_blocks(&self, seq_len: usize) -> usize {
        seq_len.div_ceil(self.n_q)
    }

    /// Number of key/value sub-tiles for a sequence of length `seq_len`.
    #[must_use]
    pub fn kv_blocks(&self, seq_len: usize) -> usize {
        seq_len.div_ceil(self.n_kv)
    }
}

/// Computes exact attention with the FLAT / TileFlow / MAS-Attention blocking
/// structure (two sweeps over the key/value sub-tiles per query row-block).
///
/// For each `(batch, head)` slice and each query row-block `Q_i`
/// (`tiles.n_q` rows):
///
/// 1. **Algorithm 2** — for each key sub-tile `K_{i,j}` (`tiles.n_kv` rows),
///    compute `C_{i,j} = Q_i K_{i,j}ᵀ` and place it into the on-chip `C_i`.
/// 2. **Algorithm 3** — softmax each row of `C_i` producing `P_i`.
/// 3. **Algorithm 4** — for each value sub-tile `V_{i,j}`, accumulate
///    `O_i += P_{i,j} V_{i,j}`, then write `O_i` back.
///
/// # Errors
///
/// Returns a [`TensorError`] if operand shapes are inconsistent.
pub fn tiled_attention(q: &Tensor, k: &Tensor, v: &Tensor, tiles: TileSizes) -> Result<Tensor> {
    check_same_shape(q, k, "tiled_attention(q, k)")?;
    check_same_shape(k, v, "tiled_attention(k, v)")?;
    let [b_n, h_n, n, e] = q.shape().dims();
    let mut o = Tensor::zeros(*q.shape());

    for b in 0..b_n {
        for h in 0..h_n {
            let mut qi_start = 0;
            while qi_start < n {
                let qi_len = tiles.n_q.min(n - qi_start);
                // Algorithm 2: C_i = Q_i K^T assembled from K sub-tiles.
                let mut c_i = vec![0.0f32; qi_len * n];
                let mut kj_start = 0;
                while kj_start < n {
                    let kj_len = tiles.n_kv.min(n - kj_start);
                    for r in 0..qi_len {
                        for c in 0..kj_len {
                            let mut acc = 0.0f32;
                            for p in 0..e {
                                acc += q.get(b, h, qi_start + r, p)?
                                    * k.get(b, h, kj_start + c, p)?;
                            }
                            c_i[r * n + kj_start + c] = acc;
                        }
                    }
                    kj_start += kj_len;
                }
                // Algorithm 3: row-wise softmax of C_i -> P_i.
                let c_tensor =
                    Tensor::from_vec(Shape::new(1, 1, qi_len, n)?, c_i)?;
                let p_i = softmax_rows(&c_tensor);
                // Algorithm 4: O_i = sum_j P_{i,j} V_{i,j}.
                let mut o_i = vec![0.0f32; qi_len * e];
                let mut vj_start = 0;
                while vj_start < n {
                    let vj_len = tiles.n_kv.min(n - vj_start);
                    for r in 0..qi_len {
                        for c in 0..e {
                            let mut acc = 0.0f32;
                            for p in 0..vj_len {
                                acc += p_i.get(0, 0, r, vj_start + p)?
                                    * v.get(b, h, vj_start + p, c)?;
                            }
                            o_i[r * e + c] += acc;
                        }
                    }
                    vj_start += vj_len;
                }
                for r in 0..qi_len {
                    for c in 0..e {
                        o.set(b, h, qi_start + r, c, o_i[r * e + c])?;
                    }
                }
                qi_start += qi_len;
            }
        }
    }
    Ok(o)
}

/// Computes exact attention with a single fused sweep over key/value sub-tiles
/// using an online softmax (running max and denominator with output
/// rescaling), the FuseMax / FlashAttention-style decomposition.
///
/// For each query row-block, the accumulator state per row is
/// `(m, d, o_acc[E])`; absorbing sub-tile `j` rescales the accumulator by
/// `exp(m_old − m_new)` and adds the new contributions. The final output is
/// `o_acc / d`.
///
/// # Errors
///
/// Returns a [`TensorError`] if operand shapes are inconsistent.
pub fn fused_online_attention(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    tiles: TileSizes,
) -> Result<Tensor> {
    check_same_shape(q, k, "fused_online_attention(q, k)")?;
    check_same_shape(k, v, "fused_online_attention(k, v)")?;
    let [b_n, h_n, n, e] = q.shape().dims();
    let mut o = Tensor::zeros(*q.shape());

    for b in 0..b_n {
        for h in 0..h_n {
            let mut qi_start = 0;
            while qi_start < n {
                let qi_len = tiles.n_q.min(n - qi_start);
                let mut row_max = vec![f32::NEG_INFINITY; qi_len];
                let mut row_denom = vec![0.0f32; qi_len];
                let mut o_acc = vec![0.0f32; qi_len * e];

                let mut kj_start = 0;
                while kj_start < n {
                    let kj_len = tiles.n_kv.min(n - kj_start);
                    for r in 0..qi_len {
                        // Scores of this sub-tile for row r.
                        let mut scores = vec![0.0f32; kj_len];
                        let mut tile_max = f32::NEG_INFINITY;
                        for (c, s) in scores.iter_mut().enumerate() {
                            let mut acc = 0.0f32;
                            for p in 0..e {
                                acc += q.get(b, h, qi_start + r, p)?
                                    * k.get(b, h, kj_start + c, p)?;
                            }
                            *s = acc;
                            tile_max = tile_max.max(acc);
                        }
                        let new_max = row_max[r].max(tile_max);
                        let correction = if row_max[r].is_finite() {
                            (row_max[r] - new_max).exp()
                        } else {
                            0.0
                        };
                        row_denom[r] *= correction;
                        for c in 0..e {
                            o_acc[r * e + c] *= correction;
                        }
                        row_max[r] = new_max;
                        for (c, &s) in scores.iter().enumerate() {
                            let w = (s - new_max).exp();
                            row_denom[r] += w;
                            for d in 0..e {
                                o_acc[r * e + d] += w * v.get(b, h, kj_start + c, d)?;
                            }
                        }
                    }
                    kj_start += kj_len;
                }
                for r in 0..qi_len {
                    for c in 0..e {
                        o.set(b, h, qi_start + r, c, o_acc[r * e + c] / row_denom[r])?;
                    }
                }
                qi_start += qi_len;
            }
        }
    }
    Ok(o)
}

fn check_same_shape(a: &Tensor, b: &Tensor, op: &'static str) -> Result<()> {
    if a.shape() != b.shape() {
        return Err(TensorError::ShapeMismatch {
            left: *a.shape(),
            right: *b.shape(),
            op,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attention::reference_attention;
    use crate::init::random_qkv;

    #[test]
    fn tile_sizes_validate() {
        assert!(TileSizes::new(0, 4, 16).is_err());
        assert!(TileSizes::new(4, 0, 16).is_err());
        let t = TileSizes::new(64, 64, 16).unwrap();
        assert_eq!(t.n_q, 16, "tiles clamp to the sequence length");
        assert_eq!(t.n_kv, 16);
    }

    #[test]
    fn block_counts_use_ceiling_division() {
        let t = TileSizes::new(3, 5, 16).unwrap();
        assert_eq!(t.query_blocks(16), 6);
        assert_eq!(t.kv_blocks(16), 4);
        assert_eq!(t.query_blocks(3), 1);
    }

    #[test]
    fn tiled_matches_reference_for_divisible_tiles() {
        let (q, k, v) = random_qkv(1, 2, 16, 8, 17);
        let reference = reference_attention(&q, &k, &v).unwrap();
        let tiled = tiled_attention(&q, &k, &v, TileSizes::new(4, 8, 16).unwrap()).unwrap();
        assert!(reference.max_abs_diff(&tiled).unwrap() < 1e-5);
    }

    #[test]
    fn tiled_matches_reference_for_ragged_tiles() {
        let (q, k, v) = random_qkv(1, 1, 13, 6, 23);
        let reference = reference_attention(&q, &k, &v).unwrap();
        for (nq, nkv) in [(1, 1), (3, 5), (5, 3), (13, 13), (4, 7)] {
            let tiles = TileSizes::new(nq, nkv, 13).unwrap();
            let tiled = tiled_attention(&q, &k, &v, tiles).unwrap();
            assert!(
                reference.max_abs_diff(&tiled).unwrap() < 1e-5,
                "tiles ({nq},{nkv}) diverged"
            );
        }
    }

    #[test]
    fn fused_online_matches_reference() {
        let (q, k, v) = random_qkv(2, 2, 12, 4, 31);
        let reference = reference_attention(&q, &k, &v).unwrap();
        for (nq, nkv) in [(1, 1), (4, 3), (12, 12), (2, 5)] {
            let tiles = TileSizes::new(nq, nkv, 12).unwrap();
            let fused = fused_online_attention(&q, &k, &v, tiles).unwrap();
            assert!(
                reference.max_abs_diff(&fused).unwrap() < 1e-4,
                "tiles ({nq},{nkv}) diverged"
            );
        }
    }

    #[test]
    fn tiled_and_fused_agree_with_each_other() {
        let (q, k, v) = random_qkv(1, 3, 10, 8, 41);
        let tiles = TileSizes::new(5, 2, 10).unwrap();
        let a = tiled_attention(&q, &k, &v, tiles).unwrap();
        let b = fused_online_attention(&q, &k, &v, tiles).unwrap();
        assert!(a.max_abs_diff(&b).unwrap() < 1e-4);
    }
}
