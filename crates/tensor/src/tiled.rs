//! Tiled numerical executors mirroring the paper's dataflows.
//!
//! The scheduling crates (`mas-dataflow`, `mas-sim`) model *when* each tile is
//! computed and what it costs; this module computes *what* each tile contains,
//! so that every dataflow can be validated to produce exact attention output
//! (the paper's "golden data check", §5.1).
//!
//! Three numerical structures cover all six evaluated methods:
//!
//! | Methods | Numerical structure |
//! |---|---|
//! | Layer-Wise, Soft-Pipe | full intermediates ([`crate::attention::reference_attention`]); Soft-Pipe differs only in *where* `P` lives, not in its values |
//! | FLAT, TileFlow, MAS-Attention | [`tiled_attention`]: per query row-block `Q_i`, build `C_i` by sweeping `K` sub-tiles (Alg. 2), softmax rows of `C_i` (Alg. 3), then accumulate `O_i` by sweeping `V` sub-tiles (Alg. 4) |
//! | FuseMax (and FlashAttention-style fusions) | [`fused_online_attention`]: single sweep over `K/V` sub-tiles with an online softmax and output rescaling |
//!
//! All executors accept a [`TileSizes`] describing the row-granularity query
//! block `n_q` and the sub-matrix key/value block `n_kv` — the same
//! `N_Q`/`N_{K,V}` parameters that the tiling search optimizes.
//!
//! The inner loops work exclusively on contiguous row slices: tile logits are
//! row·row [`dot`](crate::matmul::dot) products, probability×value
//! accumulation is an [`axpy`](crate::matmul::axpy) over the output row, and
//! softmax runs in place on the on-chip `C_i` rows. Independent
//! `(batch, head)` slices are processed in parallel.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::error::{Result, TensorError};
use crate::matmul::{axpy, dot};
use crate::softmax::{slice_max, softmax_row_in_place};
use crate::tensor::Tensor;

/// Tiling factors for the numerical executors.
///
/// `n_q` is the number of query rows processed per outer iteration
/// (Algorithm 1 divides `Q` into `⌈N/N_Q⌉` blocks); `n_kv` is the number of
/// key/value rows per inner sub-tile (Algorithms 2 and 4 divide `K`/`V` into
/// `⌈N/N_{K,V}⌉` blocks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TileSizes {
    /// Query-row block size `N_Q` (≥ 1).
    pub n_q: usize,
    /// Key/value-row block size `N_{K,V}` (≥ 1).
    pub n_kv: usize,
}

impl TileSizes {
    /// Creates a tile-size pair, validating against the sequence length.
    ///
    /// Tiles larger than the sequence are clamped (a tile may cover the whole
    /// sequence), but zero tiles are rejected.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidTile`] if either size is zero.
    pub fn new(n_q: usize, n_kv: usize, seq_len: usize) -> Result<Self> {
        if n_q == 0 {
            return Err(TensorError::InvalidTile {
                dim: "n_q",
                tile: n_q,
                extent: seq_len,
            });
        }
        if n_kv == 0 {
            return Err(TensorError::InvalidTile {
                dim: "n_kv",
                tile: n_kv,
                extent: seq_len,
            });
        }
        Ok(Self {
            n_q: n_q.min(seq_len),
            n_kv: n_kv.min(seq_len),
        })
    }

    /// Number of query row-blocks for a sequence of length `seq_len`.
    #[must_use]
    pub fn query_blocks(&self, seq_len: usize) -> usize {
        seq_len.div_ceil(self.n_q)
    }

    /// Number of key/value sub-tiles for a sequence of length `seq_len`.
    #[must_use]
    pub fn kv_blocks(&self, seq_len: usize) -> usize {
        seq_len.div_ceil(self.n_kv)
    }
}

/// Computes exact attention with the FLAT / TileFlow / MAS-Attention blocking
/// structure (two sweeps over the key/value sub-tiles per query row-block).
///
/// For each `(batch, head)` slice (processed in parallel) and each query
/// row-block `Q_i` (`tiles.n_q` rows):
///
/// 1. **Algorithm 2** — for each key sub-tile `K_{i,j}` (`tiles.n_kv` rows),
///    compute `C_{i,j} = Q_i K_{i,j}ᵀ` and place it into the on-chip `C_i`.
/// 2. **Algorithm 3** — softmax each row of `C_i` in place, producing `P_i`.
/// 3. **Algorithm 4** — for each value sub-tile `V_{i,j}`, accumulate
///    `O_i += P_{i,j} V_{i,j}` directly into the output rows.
///
/// # Errors
///
/// Returns a [`TensorError`] if operand shapes are inconsistent.
pub fn tiled_attention(q: &Tensor, k: &Tensor, v: &Tensor, tiles: TileSizes) -> Result<Tensor> {
    check_same_shape(q, k, "tiled_attention(q, k)")?;
    check_same_shape(k, v, "tiled_attention(k, v)")?;
    let [_, h_n, n, e] = q.shape().dims();
    let mut o = Tensor::zeros(*q.shape());

    o.data_mut()
        .par_chunks_mut(n * e)
        .enumerate()
        .for_each(|(s, o_mat)| {
            let (bi, hi) = (s / h_n, s % h_n);
            tiled_attention_slice(
                q.slice(bi, hi),
                k.slice(bi, hi),
                v.slice(bi, hi),
                o_mat,
                n,
                e,
                tiles,
            );
        });
    Ok(o)
}

/// One `(batch, head)` slice of [`tiled_attention`]; all operands are
/// row-major `n × e` matrices.
fn tiled_attention_slice(
    q_mat: &[f32],
    k_mat: &[f32],
    v_mat: &[f32],
    o_mat: &mut [f32],
    n: usize,
    e: usize,
    tiles: TileSizes,
) {
    // On-chip C_i buffer, reused across query blocks.
    let mut c_i = vec![0.0f32; tiles.n_q.min(n) * n];
    let mut qi_start = 0;
    while qi_start < n {
        let qi_len = tiles.n_q.min(n - qi_start);
        let c_block = &mut c_i[..qi_len * n];
        // Algorithm 2: C_i = Q_i K^T assembled from K sub-tiles.
        let mut kj_start = 0;
        while kj_start < n {
            let kj_len = tiles.n_kv.min(n - kj_start);
            for r in 0..qi_len {
                let q_row = &q_mat[(qi_start + r) * e..(qi_start + r + 1) * e];
                let c_row = &mut c_block[r * n + kj_start..r * n + kj_start + kj_len];
                for (c, cv) in c_row.iter_mut().enumerate() {
                    let k_row = &k_mat[(kj_start + c) * e..(kj_start + c + 1) * e];
                    *cv = dot(q_row, k_row);
                }
            }
            kj_start += kj_len;
        }
        // Algorithm 3: row-wise softmax of C_i in place -> P_i.
        for p_row in c_block.chunks_exact_mut(n) {
            softmax_row_in_place(p_row);
        }
        // Algorithm 4: O_i = sum_j P_{i,j} V_{i,j}, accumulated per sub-tile
        // directly into the output rows (already zero-initialized).
        let mut vj_start = 0;
        while vj_start < n {
            let vj_len = tiles.n_kv.min(n - vj_start);
            for r in 0..qi_len {
                let p_row = &c_block[r * n + vj_start..r * n + vj_start + vj_len];
                let o_row = &mut o_mat[(qi_start + r) * e..(qi_start + r + 1) * e];
                for (p, &w) in p_row.iter().enumerate() {
                    let v_row = &v_mat[(vj_start + p) * e..(vj_start + p + 1) * e];
                    axpy(w, v_row, o_row);
                }
            }
            vj_start += vj_len;
        }
        qi_start += qi_len;
    }
}

/// Computes exact attention with a single fused sweep over key/value sub-tiles
/// using an online softmax (running max and denominator with output
/// rescaling), the FuseMax / FlashAttention-style decomposition.
///
/// For each query row-block, the accumulator state per row is
/// `(m, d, o_acc[E])`; absorbing sub-tile `j` rescales the accumulator by
/// `exp(m_old − m_new)` and adds the new contributions. The final output is
/// `o_acc / d`. `(batch, head)` slices are processed in parallel.
///
/// # Errors
///
/// Returns a [`TensorError`] if operand shapes are inconsistent.
pub fn fused_online_attention(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    tiles: TileSizes,
) -> Result<Tensor> {
    check_same_shape(q, k, "fused_online_attention(q, k)")?;
    check_same_shape(k, v, "fused_online_attention(k, v)")?;
    let [_, h_n, n, e] = q.shape().dims();
    let mut o = Tensor::zeros(*q.shape());

    o.data_mut()
        .par_chunks_mut(n * e)
        .enumerate()
        .for_each(|(s, o_mat)| {
            let (bi, hi) = (s / h_n, s % h_n);
            fused_online_attention_slice(
                q.slice(bi, hi),
                k.slice(bi, hi),
                v.slice(bi, hi),
                o_mat,
                n,
                e,
                tiles,
            );
        });
    Ok(o)
}

/// One `(batch, head)` slice of [`fused_online_attention`].
fn fused_online_attention_slice(
    q_mat: &[f32],
    k_mat: &[f32],
    v_mat: &[f32],
    o_mat: &mut [f32],
    n: usize,
    e: usize,
    tiles: TileSizes,
) {
    let mut scores = vec![0.0f32; tiles.n_kv.min(n)];
    let mut qi_start = 0;
    while qi_start < n {
        let qi_len = tiles.n_q.min(n - qi_start);
        let mut row_max = vec![f32::NEG_INFINITY; qi_len];
        let mut row_denom = vec![0.0f32; qi_len];
        // The output rows double as the running o_acc (zero-initialized).
        let mut kj_start = 0;
        while kj_start < n {
            let kj_len = tiles.n_kv.min(n - kj_start);
            for r in 0..qi_len {
                let q_row = &q_mat[(qi_start + r) * e..(qi_start + r + 1) * e];
                let o_row = &mut o_mat[(qi_start + r) * e..(qi_start + r + 1) * e];
                // Scores of this sub-tile for row r (slice of dot products).
                let tile_scores = &mut scores[..kj_len];
                for (c, sv) in tile_scores.iter_mut().enumerate() {
                    let k_row = &k_mat[(kj_start + c) * e..(kj_start + c + 1) * e];
                    *sv = dot(q_row, k_row);
                }
                let tile_max = slice_max(tile_scores);
                let new_max = row_max[r].max(tile_max);
                let correction = if row_max[r].is_finite() {
                    (row_max[r] - new_max).exp()
                } else {
                    0.0
                };
                row_denom[r] *= correction;
                for ov in o_row.iter_mut() {
                    *ov *= correction;
                }
                row_max[r] = new_max;
                for (c, &sv) in tile_scores.iter().enumerate() {
                    let w = (sv - new_max).exp();
                    row_denom[r] += w;
                    let v_row = &v_mat[(kj_start + c) * e..(kj_start + c + 1) * e];
                    axpy(w, v_row, o_row);
                }
            }
            kj_start += kj_len;
        }
        for r in 0..qi_len {
            let inv = 1.0 / row_denom[r];
            let o_row = &mut o_mat[(qi_start + r) * e..(qi_start + r + 1) * e];
            for ov in o_row.iter_mut() {
                *ov *= inv;
            }
        }
        qi_start += qi_len;
    }
}

fn check_same_shape(a: &Tensor, b: &Tensor, op: &'static str) -> Result<()> {
    if a.shape() != b.shape() {
        return Err(TensorError::ShapeMismatch {
            left: *a.shape(),
            right: *b.shape(),
            op,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attention::reference_attention;
    use crate::init::random_qkv;

    #[test]
    fn tile_sizes_validate() {
        assert!(TileSizes::new(0, 4, 16).is_err());
        assert!(TileSizes::new(4, 0, 16).is_err());
        let t = TileSizes::new(64, 64, 16).unwrap();
        assert_eq!(t.n_q, 16, "tiles clamp to the sequence length");
        assert_eq!(t.n_kv, 16);
    }

    #[test]
    fn block_counts_use_ceiling_division() {
        let t = TileSizes::new(3, 5, 16).unwrap();
        assert_eq!(t.query_blocks(16), 6);
        assert_eq!(t.kv_blocks(16), 4);
        assert_eq!(t.query_blocks(3), 1);
    }

    #[test]
    fn tiled_matches_reference_for_divisible_tiles() {
        let (q, k, v) = random_qkv(1, 2, 16, 8, 17);
        let reference = reference_attention(&q, &k, &v).unwrap();
        let tiled = tiled_attention(&q, &k, &v, TileSizes::new(4, 8, 16).unwrap()).unwrap();
        assert!(reference.max_abs_diff(&tiled).unwrap() < 1e-5);
    }

    #[test]
    fn tiled_matches_reference_for_ragged_tiles() {
        let (q, k, v) = random_qkv(1, 1, 13, 6, 23);
        let reference = reference_attention(&q, &k, &v).unwrap();
        for (nq, nkv) in [(1, 1), (3, 5), (5, 3), (13, 13), (4, 7)] {
            let tiles = TileSizes::new(nq, nkv, 13).unwrap();
            let tiled = tiled_attention(&q, &k, &v, tiles).unwrap();
            assert!(
                reference.max_abs_diff(&tiled).unwrap() < 1e-5,
                "tiles ({nq},{nkv}) diverged"
            );
        }
    }

    #[test]
    fn fused_online_matches_reference() {
        let (q, k, v) = random_qkv(2, 2, 12, 4, 31);
        let reference = reference_attention(&q, &k, &v).unwrap();
        for (nq, nkv) in [(1, 1), (4, 3), (12, 12), (2, 5)] {
            let tiles = TileSizes::new(nq, nkv, 12).unwrap();
            let fused = fused_online_attention(&q, &k, &v, tiles).unwrap();
            assert!(
                reference.max_abs_diff(&fused).unwrap() < 1e-4,
                "tiles ({nq},{nkv}) diverged"
            );
        }
    }

    #[test]
    fn tiled_and_fused_agree_with_each_other() {
        let (q, k, v) = random_qkv(1, 3, 10, 8, 41);
        let tiles = TileSizes::new(5, 2, 10).unwrap();
        let a = tiled_attention(&q, &k, &v, tiles).unwrap();
        let b = fused_online_attention(&q, &k, &v, tiles).unwrap();
        assert!(a.max_abs_diff(&b).unwrap() < 1e-4);
    }
}
