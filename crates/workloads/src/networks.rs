//! The paper's Table 1 network configurations.
//!
//! Each entry lists the number of attention heads, the sequence length, the
//! model hidden size and the per-head embedding size (`Emb_{K,V}`). The
//! hidden size is informational (it determines the number of heads × per-head
//! embedding for the projection layers, which are outside the attention block
//! the paper accelerates); the attention workload is defined by
//! `(heads, seq, embed)`.

use serde::{Deserialize, Serialize};
use std::fmt;

use mas_dataflow::AttentionWorkload;

/// The networks evaluated in the paper (Table 1).
///
/// Networks that share an attention configuration are represented by a single
/// variant, exactly as the paper groups them (e.g. "BERT-Base & T5-Base").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Network {
    /// BERT-Base & T5-Base: 12 heads, 512 tokens, hidden 768, embed 64.
    BertBase,
    /// BERT-Large & T5-Large: 16 heads, 512 tokens, hidden 1024, embed 64.
    BertLarge,
    /// BERT-Small: 8 heads, 512 tokens, hidden 512, embed 64.
    BertSmall,
    /// Llama3-8B & T5-3B (T5-XL): 32 heads, 512 tokens, hidden 4096, embed 128.
    Llama3_8B,
    /// T5-Mini & T5-Small: 8 heads, 512 tokens, hidden 256, embed 32.
    T5Mini,
    /// ViT-B/14: 12 heads, 196 tokens, hidden 768, embed 64.
    VitB14,
    /// ViT-L/14: 16 heads, 196 tokens, hidden 1024, embed 64.
    VitL14,
    /// ViT-H/14: 16 heads, 196 tokens, hidden 1280, embed 80.
    VitH14,
    /// ViT-B/16: 12 heads, 256 tokens, hidden 768, embed 64.
    VitB16,
    /// ViT-L/16: 16 heads, 256 tokens, hidden 1024, embed 64.
    VitL16,
    /// ViT-H/16: 16 heads, 256 tokens, hidden 1280, embed 80.
    VitH16,
    /// XLM: 8 heads, 512 tokens, hidden 1024, embed 128.
    Xlm,
}

/// Static description of one Table 1 row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Display name used in the paper's tables.
    pub name: &'static str,
    /// Number of attention heads.
    pub heads: usize,
    /// Sequence length.
    pub seq_len: usize,
    /// Model hidden size (informational).
    pub hidden: usize,
    /// Per-head embedding size (`Emb_{K,V}`).
    pub embed: usize,
}

impl Network {
    /// Every network in Table 1 order.
    #[must_use]
    pub const fn all() -> [Network; 12] {
        [
            Network::BertBase,
            Network::BertLarge,
            Network::BertSmall,
            Network::Llama3_8B,
            Network::T5Mini,
            Network::VitB14,
            Network::VitL14,
            Network::VitH14,
            Network::VitB16,
            Network::VitL16,
            Network::VitH16,
            Network::Xlm,
        ]
    }

    /// The Table 1 row for this network.
    #[must_use]
    pub const fn config(self) -> NetworkConfig {
        match self {
            Network::BertBase => NetworkConfig {
                name: "BERT-Base & T5-Base",
                heads: 12,
                seq_len: 512,
                hidden: 768,
                embed: 64,
            },
            Network::BertLarge => NetworkConfig {
                name: "BERT-Large & T5-Large",
                heads: 16,
                seq_len: 512,
                hidden: 1024,
                embed: 64,
            },
            Network::BertSmall => NetworkConfig {
                name: "BERT-Small",
                heads: 8,
                seq_len: 512,
                hidden: 512,
                embed: 64,
            },
            Network::Llama3_8B => NetworkConfig {
                name: "Llama3-8B & T5-3B (T5-XL)",
                heads: 32,
                seq_len: 512,
                hidden: 4096,
                embed: 128,
            },
            Network::T5Mini => NetworkConfig {
                name: "T5-Mini & T5-Small",
                heads: 8,
                seq_len: 512,
                hidden: 256,
                embed: 32,
            },
            Network::VitB14 => NetworkConfig {
                name: "ViT-B/14",
                heads: 12,
                seq_len: 196,
                hidden: 768,
                embed: 64,
            },
            Network::VitL14 => NetworkConfig {
                name: "ViT-L/14",
                heads: 16,
                seq_len: 196,
                hidden: 1024,
                embed: 64,
            },
            Network::VitH14 => NetworkConfig {
                name: "ViT-H/14",
                heads: 16,
                seq_len: 196,
                hidden: 1280,
                embed: 80,
            },
            Network::VitB16 => NetworkConfig {
                name: "ViT-B/16",
                heads: 12,
                seq_len: 256,
                hidden: 768,
                embed: 64,
            },
            Network::VitL16 => NetworkConfig {
                name: "ViT-L/16",
                heads: 16,
                seq_len: 256,
                hidden: 1024,
                embed: 64,
            },
            Network::VitH16 => NetworkConfig {
                name: "ViT-H/16",
                heads: 16,
                seq_len: 256,
                hidden: 1280,
                embed: 80,
            },
            Network::Xlm => NetworkConfig {
                name: "XLM",
                heads: 8,
                seq_len: 512,
                hidden: 1024,
                embed: 128,
            },
        }
    }

    /// The network's display name (as used in the paper's tables).
    #[must_use]
    pub const fn name(self) -> &'static str {
        self.config().name
    }

    /// Shared key/value heads of the network's *decode* configuration.
    ///
    /// Table 1 describes prefill attention shapes; for autoregressive decode
    /// the grouped-query networks share K/V heads across query-head groups.
    /// Llama3-8B uses 8 KV heads for its 32 query heads (GQA-4); the
    /// encoder-style networks are plain MHA (`kv_heads == heads`).
    #[must_use]
    pub const fn kv_heads(self) -> usize {
        match self {
            Network::Llama3_8B => 8,
            other => other.config().heads,
        }
    }

    /// The attention workload of this network for a given batch size.
    #[must_use]
    pub fn attention_workload(self, batch: usize) -> AttentionWorkload {
        let c = self.config();
        AttentionWorkload::new(c.name, batch, c.heads, c.seq_len, c.embed)
    }
}

impl fmt::Display for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_twelve_table1_rows() {
        assert_eq!(Network::all().len(), 12);
        let mut names: Vec<&str> = Network::all().iter().map(|n| n.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 12, "all names must be distinct");
    }

    #[test]
    fn headline_configurations_match_the_paper() {
        let bert = Network::BertBase.config();
        assert_eq!(
            (bert.heads, bert.seq_len, bert.hidden, bert.embed),
            (12, 512, 768, 64)
        );
        let llama = Network::Llama3_8B.config();
        assert_eq!(
            (llama.heads, llama.seq_len, llama.hidden, llama.embed),
            (32, 512, 4096, 128)
        );
        let t5 = Network::T5Mini.config();
        assert_eq!(
            (t5.heads, t5.seq_len, t5.hidden, t5.embed),
            (8, 512, 256, 32)
        );
        let vit = Network::VitH16.config();
        assert_eq!((vit.heads, vit.seq_len, vit.embed), (16, 256, 80));
        let xlm = Network::Xlm.config();
        assert_eq!(
            (xlm.heads, xlm.seq_len, xlm.hidden, xlm.embed),
            (8, 512, 1024, 128)
        );
    }

    #[test]
    fn workloads_carry_the_batch_dimension() {
        let w = Network::VitB16.attention_workload(4);
        assert_eq!(w.batch, 4);
        assert_eq!(w.heads, 12);
        assert_eq!(w.seq_len, 256);
        assert_eq!(w.embed, 64);
    }

    #[test]
    fn hidden_size_is_consistent_with_heads_times_embed_where_applicable() {
        // Most text models satisfy hidden = heads * embed; the exceptions in
        // Table 1 (Llama3-8B uses grouped projections, ViT-H uses a wider
        // MLP) are carried verbatim from the paper.
        for n in [
            Network::BertBase,
            Network::BertLarge,
            Network::BertSmall,
            Network::T5Mini,
        ] {
            let c = n.config();
            assert_eq!(c.hidden, c.heads * c.embed, "{}", c.name);
        }
    }

    #[test]
    fn kv_heads_divide_query_heads_everywhere() {
        for n in Network::all() {
            let c = n.config();
            let kv = n.kv_heads();
            assert!(kv > 0 && kv <= c.heads && c.heads % kv == 0, "{}", c.name);
        }
        // Llama3-8B is the grouped-query network of Table 1 (32 Q / 8 KV).
        assert_eq!(Network::Llama3_8B.kv_heads(), 8);
        assert_eq!(Network::BertBase.kv_heads(), 12);
    }

    #[test]
    fn display_matches_table_names() {
        assert_eq!(Network::BertBase.to_string(), "BERT-Base & T5-Base");
        assert_eq!(Network::Xlm.to_string(), "XLM");
    }
}
