//! # mas-workloads
//!
//! Attention-layer workload definitions used by the MAS-Attention paper's
//! evaluation:
//!
//! * [`networks`] — the twelve transformer configurations of Table 1
//!   (BERT, T5, Llama3-8B, ViT and XLM variants),
//! * [`sdunet`] — the reduced Stable Diffusion 1.5 UNet used for the
//!   end-to-end on-device experiment (§5.2.2), and
//! * [`generator`] — a seeded synthetic workload generator for stress tests
//!   and property-based testing, and
//! * [`traffic`] — deterministic Poisson/burst request-trace generation for
//!   the `mas-serve` streaming runtime, autoregressive decode traces
//!   (sessions with prompts and per-token step arrivals) for its KV-cached
//!   decode path, and mixed prefill+decode traces for the unified serve
//!   engine's single-timeline co-scheduling.
//!
//! ## Example
//!
//! ```
//! use mas_workloads::networks::Network;
//!
//! let w = Network::BertBase.attention_workload(1);
//! assert_eq!(w.heads, 12);
//! assert_eq!(w.seq_len, 512);
//! assert_eq!(w.embed, 64);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod generator;
pub mod networks;
pub mod sdunet;
pub mod traffic;

pub use networks::Network;
pub use sdunet::{sd15_reduced_unet, SdAttentionUnit};
pub use traffic::{
    decode_trace, mixed_trace, overload_burst_trace, request_trace, ArrivalProcess,
    DecodeSessionSpec, DecodeStepEvent, DecodeTrace, DecodeTraceConfig, MixedTrace,
    MixedTraceConfig, OverloadBurstConfig, TraceConfig, TraceEvent, MIXED_DECODE_SEED_SALT,
};
