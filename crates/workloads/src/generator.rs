//! Synthetic workload generation for stress and property tests.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

use mas_dataflow::AttentionWorkload;

/// Bounds for the synthetic generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct GeneratorConfig {
    /// Inclusive range of batch sizes.
    pub batch: (usize, usize),
    /// Inclusive range of head counts.
    pub heads: (usize, usize),
    /// Inclusive range of sequence lengths.
    pub seq_len: (usize, usize),
    /// Candidate per-head embedding sizes.
    pub embeds: &'static [usize],
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self {
            batch: (1, 2),
            heads: (1, 32),
            seq_len: (16, 2048),
            embeds: &[32, 64, 80, 128],
        }
    }
}

/// Generates `count` random attention workloads from a seeded RNG.
#[must_use]
pub fn random_workloads(
    config: &GeneratorConfig,
    count: usize,
    seed: u64,
) -> Vec<AttentionWorkload> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|i| {
            let batch = rng.gen_range(config.batch.0..=config.batch.1);
            let heads = rng.gen_range(config.heads.0..=config.heads.1);
            let seq = rng.gen_range(config.seq_len.0..=config.seq_len.1);
            let embed = config.embeds[rng.gen_range(0..config.embeds.len())];
            AttentionWorkload::new(format!("synthetic-{i}"), batch, heads, seq, embed)
        })
        .collect()
}

/// Generates a sweep of sequence lengths for a fixed head/embedding shape
/// (used by the long-context experiments and the §5.6 analysis).
#[must_use]
pub fn seq_len_sweep(heads: usize, embed: usize, seq_lens: &[usize]) -> Vec<AttentionWorkload> {
    seq_lens
        .iter()
        .map(|&n| AttentionWorkload::new(format!("sweep-N{n}"), 1, heads, n, embed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = GeneratorConfig::default();
        let a = random_workloads(&cfg, 10, 3);
        let b = random_workloads(&cfg, 10, 3);
        assert_eq!(a, b);
        let c = random_workloads(&cfg, 10, 4);
        assert_ne!(a, c);
    }

    #[test]
    fn generated_workloads_respect_bounds() {
        let cfg = GeneratorConfig::default();
        for w in random_workloads(&cfg, 50, 7) {
            assert!(w.batch >= cfg.batch.0 && w.batch <= cfg.batch.1);
            assert!(w.heads >= cfg.heads.0 && w.heads <= cfg.heads.1);
            assert!(w.seq_len >= cfg.seq_len.0 && w.seq_len <= cfg.seq_len.1);
            assert!(cfg.embeds.contains(&w.embed));
        }
    }

    #[test]
    fn seq_len_sweep_produces_one_workload_per_length() {
        let sweep = seq_len_sweep(2, 64, &[128, 1024, 8192]);
        assert_eq!(sweep.len(), 3);
        assert_eq!(sweep[1].seq_len, 1024);
        assert!(sweep.iter().all(|w| w.heads == 2 && w.embed == 64));
    }
}
