//! Request-trace generation for the streaming serving runtime.
//!
//! The serving experiments replay a timestamped stream of attention requests
//! against `mas-serve`. This module generates those streams deterministically
//! from a seed: each event carries an arrival time (seconds) and an attention
//! workload drawn from the paper's Table 1 networks.
//!
//! Three arrival processes are provided:
//!
//! * [`ArrivalProcess::Poisson`] — independent exponential inter-arrivals at
//!   a given rate, the standard open-loop serving model,
//! * [`ArrivalProcess::Bursty`] — groups of back-to-back arrivals separated
//!   by idle gaps, with the same long-run rate as the Poisson process (the
//!   hard case for admission control and batching),
//! * [`ArrivalProcess::Uniform`] — a fixed inter-arrival gap (closed-loop
//!   replay, useful for deterministic latency baselines).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use mas_dataflow::AttentionWorkload;

use crate::networks::Network;

/// How request arrival times are spaced.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Poisson process: exponential inter-arrival times at `rate_rps`
    /// requests per second.
    Poisson {
        /// Long-run arrival rate in requests per second.
        rate_rps: f64,
    },
    /// Bursts of `burst_len` simultaneous arrivals, with gaps sized so the
    /// long-run rate is `rate_rps`.
    Bursty {
        /// Long-run arrival rate in requests per second.
        rate_rps: f64,
        /// Number of requests arriving together in each burst.
        burst_len: usize,
    },
    /// A fixed gap of `gap_s` seconds between consecutive requests.
    Uniform {
        /// Inter-arrival gap in seconds.
        gap_s: f64,
    },
}

/// Configuration of one generated trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Arrival process shaping the request timestamps.
    pub arrivals: ArrivalProcess,
    /// Number of requests to generate.
    pub count: usize,
    /// Networks to draw workloads from (uniformly at random). Must be
    /// non-empty.
    pub networks: Vec<Network>,
    /// Batch size of each generated request's workload.
    pub batch: usize,
    /// RNG seed; traces are a pure function of the whole config.
    pub seed: u64,
}

impl TraceConfig {
    /// A Poisson trace over the given networks at `rate_rps`.
    #[must_use]
    pub fn poisson(networks: Vec<Network>, count: usize, rate_rps: f64, seed: u64) -> Self {
        Self {
            arrivals: ArrivalProcess::Poisson { rate_rps },
            count,
            networks,
            batch: 1,
            seed,
        }
    }

    /// A bursty trace with the same long-run rate as [`TraceConfig::poisson`].
    #[must_use]
    pub fn bursty(
        networks: Vec<Network>,
        count: usize,
        rate_rps: f64,
        burst_len: usize,
        seed: u64,
    ) -> Self {
        Self {
            arrivals: ArrivalProcess::Bursty {
                rate_rps,
                burst_len: burst_len.max(1),
            },
            count,
            networks,
            batch: 1,
            seed,
        }
    }
}

/// One timestamped request of a generated trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Arrival time in seconds from the start of the trace (non-decreasing).
    pub arrival_s: f64,
    /// The attention workload requested.
    pub workload: AttentionWorkload,
    /// The Table 1 network the workload was drawn from.
    pub network: Network,
}

/// Generates a request trace from the config.
///
/// Events are returned in non-decreasing arrival order. The trace is a pure
/// function of `config` (bit-identical across runs and platforms).
///
/// # Panics
///
/// Panics if `config.networks` is empty, a rate is non-positive, or the
/// uniform gap is negative.
#[must_use]
pub fn request_trace(config: &TraceConfig) -> Vec<TraceEvent> {
    assert!(
        !config.networks.is_empty(),
        "trace generation needs at least one network"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut events = Vec::with_capacity(config.count);
    let mut now_s = 0.0f64;
    for i in 0..config.count {
        now_s += match config.arrivals {
            ArrivalProcess::Poisson { rate_rps } => {
                assert!(rate_rps > 0.0, "Poisson rate must be positive");
                // Inverse-CDF sample of Exp(rate); u is in [0, 1) so the
                // argument of ln stays in (0, 1].
                let u: f64 = rng.gen_range(0.0..1.0);
                -(1.0 - u).ln() / rate_rps
            }
            ArrivalProcess::Bursty {
                rate_rps,
                burst_len,
            } => {
                assert!(rate_rps > 0.0, "burst rate must be positive");
                if i == 0 || !i.is_multiple_of(burst_len.max(1)) {
                    0.0 // within a burst: simultaneous arrival
                } else {
                    burst_len.max(1) as f64 / rate_rps
                }
            }
            ArrivalProcess::Uniform { gap_s } => {
                assert!(gap_s >= 0.0, "uniform gap must be non-negative");
                if i == 0 {
                    0.0
                } else {
                    gap_s
                }
            }
        };
        let network = config.networks[rng.gen_range(0..config.networks.len())];
        events.push(TraceEvent {
            arrival_s: now_s,
            workload: network.attention_workload(config.batch),
            network,
        });
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nets() -> Vec<Network> {
        vec![Network::BertBase, Network::VitB16, Network::Xlm]
    }

    #[test]
    fn traces_are_deterministic_per_seed() {
        let cfg = TraceConfig::poisson(nets(), 50, 100.0, 7);
        assert_eq!(request_trace(&cfg), request_trace(&cfg));
        let other = TraceConfig::poisson(nets(), 50, 100.0, 8);
        assert_ne!(request_trace(&cfg), request_trace(&other));
    }

    #[test]
    fn arrivals_are_non_decreasing_and_rate_is_respected() {
        let cfg = TraceConfig::poisson(nets(), 400, 200.0, 3);
        let trace = request_trace(&cfg);
        assert_eq!(trace.len(), 400);
        for pair in trace.windows(2) {
            assert!(pair[1].arrival_s >= pair[0].arrival_s);
        }
        // 400 arrivals at 200 rps span ~2 s; allow generous sampling slack.
        let span = trace.last().unwrap().arrival_s;
        assert!((1.0..4.0).contains(&span), "span {span} s");
    }

    #[test]
    fn bursts_arrive_together() {
        let cfg = TraceConfig::bursty(nets(), 12, 100.0, 4, 11);
        let trace = request_trace(&cfg);
        // Requests 0..4 share one timestamp, 4..8 the next, 8..12 the last.
        for chunk in trace.chunks(4) {
            assert!(chunk
                .iter()
                .all(|e| (e.arrival_s - chunk[0].arrival_s).abs() < 1e-12));
        }
        assert!(trace[4].arrival_s > trace[3].arrival_s);
        assert!((trace[4].arrival_s - trace[0].arrival_s - 0.04).abs() < 1e-12);
    }

    #[test]
    fn uniform_gap_spacing() {
        let cfg = TraceConfig {
            arrivals: ArrivalProcess::Uniform { gap_s: 0.5 },
            count: 4,
            networks: nets(),
            batch: 2,
            seed: 1,
        };
        let trace = request_trace(&cfg);
        assert_eq!(trace[0].arrival_s, 0.0);
        assert!((trace[3].arrival_s - 1.5).abs() < 1e-12);
        assert!(trace.iter().all(|e| e.workload.batch == 2));
    }

    #[test]
    fn workloads_match_their_network() {
        let cfg = TraceConfig::poisson(nets(), 30, 50.0, 21);
        for e in request_trace(&cfg) {
            assert_eq!(e.workload, e.network.attention_workload(1));
        }
    }

    #[test]
    #[should_panic(expected = "at least one network")]
    fn empty_network_list_panics() {
        let cfg = TraceConfig::poisson(vec![], 1, 1.0, 0);
        let _ = request_trace(&cfg);
    }
}
