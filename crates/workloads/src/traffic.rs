//! Request-trace generation for the streaming serving runtime.
//!
//! The serving experiments replay a timestamped stream of attention requests
//! against `mas-serve`. This module generates those streams deterministically
//! from a seed: each event carries an arrival time (seconds) and an attention
//! workload drawn from the paper's Table 1 networks.
//!
//! Three arrival processes are provided:
//!
//! * [`ArrivalProcess::Poisson`] — independent exponential inter-arrivals at
//!   a given rate, the standard open-loop serving model,
//! * [`ArrivalProcess::Bursty`] — groups of back-to-back arrivals separated
//!   by idle gaps, with the same long-run rate as the Poisson process (the
//!   hard case for admission control and batching),
//! * [`ArrivalProcess::Uniform`] — a fixed inter-arrival gap (closed-loop
//!   replay, useful for deterministic latency baselines).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use mas_dataflow::AttentionWorkload;

use crate::networks::Network;

/// How request arrival times are spaced.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Poisson process: exponential inter-arrival times at `rate_rps`
    /// requests per second.
    Poisson {
        /// Long-run arrival rate in requests per second.
        rate_rps: f64,
    },
    /// Bursts of `burst_len` simultaneous arrivals, with gaps sized so the
    /// long-run rate is `rate_rps`.
    Bursty {
        /// Long-run arrival rate in requests per second.
        rate_rps: f64,
        /// Number of requests arriving together in each burst.
        burst_len: usize,
    },
    /// A fixed gap of `gap_s` seconds between consecutive requests.
    Uniform {
        /// Inter-arrival gap in seconds.
        gap_s: f64,
    },
}

/// Configuration of one generated trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Arrival process shaping the request timestamps.
    pub arrivals: ArrivalProcess,
    /// Number of requests to generate.
    pub count: usize,
    /// Networks to draw workloads from (uniformly at random). Must be
    /// non-empty.
    pub networks: Vec<Network>,
    /// Batch size of each generated request's workload.
    pub batch: usize,
    /// RNG seed; traces are a pure function of the whole config.
    pub seed: u64,
}

impl TraceConfig {
    /// A Poisson trace over the given networks at `rate_rps`.
    #[must_use]
    pub fn poisson(networks: Vec<Network>, count: usize, rate_rps: f64, seed: u64) -> Self {
        Self {
            arrivals: ArrivalProcess::Poisson { rate_rps },
            count,
            networks,
            batch: 1,
            seed,
        }
    }

    /// A bursty trace with the same long-run rate as [`TraceConfig::poisson`].
    #[must_use]
    pub fn bursty(
        networks: Vec<Network>,
        count: usize,
        rate_rps: f64,
        burst_len: usize,
        seed: u64,
    ) -> Self {
        Self {
            arrivals: ArrivalProcess::Bursty {
                rate_rps,
                burst_len: burst_len.max(1),
            },
            count,
            networks,
            batch: 1,
            seed,
        }
    }
}

/// One timestamped request of a generated trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Arrival time in seconds from the start of the trace (non-decreasing).
    pub arrival_s: f64,
    /// The attention workload requested.
    pub workload: AttentionWorkload,
    /// The Table 1 network the workload was drawn from.
    pub network: Network,
}

/// Generates a request trace from the config.
///
/// Events are returned in non-decreasing arrival order. The trace is a pure
/// function of `config` (bit-identical across runs and platforms).
///
/// # Panics
///
/// Panics if `config.networks` is empty, a rate is non-positive, or the
/// uniform gap is negative.
#[must_use]
pub fn request_trace(config: &TraceConfig) -> Vec<TraceEvent> {
    assert!(
        !config.networks.is_empty(),
        "trace generation needs at least one network"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut events = Vec::with_capacity(config.count);
    let mut now_s = 0.0f64;
    for i in 0..config.count {
        now_s += match config.arrivals {
            ArrivalProcess::Poisson { rate_rps } => {
                assert!(rate_rps > 0.0, "Poisson rate must be positive");
                // Inverse-CDF sample of Exp(rate); u is in [0, 1) so the
                // argument of ln stays in (0, 1].
                let u: f64 = rng.gen_range(0.0..1.0);
                -(1.0 - u).ln() / rate_rps
            }
            ArrivalProcess::Bursty {
                rate_rps,
                burst_len,
            } => {
                assert!(rate_rps > 0.0, "burst rate must be positive");
                if i == 0 || !i.is_multiple_of(burst_len.max(1)) {
                    0.0 // within a burst: simultaneous arrival
                } else {
                    burst_len.max(1) as f64 / rate_rps
                }
            }
            ArrivalProcess::Uniform { gap_s } => {
                assert!(gap_s >= 0.0, "uniform gap must be non-negative");
                if i == 0 {
                    0.0
                } else {
                    gap_s
                }
            }
        };
        let network = config.networks[rng.gen_range(0..config.networks.len())];
        events.push(TraceEvent {
            arrival_s: now_s,
            workload: network.attention_workload(config.batch),
            network,
        });
    }
    events
}

/// Configuration of a generated autoregressive decode trace: sessions open
/// at Poisson times, each with a prompt length and a step count drawn from
/// configured ranges, and the session's decode steps arrive at jittered
/// inter-token gaps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecodeTraceConfig {
    /// Networks whose head count / embedding size sessions draw from
    /// (uniformly at random). Must be non-empty.
    pub networks: Vec<Network>,
    /// Number of sessions to generate.
    pub sessions: usize,
    /// Long-run session arrival rate in sessions per second (Poisson).
    pub session_rate_rps: f64,
    /// Inclusive `(min, max)` prompt length in tokens (the KV cache each
    /// session starts from).
    pub prompt_len: (usize, usize),
    /// Inclusive `(min, max)` number of decode steps per session.
    pub steps_per_session: (usize, usize),
    /// Mean inter-token gap in seconds; actual gaps are exponentially
    /// jittered around it.
    pub token_gap_s: f64,
    /// RNG seed; traces are a pure function of the whole config.
    pub seed: u64,
    /// Shared system-prompt length in tokens. `Some(len)` marks every
    /// session's first `min(len, prompt_len)` tokens as a prefix shared
    /// with all same-network sessions (`DecodeSessionSpec::prefix_group` =
    /// the network's index in [`DecodeTraceConfig::networks`]), modeling a
    /// per-model system prompt. `None` (default) generates fully private
    /// sessions — and leaves the sampled trace byte-identical to configs
    /// predating this field.
    #[serde(default)]
    pub system_prompt_len: Option<usize>,
}

impl DecodeTraceConfig {
    /// A decode trace with Poisson session arrivals and sensible ranges
    /// (prompts of 32–256 tokens, 8–64 steps, 10 ms mean token gap).
    #[must_use]
    pub fn poisson(networks: Vec<Network>, sessions: usize, rate_rps: f64, seed: u64) -> Self {
        Self {
            networks,
            sessions,
            session_rate_rps: rate_rps,
            prompt_len: (32, 256),
            steps_per_session: (8, 64),
            token_gap_s: 0.01,
            seed,
            system_prompt_len: None,
        }
    }

    /// Marks the first `len` tokens of every session's prompt as a shared
    /// per-network system prompt (see
    /// [`DecodeTraceConfig::system_prompt_len`]). Arrival times, shapes and
    /// prompt lengths are unchanged — only the sharing annotation differs.
    #[must_use]
    pub fn with_system_prompt(mut self, len: usize) -> Self {
        self.system_prompt_len = Some(len);
        self
    }
}

/// One decode session of a generated trace: its shape, prompt and step
/// budget.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecodeSessionSpec {
    /// Session id, unique within the trace.
    pub id: u64,
    /// The Table 1 network the session's shape was drawn from.
    pub network: Network,
    /// Time the session opens, in seconds from the start of the trace.
    pub start_s: f64,
    /// Query attention heads of the session's layers.
    pub heads: usize,
    /// Shared key/value heads (`kv_heads ≤ heads`, dividing `heads`) —
    /// grouped-query networks like Llama3-8B store fewer KV heads than
    /// query heads, shrinking per-session KV residency.
    pub kv_heads: usize,
    /// Per-head embedding size.
    pub embed: usize,
    /// Prompt length in tokens (KV-cache residency before the first step).
    pub prompt_len: usize,
    /// Number of decode steps the session will request.
    pub steps: usize,
    /// Cross-session prefix-sharing group: sessions with the same group id
    /// share the whole KV blocks of their common prompt prefix when the
    /// serving policy enables prefix sharing. `None` (default) keeps the
    /// session fully private.
    #[serde(default)]
    pub prefix_group: Option<u64>,
    /// Length in tokens of the prompt prefix shared with the group (already
    /// clamped to `prompt_len` by the generator). Only whole KV blocks of
    /// it are charged group-wide; `0` without a group.
    #[serde(default)]
    pub shared_prefix_len: usize,
}

impl DecodeSessionSpec {
    /// KV-cache residency after the last step, in tokens — what a serving
    /// layer charges against its KV budget for the session's lifetime.
    #[must_use]
    pub fn max_context(&self) -> usize {
        self.prompt_len + self.steps
    }
}

/// One timestamped decode-step request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecodeStepEvent {
    /// The session requesting the step.
    pub session_id: u64,
    /// Zero-based index of the step within its session.
    pub step_index: usize,
    /// Arrival time in seconds from the start of the trace.
    pub arrival_s: f64,
}

/// A generated decode trace: session specs plus their step requests in
/// global arrival order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecodeTrace {
    /// Sessions in start order (ids are their indices).
    pub sessions: Vec<DecodeSessionSpec>,
    /// Step requests sorted by `(arrival_s, session_id, step_index)`.
    pub steps: Vec<DecodeStepEvent>,
}

impl DecodeTrace {
    /// The empty decode trace (no sessions, no steps) — the decode leg of a
    /// prefill-only replay through the unified serve engine.
    #[must_use]
    pub fn empty() -> Self {
        Self {
            sessions: Vec::new(),
            steps: Vec::new(),
        }
    }

    /// Total decode steps across all sessions.
    #[must_use]
    pub fn total_steps(&self) -> usize {
        self.steps.len()
    }
}

/// Generates a decode trace from the config.
///
/// Session starts follow a Poisson process at
/// [`DecodeTraceConfig::session_rate_rps`]; each session's steps arrive at
/// exponentially jittered gaps with mean [`DecodeTraceConfig::token_gap_s`].
/// The trace is a pure function of `config` (bit-identical across runs and
/// platforms).
///
/// # Panics
///
/// Panics if `config.networks` is empty, the rates are non-positive, or a
/// range is inverted or starts at zero.
#[must_use]
pub fn decode_trace(config: &DecodeTraceConfig) -> DecodeTrace {
    assert!(
        !config.networks.is_empty(),
        "decode trace generation needs at least one network"
    );
    assert!(
        config.session_rate_rps > 0.0,
        "session arrival rate must be positive"
    );
    assert!(config.token_gap_s > 0.0, "token gap must be positive");
    let ranges = [config.prompt_len, config.steps_per_session];
    for (lo, hi) in ranges {
        assert!(lo > 0 && lo <= hi, "ranges must be non-empty and ordered");
    }

    let mut rng = StdRng::seed_from_u64(config.seed);
    // Inverse-CDF sample of Exp(1/mean); u in [0, 1) keeps ln's argument in
    // (0, 1].
    let exp_sample = |mean: f64, rng: &mut StdRng| -> f64 {
        let u: f64 = rng.gen_range(0.0..1.0);
        -(1.0 - u).ln() * mean
    };
    let mut sessions = Vec::with_capacity(config.sessions);
    let mut steps = Vec::new();
    let mut now_s = 0.0f64;
    for id in 0..config.sessions as u64 {
        now_s += exp_sample(1.0 / config.session_rate_rps, &mut rng);
        let network_index = rng.gen_range(0..config.networks.len());
        let network = config.networks[network_index];
        let shape = network.attention_workload(1);
        let prompt_len = rng.gen_range(config.prompt_len.0..config.prompt_len.1 + 1);
        // The sharing annotation draws nothing from the RNG, so traces with
        // and without a system prompt have identical arrivals and shapes.
        let (prefix_group, shared_prefix_len) = match config.system_prompt_len {
            Some(len) => (Some(network_index as u64), len.min(prompt_len)),
            None => (None, 0),
        };
        let step_count = rng.gen_range(config.steps_per_session.0..config.steps_per_session.1 + 1);
        let mut t = now_s;
        for step_index in 0..step_count {
            t += exp_sample(config.token_gap_s, &mut rng);
            steps.push(DecodeStepEvent {
                session_id: id,
                step_index,
                arrival_s: t,
            });
        }
        sessions.push(DecodeSessionSpec {
            id,
            network,
            start_s: now_s,
            heads: shape.heads,
            kv_heads: network.kv_heads(),
            embed: shape.embed,
            prompt_len,
            steps: step_count,
            prefix_group,
            shared_prefix_len,
        });
    }
    steps.sort_by(|a, b| {
        a.arrival_s
            .partial_cmp(&b.arrival_s)
            .expect("arrival times are finite")
            .then(a.session_id.cmp(&b.session_id))
            .then(a.step_index.cmp(&b.step_index))
    });
    DecodeTrace { sessions, steps }
}

/// Configuration of a mixed prefill+decode trace: the two generated legs a
/// unified serving replay interleaves on one timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixedTraceConfig {
    /// The prefill request leg.
    pub prefill: TraceConfig,
    /// The decode session/step leg.
    pub decode: DecodeTraceConfig,
}

/// Seed salt decorrelating a mixed trace's decode leg from its prefill leg
/// (the bytes `"mixed_tr"`): both legs derive from one user seed without
/// sampling correlated streams. Exposed so every mixed-trace producer (the
/// [`MixedTraceConfig::poisson`] helper, CLI tools building custom legs)
/// derives the same decode seed for the same user seed.
pub const MIXED_DECODE_SEED_SALT: u64 = 0x6d69_7865_645f_7472;

impl MixedTraceConfig {
    /// A Poisson mixed trace over one network set: `prefill_count` prefill
    /// requests at `prefill_rate_rps` interleaved with `sessions` decode
    /// sessions opening at `session_rate_rps`. The two legs draw from
    /// decorrelated seeds derived from `seed` (the decode leg uses
    /// `seed ^ MIXED_DECODE_SEED_SALT`).
    #[must_use]
    pub fn poisson(
        networks: Vec<Network>,
        prefill_count: usize,
        prefill_rate_rps: f64,
        sessions: usize,
        session_rate_rps: f64,
        seed: u64,
    ) -> Self {
        Self {
            prefill: TraceConfig::poisson(networks.clone(), prefill_count, prefill_rate_rps, seed),
            decode: DecodeTraceConfig::poisson(
                networks,
                sessions,
                session_rate_rps,
                seed ^ MIXED_DECODE_SEED_SALT,
            ),
        }
    }

    /// The shared-system-prompt leg: every decode session's first `len`
    /// prompt tokens become a per-network shared prefix (see
    /// [`DecodeTraceConfig::with_system_prompt`]). The prefill leg and all
    /// arrival times are unchanged.
    #[must_use]
    pub fn with_shared_system_prompt(mut self, len: usize) -> Self {
        self.decode = self.decode.with_system_prompt(len);
        self
    }
}

/// A generated mixed trace: the prefill request events and the decode
/// trace, each internally sorted by arrival. A consumer replaying both
/// classes on one timeline (the serve engine) merges them by arrival time —
/// the deterministic interleaving is a property of the timestamps, not of a
/// combined event list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixedTrace {
    /// Prefill request events in arrival order.
    pub prefill: Vec<TraceEvent>,
    /// Decode sessions and their step events in arrival order.
    pub decode: DecodeTrace,
}

impl MixedTrace {
    /// Total events across both legs (prefill requests plus decode steps).
    #[must_use]
    pub fn total_events(&self) -> usize {
        self.prefill.len() + self.decode.total_steps()
    }
}

/// Generates a mixed prefill+decode trace from the config: the existing
/// prefill and decode generators run with their own (decorrelated) seeds,
/// producing two arrival-timestamped legs over one shared time origin. The
/// trace is a pure function of `config`.
///
/// # Panics
///
/// Panics under the same conditions as [`request_trace`] and
/// [`decode_trace`].
#[must_use]
pub fn mixed_trace(config: &MixedTraceConfig) -> MixedTrace {
    MixedTrace {
        prefill: request_trace(&config.prefill),
        decode: decode_trace(&config.decode),
    }
}

/// Configuration of a deterministic overload burst: steady decode traffic
/// plus a simultaneous burst of long prefill requests — the head-of-line
/// blocking scenario chunked prefill and iteration-level preemption exist
/// for. Unlike the Poisson generators this draws **nothing** from an RNG:
/// session starts are uniformly staggered, decode steps arrive at a fixed
/// inter-token gap, and every burst prefill lands at the same instant, so
/// the trace (and any replay of it) is reproducible term by term.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverloadBurstConfig {
    /// Network supplying the attention shape of both legs.
    pub network: Network,
    /// Steady decode sessions running through the burst.
    pub sessions: usize,
    /// Decode steps per session.
    pub steps_per_session: usize,
    /// Prompt length of every session, in tokens.
    pub prompt_len: usize,
    /// Fixed inter-token gap between a session's steps, in seconds.
    pub token_gap_s: f64,
    /// Fixed stagger between consecutive session starts, in seconds
    /// (decorrelates the steady steps without an RNG).
    pub session_stagger_s: f64,
    /// Long prefill requests arriving together in the burst.
    pub burst_prefills: usize,
    /// The instant the whole burst arrives, in seconds.
    pub burst_at_s: f64,
    /// Sequence length of the burst's first prefill — sized so one
    /// monolithic launch dwarfs a decode step's service time.
    pub burst_seq_len: usize,
    /// Sequence-length increment between consecutive burst prefills:
    /// request `i` asks for `burst_seq_len + i * burst_seq_step` tokens.
    /// `0` makes the burst one coalescible shape (a single giant batch);
    /// nonzero gives every request its own batch key, so the burst becomes
    /// a convoy of back-to-back monolithic launches instead.
    pub burst_seq_step: usize,
    /// Batch dimension of each burst prefill.
    pub burst_batch: usize,
}

impl OverloadBurstConfig {
    /// A steady-decode-plus-prefill-burst scenario on one network: a few
    /// long-context sessions decoding at a 10 ms token gap, hit at 50 ms by
    /// a convoy of 2048+-token prefills (distinct shapes, so they dispatch
    /// as back-to-back monolithic launches rather than one batch).
    #[must_use]
    pub fn new(network: Network) -> Self {
        Self {
            network,
            sessions: 4,
            steps_per_session: 48,
            prompt_len: 2048,
            token_gap_s: 0.01,
            session_stagger_s: 0.0025,
            burst_prefills: 4,
            burst_at_s: 0.05,
            burst_seq_len: 2048,
            burst_seq_step: 256,
            burst_batch: 1,
        }
    }
}

/// Generates the mixed trace of an [`OverloadBurstConfig`]: the decode leg
/// holds `sessions` uniformly staggered sessions stepping at the fixed
/// token gap; the prefill leg holds `burst_prefills` identical long
/// requests all arriving at `burst_at_s` (one coalescible shape — without
/// chunking they seal into one monolithic head-of-line launch). The trace
/// is a pure function of the config; no RNG is involved.
///
/// # Panics
///
/// Panics if the gaps are non-positive, the prompt is empty, or a burst
/// request has a zero dimension.
#[must_use]
pub fn overload_burst_trace(config: &OverloadBurstConfig) -> MixedTrace {
    assert!(config.token_gap_s > 0.0, "token gap must be positive");
    assert!(config.session_stagger_s >= 0.0, "stagger must be >= 0");
    assert!(config.prompt_len > 0, "sessions need a prompt");
    assert!(
        config.burst_seq_len > 0 && config.burst_batch > 0,
        "burst requests need nonzero dimensions"
    );
    let shape = config.network.attention_workload(1);
    let prefill = (0..config.burst_prefills)
        .map(|i| {
            let seq_len = config.burst_seq_len + i * config.burst_seq_step;
            TraceEvent {
                arrival_s: config.burst_at_s,
                workload: AttentionWorkload::new(
                    format!(
                        "burst-{i}-b{}h{}n{}e{}",
                        config.burst_batch, shape.heads, seq_len, shape.embed
                    ),
                    config.burst_batch,
                    shape.heads,
                    seq_len,
                    shape.embed,
                ),
                network: config.network,
            }
        })
        .collect();
    let mut sessions = Vec::with_capacity(config.sessions);
    let mut steps = Vec::new();
    for id in 0..config.sessions as u64 {
        let start_s = id as f64 * config.session_stagger_s;
        for step_index in 0..config.steps_per_session {
            steps.push(DecodeStepEvent {
                session_id: id,
                step_index,
                arrival_s: start_s + (step_index + 1) as f64 * config.token_gap_s,
            });
        }
        sessions.push(DecodeSessionSpec {
            id,
            network: config.network,
            start_s,
            heads: shape.heads,
            kv_heads: config.network.kv_heads(),
            embed: shape.embed,
            prompt_len: config.prompt_len,
            steps: config.steps_per_session,
            prefix_group: None,
            shared_prefix_len: 0,
        });
    }
    steps.sort_by(|a, b| {
        a.arrival_s
            .partial_cmp(&b.arrival_s)
            .expect("arrival times are finite")
            .then(a.session_id.cmp(&b.session_id))
            .then(a.step_index.cmp(&b.step_index))
    });
    MixedTrace {
        prefill,
        decode: DecodeTrace { sessions, steps },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nets() -> Vec<Network> {
        vec![Network::BertBase, Network::VitB16, Network::Xlm]
    }

    #[test]
    fn traces_are_deterministic_per_seed() {
        let cfg = TraceConfig::poisson(nets(), 50, 100.0, 7);
        assert_eq!(request_trace(&cfg), request_trace(&cfg));
        let other = TraceConfig::poisson(nets(), 50, 100.0, 8);
        assert_ne!(request_trace(&cfg), request_trace(&other));
    }

    #[test]
    fn arrivals_are_non_decreasing_and_rate_is_respected() {
        let cfg = TraceConfig::poisson(nets(), 400, 200.0, 3);
        let trace = request_trace(&cfg);
        assert_eq!(trace.len(), 400);
        for pair in trace.windows(2) {
            assert!(pair[1].arrival_s >= pair[0].arrival_s);
        }
        // 400 arrivals at 200 rps span ~2 s; allow generous sampling slack.
        let span = trace.last().unwrap().arrival_s;
        assert!((1.0..4.0).contains(&span), "span {span} s");
    }

    #[test]
    fn bursts_arrive_together() {
        let cfg = TraceConfig::bursty(nets(), 12, 100.0, 4, 11);
        let trace = request_trace(&cfg);
        // Requests 0..4 share one timestamp, 4..8 the next, 8..12 the last.
        for chunk in trace.chunks(4) {
            assert!(chunk
                .iter()
                .all(|e| (e.arrival_s - chunk[0].arrival_s).abs() < 1e-12));
        }
        assert!(trace[4].arrival_s > trace[3].arrival_s);
        assert!((trace[4].arrival_s - trace[0].arrival_s - 0.04).abs() < 1e-12);
    }

    #[test]
    fn uniform_gap_spacing() {
        let cfg = TraceConfig {
            arrivals: ArrivalProcess::Uniform { gap_s: 0.5 },
            count: 4,
            networks: nets(),
            batch: 2,
            seed: 1,
        };
        let trace = request_trace(&cfg);
        assert_eq!(trace[0].arrival_s, 0.0);
        assert!((trace[3].arrival_s - 1.5).abs() < 1e-12);
        assert!(trace.iter().all(|e| e.workload.batch == 2));
    }

    #[test]
    fn workloads_match_their_network() {
        let cfg = TraceConfig::poisson(nets(), 30, 50.0, 21);
        for e in request_trace(&cfg) {
            assert_eq!(e.workload, e.network.attention_workload(1));
        }
    }

    #[test]
    #[should_panic(expected = "at least one network")]
    fn empty_network_list_panics() {
        let cfg = TraceConfig::poisson(vec![], 1, 1.0, 0);
        let _ = request_trace(&cfg);
    }

    #[test]
    fn decode_traces_are_deterministic_per_seed() {
        let cfg = DecodeTraceConfig::poisson(nets(), 10, 50.0, 5);
        assert_eq!(decode_trace(&cfg), decode_trace(&cfg));
        let other = DecodeTraceConfig::poisson(nets(), 10, 50.0, 6);
        assert_ne!(decode_trace(&cfg), decode_trace(&other));
    }

    #[test]
    fn decode_sessions_respect_the_configured_ranges() {
        let cfg = DecodeTraceConfig {
            prompt_len: (4, 9),
            steps_per_session: (2, 5),
            ..DecodeTraceConfig::poisson(nets(), 40, 100.0, 12)
        };
        let trace = decode_trace(&cfg);
        assert_eq!(trace.sessions.len(), 40);
        for s in &trace.sessions {
            assert!((4..=9).contains(&s.prompt_len));
            assert!((2..=5).contains(&s.steps));
            assert_eq!(s.max_context(), s.prompt_len + s.steps);
            let shape = s.network.attention_workload(1);
            assert_eq!((s.heads, s.embed), (shape.heads, shape.embed));
            assert_eq!(s.kv_heads, s.network.kv_heads());
            assert!(s.kv_heads > 0 && s.heads % s.kv_heads == 0);
        }
        // Step count conservation and global ordering.
        let expected: usize = trace.sessions.iter().map(|s| s.steps).sum();
        assert_eq!(trace.total_steps(), expected);
        for pair in trace.steps.windows(2) {
            assert!(pair[1].arrival_s >= pair[0].arrival_s);
        }
    }

    #[test]
    fn decode_steps_arrive_after_their_session_opens_in_order() {
        let cfg = DecodeTraceConfig::poisson(nets(), 12, 200.0, 3);
        let trace = decode_trace(&cfg);
        for session in &trace.sessions {
            let mine: Vec<&DecodeStepEvent> = trace
                .steps
                .iter()
                .filter(|e| e.session_id == session.id)
                .collect();
            assert_eq!(mine.len(), session.steps);
            let mut prev = session.start_s;
            for (i, e) in mine.iter().enumerate() {
                assert_eq!(e.step_index, i, "per-session steps stay ordered");
                assert!(e.arrival_s > prev);
                prev = e.arrival_s;
            }
        }
    }

    #[test]
    fn system_prompt_annotation_leaves_arrivals_and_shapes_unchanged() {
        // The shared-system-prompt leg must not disturb the RNG stream:
        // same seed with and without the annotation gives identical
        // arrivals, shapes, prompt lengths and step schedules.
        let base = DecodeTraceConfig::poisson(nets(), 25, 80.0, 42);
        let shared_cfg = base.clone().with_system_prompt(64);
        let plain = decode_trace(&base);
        let shared = decode_trace(&shared_cfg);
        assert_eq!(plain.steps, shared.steps);
        assert_eq!(plain.sessions.len(), shared.sessions.len());
        for (p, s) in plain.sessions.iter().zip(&shared.sessions) {
            assert_eq!(
                (
                    p.start_s,
                    p.heads,
                    p.kv_heads,
                    p.embed,
                    p.prompt_len,
                    p.steps
                ),
                (
                    s.start_s,
                    s.heads,
                    s.kv_heads,
                    s.embed,
                    s.prompt_len,
                    s.steps
                )
            );
            // Private leg carries no sharing; shared leg groups by network
            // and clamps the prefix to the prompt.
            assert_eq!((p.prefix_group, p.shared_prefix_len), (None, 0));
            assert_eq!(s.shared_prefix_len, 64.min(s.prompt_len));
            let group = s.prefix_group.expect("shared sessions carry a group");
            assert_eq!(nets()[group as usize], s.network);
        }
        // Same-network sessions share a group id.
        for a in &shared.sessions {
            for b in &shared.sessions {
                assert_eq!(a.network == b.network, a.prefix_group == b.prefix_group);
            }
        }
        // The mixed-trace builder threads the annotation through.
        let mixed_cfg =
            MixedTraceConfig::poisson(nets(), 5, 50.0, 10, 40.0, 9).with_shared_system_prompt(32);
        assert_eq!(mixed_cfg.decode.system_prompt_len, Some(32));
        let mixed = mixed_trace(&mixed_cfg);
        assert!(mixed
            .decode
            .sessions
            .iter()
            .all(|s| s.prefix_group.is_some() && s.shared_prefix_len <= s.prompt_len));
    }

    #[test]
    fn grouped_query_networks_produce_gqa_decode_sessions() {
        let cfg = DecodeTraceConfig::poisson(vec![Network::Llama3_8B], 6, 100.0, 17);
        let trace = decode_trace(&cfg);
        for s in &trace.sessions {
            assert_eq!((s.heads, s.kv_heads), (32, 8), "Llama3-8B decodes GQA-4");
        }
    }

    #[test]
    fn mixed_traces_are_deterministic_and_carry_both_legs() {
        let cfg = MixedTraceConfig::poisson(nets(), 30, 1000.0, 8, 100.0, 17);
        let a = mixed_trace(&cfg);
        assert_eq!(a, mixed_trace(&cfg), "pure function of the config");
        assert_eq!(a.prefill.len(), 30);
        assert_eq!(a.decode.sessions.len(), 8);
        assert_eq!(a.total_events(), 30 + a.decode.total_steps());
        // Each leg is internally sorted by arrival.
        for pair in a.prefill.windows(2) {
            assert!(pair[1].arrival_s >= pair[0].arrival_s);
        }
        for pair in a.decode.steps.windows(2) {
            assert!(pair[1].arrival_s >= pair[0].arrival_s);
        }
        // The legs are decorrelated: a different seed changes both.
        let b = mixed_trace(&MixedTraceConfig::poisson(nets(), 30, 1000.0, 8, 100.0, 18));
        assert_ne!(a.prefill, b.prefill);
        assert_ne!(a.decode, b.decode);
    }

    #[test]
    fn overload_burst_trace_is_deterministic_and_rng_free() {
        let cfg = OverloadBurstConfig::new(Network::Llama3_8B);
        let a = overload_burst_trace(&cfg);
        assert_eq!(a, overload_burst_trace(&cfg), "pure function of the config");
        // Every burst prefill arrives at the same instant with the same
        // coalescible shape (method-independent BatchKey fields).
        assert_eq!(a.prefill.len(), cfg.burst_prefills);
        for (i, e) in a.prefill.iter().enumerate() {
            assert_eq!(e.arrival_s, cfg.burst_at_s);
            assert_eq!(
                e.workload.seq_len,
                cfg.burst_seq_len + i * cfg.burst_seq_step,
                "distinct shapes form a convoy, not one batch"
            );
            assert_eq!(e.workload.batch, cfg.burst_batch);
            assert_eq!(e.workload.heads, a.prefill[0].workload.heads);
        }
        // Steady decode leg: staggered sessions, uniform token gaps, steps
        // globally sorted.
        assert_eq!(a.decode.sessions.len(), cfg.sessions);
        assert_eq!(a.decode.total_steps(), cfg.sessions * cfg.steps_per_session);
        for s in &a.decode.sessions {
            assert_eq!(s.start_s, s.id as f64 * cfg.session_stagger_s);
            assert_eq!(s.prompt_len, cfg.prompt_len);
            assert_eq!((s.prefix_group, s.shared_prefix_len), (None, 0));
        }
        for pair in a.decode.steps.windows(2) {
            assert!(pair[1].arrival_s >= pair[0].arrival_s);
        }
        let first = &a.decode.steps[0];
        assert!(
            (first.arrival_s - cfg.token_gap_s).abs() < 1e-12,
            "session 0's first step arrives one token gap after its start"
        );
    }

    #[test]
    fn empty_decode_trace_has_no_work() {
        let t = DecodeTrace::empty();
        assert_eq!(t.total_steps(), 0);
        assert!(t.sessions.is_empty());
    }

    #[test]
    #[should_panic(expected = "ranges must be non-empty")]
    fn inverted_decode_range_panics() {
        let cfg = DecodeTraceConfig {
            prompt_len: (9, 4),
            ..DecodeTraceConfig::poisson(nets(), 1, 1.0, 0)
        };
        let _ = decode_trace(&cfg);
    }
}
