//! Reduced Stable Diffusion 1.5 UNet attention suite (paper §5.2.2).
//!
//! The paper's end-to-end experiment runs a reduced SD-1.5 UNet on the mobile
//! device: "This UNet contains 15 attention units, with the largest attention
//! layer featuring 2 heads, a sequence length of 4096, and an embedding size
//! of 64." The UNet's attention units sit at four spatial resolutions
//! (64×64 → 8×8 latents); each resolution level contributes self-attention
//! units whose sequence length is the number of latent pixels. This module
//! reconstructs a 15-unit suite with exactly that structure and the paper's
//! stated largest unit.

use serde::{Deserialize, Serialize};

use mas_dataflow::AttentionWorkload;

/// One attention unit of the reduced UNet.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SdAttentionUnit {
    /// Name of the unit (block and resolution).
    pub name: String,
    /// The attention workload of the unit.
    pub workload: AttentionWorkload,
    /// How many times this unit executes per denoising step.
    pub repeats: usize,
}

/// Builds the 15-unit reduced SD-1.5 UNet attention suite.
///
/// Resolution levels (latent pixels): 64² = 4096, 32² = 1024, 16² = 256 and
/// 8² = 64 tokens; all units use 2 heads and a per-head embedding of 64, with
/// the 4096-token units being the largest (matching §5.2.2). Down blocks,
/// the middle block and up blocks contribute 15 units in total.
#[must_use]
pub fn sd15_reduced_unet(batch: usize) -> Vec<SdAttentionUnit> {
    let mut units = Vec::new();
    let mut push = |name: String, seq: usize, repeats: usize| {
        units.push(SdAttentionUnit {
            workload: AttentionWorkload::new(name.clone(), batch, 2, seq, 64),
            name,
            repeats,
        });
    };

    // Down path: two attention units per resolution level (64x64 .. 16x16).
    for (level, seq) in [(0usize, 4096usize), (1, 1024), (2, 256)] {
        for block in 0..2 {
            push(format!("down[{level}].attn[{block}] ({seq} tok)"), seq, 1);
        }
    }
    // Middle block: one unit at the lowest resolution.
    push("mid.attn (64 tok)".to_string(), 64, 1);
    // Up path: three attention units per resolution level (16x16 .. 64x64),
    // mirroring the down path with one extra block per level.
    for (level, seq) in [(2usize, 256usize), (1, 1024), (0, 4096)] {
        let blocks = if level == 2 { 2 } else { 3 };
        for block in 0..blocks {
            push(format!("up[{level}].attn[{block}] ({seq} tok)"), seq, 1);
        }
    }
    units
}

/// The largest attention unit of the suite (by softmax elements).
#[must_use]
pub fn largest_unit(units: &[SdAttentionUnit]) -> Option<&SdAttentionUnit> {
    units
        .iter()
        .max_by_key(|u| u.workload.softmax_elements() * u.repeats as u64)
}

/// Total MAC operations of one UNet forward pass (attention blocks only).
#[must_use]
pub fn total_attention_mac_ops(units: &[SdAttentionUnit]) -> u64 {
    units
        .iter()
        .map(|u| u.workload.total_mac_ops() * u.repeats as u64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_fifteen_units() {
        let units = sd15_reduced_unet(1);
        assert_eq!(units.len(), 15, "the paper states 15 attention units");
    }

    #[test]
    fn largest_unit_matches_the_paper() {
        let units = sd15_reduced_unet(1);
        let largest = largest_unit(&units).unwrap();
        assert_eq!(largest.workload.heads, 2);
        assert_eq!(largest.workload.seq_len, 4096);
        assert_eq!(largest.workload.embed, 64);
    }

    #[test]
    fn all_units_share_head_count_and_embedding() {
        for u in sd15_reduced_unet(1) {
            assert_eq!(u.workload.heads, 2);
            assert_eq!(u.workload.embed, 64);
            assert!(u.repeats >= 1);
        }
    }

    #[test]
    fn batch_size_is_propagated() {
        for u in sd15_reduced_unet(2) {
            assert_eq!(u.workload.batch, 2);
        }
    }

    #[test]
    fn total_mac_ops_are_dominated_by_the_largest_units() {
        let units = sd15_reduced_unet(1);
        let total = total_attention_mac_ops(&units);
        let largest = largest_unit(&units).unwrap().workload.total_mac_ops();
        assert!(total > largest);
        // The 4096-token units account for well over half of all work.
        let big: u64 = units
            .iter()
            .filter(|u| u.workload.seq_len == 4096)
            .map(|u| u.workload.total_mac_ops())
            .sum();
        assert!(big * 2 > total);
    }
}
