//! Error types for the accelerator simulator.

use std::fmt;

use crate::task::{Resource, TaskId};

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, SimError>;

/// Errors produced by graph construction and simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A task depends on a task id that has not been added to the graph.
    UnknownDependency {
        /// The task whose dependency is unknown.
        task: TaskId,
        /// The missing dependency id.
        dependency: TaskId,
    },
    /// The task graph contains a cycle and cannot be scheduled.
    CyclicGraph {
        /// Number of tasks that could not be scheduled when progress stopped.
        unscheduled: usize,
    },
    /// A task references a resource that does not exist on the configured
    /// hardware (e.g. core index out of range).
    UnknownResource {
        /// The offending resource.
        resource: Resource,
        /// Number of cores on the configured device.
        cores: usize,
    },
    /// A hardware configuration parameter is invalid (zero cores, zero
    /// bandwidth, ...).
    InvalidConfig {
        /// Description of the invalid parameter.
        reason: String,
    },
    /// An on-chip buffer request exceeded the total L1 capacity.
    BufferOverflow {
        /// Name of the allocation that failed.
        allocation: String,
        /// Requested size in bytes.
        requested: usize,
        /// Free bytes at the time of the request.
        available: usize,
        /// Total L1 capacity in bytes.
        capacity: usize,
    },
    /// An operation referenced a buffer allocation that does not exist.
    UnknownAllocation {
        /// Name of the missing allocation.
        allocation: String,
    },
    /// The simulation produced an empty schedule (no tasks).
    EmptyGraph,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownDependency { task, dependency } => write!(
                f,
                "task {task} depends on unknown task {dependency}"
            ),
            SimError::CyclicGraph { unscheduled } => write!(
                f,
                "task graph contains a dependency cycle ({unscheduled} tasks left unscheduled)"
            ),
            SimError::UnknownResource { resource, cores } => write!(
                f,
                "task requires resource {resource} but the device has only {cores} cores"
            ),
            SimError::InvalidConfig { reason } => {
                write!(f, "invalid hardware configuration: {reason}")
            }
            SimError::BufferOverflow {
                allocation,
                requested,
                available,
                capacity,
            } => write!(
                f,
                "on-chip buffer overflow allocating `{allocation}`: requested {requested} B, {available} B free of {capacity} B"
            ),
            SimError::UnknownAllocation { allocation } => {
                write!(f, "unknown on-chip allocation `{allocation}`")
            }
            SimError::EmptyGraph => write!(f, "task graph is empty"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SimError::BufferOverflow {
            allocation: "P_i".to_string(),
            requested: 4096,
            available: 1024,
            capacity: 8192,
        };
        let msg = e.to_string();
        assert!(msg.contains("P_i"));
        assert!(msg.contains("4096"));
        assert!(msg.contains("1024"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
