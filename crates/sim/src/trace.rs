//! Execution traces.
//!
//! The executor records, for every task, when it started and finished and on
//! which resource it ran. Traces support debugging dataflows (e.g. verifying
//! that MAS-Attention's MAC and VEC streams really overlap while FLAT's do
//! not) and drive the per-resource utilization statistics in the report.

use serde::{Deserialize, Serialize};

use crate::task::{Resource, TaskId};

/// One scheduled task occurrence.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// The task that ran.
    pub task: TaskId,
    /// Label copied from the task for readability.
    pub label: String,
    /// Resource the task occupied.
    pub resource: Resource,
    /// Cycle at which the task started.
    pub start_cycle: u64,
    /// Cycle at which the task finished (exclusive).
    pub end_cycle: u64,
}

impl TraceEntry {
    /// Duration of the entry in cycles.
    #[must_use]
    pub fn duration(&self) -> u64 {
        self.end_cycle - self.start_cycle
    }

    /// Whether this entry overlaps in time with another entry.
    #[must_use]
    pub fn overlaps(&self, other: &TraceEntry) -> bool {
        self.start_cycle < other.end_cycle && other.start_cycle < self.end_cycle
    }
}

/// A full execution trace.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    entries: Vec<TraceEntry>,
}

impl Trace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an entry.
    pub fn push(&mut self, entry: TraceEntry) {
        self.entries.push(entry);
    }

    /// All entries in scheduling order.
    #[must_use]
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// The distinct resources the trace touched, in first-appearance order
    /// (stable track assignment for trace exporters).
    #[must_use]
    pub fn resources(&self) -> Vec<Resource> {
        let mut seen = Vec::new();
        for e in &self.entries {
            if !seen.contains(&e.resource) {
                seen.push(e.resource);
            }
        }
        seen
    }

    /// Entries that ran on a particular resource, in start order.
    #[must_use]
    pub fn on_resource(&self, resource: Resource) -> Vec<&TraceEntry> {
        let mut v: Vec<&TraceEntry> = self
            .entries
            .iter()
            .filter(|e| e.resource == resource)
            .collect();
        v.sort_by_key(|e| e.start_cycle);
        v
    }

    /// Total busy cycles of a resource (sum of entry durations).
    #[must_use]
    pub fn busy_cycles(&self, resource: Resource) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.resource == resource)
            .map(TraceEntry::duration)
            .sum()
    }

    /// Number of cycles during which *both* given resources were busy
    /// simultaneously. Used by tests to verify MAC/VEC overlap in
    /// MAS-Attention and its absence in FLAT.
    #[must_use]
    pub fn overlap_cycles(&self, a: Resource, b: Resource) -> u64 {
        let ea = self.on_resource(a);
        let eb = self.on_resource(b);
        let mut total = 0u64;
        for x in &ea {
            for y in &eb {
                let start = x.start_cycle.max(y.start_cycle);
                let end = x.end_cycle.min(y.end_cycle);
                if end > start {
                    total += end - start;
                }
            }
        }
        total
    }

    /// The makespan: latest end cycle across all entries (0 for an empty
    /// trace).
    #[must_use]
    pub fn makespan(&self) -> u64 {
        self.entries.iter().map(|e| e.end_cycle).max().unwrap_or(0)
    }

    /// Renders a compact textual Gantt-like summary, one line per resource,
    /// for debugging small graphs.
    #[must_use]
    pub fn summary(&self) -> String {
        use std::collections::BTreeMap;
        let mut per_resource: BTreeMap<String, Vec<&TraceEntry>> = BTreeMap::new();
        for e in &self.entries {
            per_resource
                .entry(e.resource.to_string())
                .or_default()
                .push(e);
        }
        let mut out = String::new();
        for (res, mut entries) in per_resource {
            entries.sort_by_key(|e| e.start_cycle);
            out.push_str(&res);
            out.push_str(": ");
            for e in entries {
                out.push_str(&format!(
                    "[{}..{} {}] ",
                    e.start_cycle, e.end_cycle, e.label
                ));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(task: usize, resource: Resource, start: u64, end: u64) -> TraceEntry {
        TraceEntry {
            task: TaskId(task),
            label: format!("t{task}"),
            resource,
            start_cycle: start,
            end_cycle: end,
        }
    }

    #[test]
    fn duration_and_overlap() {
        let a = entry(0, Resource::Mac { core: 0 }, 0, 10);
        let b = entry(1, Resource::Vec { core: 0 }, 5, 15);
        let c = entry(2, Resource::Vec { core: 0 }, 10, 12);
        assert_eq!(a.duration(), 10);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn busy_and_overlap_cycles() {
        let mut t = Trace::new();
        t.push(entry(0, Resource::Mac { core: 0 }, 0, 10));
        t.push(entry(1, Resource::Mac { core: 0 }, 10, 30));
        t.push(entry(2, Resource::Vec { core: 0 }, 5, 25));
        assert_eq!(t.busy_cycles(Resource::Mac { core: 0 }), 30);
        assert_eq!(t.busy_cycles(Resource::Vec { core: 0 }), 20);
        assert_eq!(
            t.overlap_cycles(Resource::Mac { core: 0 }, Resource::Vec { core: 0 }),
            20
        );
        assert_eq!(t.makespan(), 30);
    }

    #[test]
    fn on_resource_sorted_by_start() {
        let mut t = Trace::new();
        t.push(entry(0, Resource::DmaIn, 50, 60));
        t.push(entry(1, Resource::DmaIn, 0, 10));
        let entries = t.on_resource(Resource::DmaIn);
        assert_eq!(entries.len(), 2);
        assert!(entries[0].start_cycle < entries[1].start_cycle);
    }

    #[test]
    fn summary_mentions_every_resource() {
        let mut t = Trace::new();
        t.push(entry(0, Resource::Mac { core: 0 }, 0, 5));
        t.push(entry(1, Resource::DmaOut, 5, 9));
        let s = t.summary();
        assert!(s.contains("MAC0"));
        assert!(s.contains("DMA-out"));
        assert!(s.contains("t1"));
    }

    #[test]
    fn empty_trace_makespan_is_zero() {
        assert_eq!(Trace::new().makespan(), 0);
    }
}
