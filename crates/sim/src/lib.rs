//! # mas-sim
//!
//! An event-driven simulator for resource-constrained edge neural
//! accelerators, replacing the Timeloop + Accelergy + TileFlow toolchain used
//! by the MAS-Attention paper (MLSys 2025) for its simulated-hardware
//! experiments.
//!
//! The simulator consumes three inputs:
//!
//! 1. a **hardware configuration** ([`config::HardwareConfig`]) — clock
//!    frequency, number of cores, MAC-array and VEC-unit geometry, L1/L0
//!    capacities and DRAM bandwidth (the paper's Figure 4 device is
//!    [`config::HardwareConfig::edge_default`]),
//! 2. an **energy model** ([`energy::EnergyModel`]) — per-byte access energies
//!    for DRAM/L1/L0 and per-op energies for the MAC and VEC processing
//!    elements, in the style of Accelergy, and
//! 3. a **task graph** ([`graph::TaskGraph`]) — tiled compute and DMA tasks
//!    with explicit dependencies, produced by the dataflow builders in
//!    `mas-dataflow`.
//!
//! The executor ([`executor::Executor`]) performs a list-scheduled,
//! event-driven simulation across the device's resources (per-core MAC and
//! VEC units, DMA channels) and produces a [`report::SimReport`]: makespan in
//! cycles and seconds, per-resource busy/idle time, energy broken down by
//! component (Figure 6), and DRAM read/write traffic (§5.4).
//!
//! ## Example
//!
//! ```
//! use mas_sim::config::HardwareConfig;
//! use mas_sim::energy::EnergyModel;
//! use mas_sim::graph::TaskGraph;
//! use mas_sim::task::{TaskKind, Resource};
//! use mas_sim::executor::Executor;
//!
//! let hw = HardwareConfig::edge_default();
//! let mut graph = TaskGraph::new();
//! // Load a 1 KiB tile, multiply, then store the result.
//! let load = graph.add_task("load K tile", Resource::DmaIn, TaskKind::DramLoad { bytes: 1024 }, &[]);
//! let mm = graph.add_task(
//!     "C = Q K^T",
//!     Resource::Mac { core: 0 },
//!     TaskKind::MatMul { m: 16, k: 64, n: 16 },
//!     &[load],
//! );
//! graph.add_task("store C tile", Resource::DmaOut, TaskKind::DramStore { bytes: 512 }, &[mm]);
//!
//! let report = Executor::new(hw, EnergyModel::edge_16nm()).run(&graph).unwrap();
//! assert!(report.total_cycles > 0);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod buffer;
pub mod config;
pub mod energy;
pub mod error;
pub mod executor;
pub mod graph;
pub mod report;
pub mod task;
pub mod timing;
pub mod trace;

pub use config::HardwareConfig;
pub use energy::{EnergyBreakdown, EnergyModel};
pub use error::{Result, SimError};
pub use executor::{DeviceTracks, Executor, StageSpan, TrackConfig, TrackPlacement};
pub use graph::TaskGraph;
pub use report::SimReport;
pub use task::{Resource, TaskId, TaskKind, TrackKind, TRACK_COUNT};
