//! Analytical timing model for compute units and DMA channels.
//!
//! The model follows the structure used by Timeloop-style analytical
//! simulators: the latency of a tile is derived from the tile's operation
//! count and the unit's geometry, plus a fixed fill/drain and issue overhead.
//!
//! * **MAC unit** (one per core, `rows × cols` processing elements):
//!   a `[m × k] · [k × n]` tile takes `ceil(m/rows) · ceil(n/cols) · k`
//!   cycles — each output sub-block of the systolic array needs `k` cycles —
//!   plus `mac_fill_drain_cycles` per launch.
//! * **VEC unit** (one per core, `lanes` lanes): an element-wise pass over
//!   `x` elements takes `ceil(x / lanes)` cycles; a softmax tile of
//!   `rows × cols` elements costs `softmax_ops_per_element` lane-operations
//!   per element (max/subtract/exp/sum/normalize passes, with the exponential
//!   dominating), i.e. `ceil(rows·cols·ops / lanes)` cycles.
//! * **DMA channel**: a transfer of `b` bytes takes `b / dram_bytes_per_cycle`
//!   cycles; inbound and outbound channels are modelled as separate resources
//!   that each see the full DRAM bandwidth (the paper's dataflows never
//!   saturate both directions simultaneously — stores are only final outputs).

use crate::config::HardwareConfig;
use crate::task::{TaskKind, TRACK_COUNT};

/// Timing model derived from a [`HardwareConfig`].
#[derive(Debug, Clone)]
pub struct TimingModel {
    hw: HardwareConfig,
}

impl TimingModel {
    /// Creates a timing model for the given hardware.
    #[must_use]
    pub fn new(hw: HardwareConfig) -> Self {
        Self { hw }
    }

    /// The underlying hardware configuration.
    #[must_use]
    pub fn hardware(&self) -> &HardwareConfig {
        &self.hw
    }

    /// Cycles for a tiled matrix multiplication on one core's MAC unit.
    #[must_use]
    pub fn matmul_cycles(&self, m: usize, k: usize, n: usize) -> u64 {
        if m == 0 || k == 0 || n == 0 {
            return 0;
        }
        let row_tiles = m.div_ceil(self.hw.mac_array_rows) as u64;
        let col_tiles = n.div_ceil(self.hw.mac_array_cols) as u64;
        row_tiles * col_tiles * k as u64 + self.hw.mac_fill_drain_cycles
    }

    /// Cycles for a row-wise softmax tile on one core's VEC unit.
    #[must_use]
    pub fn softmax_cycles(&self, rows: usize, cols: usize) -> u64 {
        if rows == 0 || cols == 0 {
            return 0;
        }
        let ops = (rows as u64) * (cols as u64) * self.hw.softmax_ops_per_element as u64;
        ops.div_ceil(self.hw.vec_lanes as u64)
    }

    /// Cycles for a generic element-wise workload on one core's VEC unit.
    #[must_use]
    pub fn vec_op_cycles(&self, elements: usize, passes: usize) -> u64 {
        if elements == 0 || passes == 0 {
            return 0;
        }
        let ops = (elements as u64) * (passes as u64);
        ops.div_ceil(self.hw.vec_lanes as u64)
    }

    /// Cycles for a DRAM↔L1 transfer of `bytes` bytes.
    #[must_use]
    pub fn dma_cycles(&self, bytes: usize) -> u64 {
        if bytes == 0 {
            return 0;
        }
        let per_cycle = self.hw.dram_bytes_per_cycle();
        (bytes as f64 / per_cycle).ceil() as u64
    }

    /// Duration in cycles of an arbitrary task kind, including the fixed
    /// issue overhead for compute tasks.
    #[must_use]
    pub fn task_cycles(&self, kind: &TaskKind) -> u64 {
        let base = match kind {
            TaskKind::MatMul { m, k, n } => self.matmul_cycles(*m, *k, *n),
            TaskKind::Softmax { rows, cols } => self.softmax_cycles(*rows, *cols),
            TaskKind::VecOp { elements, passes } => self.vec_op_cycles(*elements, *passes),
            TaskKind::DramLoad { bytes } | TaskKind::DramStore { bytes } => self.dma_cycles(*bytes),
            TaskKind::Barrier => 0,
        };
        if kind.is_compute() && base > 0 {
            base + self.hw.issue_overhead_cycles
        } else {
            base
        }
    }

    /// Makespan in cycles of a stage pipeline
    /// ([`crate::graph::TaskGraph::stage_pipeline`]) under per-track FIFO
    /// flow-shop scheduling: stage `k`'s task on track `t` starts at the
    /// later of the track's clock and the completion of stage `k`'s task on
    /// the previous track. This closed form equals the event-driven
    /// executor's makespan on the lowered graph — it is the cycle-level
    /// counterpart of the continuous-time `DeviceTracks::plan` recurrence.
    #[must_use]
    pub fn pipeline_makespan_cycles(&self, stages: &[[Option<TaskKind>; TRACK_COUNT]]) -> u64 {
        let mut clocks = [0u64; TRACK_COUNT];
        let mut makespan = 0u64;
        for stage in stages {
            let mut dep_done = 0u64;
            for (t, kind) in stage.iter().enumerate() {
                let Some(kind) = kind else { continue };
                let start = clocks[t].max(dep_done);
                let end = start + self.task_cycles(kind);
                clocks[t] = end;
                dep_done = end;
                makespan = makespan.max(end);
            }
        }
        makespan
    }

    /// Ideal (roofline) cycles for a full attention layer on this device:
    /// the larger of the MAC-stream time (both MatMuls, spread over all
    /// cores) and the VEC-stream time (softmax, spread over all cores). This
    /// is the lower bound MAS-Attention approaches with perfect pipelining
    /// and balanced tiling, useful for sanity checks and search-result
    /// normalization.
    #[must_use]
    pub fn attention_roofline_cycles(
        &self,
        batch: usize,
        heads: usize,
        seq: usize,
        embed: usize,
    ) -> u64 {
        let slices = (batch * heads) as u64;
        let mac_ops = 2 * slices * (seq as u64) * (seq as u64) * (embed as u64);
        let vec_ops = slices * (seq as u64) * (seq as u64) * self.hw.softmax_ops_per_element as u64;
        let mac_cycles = mac_ops.div_ceil(self.hw.macs_per_cycle_total() as u64);
        let vec_cycles = vec_ops.div_ceil(self.hw.vec_ops_per_cycle_total() as u64);
        mac_cycles.max(vec_cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> TimingModel {
        TimingModel::new(HardwareConfig::edge_default())
    }

    #[test]
    fn matmul_cycles_match_closed_form() {
        let t = model();
        // 64x64x64 tile: 4*4 output sub-blocks, 64 cycles each = 1024 + fill.
        assert_eq!(t.matmul_cycles(64, 64, 64), 4 * 4 * 64 + 32);
        // Degenerate dimensions cost nothing.
        assert_eq!(t.matmul_cycles(0, 64, 64), 0);
    }

    #[test]
    fn matmul_cycles_pad_to_array_size() {
        let t = model();
        // 17 rows needs two row-tiles on a 16-row array.
        assert_eq!(t.matmul_cycles(17, 8, 16), 2 * 8 + 32);
        assert_eq!(t.matmul_cycles(16, 8, 17), 2 * 8 + 32);
    }

    #[test]
    fn softmax_cycles_scale_linearly() {
        let t = model();
        let one = t.softmax_cycles(1, 512);
        let four = t.softmax_cycles(4, 512);
        assert_eq!(four, one * 4);
        assert_eq!(t.softmax_cycles(0, 512), 0);
        // 1 row of 512 elements at 64 ops/element on 256 lanes = 128 cycles.
        assert_eq!(one, 512 * 64 / 256);
    }

    #[test]
    fn dma_cycles_follow_bandwidth() {
        let t = model();
        // 8 bytes per cycle at the paper's 30 GB/s @ 3.75 GHz.
        assert_eq!(t.dma_cycles(8), 1);
        assert_eq!(t.dma_cycles(80), 10);
        assert_eq!(t.dma_cycles(81), 11);
        assert_eq!(t.dma_cycles(0), 0);
    }

    #[test]
    fn task_cycles_add_issue_overhead_only_for_compute() {
        let t = model();
        let mm = TaskKind::MatMul {
            m: 16,
            k: 16,
            n: 16,
        };
        assert_eq!(t.task_cycles(&mm), t.matmul_cycles(16, 16, 16) + 16);
        let ld = TaskKind::DramLoad { bytes: 800 };
        assert_eq!(t.task_cycles(&ld), 100);
        assert_eq!(t.task_cycles(&TaskKind::Barrier), 0);
    }

    #[test]
    fn roofline_is_mac_bound_for_e64_and_above() {
        let t = model();
        // BERT-Base attention: H=12, N=512, E=64.
        let roof = t.attention_roofline_cycles(1, 12, 512, 64);
        let mac = 2u64 * 12 * 512 * 512 * 64 / 512;
        assert_eq!(
            roof, mac,
            "with the default calibration the MAC stream dominates"
        );
        // The roofline is monotone in every dimension.
        assert!(t.attention_roofline_cycles(1, 12, 512, 128) > roof);
        assert!(t.attention_roofline_cycles(2, 12, 512, 64) > roof);
    }

    #[test]
    fn roofline_becomes_vec_bound_for_tiny_embedding() {
        let t = model();
        // E = 16 makes the softmax stream dominate (64 ops/elem vs 2*16 MACs).
        let roof = t.attention_roofline_cycles(1, 1, 256, 16);
        let vec = 256u64 * 256 * 64 / 512;
        assert_eq!(roof, vec);
    }
}
