//! Simulation reports.
//!
//! A [`SimReport`] is the simulator's counterpart of the quantities the paper
//! reports: execution cycles (Table 2), energy and its per-component
//! breakdown (Table 3 / Figure 6), DRAM read/write traffic (§5.4) and
//! per-unit utilization (the pipelining quality MAS-Attention optimizes).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use crate::energy::EnergyBreakdown;
use crate::task::Resource;
use crate::trace::Trace;

/// Aggregated results of simulating one task graph on one device.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    /// Total execution time in cycles (makespan of the schedule).
    pub total_cycles: u64,
    /// Total execution time in seconds at the configured clock.
    pub total_seconds: f64,
    /// Energy broken down by component (Figure 6).
    pub energy: EnergyBreakdown,
    /// Bytes read from DRAM.
    pub dram_read_bytes: u64,
    /// Bytes written to DRAM.
    pub dram_write_bytes: u64,
    /// Total multiply-accumulate operations executed.
    pub mac_ops: u64,
    /// Total VEC-lane operations executed.
    pub vec_ops: u64,
    /// Busy cycles per resource (stringified resource name → cycles).
    pub busy_cycles: BTreeMap<String, u64>,
    /// Number of tasks executed.
    pub tasks_executed: usize,
    /// Cycles during which at least one MAC unit and one VEC unit were busy
    /// simultaneously — the parallelism MAS-Attention introduces.
    pub mac_vec_overlap_cycles: u64,
    /// The execution trace (present unless tracing was disabled).
    #[serde(skip)]
    pub trace: Option<Trace>,
}

impl SimReport {
    /// Total energy in picojoules.
    #[must_use]
    pub fn total_energy_pj(&self) -> f64 {
        self.energy.total_pj()
    }

    /// Total energy in units of 10⁹ pJ, the unit used by the paper's Table 3.
    #[must_use]
    pub fn total_energy_gpj(&self) -> f64 {
        self.energy.total_pj() / 1e9
    }

    /// Utilization (busy fraction of the makespan) of one resource, in
    /// `[0, 1]`. Returns 0 for unknown resources or an empty schedule.
    #[must_use]
    pub fn utilization(&self, resource: Resource) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        let busy = self
            .busy_cycles
            .get(&resource.to_string())
            .copied()
            .unwrap_or(0);
        busy as f64 / self.total_cycles as f64
    }

    /// Speedup of this report relative to a baseline (`baseline / self`).
    #[must_use]
    pub fn speedup_over(&self, baseline: &SimReport) -> f64 {
        if self.total_cycles == 0 {
            return f64::INFINITY;
        }
        baseline.total_cycles as f64 / self.total_cycles as f64
    }

    /// Energy saving of this report relative to a baseline, as a fraction in
    /// `[-inf, 1]`: `1 − self/baseline`. Negative values mean this schedule
    /// uses more energy than the baseline (as MAS-Attention does versus
    /// FuseMax for some workloads in Table 3).
    #[must_use]
    pub fn energy_saving_over(&self, baseline: &SimReport) -> f64 {
        let base = baseline.total_energy_pj();
        if base == 0.0 {
            return 0.0;
        }
        1.0 - self.total_energy_pj() / base
    }
}

/// Geometric mean of a sequence of positive values; returns `None` for an
/// empty sequence or when any value is non-positive.
///
/// The paper summarizes both Table 2 (speedups) and Table 3 (savings ratios)
/// with geometric means.
#[must_use]
pub fn geometric_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0) {
        return None;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(cycles: u64, energy_pj: f64) -> SimReport {
        SimReport {
            total_cycles: cycles,
            total_seconds: cycles as f64 / 1e9,
            energy: EnergyBreakdown {
                dram_pj: energy_pj,
                ..EnergyBreakdown::zero()
            },
            dram_read_bytes: 0,
            dram_write_bytes: 0,
            mac_ops: 0,
            vec_ops: 0,
            busy_cycles: BTreeMap::new(),
            tasks_executed: 0,
            mac_vec_overlap_cycles: 0,
            trace: None,
        }
    }

    #[test]
    fn speedup_and_savings() {
        let fast = report(100, 50.0);
        let slow = report(250, 100.0);
        assert!((fast.speedup_over(&slow) - 2.5).abs() < 1e-12);
        assert!((fast.energy_saving_over(&slow) - 0.5).abs() < 1e-12);
        // Negative savings when the candidate uses more energy.
        assert!(slow.energy_saving_over(&fast) < 0.0);
    }

    #[test]
    fn energy_units() {
        let r = report(1, 2.5e9);
        assert!((r.total_energy_gpj() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn utilization_reads_busy_map() {
        let mut r = report(200, 0.0);
        r.busy_cycles.insert("MAC0".to_string(), 150);
        assert!((r.utilization(Resource::Mac { core: 0 }) - 0.75).abs() < 1e-12);
        assert_eq!(r.utilization(Resource::Vec { core: 0 }), 0.0);
    }

    #[test]
    fn geometric_mean_basics() {
        assert!(geometric_mean(&[]).is_none());
        assert!(geometric_mean(&[1.0, 0.0]).is_none());
        assert!((geometric_mean(&[2.0, 8.0]).unwrap() - 4.0).abs() < 1e-12);
        assert!((geometric_mean(&[3.0]).unwrap() - 3.0).abs() < 1e-12);
    }
}
