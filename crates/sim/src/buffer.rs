//! Shared L1 scratchpad occupancy tracking.
//!
//! The dataflow builders use [`L1Buffer`] while *constructing* a schedule to
//! decide whether the tiles required by a computation round fit on-chip. It
//! is the mechanism behind the paper's proactive buffer-overwrite strategy
//! (§4.3): when allocating the softmax output `P_i` would overflow the
//! scratchpad, the builder asks the buffer which victim allocation (the
//! on-chip `K` or `V` tile) to overwrite, frees it, and schedules the
//! corresponding DRAM reload + MatMul redo.
//!
//! Allocations are tracked by name with byte sizes; the tracker also records
//! the high-water mark and every overwrite event so that tests and reports
//! can audit the strategy.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use crate::error::{Result, SimError};

/// A record of one proactive overwrite event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OverwriteEvent {
    /// Name of the allocation that was overwritten (victim).
    pub victim: String,
    /// Name of the allocation that needed the space.
    pub requester: String,
    /// Bytes freed by evicting the victim.
    pub bytes_freed: usize,
}

/// Tracks named allocations within the shared L1 scratchpad.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct L1Buffer {
    capacity: usize,
    allocations: BTreeMap<String, usize>,
    high_water_mark: usize,
    overwrites: Vec<OverwriteEvent>,
}

impl L1Buffer {
    /// Creates a tracker for a scratchpad of `capacity` bytes.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            allocations: BTreeMap::new(),
            high_water_mark: 0,
            overwrites: Vec::new(),
        }
    }

    /// Total capacity in bytes.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes currently allocated.
    #[must_use]
    pub fn used(&self) -> usize {
        self.allocations.values().sum()
    }

    /// Bytes currently free.
    #[must_use]
    pub fn free(&self) -> usize {
        self.capacity.saturating_sub(self.used())
    }

    /// Largest occupancy seen since construction (bytes).
    #[must_use]
    pub fn high_water_mark(&self) -> usize {
        self.high_water_mark
    }

    /// The overwrite events recorded so far, in order.
    #[must_use]
    pub fn overwrites(&self) -> &[OverwriteEvent] {
        &self.overwrites
    }

    /// Size of the named allocation, if present.
    #[must_use]
    pub fn size_of(&self, name: &str) -> Option<usize> {
        self.allocations.get(name).copied()
    }

    /// Whether the named allocation currently resides in L1.
    #[must_use]
    pub fn contains(&self, name: &str) -> bool {
        self.allocations.contains_key(name)
    }

    /// Whether an allocation of `bytes` more would fit right now.
    #[must_use]
    pub fn fits(&self, bytes: usize) -> bool {
        self.free() >= bytes
    }

    /// Allocates `bytes` under `name`. Re-allocating an existing name
    /// replaces its size (the tile is simply refilled in place).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BufferOverflow`] if the allocation does not fit.
    pub fn allocate(&mut self, name: impl Into<String>, bytes: usize) -> Result<()> {
        let name = name.into();
        let existing = self.allocations.get(&name).copied().unwrap_or(0);
        let needed_free = bytes.saturating_sub(existing);
        if needed_free > self.free() {
            return Err(SimError::BufferOverflow {
                allocation: name,
                requested: bytes,
                available: self.free() + existing,
                capacity: self.capacity,
            });
        }
        self.allocations.insert(name, bytes);
        self.high_water_mark = self.high_water_mark.max(self.used());
        Ok(())
    }

    /// Frees the named allocation, returning the bytes released.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownAllocation`] if the name is not allocated.
    pub fn free_allocation(&mut self, name: &str) -> Result<usize> {
        self.allocations
            .remove(name)
            .ok_or_else(|| SimError::UnknownAllocation {
                allocation: name.to_string(),
            })
    }

    /// Proactively overwrites `victim` to make room for `requester`,
    /// recording the event (paper §4.3, Figures 2–3). The victim's space is
    /// freed; the caller is responsible for scheduling the DRAM reload of
    /// the victim and the redo of any interrupted MatMul.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownAllocation`] if the victim is not resident.
    pub fn overwrite(&mut self, victim: &str, requester: impl Into<String>) -> Result<usize> {
        let bytes = self.free_allocation(victim)?;
        self.overwrites.push(OverwriteEvent {
            victim: victim.to_string(),
            requester: requester.into(),
            bytes_freed: bytes,
        });
        Ok(bytes)
    }

    /// Allocates `bytes` under `name`, evicting victims from
    /// `victim_priority` (in order) until the allocation fits. Returns the
    /// list of victims actually evicted.
    ///
    /// This is the complete §4.3 policy: the softmax output `P_i` must be
    /// kept on-chip at all costs (it cannot be refetched), so resident `V`
    /// or `K` tiles — which *can* be reloaded from DRAM — are sacrificed.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BufferOverflow`] if the allocation still does not
    /// fit after every candidate victim has been evicted.
    pub fn allocate_with_eviction(
        &mut self,
        name: impl Into<String>,
        bytes: usize,
        victim_priority: &[&str],
    ) -> Result<Vec<String>> {
        let name = name.into();
        let mut evicted = Vec::new();
        if self.allocate(name.clone(), bytes).is_ok() {
            return Ok(evicted);
        }
        for victim in victim_priority {
            if !self.contains(victim) {
                continue;
            }
            self.overwrite(victim, name.clone())?;
            evicted.push((*victim).to_string());
            if self.fits(bytes.saturating_sub(self.size_of(&name).unwrap_or(0))) {
                break;
            }
        }
        self.allocate(name, bytes)?;
        Ok(evicted)
    }

    /// Removes every allocation (end of a computation round / workload).
    pub fn clear(&mut self) {
        self.allocations.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_and_free_track_usage() {
        let mut b = L1Buffer::new(1000);
        b.allocate("Q_i", 400).unwrap();
        b.allocate("K_j", 300).unwrap();
        assert_eq!(b.used(), 700);
        assert_eq!(b.free(), 300);
        assert_eq!(b.high_water_mark(), 700);
        assert_eq!(b.free_allocation("Q_i").unwrap(), 400);
        assert_eq!(b.used(), 300);
        // High-water mark does not decrease.
        assert_eq!(b.high_water_mark(), 700);
    }

    #[test]
    fn reallocation_replaces_size() {
        let mut b = L1Buffer::new(1000);
        b.allocate("C_i", 600).unwrap();
        b.allocate("C_i", 200).unwrap();
        assert_eq!(b.used(), 200);
        assert_eq!(b.size_of("C_i"), Some(200));
    }

    #[test]
    fn overflow_is_reported_with_details() {
        let mut b = L1Buffer::new(512);
        b.allocate("V_j", 512).unwrap();
        let err = b.allocate("P_i", 1).unwrap_err();
        match err {
            SimError::BufferOverflow {
                allocation,
                requested,
                available,
                capacity,
            } => {
                assert_eq!(allocation, "P_i");
                assert_eq!(requested, 1);
                assert_eq!(available, 0);
                assert_eq!(capacity, 512);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn unknown_allocation_errors() {
        let mut b = L1Buffer::new(100);
        assert!(matches!(
            b.free_allocation("missing"),
            Err(SimError::UnknownAllocation { .. })
        ));
        assert!(b.overwrite("missing", "P_i").is_err());
    }

    #[test]
    fn overwrite_records_event() {
        let mut b = L1Buffer::new(1000);
        b.allocate("V", 600).unwrap();
        let freed = b.overwrite("V", "P_i").unwrap();
        assert_eq!(freed, 600);
        assert_eq!(b.overwrites().len(), 1);
        assert_eq!(b.overwrites()[0].victim, "V");
        assert_eq!(b.overwrites()[0].requester, "P_i");
        assert!(!b.contains("V"));
    }

    #[test]
    fn allocate_with_eviction_prefers_earlier_victims() {
        let mut b = L1Buffer::new(1000);
        b.allocate("K", 400).unwrap();
        b.allocate("V", 400).unwrap();
        // 300 bytes needed, only 200 free: evict V first (priority order).
        let evicted = b.allocate_with_eviction("P_i", 300, &["V", "K"]).unwrap();
        assert_eq!(evicted, vec!["V".to_string()]);
        assert!(b.contains("K"));
        assert!(b.contains("P_i"));
    }

    #[test]
    fn allocate_with_eviction_fails_when_nothing_helps() {
        let mut b = L1Buffer::new(100);
        b.allocate("K", 50).unwrap();
        let err = b.allocate_with_eviction("P_i", 400, &["K"]).unwrap_err();
        assert!(matches!(err, SimError::BufferOverflow { .. }));
    }

    #[test]
    fn allocate_with_eviction_without_pressure_evicts_nothing() {
        let mut b = L1Buffer::new(1000);
        b.allocate("K", 100).unwrap();
        let evicted = b.allocate_with_eviction("P_i", 100, &["K"]).unwrap();
        assert!(evicted.is_empty());
        assert!(b.contains("K"));
    }

    #[test]
    fn clear_resets_allocations_but_not_history() {
        let mut b = L1Buffer::new(1000);
        b.allocate("K", 100).unwrap();
        b.overwrite("K", "P").unwrap();
        b.allocate("V", 100).unwrap();
        b.clear();
        assert_eq!(b.used(), 0);
        assert_eq!(b.overwrites().len(), 1);
        assert_eq!(b.high_water_mark(), 100);
    }
}
