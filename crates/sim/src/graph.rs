//! Dependency graphs of tasks.
//!
//! A [`TaskGraph`] is an append-only DAG: tasks are added in program order
//! with explicit dependency edges, the way the dataflow builders in
//! `mas-dataflow` lower Algorithm 1's rounds into MAC-stream and VEC-stream
//! work items. The executor schedules a graph without mutating it, so one
//! graph can be simulated under several hardware configurations.

use serde::{Deserialize, Serialize};

use crate::error::{Result, SimError};
use crate::task::{Resource, Task, TaskId, TaskKind, TrackKind, TRACK_COUNT};

/// An append-only directed acyclic graph of [`Task`]s.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TaskGraph {
    tasks: Vec<Task>,
}

impl TaskGraph {
    /// Creates an empty graph.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a task and returns its id.
    ///
    /// Dependencies on ids not yet in the graph are allowed at insertion time
    /// (they are validated by [`TaskGraph::validate`] and by the executor),
    /// but by construction the dataflow builders only reference earlier
    /// tasks, which also guarantees acyclicity.
    pub fn add_task(
        &mut self,
        label: impl Into<String>,
        resource: Resource,
        kind: TaskKind,
        deps: &[TaskId],
    ) -> TaskId {
        let id = TaskId(self.tasks.len());
        self.tasks.push(Task {
            id,
            label: label.into(),
            resource,
            kind,
            deps: deps.to_vec(),
        });
        id
    }

    /// Appends a per-tile stage pipeline: for each stage, one task per
    /// present track kind placed on that track's resource
    /// ([`TrackKind::resource`]), dependency-chained in dataflow order
    /// within the stage (DMA-in → MAC → VEC → writeback). Across stages the
    /// only ordering is per-resource FIFO (program order), which is exactly
    /// what lets stage `k+1`'s DMA run under stage `k`'s compute — this is
    /// the cycle-level lowering of the continuous-time track executor
    /// (`DeviceTracks::plan`), and the two agree on the makespan when issue
    /// and fill/drain overheads are zero.
    ///
    /// Returns the ids of the appended tasks in insertion order.
    pub fn stage_pipeline(
        &mut self,
        label_prefix: &str,
        stages: &[[Option<TaskKind>; TRACK_COUNT]],
    ) -> Vec<TaskId> {
        let mut ids = Vec::new();
        for (k, stage) in stages.iter().enumerate() {
            let mut prev: Option<TaskId> = None;
            for (t, kind) in stage.iter().enumerate() {
                let Some(kind) = kind else { continue };
                let track = TrackKind::ALL[t];
                let deps: Vec<TaskId> = prev.into_iter().collect();
                let id = self.add_task(
                    format!("{label_prefix}/s{k}-{track}"),
                    track.resource(),
                    *kind,
                    &deps,
                );
                prev = Some(id);
                ids.push(id);
            }
        }
        ids
    }

    /// Number of tasks in the graph.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the graph has no tasks.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Iterates over tasks in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Task> {
        self.tasks.iter()
    }

    /// Returns the task with the given id, if present.
    #[must_use]
    pub fn get(&self, id: TaskId) -> Option<&Task> {
        self.tasks.get(id.0)
    }

    /// Total bytes read from DRAM across all tasks.
    #[must_use]
    pub fn dram_read_bytes(&self) -> u64 {
        self.tasks.iter().map(|t| t.kind.dram_read_bytes()).sum()
    }

    /// Total bytes written to DRAM across all tasks.
    #[must_use]
    pub fn dram_write_bytes(&self) -> u64 {
        self.tasks.iter().map(|t| t.kind.dram_write_bytes()).sum()
    }

    /// Total multiply-accumulate operations across all tasks.
    #[must_use]
    pub fn total_mac_ops(&self) -> u64 {
        self.tasks.iter().map(|t| t.kind.mac_ops()).sum()
    }

    /// Total VEC-lane operations across all tasks for a given softmax cost.
    #[must_use]
    pub fn total_vec_ops(&self, softmax_ops_per_element: usize) -> u64 {
        self.tasks
            .iter()
            .map(|t| t.kind.vec_ops(softmax_ops_per_element))
            .sum()
    }

    /// Validates that every dependency refers to an existing task and that
    /// the graph is acyclic.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownDependency`] or [`SimError::CyclicGraph`].
    pub fn validate(&self) -> Result<()> {
        for task in &self.tasks {
            for dep in &task.deps {
                if dep.0 >= self.tasks.len() {
                    return Err(SimError::UnknownDependency {
                        task: task.id,
                        dependency: *dep,
                    });
                }
            }
        }
        // Kahn's algorithm to detect cycles.
        let n = self.tasks.len();
        let mut indegree = vec![0usize; n];
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        for task in &self.tasks {
            for dep in &task.deps {
                indegree[task.id.0] += 1;
                dependents[dep.0].push(task.id.0);
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut visited = 0usize;
        while let Some(i) = queue.pop() {
            visited += 1;
            for &d in &dependents[i] {
                indegree[d] -= 1;
                if indegree[d] == 0 {
                    queue.push(d);
                }
            }
        }
        if visited != n {
            return Err(SimError::CyclicGraph {
                unscheduled: n - visited,
            });
        }
        Ok(())
    }

    /// The length (in tasks) of the longest dependency chain. Barrier tasks
    /// count like any other node; this is a structural measure used by tests,
    /// not a timing quantity.
    #[must_use]
    pub fn critical_path_len(&self) -> usize {
        let n = self.tasks.len();
        let mut depth = vec![0usize; n];
        for task in &self.tasks {
            let d = task
                .deps
                .iter()
                .filter_map(|dep| depth.get(dep.0))
                .copied()
                .max()
                .unwrap_or(0);
            depth[task.id.0] = d + 1;
        }
        depth.into_iter().max().unwrap_or(0)
    }
}

impl<'a> IntoIterator for &'a TaskGraph {
    type Item = &'a Task;
    type IntoIter = std::slice::Iter<'a, Task>;

    fn into_iter(self) -> Self::IntoIter {
        self.tasks.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mm(m: usize) -> TaskKind {
        TaskKind::MatMul { m, k: 4, n: 4 }
    }

    #[test]
    fn empty_graph_properties() {
        let g = TaskGraph::new();
        assert!(g.is_empty());
        assert_eq!(g.len(), 0);
        assert_eq!(g.critical_path_len(), 0);
        g.validate().unwrap();
    }

    #[test]
    fn add_and_lookup_tasks() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", Resource::Mac { core: 0 }, mm(4), &[]);
        let b = g.add_task("b", Resource::Vec { core: 0 }, TaskKind::Barrier, &[a]);
        assert_eq!(g.len(), 2);
        assert_eq!(g.get(a).unwrap().label, "a");
        assert_eq!(g.get(b).unwrap().deps, vec![a]);
        assert!(g.get(TaskId(5)).is_none());
    }

    #[test]
    fn traffic_and_op_totals() {
        let mut g = TaskGraph::new();
        g.add_task(
            "ld",
            Resource::DmaIn,
            TaskKind::DramLoad { bytes: 100 },
            &[],
        );
        g.add_task(
            "st",
            Resource::DmaOut,
            TaskKind::DramStore { bytes: 40 },
            &[],
        );
        g.add_task("mm", Resource::Mac { core: 0 }, mm(2), &[]);
        g.add_task(
            "sm",
            Resource::Vec { core: 0 },
            TaskKind::Softmax { rows: 2, cols: 4 },
            &[],
        );
        assert_eq!(g.dram_read_bytes(), 100);
        assert_eq!(g.dram_write_bytes(), 40);
        assert_eq!(g.total_mac_ops(), 2 * 4 * 4);
        assert_eq!(g.total_vec_ops(10), 80);
    }

    #[test]
    fn validate_rejects_unknown_dependency() {
        let mut g = TaskGraph::new();
        g.add_task("a", Resource::Mac { core: 0 }, mm(1), &[TaskId(7)]);
        assert!(matches!(
            g.validate(),
            Err(SimError::UnknownDependency { .. })
        ));
    }

    #[test]
    fn validate_rejects_cycles() {
        // Construct a cycle by hand: task 0 depends on task 1, task 1 on task 0.
        let mut g = TaskGraph::new();
        let a = g.add_task("a", Resource::Mac { core: 0 }, mm(1), &[TaskId(1)]);
        let _b = g.add_task("b", Resource::Mac { core: 0 }, mm(1), &[a]);
        assert!(matches!(g.validate(), Err(SimError::CyclicGraph { .. })));
    }

    #[test]
    fn critical_path_counts_longest_chain() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", Resource::Mac { core: 0 }, mm(1), &[]);
        let b = g.add_task("b", Resource::Mac { core: 0 }, mm(1), &[a]);
        let _c = g.add_task("c", Resource::Mac { core: 0 }, mm(1), &[b]);
        let _d = g.add_task("d", Resource::Vec { core: 0 }, TaskKind::Barrier, &[a]);
        assert_eq!(g.critical_path_len(), 3);
    }

    #[test]
    fn iteration_preserves_insertion_order() {
        let mut g = TaskGraph::new();
        for i in 0..5 {
            g.add_task(format!("t{i}"), Resource::Mac { core: 0 }, mm(1), &[]);
        }
        let labels: Vec<_> = g.iter().map(|t| t.label.clone()).collect();
        assert_eq!(labels, vec!["t0", "t1", "t2", "t3", "t4"]);
    }
}
