//! Hardware configuration of the simulated edge accelerator.
//!
//! The default configuration mirrors the paper's Figure 4 device: a 3.75 GHz,
//! 16 nm spatial accelerator with two cores, each containing one 16×16 MAC
//! (multiplier-accumulator) mesh and one 256-lane VEC unit, a shared 5 MB L1
//! scratchpad connected to a 30 GB/s, 6 GB DRAM, and per-core L0 register
//! files.

use serde::{Deserialize, Serialize};

use crate::error::{Result, SimError};

/// Number of bytes in one mebibyte.
pub const MIB: usize = 1024 * 1024;
/// Number of bytes in one gibibyte.
pub const GIB: usize = 1024 * 1024 * 1024;

/// Static description of the simulated accelerator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HardwareConfig {
    /// Human-readable name of the configuration (used in reports).
    pub name: String,
    /// Clock frequency in Hz.
    pub frequency_hz: f64,
    /// Number of cores; each core has one MAC unit and one VEC unit.
    pub cores: usize,
    /// Rows of the per-core MAC processing-element mesh (16 in the paper).
    pub mac_array_rows: usize,
    /// Columns of the per-core MAC processing-element mesh (16 in the paper).
    pub mac_array_cols: usize,
    /// Number of lanes of the per-core VEC unit (256 in the paper).
    pub vec_lanes: usize,
    /// VEC-lane operations needed per softmax element (max, subtract,
    /// exponential via polynomial, sum and normalize passes). This constant
    /// calibrates the relative weight of the softmax stream versus the MatMul
    /// stream; see `DESIGN.md` §4.
    pub softmax_ops_per_element: usize,
    /// Extra cycles to fill/drain the MAC systolic pipeline per tile launch.
    pub mac_fill_drain_cycles: u64,
    /// Fixed per-task overhead in cycles for issuing work to a compute unit
    /// (models instruction dispatch and the semi-synchronous handshake).
    pub issue_overhead_cycles: u64,
    /// Shared L1 scratchpad capacity in bytes (5 MiB in the paper).
    pub l1_bytes: usize,
    /// Per-core L0 register-file capacity in bytes.
    pub l0_bytes: usize,
    /// DRAM capacity in bytes (6 GiB in the paper).
    pub dram_bytes: usize,
    /// DRAM bandwidth in bytes per second (30 GB/s in the paper).
    pub dram_bandwidth_bytes_per_s: f64,
    /// Bytes per element for on-device storage (2 for FP16).
    pub element_bytes: usize,
}

impl HardwareConfig {
    /// The paper's simulated edge device (Figure 4).
    #[must_use]
    pub fn edge_default() -> Self {
        Self {
            name: "edge-2core-16x16".to_string(),
            frequency_hz: 3.75e9,
            cores: 2,
            mac_array_rows: 16,
            mac_array_cols: 16,
            vec_lanes: 256,
            softmax_ops_per_element: 64,
            mac_fill_drain_cycles: 32,
            issue_overhead_cycles: 16,
            l1_bytes: 5 * MIB,
            l0_bytes: 64 * 1024,
            dram_bytes: 6 * GIB,
            dram_bandwidth_bytes_per_s: 30.0e9,
            element_bytes: 2,
        }
    }

    /// A deliberately tiny configuration for unit tests: one core, small
    /// arrays and a small L1 so that buffer-pressure paths are easy to hit.
    #[must_use]
    pub fn tiny_test() -> Self {
        Self {
            name: "tiny-test".to_string(),
            frequency_hz: 1.0e9,
            cores: 1,
            mac_array_rows: 4,
            mac_array_cols: 4,
            vec_lanes: 8,
            softmax_ops_per_element: 16,
            mac_fill_drain_cycles: 2,
            issue_overhead_cycles: 1,
            l1_bytes: 16 * 1024,
            l0_bytes: 1024,
            dram_bytes: 64 * MIB,
            dram_bandwidth_bytes_per_s: 8.0e9,
            element_bytes: 2,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if any structural parameter is zero
    /// or non-positive.
    pub fn validate(&self) -> Result<()> {
        let checks: [(&str, bool); 9] = [
            ("frequency_hz must be positive", self.frequency_hz > 0.0),
            ("cores must be non-zero", self.cores > 0),
            ("mac_array_rows must be non-zero", self.mac_array_rows > 0),
            ("mac_array_cols must be non-zero", self.mac_array_cols > 0),
            ("vec_lanes must be non-zero", self.vec_lanes > 0),
            ("l1_bytes must be non-zero", self.l1_bytes > 0),
            (
                "dram_bandwidth_bytes_per_s must be positive",
                self.dram_bandwidth_bytes_per_s > 0.0,
            ),
            ("element_bytes must be non-zero", self.element_bytes > 0),
            (
                "softmax_ops_per_element must be non-zero",
                self.softmax_ops_per_element > 0,
            ),
        ];
        for (reason, ok) in checks {
            if !ok {
                return Err(SimError::InvalidConfig {
                    reason: reason.to_string(),
                });
            }
        }
        Ok(())
    }

    /// MAC operations (multiply-accumulates) each core can retire per cycle.
    #[must_use]
    pub fn macs_per_cycle_per_core(&self) -> usize {
        self.mac_array_rows * self.mac_array_cols
    }

    /// MAC operations the whole device can retire per cycle.
    #[must_use]
    pub fn macs_per_cycle_total(&self) -> usize {
        self.macs_per_cycle_per_core() * self.cores
    }

    /// VEC-lane operations the whole device can retire per cycle.
    #[must_use]
    pub fn vec_ops_per_cycle_total(&self) -> usize {
        self.vec_lanes * self.cores
    }

    /// DRAM bandwidth expressed in bytes per clock cycle.
    #[must_use]
    pub fn dram_bytes_per_cycle(&self) -> f64 {
        self.dram_bandwidth_bytes_per_s / self.frequency_hz
    }

    /// Converts a cycle count into seconds at this configuration's clock.
    #[must_use]
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.frequency_hz
    }

    /// Peak MAC throughput in operations per second.
    #[must_use]
    pub fn peak_macs_per_second(&self) -> f64 {
        self.macs_per_cycle_total() as f64 * self.frequency_hz
    }
}

impl Default for HardwareConfig {
    fn default() -> Self {
        Self::edge_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_default_matches_paper_figure_4() {
        let hw = HardwareConfig::edge_default();
        assert!((hw.frequency_hz - 3.75e9).abs() < 1.0);
        assert_eq!(hw.cores, 2);
        assert_eq!(hw.mac_array_rows * hw.mac_array_cols, 256);
        assert_eq!(hw.vec_lanes, 256);
        assert_eq!(hw.l1_bytes, 5 * MIB);
        assert_eq!(hw.dram_bytes, 6 * GIB);
        assert!((hw.dram_bandwidth_bytes_per_s - 30.0e9).abs() < 1.0);
        hw.validate().unwrap();
    }

    #[test]
    fn derived_throughputs() {
        let hw = HardwareConfig::edge_default();
        assert_eq!(hw.macs_per_cycle_per_core(), 256);
        assert_eq!(hw.macs_per_cycle_total(), 512);
        assert_eq!(hw.vec_ops_per_cycle_total(), 512);
        // 30 GB/s at 3.75 GHz = 8 bytes per cycle.
        assert!((hw.dram_bytes_per_cycle() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn cycles_to_seconds_inverts_frequency() {
        let hw = HardwareConfig::edge_default();
        let s = hw.cycles_to_seconds(3_750_000_000);
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut hw = HardwareConfig::edge_default();
        hw.cores = 0;
        assert!(matches!(hw.validate(), Err(SimError::InvalidConfig { .. })));

        let mut hw = HardwareConfig::edge_default();
        hw.dram_bandwidth_bytes_per_s = 0.0;
        assert!(hw.validate().is_err());

        let mut hw = HardwareConfig::edge_default();
        hw.softmax_ops_per_element = 0;
        assert!(hw.validate().is_err());
    }

    #[test]
    fn tiny_test_config_is_valid() {
        HardwareConfig::tiny_test().validate().unwrap();
    }
}
