//! Tasks: the unit of work scheduled by the simulator.
//!
//! A task occupies exactly one [`Resource`] (a core's MAC unit, a core's VEC
//! unit, or a DMA channel) for a duration determined by the timing model, and
//! contributes energy determined by the energy model. Dataflow builders in
//! `mas-dataflow` translate Algorithms 1–4 of the paper (and each baseline's
//! schedule) into streams of tasks with dependencies.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a task within a [`crate::graph::TaskGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TaskId(pub(crate) usize);

impl TaskId {
    /// The task's index in insertion order.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A hardware resource that executes tasks serially.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Resource {
    /// The MAC (matrix multiply-accumulate) unit of one core.
    Mac {
        /// Core index, `0..cores`.
        core: usize,
    },
    /// The VEC (element-wise / vector) unit of one core.
    Vec {
        /// Core index, `0..cores`.
        core: usize,
    },
    /// The inbound DMA channel (DRAM → L1).
    DmaIn,
    /// The outbound DMA channel (L1 → DRAM).
    DmaOut,
}

impl Resource {
    /// Whether this resource is a compute unit (MAC or VEC) rather than a DMA
    /// channel.
    #[must_use]
    pub fn is_compute(&self) -> bool {
        matches!(self, Resource::Mac { .. } | Resource::Vec { .. })
    }

    /// The core index for compute resources, `None` for DMA channels.
    #[must_use]
    pub fn core(&self) -> Option<usize> {
        match self {
            Resource::Mac { core } | Resource::Vec { core } => Some(*core),
            _ => None,
        }
    }
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Resource::Mac { core } => write!(f, "MAC{core}"),
            Resource::Vec { core } => write!(f, "VEC{core}"),
            Resource::DmaIn => write!(f, "DMA-in"),
            Resource::DmaOut => write!(f, "DMA-out"),
        }
    }
}

/// One of the four per-device execution *tracks* of the overlap-aware
/// executor — the queue a launch stage occupies. Tracks are the
/// continuous-time counterpart of [`Resource`]: a device schedules each
/// track FIFO and independently, so stages of successive tiles overlap
/// across tracks (tile `k+1`'s DMA hides under tile `k`'s compute) while
/// stages on one track serialize.
///
/// The numeric order ([`TrackKind::index`]) is the dataflow order of one
/// tile — stream in, multiply, reduce, write back — and is also the
/// per-device thread ordering used by the Chrome trace exporter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TrackKind {
    /// Inbound DMA queue (DRAM → L1 operand/KV streaming).
    DmaIn,
    /// MAC (matrix) compute queue.
    Mac,
    /// VEC (softmax / element-wise) compute queue.
    Vec,
    /// Outbound DMA queue (L1 → DRAM result/appended-row writeback).
    Writeback,
}

/// Number of per-device tracks ([`TrackKind`] variants).
pub const TRACK_COUNT: usize = 4;

impl TrackKind {
    /// All tracks in dataflow order (also the index order).
    pub const ALL: [TrackKind; TRACK_COUNT] = [
        TrackKind::DmaIn,
        TrackKind::Mac,
        TrackKind::Vec,
        TrackKind::Writeback,
    ];

    /// The track's stable index, `0..TRACK_COUNT`, in dataflow order.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            TrackKind::DmaIn => 0,
            TrackKind::Mac => 1,
            TrackKind::Vec => 2,
            TrackKind::Writeback => 3,
        }
    }

    /// The cycle-level [`Resource`] this track corresponds to on core 0 of
    /// a device (used when lowering a stage pipeline to a task graph).
    #[must_use]
    pub fn resource(self) -> Resource {
        match self {
            TrackKind::DmaIn => Resource::DmaIn,
            TrackKind::Mac => Resource::Mac { core: 0 },
            TrackKind::Vec => Resource::Vec { core: 0 },
            TrackKind::Writeback => Resource::DmaOut,
        }
    }
}

impl fmt::Display for TrackKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrackKind::DmaIn => write!(f, "dma-in"),
            TrackKind::Mac => write!(f, "mac"),
            TrackKind::Vec => write!(f, "vec"),
            TrackKind::Writeback => write!(f, "writeback"),
        }
    }
}

/// The kind of work a task performs; drives both timing and energy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TaskKind {
    /// A tiled matrix multiplication `[m × k] · [k × n]` executed on a MAC
    /// unit (`m·k·n` multiply-accumulates).
    MatMul {
        /// Output rows.
        m: usize,
        /// Contracted dimension.
        k: usize,
        /// Output columns.
        n: usize,
    },
    /// Row-wise softmax over a `rows × cols` tile executed on a VEC unit.
    Softmax {
        /// Number of rows.
        rows: usize,
        /// Row length.
        cols: usize,
    },
    /// A generic element-wise pass over `elements` values, `passes` times
    /// (used for FuseMax's extra online-softmax correction passes and other
    /// vector workloads such as rescaling).
    VecOp {
        /// Number of elements touched per pass.
        elements: usize,
        /// Number of passes over the elements.
        passes: usize,
    },
    /// DRAM → L1 transfer of `bytes` bytes on the inbound DMA channel.
    DramLoad {
        /// Transfer size in bytes.
        bytes: usize,
    },
    /// L1 → DRAM transfer of `bytes` bytes on the outbound DMA channel.
    DramStore {
        /// Transfer size in bytes.
        bytes: usize,
    },
    /// A zero-duration synchronization point (used to express the
    /// semi-synchronous round barriers of Algorithm 1).
    Barrier,
}

impl TaskKind {
    /// Multiply-accumulate operations performed by this task.
    #[must_use]
    pub fn mac_ops(&self) -> u64 {
        match self {
            TaskKind::MatMul { m, k, n } => (*m as u64) * (*k as u64) * (*n as u64),
            _ => 0,
        }
    }

    /// VEC-lane operations performed by this task, given the configured
    /// per-element softmax cost.
    #[must_use]
    pub fn vec_ops(&self, softmax_ops_per_element: usize) -> u64 {
        match self {
            TaskKind::Softmax { rows, cols } => {
                (*rows as u64) * (*cols as u64) * softmax_ops_per_element as u64
            }
            TaskKind::VecOp { elements, passes } => (*elements as u64) * (*passes as u64),
            _ => 0,
        }
    }

    /// Bytes read from DRAM by this task.
    #[must_use]
    pub fn dram_read_bytes(&self) -> u64 {
        match self {
            TaskKind::DramLoad { bytes } => *bytes as u64,
            _ => 0,
        }
    }

    /// Bytes written to DRAM by this task.
    #[must_use]
    pub fn dram_write_bytes(&self) -> u64 {
        match self {
            TaskKind::DramStore { bytes } => *bytes as u64,
            _ => 0,
        }
    }

    /// Whether this is a compute kind (must run on a MAC or VEC resource).
    #[must_use]
    pub fn is_compute(&self) -> bool {
        matches!(
            self,
            TaskKind::MatMul { .. } | TaskKind::Softmax { .. } | TaskKind::VecOp { .. }
        )
    }
}

/// A node of the task graph.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Task {
    /// Identifier (index in insertion order).
    pub id: TaskId,
    /// Human-readable label, e.g. `"C_3 = Q_3 K^T (round 3)"`.
    pub label: String,
    /// The resource this task occupies.
    pub resource: Resource,
    /// What the task does.
    pub kind: TaskKind,
    /// Tasks that must complete before this one starts.
    pub deps: Vec<TaskId>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_op_counts() {
        let k = TaskKind::MatMul { m: 4, k: 8, n: 2 };
        assert_eq!(k.mac_ops(), 64);
        assert_eq!(k.vec_ops(64), 0);
        assert_eq!(k.dram_read_bytes(), 0);
        assert!(k.is_compute());
    }

    #[test]
    fn softmax_op_counts_scale_with_configured_cost() {
        let k = TaskKind::Softmax { rows: 2, cols: 8 };
        assert_eq!(k.vec_ops(10), 160);
        assert_eq!(k.vec_ops(64), 1024);
        assert_eq!(k.mac_ops(), 0);
    }

    #[test]
    fn vecop_counts_passes() {
        let k = TaskKind::VecOp {
            elements: 100,
            passes: 3,
        };
        assert_eq!(k.vec_ops(64), 300);
    }

    #[test]
    fn dma_kinds_report_traffic() {
        assert_eq!(TaskKind::DramLoad { bytes: 123 }.dram_read_bytes(), 123);
        assert_eq!(TaskKind::DramStore { bytes: 77 }.dram_write_bytes(), 77);
        assert!(!TaskKind::DramLoad { bytes: 1 }.is_compute());
        assert_eq!(TaskKind::Barrier.mac_ops(), 0);
    }

    #[test]
    fn resource_properties() {
        assert!(Resource::Mac { core: 0 }.is_compute());
        assert!(Resource::Vec { core: 1 }.is_compute());
        assert!(!Resource::DmaIn.is_compute());
        assert_eq!(Resource::Mac { core: 1 }.core(), Some(1));
        assert_eq!(Resource::DmaOut.core(), None);
        assert_eq!(format!("{}", Resource::Mac { core: 0 }), "MAC0");
        assert_eq!(format!("{}", Resource::DmaIn), "DMA-in");
    }

    #[test]
    fn track_kinds_enumerate_in_dataflow_order() {
        for (i, t) in TrackKind::ALL.iter().enumerate() {
            assert_eq!(t.index(), i);
        }
        assert_eq!(TrackKind::ALL.len(), TRACK_COUNT);
        assert_eq!(TrackKind::DmaIn.resource(), Resource::DmaIn);
        assert_eq!(TrackKind::Mac.resource(), Resource::Mac { core: 0 });
        assert_eq!(TrackKind::Vec.resource(), Resource::Vec { core: 0 });
        assert_eq!(TrackKind::Writeback.resource(), Resource::DmaOut);
        assert_eq!(format!("{}", TrackKind::Writeback), "writeback");
    }

    #[test]
    fn task_id_display_and_index() {
        let id = TaskId(42);
        assert_eq!(id.index(), 42);
        assert_eq!(format!("{id}"), "#42");
    }
}
