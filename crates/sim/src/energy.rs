//! Accelergy-style energy model.
//!
//! The paper reports energy with Accelergy (Wu et al., 2019): every access to
//! a storage level and every processing-element operation has a fixed energy
//! cost, and total energy is the sum over the executed schedule. Figure 6
//! breaks energy down into Off-Chip (DRAM), On-Chip (L1, L0) and PEs in the
//! MAC and VEC units — [`EnergyBreakdown`] mirrors exactly those five
//! components.
//!
//! The per-access constants below are 16 nm-class estimates in picojoules.
//! Absolute magnitudes are not calibrated against the authors' (unpublished)
//! Accelergy tables; the breakdown *shape* — DRAM dominating for unfused
//! schedules, PE energy invariant across schedules (§5.3.3) — is what the
//! reproduction relies on.

use serde::{Deserialize, Serialize};

use crate::task::TaskKind;

/// Per-component energy costs in picojoules.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Energy per byte transferred to/from DRAM.
    pub dram_pj_per_byte: f64,
    /// Energy per byte read from or written to the shared L1 scratchpad.
    pub l1_pj_per_byte: f64,
    /// Energy per byte read from or written to a core's L0 register file.
    pub l0_pj_per_byte: f64,
    /// Energy per multiply-accumulate operation in a MAC processing element.
    pub mac_pj_per_op: f64,
    /// Energy per lane-operation in a VEC processing element.
    pub vec_pj_per_op: f64,
    /// L1 accesses (in bytes) generated per MAC operand element: operands are
    /// staged through L1 and re-read once per reuse window. This factor
    /// captures the Timeloop-style operand reuse accounting without tracking
    /// every address.
    pub l1_bytes_per_mac_operand_element: f64,
    /// L0 register-file traffic (in bytes) generated per compute operation.
    pub l0_bytes_per_op: f64,
}

impl EnergyModel {
    /// Default 16 nm-class energy constants for the simulated edge device.
    #[must_use]
    pub fn edge_16nm() -> Self {
        Self {
            dram_pj_per_byte: 100.0,
            l1_pj_per_byte: 4.0,
            l0_pj_per_byte: 0.6,
            mac_pj_per_op: 1.0,
            vec_pj_per_op: 0.5,
            l1_bytes_per_mac_operand_element: 2.0,
            l0_bytes_per_op: 2.0,
        }
    }

    /// Energy contribution of a single task, split by component.
    ///
    /// `element_bytes` is the storage width of one tensor element (2 for
    /// FP16) and `softmax_ops_per_element` the configured VEC cost of one
    /// softmax element (shared with the timing model so that energy and time
    /// count the same operations).
    #[must_use]
    pub fn task_energy(
        &self,
        kind: &TaskKind,
        element_bytes: usize,
        softmax_ops_per_element: usize,
    ) -> EnergyBreakdown {
        let mut e = EnergyBreakdown::zero();
        match kind {
            TaskKind::MatMul { m, k, n } => {
                let ops = (*m as f64) * (*k as f64) * (*n as f64);
                e.mac_pe_pj = ops * self.mac_pj_per_op;
                e.l0_pj = ops * self.l0_bytes_per_op * self.l0_pj_per_byte;
                // Operand traffic staged through L1: A is m*k, B is k*n, the
                // output m*n is written once; reuse factor folds in repeated
                // reads of stationary tiles.
                let operand_elems = (*m as f64) * (*k as f64) + (*k as f64) * (*n as f64);
                let output_elems = (*m as f64) * (*n as f64);
                let bytes = (operand_elems * self.l1_bytes_per_mac_operand_element + output_elems)
                    * element_bytes as f64;
                e.l1_pj = bytes * self.l1_pj_per_byte;
            }
            TaskKind::Softmax { rows, cols } => {
                let elems = (*rows as f64) * (*cols as f64);
                let ops = elems * softmax_ops_per_element as f64;
                e.vec_pe_pj = ops * self.vec_pj_per_op;
                e.l0_pj = ops * self.l0_bytes_per_op * self.l0_pj_per_byte * 0.25;
                // Softmax reads its tile twice (max pass + exp pass) and
                // writes it once.
                let bytes = elems * 3.0 * element_bytes as f64;
                e.l1_pj = bytes * self.l1_pj_per_byte;
            }
            TaskKind::VecOp { elements, passes } => {
                let ops = (*elements as f64) * (*passes as f64);
                e.vec_pe_pj = ops * self.vec_pj_per_op;
                e.l0_pj = ops * self.l0_bytes_per_op * self.l0_pj_per_byte * 0.25;
                e.l1_pj = ops * element_bytes as f64 * self.l1_pj_per_byte;
            }
            TaskKind::DramLoad { bytes } | TaskKind::DramStore { bytes } => {
                e.dram_pj = *bytes as f64 * self.dram_pj_per_byte;
                // Every DRAM transfer also touches L1 once on the on-chip side.
                e.l1_pj = *bytes as f64 * self.l1_pj_per_byte;
            }
            TaskKind::Barrier => {}
        }
        e
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::edge_16nm()
    }
}

/// Energy broken down into the five components of the paper's Figure 6.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct EnergyBreakdown {
    /// Off-chip DRAM access energy (pJ).
    pub dram_pj: f64,
    /// Shared L1 scratchpad access energy (pJ).
    pub l1_pj: f64,
    /// L0 register-file access energy (pJ).
    pub l0_pj: f64,
    /// MAC processing-element energy (pJ).
    pub mac_pe_pj: f64,
    /// VEC processing-element energy (pJ).
    pub vec_pe_pj: f64,
}

impl EnergyBreakdown {
    /// An all-zero breakdown.
    #[must_use]
    pub fn zero() -> Self {
        Self::default()
    }

    /// Total energy across all components (pJ).
    #[must_use]
    pub fn total_pj(&self) -> f64 {
        self.dram_pj + self.l1_pj + self.l0_pj + self.mac_pe_pj + self.vec_pe_pj
    }

    /// Combined processing-element energy (MAC + VEC), the component the
    /// paper observes to be schedule-invariant (§5.3.3).
    #[must_use]
    pub fn pe_pj(&self) -> f64 {
        self.mac_pe_pj + self.vec_pe_pj
    }

    /// Combined on-chip memory energy (L1 + L0).
    #[must_use]
    pub fn on_chip_pj(&self) -> f64 {
        self.l1_pj + self.l0_pj
    }

    /// Adds another breakdown component-wise.
    pub fn accumulate(&mut self, other: &EnergyBreakdown) {
        self.dram_pj += other.dram_pj;
        self.l1_pj += other.l1_pj;
        self.l0_pj += other.l0_pj;
        self.mac_pe_pj += other.mac_pe_pj;
        self.vec_pe_pj += other.vec_pe_pj;
    }

    /// The breakdown as `(label, pJ)` pairs in Figure 6 order.
    #[must_use]
    pub fn components(&self) -> [(&'static str, f64); 5] {
        [
            ("DRAM", self.dram_pj),
            ("L1", self.l1_pj),
            ("L0", self.l0_pj),
            ("MAC PEs", self.mac_pe_pj),
            ("VEC PEs", self.vec_pe_pj),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_components() {
        let b = EnergyBreakdown {
            dram_pj: 1.0,
            l1_pj: 2.0,
            l0_pj: 3.0,
            mac_pe_pj: 4.0,
            vec_pe_pj: 5.0,
        };
        assert!((b.total_pj() - 15.0).abs() < 1e-12);
        assert!((b.pe_pj() - 9.0).abs() < 1e-12);
        assert!((b.on_chip_pj() - 5.0).abs() < 1e-12);
        assert_eq!(b.components().len(), 5);
    }

    #[test]
    fn accumulate_adds_componentwise() {
        let mut a = EnergyBreakdown::zero();
        let b = EnergyBreakdown {
            dram_pj: 1.0,
            l1_pj: 1.5,
            l0_pj: 0.5,
            mac_pe_pj: 2.0,
            vec_pe_pj: 0.25,
        };
        a.accumulate(&b);
        a.accumulate(&b);
        assert!((a.total_pj() - 2.0 * b.total_pj()).abs() < 1e-12);
    }

    #[test]
    fn matmul_energy_is_dominated_by_pe_and_scales_with_ops() {
        let m = EnergyModel::edge_16nm();
        let small = m.task_energy(
            &TaskKind::MatMul {
                m: 16,
                k: 16,
                n: 16,
            },
            2,
            64,
        );
        let big = m.task_energy(
            &TaskKind::MatMul {
                m: 32,
                k: 16,
                n: 16,
            },
            2,
            64,
        );
        assert!(big.mac_pe_pj > small.mac_pe_pj);
        assert!((big.mac_pe_pj / small.mac_pe_pj - 2.0).abs() < 1e-9);
        assert_eq!(small.dram_pj, 0.0);
        assert!(small.vec_pe_pj == 0.0);
    }

    #[test]
    fn softmax_energy_uses_vec_pes_only() {
        let m = EnergyModel::edge_16nm();
        let e = m.task_energy(&TaskKind::Softmax { rows: 4, cols: 128 }, 2, 64);
        assert!(e.vec_pe_pj > 0.0);
        assert_eq!(e.mac_pe_pj, 0.0);
        assert_eq!(e.dram_pj, 0.0);
        // 4*128 elements * 64 ops * 0.5 pJ.
        assert!((e.vec_pe_pj - 4.0 * 128.0 * 64.0 * 0.5).abs() < 1e-6);
    }

    #[test]
    fn dram_transfers_cost_more_per_byte_than_l1() {
        let m = EnergyModel::edge_16nm();
        let e = m.task_energy(&TaskKind::DramLoad { bytes: 1000 }, 2, 64);
        assert!(e.dram_pj > e.l1_pj);
        assert!((e.dram_pj - 100_000.0).abs() < 1e-6);
        let s = m.task_energy(&TaskKind::DramStore { bytes: 1000 }, 2, 64);
        assert!((s.dram_pj - e.dram_pj).abs() < 1e-9);
    }

    #[test]
    fn barrier_is_free() {
        let m = EnergyModel::edge_16nm();
        assert_eq!(m.task_energy(&TaskKind::Barrier, 2, 64).total_pj(), 0.0);
    }
}
