//! Event-driven list-scheduling executor.
//!
//! The executor assigns each task of a [`TaskGraph`] to its required
//! [`Resource`] as soon as (a) every dependency has finished and (b) the
//! resource is idle, breaking ties by program order (insertion order). This
//! mirrors how the paper's dataflows are issued on the device: each compute
//! unit processes its stream of tiled tasks in order, and the semi-synchronous
//! dependencies between the MAC and VEC streams are expressed as edges in the
//! graph.
//!
//! The result is a [`SimReport`] containing the makespan, energy breakdown,
//! DRAM traffic, per-resource busy time and MAC/VEC overlap.
//!
//! # Track scheduling (continuous time)
//!
//! Alongside the cycle-level list scheduler, this module hosts the
//! continuous-time *track executor* used by the serve engine's
//! overlap-aware device model: [`DeviceTracks`], a set of per-queue clocks
//! ([`TrackKind`]: DMA-in, MAC, VEC, writeback) over which a launch's
//! per-tile stage demands are flow-shop scheduled. Its invariants:
//!
//! - **Ready rule.** Stage `k`'s work on track `t` starts no earlier than
//!   (a) the launch's ready time, (b) the completion of stage `k`'s work on
//!   track `t − 1` (dataflow order: a tile must be streamed in before it is
//!   multiplied, reduced before it is written back), and (c) the track's own
//!   clock.
//! - **Per-track FIFO.** Each track serializes the work placed on it in
//!   placement order; placements never reorder and never preempt. Spans on
//!   one track therefore never overlap, while spans on *different* tracks
//!   of the same device may — that is the overlap the scalar model forbids.
//! - **Overlap bound.** A placement's makespan is at least the largest
//!   single-track total (no queue can be beaten) and at most the sum of all
//!   stage durations (the fully serialized schedule); it is monotone in
//!   every stage duration. The degenerate fused single-track configuration
//!   reproduces the serialized upper bound, which is exactly the scalar
//!   `max`-bound service model — see [`TrackConfig::degenerate`].
//! - **Scalar clamp.** Callers compare the flow-shop completion against the
//!   scalar service model's completion and commit whichever is earlier
//!   ([`DeviceTracks::barrier`] re-serializes the clocks when the scalar
//!   candidate wins), so track-scheduled makespans are never worse than the
//!   scalar model's on any launch sequence.

use std::collections::{BTreeMap, BinaryHeap, HashMap, VecDeque};

use crate::config::HardwareConfig;
use crate::energy::{EnergyBreakdown, EnergyModel};
use crate::error::{Result, SimError};
use crate::graph::TaskGraph;
use crate::report::SimReport;
use crate::task::{Resource, TaskId, TrackKind, TRACK_COUNT};
use crate::timing::TimingModel;
use crate::trace::{Trace, TraceEntry};

/// Simulates task graphs on a configured device.
#[derive(Debug, Clone)]
pub struct Executor {
    timing: TimingModel,
    energy: EnergyModel,
    record_trace: bool,
}

impl Executor {
    /// Creates an executor for the given hardware and energy model.
    #[must_use]
    pub fn new(hw: HardwareConfig, energy: EnergyModel) -> Self {
        Self {
            timing: TimingModel::new(hw),
            energy,
            record_trace: true,
        }
    }

    /// Creates an executor with the default edge device and energy model.
    #[must_use]
    pub fn edge_default() -> Self {
        Self::new(HardwareConfig::edge_default(), EnergyModel::edge_16nm())
    }

    /// Disables trace recording (saves memory for very large sweeps).
    #[must_use]
    pub fn without_trace(mut self) -> Self {
        self.record_trace = false;
        self
    }

    /// The hardware configuration used by this executor.
    #[must_use]
    pub fn hardware(&self) -> &HardwareConfig {
        self.timing.hardware()
    }

    /// The timing model used by this executor.
    #[must_use]
    pub fn timing(&self) -> &TimingModel {
        &self.timing
    }

    /// Runs a task graph to completion.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptyGraph`] for an empty graph, graph validation
    /// errors ([`SimError::UnknownDependency`], [`SimError::CyclicGraph`]),
    /// [`SimError::UnknownResource`] if a task names a core the device does
    /// not have, or [`SimError::InvalidConfig`] for a bad configuration.
    pub fn run(&self, graph: &TaskGraph) -> Result<SimReport> {
        let hw = self.timing.hardware();
        hw.validate()?;
        if graph.is_empty() {
            return Err(SimError::EmptyGraph);
        }
        graph.validate()?;
        for task in graph.iter() {
            if let Some(core) = task.resource.core() {
                if core >= hw.cores {
                    return Err(SimError::UnknownResource {
                        resource: task.resource,
                        cores: hw.cores,
                    });
                }
            }
        }

        let n = graph.len();
        let mut remaining_deps = vec![0usize; n];
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        for task in graph.iter() {
            remaining_deps[task.id.index()] = task.deps.len();
            for dep in &task.deps {
                dependents[dep.index()].push(task.id.index());
            }
        }

        // Scheduling priority. Compute units issue their stream in program
        // order (the order the dataflow intends). DMA channels are
        // demand-driven: transfers whose consumer comes earliest in program
        // order are served first, which models double-buffered prefetching
        // that follows the compute streams instead of blindly following the
        // order requests were queued.
        let mut priority = vec![0usize; n];
        for task in graph.iter() {
            let i = task.id.index();
            priority[i] = match task.resource {
                Resource::DmaIn | Resource::DmaOut => dependents[i]
                    .iter()
                    .copied()
                    .min()
                    .unwrap_or(usize::MAX - n + i),
                _ => i,
            };
        }

        // Ready queues per resource, ordered by (priority, program order).
        let mut ready: HashMap<Resource, VecDeque<usize>> = HashMap::new();
        for task in graph.iter() {
            ready.entry(task.resource).or_default();
        }
        let enqueue = |queue: &mut VecDeque<usize>, priority: &[usize], index: usize| {
            let key = (priority[index], index);
            let pos = queue
                .iter()
                .position(|&other| (priority[other], other) > key)
                .unwrap_or(queue.len());
            queue.insert(pos, index);
        };
        // Seed initially-ready tasks.
        for task in graph.iter() {
            if remaining_deps[task.id.index()] == 0 {
                let queue = ready
                    .get_mut(&task.resource)
                    .expect("queue exists for every resource");
                enqueue(queue, &priority, task.id.index());
            }
        }

        // Min-heap of running tasks by end cycle (reverse ordering on a max-heap).
        #[derive(PartialEq, Eq)]
        struct Running {
            end: u64,
            index: usize,
        }
        impl Ord for Running {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                other.end.cmp(&self.end).then(other.index.cmp(&self.index))
            }
        }
        impl PartialOrd for Running {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }

        let mut running: BinaryHeap<Running> = BinaryHeap::new();
        let mut resource_busy_until: HashMap<Resource, u64> = HashMap::new();
        let mut busy_cycles: BTreeMap<String, u64> = BTreeMap::new();
        let mut trace = Trace::new();
        let mut energy = EnergyBreakdown::zero();
        let mut completed = 0usize;
        let mut now: u64 = 0;
        let mut mac_intervals: Vec<(u64, u64)> = Vec::new();
        let mut vec_intervals: Vec<(u64, u64)> = Vec::new();

        while completed < n {
            // Start every task that can start at the current time.
            let mut started_any = true;
            while started_any {
                started_any = false;
                // Iterate resources deterministically (sorted by display name).
                let mut resources: Vec<Resource> = ready.keys().copied().collect();
                resources.sort_by_key(|r| r.to_string());
                for resource in resources {
                    let busy_until = resource_busy_until.get(&resource).copied().unwrap_or(0);
                    if busy_until > now {
                        continue;
                    }
                    let queue = ready.get_mut(&resource).expect("resource queue exists");
                    if let Some(&index) = queue.front() {
                        queue.pop_front();
                        let task = graph.get(TaskId(index)).expect("task exists");
                        let duration = self.timing.task_cycles(&task.kind);
                        let start = now;
                        let end = start + duration;
                        resource_busy_until.insert(resource, end);
                        running.push(Running { end, index });
                        *busy_cycles.entry(resource.to_string()).or_insert(0) += duration;
                        energy.accumulate(&self.energy.task_energy(
                            &task.kind,
                            hw.element_bytes,
                            hw.softmax_ops_per_element,
                        ));
                        if duration > 0 {
                            match resource {
                                Resource::Mac { .. } => mac_intervals.push((start, end)),
                                Resource::Vec { .. } => vec_intervals.push((start, end)),
                                _ => {}
                            }
                        }
                        if self.record_trace {
                            trace.push(TraceEntry {
                                task: task.id,
                                label: task.label.clone(),
                                resource,
                                start_cycle: start,
                                end_cycle: end,
                            });
                        }
                        started_any = true;
                    }
                }
            }

            // Advance time to the next completion.
            match running.pop() {
                Some(first) => {
                    now = now.max(first.end);
                    let mut finished = vec![first.index];
                    while let Some(next) = running.peek() {
                        if next.end <= now {
                            finished.push(running.pop().expect("peeked element exists").index);
                        } else {
                            break;
                        }
                    }
                    for index in finished {
                        completed += 1;
                        for &dep_index in &dependents[index] {
                            remaining_deps[dep_index] -= 1;
                            if remaining_deps[dep_index] == 0 {
                                let task = graph.get(TaskId(dep_index)).expect("task exists");
                                let queue = ready
                                    .get_mut(&task.resource)
                                    .expect("resource queue exists");
                                enqueue(queue, &priority, dep_index);
                            }
                        }
                    }
                }
                None => {
                    // No running tasks and nothing could start: the graph was
                    // validated acyclic, so this indicates an internal error.
                    return Err(SimError::CyclicGraph {
                        unscheduled: n - completed,
                    });
                }
            }
        }

        let total_cycles = resource_busy_until.values().copied().max().unwrap_or(0);
        let overlap = interval_overlap(&mut mac_intervals, &mut vec_intervals);

        Ok(SimReport {
            total_cycles,
            total_seconds: hw.cycles_to_seconds(total_cycles),
            energy,
            dram_read_bytes: graph.dram_read_bytes(),
            dram_write_bytes: graph.dram_write_bytes(),
            mac_ops: graph.total_mac_ops(),
            vec_ops: graph.total_vec_ops(hw.softmax_ops_per_element),
            busy_cycles,
            tasks_executed: n,
            mac_vec_overlap_cycles: overlap,
            trace: if self.record_trace { Some(trace) } else { None },
        })
    }
}

/// Computes the number of cycles covered by both interval sets (union of set A
/// intersected with union of set B).
fn interval_overlap(a: &mut [(u64, u64)], b: &mut [(u64, u64)]) -> u64 {
    let merged_a = merge_intervals(a);
    let merged_b = merge_intervals(b);
    let mut i = 0;
    let mut j = 0;
    let mut total = 0u64;
    while i < merged_a.len() && j < merged_b.len() {
        let (sa, ea) = merged_a[i];
        let (sb, eb) = merged_b[j];
        let start = sa.max(sb);
        let end = ea.min(eb);
        if end > start {
            total += end - start;
        }
        if ea < eb {
            i += 1;
        } else {
            j += 1;
        }
    }
    total
}

fn merge_intervals(v: &mut [(u64, u64)]) -> Vec<(u64, u64)> {
    v.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(v.len());
    for &(s, e) in v.iter() {
        if let Some(last) = out.last_mut() {
            if s <= last.1 {
                last.1 = last.1.max(e);
                continue;
            }
        }
        out.push((s, e));
    }
    out
}

/// Configuration of the overlap-aware track executor: how a launch's
/// demand is tiled into pipeline stages and whether the per-queue tracks
/// are actually split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrackConfig {
    /// Number of pipeline stages (tiles) a launch's demand is split into.
    /// More stages expose more cross-stage overlap (tile `k+1`'s DMA under
    /// tile `k`'s compute) at zero modeled cost; clamped to ≥ 1.
    pub stages: usize,
    /// Fuse all four queues into one serial track. With one fused track the
    /// flow-shop degenerates to the sum of all stage durations, which the
    /// scalar clamp then always beats — the bit-identical degenerate case
    /// the regression suite pins.
    pub fused_queue: bool,
}

impl TrackConfig {
    /// The degenerate single-track configuration: one stage, fused queues.
    /// Scheduling with this configuration commits exactly the scalar model's
    /// spans on every launch.
    #[must_use]
    pub fn degenerate() -> Self {
        Self {
            stages: 1,
            fused_queue: true,
        }
    }
}

impl Default for TrackConfig {
    /// Four pipeline stages over split queues: enough tiling to hide the
    /// issue/stream latencies without fragmenting the trace.
    fn default() -> Self {
        Self {
            stages: 4,
            fused_queue: false,
        }
    }
}

/// One scheduled stage span of a committed track placement, in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageSpan {
    /// The queue the span occupies.
    pub track: TrackKind,
    /// Pipeline stage index, `0..stages`.
    pub stage: usize,
    /// Span start time (seconds).
    pub start_s: f64,
    /// Span end time (seconds).
    pub end_s: f64,
}

/// The flow-shop schedule of one launch over a device's tracks, produced by
/// [`DeviceTracks::plan`] and applied by [`DeviceTracks::commit`].
#[derive(Debug, Clone, PartialEq)]
pub struct TrackPlacement {
    /// When the launch's first stage begins (≥ the launch ready time).
    pub start_s: f64,
    /// When the launch's last stage ends — the DAG makespan.
    pub completion_s: f64,
    /// Track clocks after the placement (what `commit` installs).
    clocks_after: [f64; TRACK_COUNT],
    /// Per-track busy seconds this placement adds.
    busy_added: [f64; TRACK_COUNT],
    /// Every non-empty stage span, in schedule order.
    pub stages: Vec<StageSpan>,
}

/// Per-device continuous-time track state: one FIFO clock per queue plus
/// busy accounting. See the module docs for the scheduling invariants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceTracks {
    /// Next-free time of each track (seconds).
    clocks: [f64; TRACK_COUNT],
    /// Cumulative busy seconds per track.
    busy_s: [f64; TRACK_COUNT],
    /// Launches committed through the flow-shop (overlap won the clamp).
    pub overlap_launches: u64,
    /// Launches committed through the scalar model (barrier'd).
    pub scalar_launches: u64,
}

impl Default for DeviceTracks {
    fn default() -> Self {
        Self::new()
    }
}

impl DeviceTracks {
    /// A device with all tracks idle at `t = 0`.
    #[must_use]
    pub fn new() -> Self {
        Self {
            clocks: [0.0; TRACK_COUNT],
            busy_s: [0.0; TRACK_COUNT],
            overlap_launches: 0,
            scalar_launches: 0,
        }
    }

    /// The track clocks (next-free times), indexed by [`TrackKind::index`].
    #[must_use]
    pub fn clocks(&self) -> [f64; TRACK_COUNT] {
        self.clocks
    }

    /// Cumulative work seconds attributed to each track, indexed by
    /// [`TrackKind::index`]. Flow-shop-committed launches add their
    /// scheduled span durations ([`DeviceTracks::commit`]);
    /// scalar-committed launches add their demand profile's per-track
    /// seconds ([`DeviceTracks::attribute`]) — so the figure answers
    /// "which queue is this workload loading?" for *every* launch, and
    /// the busiest track exposes the memory-bound/compute-bound regime
    /// per queue regardless of which candidate won the clamp.
    #[must_use]
    pub fn busy_s(&self) -> [f64; TRACK_COUNT] {
        self.busy_s
    }

    /// Flow-shop schedules `stage_s` (per stage, per track, seconds) onto
    /// this device's tracks for a launch ready at `ready_s`, without
    /// mutating any state. Stage `k`'s span on track `t` starts at
    /// `max(track clock, ready, completion of stage k on track t−1)` —
    /// with `fused` queues every span instead chains on one serial clock.
    /// Returns the placement; apply it with [`DeviceTracks::commit`].
    #[must_use]
    pub fn plan(
        &self,
        ready_s: f64,
        stage_s: &[[f64; TRACK_COUNT]],
        fused: bool,
    ) -> TrackPlacement {
        let mut clocks = self.clocks;
        if fused {
            // One serial queue: collapse the clocks to their max once, then
            // chain every span on track 0's clock.
            let serial = clocks.iter().copied().fold(0.0f64, f64::max);
            clocks = [serial; TRACK_COUNT];
        }
        let mut busy_added = [0.0; TRACK_COUNT];
        let mut stages = Vec::new();
        let mut start_s = f64::INFINITY;
        let mut completion_s = ready_s;
        for (k, durs) in stage_s.iter().enumerate() {
            // The dataflow dependency: this stage's span on track t waits
            // for its own span on track t-1 (stream → mac → vec → write).
            let mut dep_done = ready_s;
            for t in 0..TRACK_COUNT {
                let d = durs[t];
                if d <= 0.0 {
                    // No span to place; the dependency time passes through
                    // so e.g. a vec-free stage chains mac → writeback
                    // directly.
                    continue;
                }
                let track = if fused { 0 } else { t };
                let s = clocks[track].max(dep_done);
                let e = s + d;
                clocks[track] = e;
                if fused {
                    clocks = [e; TRACK_COUNT];
                }
                busy_added[t] += d;
                start_s = start_s.min(s);
                completion_s = completion_s.max(e);
                dep_done = e;
                stages.push(StageSpan {
                    track: TrackKind::ALL[t],
                    stage: k,
                    start_s: s,
                    end_s: e,
                });
            }
        }
        if !start_s.is_finite() {
            // All-empty demand: a zero-length span at the ready point.
            start_s = ready_s;
        }
        TrackPlacement {
            start_s,
            completion_s,
            clocks_after: clocks,
            busy_added,
            stages,
        }
    }

    /// Applies a placement produced by [`DeviceTracks::plan`]: installs the
    /// post-placement clocks and accounts the busy time.
    pub fn commit(&mut self, placement: &TrackPlacement) {
        self.clocks = placement.clocks_after;
        for t in 0..TRACK_COUNT {
            self.busy_s[t] += placement.busy_added[t];
        }
        self.overlap_launches += 1;
    }

    /// Re-serializes the device behind a scalar-model commitment: every
    /// track is busy until `until_s` (a launch scheduled by the scalar
    /// model occupies the whole device), so no later overlap placement can
    /// start under it.
    pub fn barrier(&mut self, until_s: f64) {
        for c in &mut self.clocks {
            *c = c.max(until_s);
        }
        self.scalar_launches += 1;
    }

    /// Accounts a scalar-committed launch's per-track demand seconds
    /// without occupying any clock. The launch ran under the whole-device
    /// scalar model ([`DeviceTracks::barrier`]), but its work still
    /// belongs to specific queues for utilization attribution
    /// ([`DeviceTracks::busy_s`]).
    pub fn attribute(&mut self, seconds: [f64; TRACK_COUNT]) {
        for (busy, s) in self.busy_s.iter_mut().zip(seconds) {
            *busy += s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskKind;

    fn executor() -> Executor {
        Executor::new(HardwareConfig::edge_default(), EnergyModel::edge_16nm())
    }

    #[test]
    fn empty_graph_is_an_error() {
        let g = TaskGraph::new();
        assert!(matches!(executor().run(&g), Err(SimError::EmptyGraph)));
    }

    #[test]
    fn single_task_makespan_matches_timing_model() {
        let mut g = TaskGraph::new();
        let kind = TaskKind::MatMul {
            m: 64,
            k: 64,
            n: 64,
        };
        g.add_task("mm", Resource::Mac { core: 0 }, kind, &[]);
        let exec = executor();
        let report = exec.run(&g).unwrap();
        assert_eq!(report.total_cycles, exec.timing().task_cycles(&kind));
        assert_eq!(report.tasks_executed, 1);
        assert!(report.total_seconds > 0.0);
    }

    #[test]
    fn independent_tasks_on_different_resources_overlap() {
        let mut g = TaskGraph::new();
        let mm = TaskKind::MatMul {
            m: 64,
            k: 512,
            n: 64,
        };
        let sm = TaskKind::Softmax {
            rows: 64,
            cols: 512,
        };
        g.add_task("mm", Resource::Mac { core: 0 }, mm, &[]);
        g.add_task("sm", Resource::Vec { core: 0 }, sm, &[]);
        let exec = executor();
        let report = exec.run(&g).unwrap();
        let mm_cycles = exec.timing().task_cycles(&mm);
        let sm_cycles = exec.timing().task_cycles(&sm);
        assert_eq!(report.total_cycles, mm_cycles.max(sm_cycles));
        assert_eq!(report.mac_vec_overlap_cycles, mm_cycles.min(sm_cycles));
    }

    #[test]
    fn dependent_tasks_serialize() {
        let mut g = TaskGraph::new();
        let mm = TaskKind::MatMul {
            m: 64,
            k: 512,
            n: 64,
        };
        let sm = TaskKind::Softmax {
            rows: 64,
            cols: 512,
        };
        let a = g.add_task("mm", Resource::Mac { core: 0 }, mm, &[]);
        g.add_task("sm", Resource::Vec { core: 0 }, sm, &[a]);
        let exec = executor();
        let report = exec.run(&g).unwrap();
        let expected = exec.timing().task_cycles(&mm) + exec.timing().task_cycles(&sm);
        assert_eq!(report.total_cycles, expected);
        assert_eq!(report.mac_vec_overlap_cycles, 0);
    }

    #[test]
    fn same_resource_tasks_serialize_even_without_deps() {
        let mut g = TaskGraph::new();
        let mm = TaskKind::MatMul {
            m: 64,
            k: 64,
            n: 64,
        };
        g.add_task("a", Resource::Mac { core: 0 }, mm, &[]);
        g.add_task("b", Resource::Mac { core: 0 }, mm, &[]);
        let exec = executor();
        let report = exec.run(&g).unwrap();
        assert_eq!(report.total_cycles, 2 * exec.timing().task_cycles(&mm));
    }

    #[test]
    fn two_cores_double_throughput() {
        let mm = TaskKind::MatMul {
            m: 64,
            k: 64,
            n: 64,
        };
        let mut one_core = TaskGraph::new();
        one_core.add_task("a", Resource::Mac { core: 0 }, mm, &[]);
        one_core.add_task("b", Resource::Mac { core: 0 }, mm, &[]);
        let mut two_cores = TaskGraph::new();
        two_cores.add_task("a", Resource::Mac { core: 0 }, mm, &[]);
        two_cores.add_task("b", Resource::Mac { core: 1 }, mm, &[]);
        let exec = executor();
        let serial = exec.run(&one_core).unwrap();
        let parallel = exec.run(&two_cores).unwrap();
        assert_eq!(serial.total_cycles, 2 * parallel.total_cycles);
    }

    #[test]
    fn unknown_core_is_rejected() {
        let mut g = TaskGraph::new();
        g.add_task(
            "mm",
            Resource::Mac { core: 9 },
            TaskKind::MatMul { m: 1, k: 1, n: 1 },
            &[],
        );
        assert!(matches!(
            executor().run(&g),
            Err(SimError::UnknownResource { .. })
        ));
    }

    #[test]
    fn dram_traffic_and_energy_are_reported() {
        let mut g = TaskGraph::new();
        let ld = g.add_task(
            "ld",
            Resource::DmaIn,
            TaskKind::DramLoad { bytes: 4096 },
            &[],
        );
        let mm = g.add_task(
            "mm",
            Resource::Mac { core: 0 },
            TaskKind::MatMul {
                m: 16,
                k: 16,
                n: 16,
            },
            &[ld],
        );
        g.add_task(
            "st",
            Resource::DmaOut,
            TaskKind::DramStore { bytes: 512 },
            &[mm],
        );
        let report = executor().run(&g).unwrap();
        assert_eq!(report.dram_read_bytes, 4096);
        assert_eq!(report.dram_write_bytes, 512);
        assert!(report.energy.dram_pj > 0.0);
        assert!(report.energy.mac_pe_pj > 0.0);
        assert_eq!(report.mac_ops, 16 * 16 * 16);
    }

    #[test]
    fn trace_can_be_disabled() {
        let mut g = TaskGraph::new();
        g.add_task(
            "mm",
            Resource::Mac { core: 0 },
            TaskKind::MatMul { m: 4, k: 4, n: 4 },
            &[],
        );
        let with = executor().run(&g).unwrap();
        let without = executor().without_trace().run(&g).unwrap();
        assert!(with.trace.is_some());
        assert!(without.trace.is_none());
        assert_eq!(with.total_cycles, without.total_cycles);
    }

    #[test]
    fn program_order_breaks_ties_on_a_resource() {
        let mut g = TaskGraph::new();
        let mm = TaskKind::MatMul {
            m: 16,
            k: 16,
            n: 16,
        };
        g.add_task("first", Resource::Mac { core: 0 }, mm, &[]);
        g.add_task("second", Resource::Mac { core: 0 }, mm, &[]);
        let report = executor().run(&g).unwrap();
        let trace = report.trace.unwrap();
        let entries = trace.on_resource(Resource::Mac { core: 0 });
        assert_eq!(entries[0].label, "first");
        assert_eq!(entries[1].label, "second");
    }

    #[test]
    fn interval_overlap_helper() {
        let mut a = vec![(0u64, 10u64), (20, 30)];
        let mut b = vec![(5u64, 25u64)];
        assert_eq!(interval_overlap(&mut a, &mut b), 10);
        let mut c = vec![(0u64, 5u64), (3, 8)];
        let mut d = vec![(0u64, 8u64)];
        assert_eq!(interval_overlap(&mut c, &mut d), 8);
    }

    // ---- track executor ----

    /// Two equal stages: [dma 1s, mac 1s, vec 0, wb 1s] each.
    fn two_stage_demo() -> Vec<[f64; TRACK_COUNT]> {
        vec![[1.0, 1.0, 0.0, 1.0]; 2]
    }

    #[test]
    fn flow_shop_overlaps_successive_stages() {
        let dev = DeviceTracks::new();
        let p = dev.plan(0.0, &two_stage_demo(), false);
        // Stage 0: dma 0-1, mac 1-2, wb 2-3. Stage 1: dma 1-2 (hides under
        // stage 0's mac), mac 2-3, wb 3-4. Serial would be 6.
        assert_eq!(p.start_s, 0.0);
        assert_eq!(p.completion_s, 4.0);
        assert_eq!(p.stages.len(), 6);
        let dma1 = p
            .stages
            .iter()
            .find(|s| s.track == TrackKind::DmaIn && s.stage == 1)
            .unwrap();
        assert_eq!((dma1.start_s, dma1.end_s), (1.0, 2.0));
    }

    #[test]
    fn fused_queue_serializes_to_the_sum() {
        let dev = DeviceTracks::new();
        let p = dev.plan(0.5, &two_stage_demo(), true);
        assert_eq!(p.start_s, 0.5);
        assert_eq!(p.completion_s, 0.5 + 6.0);
        // Spans keep their logical track attribution but chain serially:
        // each starts exactly where the previous one ended.
        for pair in p.stages.windows(2) {
            assert_eq!(pair[1].start_s, pair[0].end_s);
        }
    }

    #[test]
    fn placement_bounds_and_monotonicity() {
        let dev = DeviceTracks::new();
        let stages = vec![[3.0, 2.0, 1.0, 0.5], [1.0, 4.0, 0.0, 0.25]];
        let p = dev.plan(0.0, &stages, false);
        let per_track: Vec<f64> = (0..TRACK_COUNT)
            .map(|t| stages.iter().map(|s| s[t]).sum())
            .collect();
        let max_track = per_track.iter().copied().fold(0.0f64, f64::max);
        let total: f64 = per_track.iter().sum();
        assert!(p.completion_s >= max_track);
        assert!(p.completion_s <= total);
        // Growing any one duration never shrinks the makespan.
        for k in 0..stages.len() {
            for t in 0..TRACK_COUNT {
                let mut grown = stages.clone();
                grown[k][t] += 0.5;
                assert!(dev.plan(0.0, &grown, false).completion_s >= p.completion_s);
            }
        }
    }

    #[test]
    fn commit_installs_clocks_and_busy_time() {
        let mut dev = DeviceTracks::new();
        let p = dev.plan(0.0, &two_stage_demo(), false);
        dev.commit(&p);
        assert_eq!(dev.overlap_launches, 1);
        let busy = dev.busy_s();
        assert_eq!(busy[TrackKind::DmaIn.index()], 2.0);
        assert_eq!(busy[TrackKind::Mac.index()], 2.0);
        assert_eq!(busy[TrackKind::Vec.index()], 0.0);
        assert_eq!(busy[TrackKind::Writeback.index()], 2.0);
        // The next launch's DMA can start at the dma clock (2.0), well
        // before the previous completion (4.0) — cross-launch overlap.
        assert_eq!(dev.clocks()[TrackKind::DmaIn.index()], 2.0);
        let next = dev.plan(0.0, &two_stage_demo(), false);
        assert!(next.start_s < p.completion_s);
    }

    #[test]
    fn barrier_serializes_all_tracks() {
        let mut dev = DeviceTracks::new();
        dev.barrier(7.0);
        assert_eq!(dev.scalar_launches, 1);
        assert!(dev.clocks().iter().all(|&c| c == 7.0));
        let p = dev.plan(0.0, &two_stage_demo(), false);
        assert_eq!(p.start_s, 7.0);
    }

    #[test]
    fn empty_demand_places_a_zero_span_at_ready() {
        let dev = DeviceTracks::new();
        let p = dev.plan(3.0, &[[0.0; TRACK_COUNT]], false);
        assert_eq!(p.start_s, 3.0);
        assert_eq!(p.completion_s, 3.0);
        assert!(p.stages.is_empty());
    }

    #[test]
    fn track_recurrence_matches_the_cycle_executor() {
        // The continuous-time flow-shop and the event-driven cycle-level
        // list scheduler agree exactly on a stage pipeline when issue and
        // fill/drain overheads are zeroed (the continuous model prices
        // those separately).
        let mut hw = HardwareConfig::tiny_test();
        hw.issue_overhead_cycles = 0;
        hw.mac_fill_drain_cycles = 0;
        let bpc = hw.dram_bytes_per_cycle() as usize;
        // Per-stage durations in whole cycles; tiny_test has a 4×4 MAC
        // array and 8 VEC lanes, so construct kinds with exact cycle costs.
        let stage_cycles: [[usize; TRACK_COUNT]; 3] = [[6, 9, 2, 3], [4, 12, 1, 2], [8, 3, 5, 1]];
        let stages: Vec<[Option<TaskKind>; TRACK_COUNT]> = stage_cycles
            .iter()
            .map(|cyc| {
                [
                    Some(TaskKind::DramLoad {
                        bytes: cyc[0] * bpc,
                    }),
                    Some(TaskKind::MatMul {
                        m: 4,
                        k: cyc[1],
                        n: 4,
                    }),
                    Some(TaskKind::VecOp {
                        elements: cyc[2] * 8,
                        passes: 1,
                    }),
                    Some(TaskKind::DramStore {
                        bytes: cyc[3] * bpc,
                    }),
                ]
            })
            .collect();
        let mut g = TaskGraph::new();
        let ids = g.stage_pipeline("pipe", &stages);
        assert_eq!(ids.len(), 3 * TRACK_COUNT);
        let exec = Executor::new(hw.clone(), EnergyModel::edge_16nm());
        let report = exec.run(&g).unwrap();
        // The closed-form flow-shop recurrence agrees with the event-driven
        // list scheduler on the lowered graph...
        assert_eq!(
            report.total_cycles,
            exec.timing().pipeline_makespan_cycles(&stages)
        );
        // ...and the continuous-time planner agrees with both.
        let stage_s: Vec<[f64; TRACK_COUNT]> = stage_cycles
            .iter()
            .map(|cyc| {
                let mut s = [0.0; TRACK_COUNT];
                for t in 0..TRACK_COUNT {
                    s[t] = hw.cycles_to_seconds(cyc[t] as u64);
                }
                s
            })
            .collect();
        let p = DeviceTracks::new().plan(0.0, &stage_s, false);
        let expect_cycles = (p.completion_s * hw.frequency_hz).round() as u64;
        assert_eq!(report.total_cycles, expect_cycles);
    }
}
