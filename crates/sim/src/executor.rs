//! Event-driven list-scheduling executor.
//!
//! The executor assigns each task of a [`TaskGraph`] to its required
//! [`Resource`] as soon as (a) every dependency has finished and (b) the
//! resource is idle, breaking ties by program order (insertion order). This
//! mirrors how the paper's dataflows are issued on the device: each compute
//! unit processes its stream of tiled tasks in order, and the semi-synchronous
//! dependencies between the MAC and VEC streams are expressed as edges in the
//! graph.
//!
//! The result is a [`SimReport`] containing the makespan, energy breakdown,
//! DRAM traffic, per-resource busy time and MAC/VEC overlap.

use std::collections::{BTreeMap, BinaryHeap, HashMap, VecDeque};

use crate::config::HardwareConfig;
use crate::energy::{EnergyBreakdown, EnergyModel};
use crate::error::{Result, SimError};
use crate::graph::TaskGraph;
use crate::report::SimReport;
use crate::task::{Resource, TaskId};
use crate::timing::TimingModel;
use crate::trace::{Trace, TraceEntry};

/// Simulates task graphs on a configured device.
#[derive(Debug, Clone)]
pub struct Executor {
    timing: TimingModel,
    energy: EnergyModel,
    record_trace: bool,
}

impl Executor {
    /// Creates an executor for the given hardware and energy model.
    #[must_use]
    pub fn new(hw: HardwareConfig, energy: EnergyModel) -> Self {
        Self {
            timing: TimingModel::new(hw),
            energy,
            record_trace: true,
        }
    }

    /// Creates an executor with the default edge device and energy model.
    #[must_use]
    pub fn edge_default() -> Self {
        Self::new(HardwareConfig::edge_default(), EnergyModel::edge_16nm())
    }

    /// Disables trace recording (saves memory for very large sweeps).
    #[must_use]
    pub fn without_trace(mut self) -> Self {
        self.record_trace = false;
        self
    }

    /// The hardware configuration used by this executor.
    #[must_use]
    pub fn hardware(&self) -> &HardwareConfig {
        self.timing.hardware()
    }

    /// The timing model used by this executor.
    #[must_use]
    pub fn timing(&self) -> &TimingModel {
        &self.timing
    }

    /// Runs a task graph to completion.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptyGraph`] for an empty graph, graph validation
    /// errors ([`SimError::UnknownDependency`], [`SimError::CyclicGraph`]),
    /// [`SimError::UnknownResource`] if a task names a core the device does
    /// not have, or [`SimError::InvalidConfig`] for a bad configuration.
    pub fn run(&self, graph: &TaskGraph) -> Result<SimReport> {
        let hw = self.timing.hardware();
        hw.validate()?;
        if graph.is_empty() {
            return Err(SimError::EmptyGraph);
        }
        graph.validate()?;
        for task in graph.iter() {
            if let Some(core) = task.resource.core() {
                if core >= hw.cores {
                    return Err(SimError::UnknownResource {
                        resource: task.resource,
                        cores: hw.cores,
                    });
                }
            }
        }

        let n = graph.len();
        let mut remaining_deps = vec![0usize; n];
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        for task in graph.iter() {
            remaining_deps[task.id.index()] = task.deps.len();
            for dep in &task.deps {
                dependents[dep.index()].push(task.id.index());
            }
        }

        // Scheduling priority. Compute units issue their stream in program
        // order (the order the dataflow intends). DMA channels are
        // demand-driven: transfers whose consumer comes earliest in program
        // order are served first, which models double-buffered prefetching
        // that follows the compute streams instead of blindly following the
        // order requests were queued.
        let mut priority = vec![0usize; n];
        for task in graph.iter() {
            let i = task.id.index();
            priority[i] = match task.resource {
                Resource::DmaIn | Resource::DmaOut => dependents[i]
                    .iter()
                    .copied()
                    .min()
                    .unwrap_or(usize::MAX - n + i),
                _ => i,
            };
        }

        // Ready queues per resource, ordered by (priority, program order).
        let mut ready: HashMap<Resource, VecDeque<usize>> = HashMap::new();
        for task in graph.iter() {
            ready.entry(task.resource).or_default();
        }
        let enqueue = |queue: &mut VecDeque<usize>, priority: &[usize], index: usize| {
            let key = (priority[index], index);
            let pos = queue
                .iter()
                .position(|&other| (priority[other], other) > key)
                .unwrap_or(queue.len());
            queue.insert(pos, index);
        };
        // Seed initially-ready tasks.
        for task in graph.iter() {
            if remaining_deps[task.id.index()] == 0 {
                let queue = ready
                    .get_mut(&task.resource)
                    .expect("queue exists for every resource");
                enqueue(queue, &priority, task.id.index());
            }
        }

        // Min-heap of running tasks by end cycle (reverse ordering on a max-heap).
        #[derive(PartialEq, Eq)]
        struct Running {
            end: u64,
            index: usize,
        }
        impl Ord for Running {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                other.end.cmp(&self.end).then(other.index.cmp(&self.index))
            }
        }
        impl PartialOrd for Running {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }

        let mut running: BinaryHeap<Running> = BinaryHeap::new();
        let mut resource_busy_until: HashMap<Resource, u64> = HashMap::new();
        let mut busy_cycles: BTreeMap<String, u64> = BTreeMap::new();
        let mut trace = Trace::new();
        let mut energy = EnergyBreakdown::zero();
        let mut completed = 0usize;
        let mut now: u64 = 0;
        let mut mac_intervals: Vec<(u64, u64)> = Vec::new();
        let mut vec_intervals: Vec<(u64, u64)> = Vec::new();

        while completed < n {
            // Start every task that can start at the current time.
            let mut started_any = true;
            while started_any {
                started_any = false;
                // Iterate resources deterministically (sorted by display name).
                let mut resources: Vec<Resource> = ready.keys().copied().collect();
                resources.sort_by_key(|r| r.to_string());
                for resource in resources {
                    let busy_until = resource_busy_until.get(&resource).copied().unwrap_or(0);
                    if busy_until > now {
                        continue;
                    }
                    let queue = ready.get_mut(&resource).expect("resource queue exists");
                    if let Some(&index) = queue.front() {
                        queue.pop_front();
                        let task = graph.get(TaskId(index)).expect("task exists");
                        let duration = self.timing.task_cycles(&task.kind);
                        let start = now;
                        let end = start + duration;
                        resource_busy_until.insert(resource, end);
                        running.push(Running { end, index });
                        *busy_cycles.entry(resource.to_string()).or_insert(0) += duration;
                        energy.accumulate(&self.energy.task_energy(
                            &task.kind,
                            hw.element_bytes,
                            hw.softmax_ops_per_element,
                        ));
                        if duration > 0 {
                            match resource {
                                Resource::Mac { .. } => mac_intervals.push((start, end)),
                                Resource::Vec { .. } => vec_intervals.push((start, end)),
                                _ => {}
                            }
                        }
                        if self.record_trace {
                            trace.push(TraceEntry {
                                task: task.id,
                                label: task.label.clone(),
                                resource,
                                start_cycle: start,
                                end_cycle: end,
                            });
                        }
                        started_any = true;
                    }
                }
            }

            // Advance time to the next completion.
            match running.pop() {
                Some(first) => {
                    now = now.max(first.end);
                    let mut finished = vec![first.index];
                    while let Some(next) = running.peek() {
                        if next.end <= now {
                            finished.push(running.pop().expect("peeked element exists").index);
                        } else {
                            break;
                        }
                    }
                    for index in finished {
                        completed += 1;
                        for &dep_index in &dependents[index] {
                            remaining_deps[dep_index] -= 1;
                            if remaining_deps[dep_index] == 0 {
                                let task = graph.get(TaskId(dep_index)).expect("task exists");
                                let queue = ready
                                    .get_mut(&task.resource)
                                    .expect("resource queue exists");
                                enqueue(queue, &priority, dep_index);
                            }
                        }
                    }
                }
                None => {
                    // No running tasks and nothing could start: the graph was
                    // validated acyclic, so this indicates an internal error.
                    return Err(SimError::CyclicGraph {
                        unscheduled: n - completed,
                    });
                }
            }
        }

        let total_cycles = resource_busy_until.values().copied().max().unwrap_or(0);
        let overlap = interval_overlap(&mut mac_intervals, &mut vec_intervals);

        Ok(SimReport {
            total_cycles,
            total_seconds: hw.cycles_to_seconds(total_cycles),
            energy,
            dram_read_bytes: graph.dram_read_bytes(),
            dram_write_bytes: graph.dram_write_bytes(),
            mac_ops: graph.total_mac_ops(),
            vec_ops: graph.total_vec_ops(hw.softmax_ops_per_element),
            busy_cycles,
            tasks_executed: n,
            mac_vec_overlap_cycles: overlap,
            trace: if self.record_trace { Some(trace) } else { None },
        })
    }
}

/// Computes the number of cycles covered by both interval sets (union of set A
/// intersected with union of set B).
fn interval_overlap(a: &mut [(u64, u64)], b: &mut [(u64, u64)]) -> u64 {
    let merged_a = merge_intervals(a);
    let merged_b = merge_intervals(b);
    let mut i = 0;
    let mut j = 0;
    let mut total = 0u64;
    while i < merged_a.len() && j < merged_b.len() {
        let (sa, ea) = merged_a[i];
        let (sb, eb) = merged_b[j];
        let start = sa.max(sb);
        let end = ea.min(eb);
        if end > start {
            total += end - start;
        }
        if ea < eb {
            i += 1;
        } else {
            j += 1;
        }
    }
    total
}

fn merge_intervals(v: &mut [(u64, u64)]) -> Vec<(u64, u64)> {
    v.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(v.len());
    for &(s, e) in v.iter() {
        if let Some(last) = out.last_mut() {
            if s <= last.1 {
                last.1 = last.1.max(e);
                continue;
            }
        }
        out.push((s, e));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskKind;

    fn executor() -> Executor {
        Executor::new(HardwareConfig::edge_default(), EnergyModel::edge_16nm())
    }

    #[test]
    fn empty_graph_is_an_error() {
        let g = TaskGraph::new();
        assert!(matches!(executor().run(&g), Err(SimError::EmptyGraph)));
    }

    #[test]
    fn single_task_makespan_matches_timing_model() {
        let mut g = TaskGraph::new();
        let kind = TaskKind::MatMul {
            m: 64,
            k: 64,
            n: 64,
        };
        g.add_task("mm", Resource::Mac { core: 0 }, kind, &[]);
        let exec = executor();
        let report = exec.run(&g).unwrap();
        assert_eq!(report.total_cycles, exec.timing().task_cycles(&kind));
        assert_eq!(report.tasks_executed, 1);
        assert!(report.total_seconds > 0.0);
    }

    #[test]
    fn independent_tasks_on_different_resources_overlap() {
        let mut g = TaskGraph::new();
        let mm = TaskKind::MatMul {
            m: 64,
            k: 512,
            n: 64,
        };
        let sm = TaskKind::Softmax {
            rows: 64,
            cols: 512,
        };
        g.add_task("mm", Resource::Mac { core: 0 }, mm, &[]);
        g.add_task("sm", Resource::Vec { core: 0 }, sm, &[]);
        let exec = executor();
        let report = exec.run(&g).unwrap();
        let mm_cycles = exec.timing().task_cycles(&mm);
        let sm_cycles = exec.timing().task_cycles(&sm);
        assert_eq!(report.total_cycles, mm_cycles.max(sm_cycles));
        assert_eq!(report.mac_vec_overlap_cycles, mm_cycles.min(sm_cycles));
    }

    #[test]
    fn dependent_tasks_serialize() {
        let mut g = TaskGraph::new();
        let mm = TaskKind::MatMul {
            m: 64,
            k: 512,
            n: 64,
        };
        let sm = TaskKind::Softmax {
            rows: 64,
            cols: 512,
        };
        let a = g.add_task("mm", Resource::Mac { core: 0 }, mm, &[]);
        g.add_task("sm", Resource::Vec { core: 0 }, sm, &[a]);
        let exec = executor();
        let report = exec.run(&g).unwrap();
        let expected = exec.timing().task_cycles(&mm) + exec.timing().task_cycles(&sm);
        assert_eq!(report.total_cycles, expected);
        assert_eq!(report.mac_vec_overlap_cycles, 0);
    }

    #[test]
    fn same_resource_tasks_serialize_even_without_deps() {
        let mut g = TaskGraph::new();
        let mm = TaskKind::MatMul {
            m: 64,
            k: 64,
            n: 64,
        };
        g.add_task("a", Resource::Mac { core: 0 }, mm, &[]);
        g.add_task("b", Resource::Mac { core: 0 }, mm, &[]);
        let exec = executor();
        let report = exec.run(&g).unwrap();
        assert_eq!(report.total_cycles, 2 * exec.timing().task_cycles(&mm));
    }

    #[test]
    fn two_cores_double_throughput() {
        let mm = TaskKind::MatMul {
            m: 64,
            k: 64,
            n: 64,
        };
        let mut one_core = TaskGraph::new();
        one_core.add_task("a", Resource::Mac { core: 0 }, mm, &[]);
        one_core.add_task("b", Resource::Mac { core: 0 }, mm, &[]);
        let mut two_cores = TaskGraph::new();
        two_cores.add_task("a", Resource::Mac { core: 0 }, mm, &[]);
        two_cores.add_task("b", Resource::Mac { core: 1 }, mm, &[]);
        let exec = executor();
        let serial = exec.run(&one_core).unwrap();
        let parallel = exec.run(&two_cores).unwrap();
        assert_eq!(serial.total_cycles, 2 * parallel.total_cycles);
    }

    #[test]
    fn unknown_core_is_rejected() {
        let mut g = TaskGraph::new();
        g.add_task(
            "mm",
            Resource::Mac { core: 9 },
            TaskKind::MatMul { m: 1, k: 1, n: 1 },
            &[],
        );
        assert!(matches!(
            executor().run(&g),
            Err(SimError::UnknownResource { .. })
        ));
    }

    #[test]
    fn dram_traffic_and_energy_are_reported() {
        let mut g = TaskGraph::new();
        let ld = g.add_task(
            "ld",
            Resource::DmaIn,
            TaskKind::DramLoad { bytes: 4096 },
            &[],
        );
        let mm = g.add_task(
            "mm",
            Resource::Mac { core: 0 },
            TaskKind::MatMul {
                m: 16,
                k: 16,
                n: 16,
            },
            &[ld],
        );
        g.add_task(
            "st",
            Resource::DmaOut,
            TaskKind::DramStore { bytes: 512 },
            &[mm],
        );
        let report = executor().run(&g).unwrap();
        assert_eq!(report.dram_read_bytes, 4096);
        assert_eq!(report.dram_write_bytes, 512);
        assert!(report.energy.dram_pj > 0.0);
        assert!(report.energy.mac_pe_pj > 0.0);
        assert_eq!(report.mac_ops, 16 * 16 * 16);
    }

    #[test]
    fn trace_can_be_disabled() {
        let mut g = TaskGraph::new();
        g.add_task(
            "mm",
            Resource::Mac { core: 0 },
            TaskKind::MatMul { m: 4, k: 4, n: 4 },
            &[],
        );
        let with = executor().run(&g).unwrap();
        let without = executor().without_trace().run(&g).unwrap();
        assert!(with.trace.is_some());
        assert!(without.trace.is_none());
        assert_eq!(with.total_cycles, without.total_cycles);
    }

    #[test]
    fn program_order_breaks_ties_on_a_resource() {
        let mut g = TaskGraph::new();
        let mm = TaskKind::MatMul {
            m: 16,
            k: 16,
            n: 16,
        };
        g.add_task("first", Resource::Mac { core: 0 }, mm, &[]);
        g.add_task("second", Resource::Mac { core: 0 }, mm, &[]);
        let report = executor().run(&g).unwrap();
        let trace = report.trace.unwrap();
        let entries = trace.on_resource(Resource::Mac { core: 0 });
        assert_eq!(entries[0].label, "first");
        assert_eq!(entries[1].label, "second");
    }

    #[test]
    fn interval_overlap_helper() {
        let mut a = vec![(0u64, 10u64), (20, 30)];
        let mut b = vec![(5u64, 25u64)];
        assert_eq!(interval_overlap(&mut a, &mut b), 10);
        let mut c = vec![(0u64, 5u64), (3, 8)];
        let mut d = vec![(0u64, 8u64)];
        assert_eq!(interval_overlap(&mut c, &mut d), 8);
    }
}
