//! Mixed prefill+decode behavior of the unified engine: the iteration-level
//! scheduling policy observably moves per-class tail latency, the shared
//! memory budget couples the two classes in both directions, and the budget
//! accounting is violation-free under proptest-generated interleavings.

use proptest::prelude::*;

use mas_dataflow::{AttentionWorkload, DataflowKind, DecodeStep};
use mas_serve::{
    BatchPolicy, ChunkPolicy, DecodePolicy, EngineConfig, EventKind, LaunchKey, PreemptMode,
    PreemptVictim, RejectReason, SchedulePolicy, ServeEngine, ServeRequest, TelemetryConfig,
};
use mas_sim::HardwareConfig;
use mas_workloads::{
    mixed_trace, overload_burst_trace, DecodeSessionSpec, DecodeStepEvent, DecodeTrace,
    MixedTraceConfig, Network, OverloadBurstConfig,
};

fn hw() -> HardwareConfig {
    HardwareConfig::edge_default()
}

/// `sessions` decode sessions in lockstep: step `k` of every session
/// arrives at `k · gap_s` (cross-session simultaneous, so steps batch).
fn lockstep_decode(sessions: u64, steps: usize, prompt: usize, gap_s: f64) -> DecodeTrace {
    let specs: Vec<DecodeSessionSpec> = (0..sessions)
        .map(|id| DecodeSessionSpec {
            id,
            network: Network::BertSmall,
            start_s: 0.0,
            heads: 8,
            kv_heads: 8,
            embed: 64,
            prompt_len: prompt,
            steps,
            prefix_group: None,
            shared_prefix_len: 0,
        })
        .collect();
    let mut events = Vec::new();
    for step_index in 0..steps {
        for id in 0..sessions {
            events.push(DecodeStepEvent {
                session_id: id,
                step_index,
                arrival_s: step_index as f64 * gap_s + 1e-9,
            });
        }
    }
    DecodeTrace {
        sessions: specs,
        steps: events,
    }
}

/// `bursts` bursts of `per_burst` identical prefill requests, burst `k`
/// arriving at `offset_s + k · gap_s`.
fn prefill_bursts(
    bursts: usize,
    per_burst: usize,
    offset_s: f64,
    gap_s: f64,
    workload: &AttentionWorkload,
) -> Vec<ServeRequest> {
    let mut requests = Vec::new();
    for k in 0..bursts {
        for j in 0..per_burst {
            requests.push(ServeRequest::new(
                (k * per_burst + j) as u64,
                offset_s + k as f64 * gap_s,
                DataflowKind::MasAttention,
                workload.clone(),
                None,
            ));
        }
    }
    requests
}

fn engine(policy: SchedulePolicy) -> ServeEngine {
    ServeEngine::new(EngineConfig {
        policy,
        ..EngineConfig::default()
    })
}

/// The policy scenario: decode launches (ready at tick + window) and
/// prefill batches (ready 1 ms later) contend for one device at every tick.
/// Long decode contexts make the batched cache stream DRAM-bound (~ms per
/// launch), so each class can visibly delay the other.
fn policy_scenario() -> (Vec<ServeRequest>, DecodeTrace) {
    // 12 sessions < max_steps_per_launch, so the decode launch waits out
    // its window instead of fill-dispatching past the policy ordering.
    let decode = lockstep_decode(12, 30, 2000, 0.01);
    // 6 requests per burst < max_batch 8, so prefill waits out its window
    // and meets the decode launch at the next tick's dispatch instant. One
    // fewer burst than decode ticks, so every prefill batch dispatches at a
    // policy-ordered event rather than in the end-of-trace flush.
    let prefill = prefill_bursts(
        29,
        6,
        0.001,
        0.01,
        &Network::BertSmall.attention_workload(1),
    );
    (prefill, decode)
}

#[test]
fn scheduling_policy_observably_moves_per_class_p99() {
    let (prefill, decode) = policy_scenario();
    let run = |policy: SchedulePolicy| engine(policy).run(&prefill, &decode).unwrap();
    let decode_first = run(SchedulePolicy::DecodePriority);
    let prefill_first = run(SchedulePolicy::PrefillPriority);
    let fair = run(SchedulePolicy::FairShare);

    // The policy reorders contended launch slots; it never changes what
    // completes.
    for report in [&decode_first, &prefill_first, &fair] {
        assert_eq!(report.decode.completed(), 360, "{}", report.summary());
        assert_eq!(report.prefill.completed(), 174, "{}", report.summary());
        assert_eq!(report.rejected(), 0, "{}", report.summary());
        assert!(report.mem_peak_bytes <= report.mem_budget_bytes);
    }

    let d_dp = decode_first.decode_latency().unwrap();
    let d_pp = prefill_first.decode_latency().unwrap();
    let p_dp = decode_first.prefill_latency().unwrap();
    let p_pp = prefill_first.prefill_latency().unwrap();
    // Decode-priority must visibly protect decode p99 against the prefill
    // burst, and prefill-priority must visibly protect prefill p99.
    assert!(
        d_pp.p99_s > 1.5 * d_dp.p99_s,
        "prefill-priority decode p99 ({:.3} ms) must exceed decode-priority \
         decode p99 ({:.3} ms) by >1.5x",
        d_pp.p99_s * 1e3,
        d_dp.p99_s * 1e3,
    );
    assert!(
        p_dp.p99_s > p_pp.p99_s,
        "decode-priority prefill p99 ({:.3} ms) must exceed prefill-priority \
         prefill p99 ({:.3} ms)",
        p_dp.p99_s * 1e3,
        p_pp.p99_s * 1e3,
    );

    // Decode-priority keeps decode p99 within 2x of the decode-only
    // baseline (the co-scheduling acceptance bar, also asserted by the
    // `serve_mixed` bench).
    let baseline = engine(SchedulePolicy::DecodePriority)
        .run(&[], &decode)
        .unwrap();
    let d_base = baseline.decode_latency().unwrap();
    assert!(
        d_dp.p99_s <= 2.0 * d_base.p99_s,
        "decode-priority decode p99 ({:.3} ms) must stay within 2x of the \
         decode-only baseline ({:.3} ms)",
        d_dp.p99_s * 1e3,
        d_base.p99_s * 1e3,
    );

    // Determinism: the mixed replay is a pure function of its inputs.
    assert_eq!(decode_first, run(SchedulePolicy::DecodePriority));
}

#[test]
fn decode_residency_sheds_prefill_under_a_shared_budget() {
    let hw = hw();
    let prefill_workload = Network::BertSmall.attention_workload(1);
    let prefill_charge = 4 * prefill_workload.operand_bytes(hw.element_bytes);
    // One decode session whose legacy max-context reservation fills the
    // budget to within half a prefill charge.
    let session_tokens = 2048usize;
    let session_bytes =
        DecodeStep::new("s", 1, 8, session_tokens, 64).kv_cache_bytes(hw.element_bytes);
    let budget = session_bytes + prefill_charge / 2;

    let decode = lockstep_decode(1, 8, session_tokens - 8, 0.01);
    // The prefill request arrives while the session is resident.
    let prefill = vec![ServeRequest::new(
        0,
        0.035,
        DataflowKind::MasAttention,
        prefill_workload,
        None,
    )];
    let config = EngineConfig {
        decode: DecodePolicy {
            kv_block_tokens: None, // legacy charging: whole reservation up front
            ..DecodePolicy::default()
        },
        shared_budget_bytes: Some(budget),
        ..EngineConfig::default()
    };

    let mixed = ServeEngine::new(config.clone())
        .run(&prefill, &decode)
        .unwrap();
    assert_eq!(mixed.decode.sessions_admitted, 1, "{}", mixed.summary());
    assert_eq!(mixed.prefill.completed(), 0, "{}", mixed.summary());
    assert_eq!(mixed.prefill.rejected.len(), 1);
    assert_eq!(
        mixed.prefill.rejected[0].reason,
        RejectReason::MemoryPressure
    );
    assert!(mixed.mem_peak_bytes <= budget);

    // Without the decode residency the same request fits the same budget.
    let alone = ServeEngine::new(config)
        .run(&prefill, &DecodeTrace::empty())
        .unwrap();
    assert_eq!(alone.prefill.completed(), 1);
    assert!(alone.prefill.rejected.is_empty());
}

#[test]
fn prefill_pressure_sheds_decode_under_a_shared_budget() {
    let hw = hw();
    let prefill_workload = Network::BertSmall.attention_workload(1);
    let prefill_charge = 4 * prefill_workload.operand_bytes(hw.element_bytes);
    let session_tokens = 2048usize;
    let session_bytes =
        DecodeStep::new("s", 1, 8, session_tokens, 64).kv_cache_bytes(hw.element_bytes);
    // Ten queued prefill charges fill the budget; the session alone fits.
    let budget = 10 * prefill_charge + session_bytes / 2;

    // Burst of 10 at t=0 (queued until their batch completes); the session
    // opens at 1 ms, mid-pressure.
    let prefill = prefill_bursts(1, 10, 0.0, 0.01, &prefill_workload);
    let mut decode = lockstep_decode(1, 4, session_tokens - 4, 0.01);
    for event in &mut decode.steps {
        event.arrival_s += 0.001;
    }
    let config = EngineConfig {
        decode: DecodePolicy {
            kv_block_tokens: None,
            ..DecodePolicy::default()
        },
        shared_budget_bytes: Some(budget),
        ..EngineConfig::default()
    };

    let mixed = ServeEngine::new(config.clone())
        .run(&prefill, &decode)
        .unwrap();
    assert!(mixed.prefill.completed() > 0, "{}", mixed.summary());
    assert_eq!(
        mixed.decode.sessions_admitted,
        0,
        "the prefill burst must squeeze the session out: {}",
        mixed.summary()
    );
    assert_eq!(mixed.decode.rejected_sessions.len(), 1);
    assert!(mixed.mem_peak_bytes <= budget);

    // Decode-only under the same budget: the session is admitted.
    let alone = ServeEngine::new(config).run(&[], &decode).unwrap();
    assert_eq!(alone.decode.sessions_admitted, 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    // Budget-accounting invariants under random mixed interleavings: every
    // work item is accounted exactly once, the shared peak never exceeds
    // the budget, the peak split sums, and the replay is deterministic.
    #[test]
    fn budget_accounting_holds_under_random_mixed_interleavings(
        prefill_count in 0usize..10,
        sessions in 0usize..5,
        seed in 0u64..1000,
        budget_pick in 0usize..4,
        policy_pick in 0usize..3,
        paged_pick in 0usize..2,
    ) {
        let budget_mb = [1u64, 4, 16, 3072][budget_pick];
        let policy = [
            SchedulePolicy::FairShare,
            SchedulePolicy::DecodePriority,
            SchedulePolicy::PrefillPriority,
        ][policy_pick];
        let paged = paged_pick == 1;
        let trace = mixed_trace(&MixedTraceConfig::poisson(
            vec![Network::BertSmall, Network::T5Mini],
            prefill_count,
            2000.0,
            sessions,
            300.0,
            seed,
        ));
        let config = EngineConfig {
            decode: DecodePolicy {
                kv_block_tokens: if paged { Some(16) } else { None },
                ..DecodePolicy::default()
            },
            policy,
            shared_budget_bytes: Some(budget_mb * 1_000_000),
            ..EngineConfig::default()
        };
        let stream = ServeRequest::stream_from_trace(
            &trace.prefill,
            DataflowKind::MasAttention,
            Some(0.05),
        );
        let report = ServeEngine::new(config.clone()).run(&stream, &trace.decode).unwrap();

        // Conservation: every prefill request and every decode step is
        // either completed or rejected, exactly once.
        prop_assert_eq!(
            report.prefill.completed() + report.prefill.rejected.len(),
            stream.len()
        );
        prop_assert_eq!(
            report.decode.completed() + report.decode.rejected.len(),
            trace.decode.total_steps()
        );

        // Budget: the shared peak never exceeds the enforced budget, and
        // its per-class split is exact.
        prop_assert!(report.mem_peak_bytes <= report.mem_budget_bytes);
        prop_assert_eq!(
            report.mem_peak_bytes,
            report.mem_peak_prefill_bytes + report.mem_peak_decode_bytes
        );
        // The decode-class KV peak can never exceed the shared peak's
        // decode share at some instant, which itself is bounded by the
        // budget.
        prop_assert!(report.decode.kv_peak_bytes <= report.mem_budget_bytes);

        // Determinism: a second replay is bit-identical.
        let again = ServeEngine::new(config).run(&stream, &trace.decode).unwrap();
        prop_assert_eq!(report, again);
    }
}

/// The overload scenario's engine config: decode-priority scheduling with
/// a 4 ms per-step SLO, and chunked prefill + iteration-level preemption
/// either both off (the head-of-line-blocking shape) or both on.
fn overload_config(chunk: Option<ChunkPolicy>, preempt: Option<PreemptMode>) -> EngineConfig {
    EngineConfig {
        policy: SchedulePolicy::DecodePriority,
        decode: DecodePolicy {
            step_deadline_s: Some(0.004),
            ..DecodePolicy::default()
        },
        chunked_prefill: chunk,
        preempt,
        ..EngineConfig::default()
    }
}

/// The overload acceptance scenario: a convoy of distinct multi-ms
/// monolithic prefills lands mid-stream on steady decode traffic. With
/// chunking and preemption off, decode launches wall behind whole prefill
/// services (unbounded head-of-line blocking); with both on, decode p99
/// stays within 2x of the uncontended decode-only baseline while the same
/// work completes, the telemetry replay stays bit-identical, and no budget
/// release is ever dropped.
#[test]
fn chunked_prefill_and_preemption_bound_decode_tail_under_overload() {
    let trace = overload_burst_trace(&OverloadBurstConfig::new(Network::Llama3_8B));
    let stream = ServeRequest::stream_from_trace(&trace.prefill, DataflowKind::MasAttention, None);
    let chunk = Some(ChunkPolicy::new(64));
    let preempt = Some(PreemptMode::Hold);

    let baseline = ServeEngine::new(overload_config(chunk, preempt))
        .run(&[], &trace.decode)
        .unwrap();
    let base_p99 = baseline.decode_latency().unwrap().p99_s;

    let off = ServeEngine::new(overload_config(None, None))
        .run(&stream, &trace.decode)
        .unwrap();
    let off_p99 = off.decode_latency().unwrap().p99_s;
    assert!(
        off_p99 > 2.0 * base_p99,
        "without chunking/preemption the convoy must blow decode p99 past \
         2x the decode-only baseline ({:.3} ms vs {:.3} ms)",
        off_p99 * 1e3,
        base_p99 * 1e3,
    );
    assert_eq!(off.preemptions_prefill + off.preemptions_decode, 0);

    let mut engine = ServeEngine::new(EngineConfig {
        telemetry: Some(TelemetryConfig::default()),
        ..overload_config(chunk, preempt)
    });
    let on = engine.run(&stream, &trace.decode).unwrap();
    let on_p99 = on.decode_latency().unwrap().p99_s;
    assert!(
        on_p99 <= 2.0 * base_p99,
        "chunking + preemption must bound decode p99 to 2x the decode-only \
         baseline ({:.3} ms vs {:.3} ms)",
        on_p99 * 1e3,
        base_p99 * 1e3,
    );
    assert!(on.preemptions_prefill > 0, "{}", on.summary());

    // Both shapes complete the same work: bounding the tail sheds nothing.
    for report in [&off, &on] {
        assert_eq!(report.decode.completed(), trace.decode.total_steps());
        assert_eq!(report.prefill.completed(), stream.len());
        assert_eq!(report.rejected(), 0, "{}", report.summary());
    }

    // Telemetry replays the preempting run bit-identically, no release is
    // ever dropped, and the event log carries exactly the counted launch
    // displacements.
    let telemetry = engine.telemetry().unwrap();
    assert_eq!(telemetry.report().expect("complete event log"), on);
    assert_eq!(telemetry.release_drops(), 0);
    let preempted_launches = telemetry
        .events()
        .iter()
        .filter(|e| {
            matches!(
                e.kind,
                EventKind::Preempted {
                    victim: PreemptVictim::Launch { .. }
                }
            )
        })
        .count();
    assert_eq!(preempted_launches, on.preemptions_prefill);

    // Determinism: telemetry never perturbs the replay.
    let again = ServeEngine::new(overload_config(chunk, preempt))
        .run(&stream, &trace.decode)
        .unwrap();
    assert_eq!(on, again);
}

/// One decode session of the KV-preemption scenario: a 255-token prompt
/// at 2 KiB/token (f16 KV), so admission charges 16 blocks (512 KiB) and
/// the session's second step crosses into a 17th block.
fn kv_swap_spec(id: u64, start_s: f64, steps: usize) -> DecodeSessionSpec {
    DecodeSessionSpec {
        id,
        network: Network::BertSmall,
        start_s,
        heads: 8,
        kv_heads: 8,
        embed: 64,
        prompt_len: 255,
        steps,
        prefix_group: None,
        shared_prefix_len: 0,
    }
}

/// KV-side preemption: when a session's block growth cannot fit the shared
/// pool, an idle session is swapped out (charges freed, residency stashed)
/// instead of shedding the step, and it resumes at its next surviving
/// step. `Hold` restores the stash off the timeline; `Recompute`
/// additionally re-prices the evicted context as prefill work folded into
/// the resuming launch, so the resumed step is strictly slower.
#[test]
fn kv_pressure_swaps_idle_session_and_resumes_it() {
    // The budget fits both admissions (1 MiB) plus one growth block, so
    // the second session's growth at 0.07 must evict the idle first
    // session rather than shed the step.
    let step_times = [
        (0u64, 0usize, 0.01),
        (0, 1, 0.02), // session 0 grows its 17th block
        (1, 0, 0.06),
        (1, 1, 0.07), // session 1's growth evicts the idle session 0
        (0, 2, 0.20), // session 0 resumes here
        (0, 3, 0.21),
    ];
    let trace = DecodeTrace {
        sessions: vec![kv_swap_spec(0, 0.0, 4), kv_swap_spec(1, 0.05, 2)],
        steps: step_times
            .iter()
            .map(|&(session_id, step_index, arrival_s)| DecodeStepEvent {
                session_id,
                step_index,
                arrival_s,
            })
            .collect(),
    };
    let run = |mode: PreemptMode| {
        let mut engine = ServeEngine::new(EngineConfig {
            shared_budget_bytes: Some(1_100_000),
            preempt: Some(mode),
            telemetry: Some(TelemetryConfig::default()),
            ..EngineConfig::default()
        });
        let report = engine.run(&[], &trace).unwrap();
        let telemetry = engine.telemetry().unwrap();
        assert_eq!(telemetry.report().expect("complete event log"), report);
        assert_eq!(telemetry.release_drops(), 0);
        let swaps = telemetry
            .events()
            .iter()
            .filter(|e| {
                matches!(
                    e.kind,
                    EventKind::Preempted {
                        victim: PreemptVictim::Session { session_id: 0, .. }
                    }
                )
            })
            .count();
        let resumes = telemetry
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::SessionResumed { session_id: 0, .. }))
            .count();
        assert_eq!((swaps, resumes), (1, 1), "{}", report.summary());
        report
    };
    let hold = run(PreemptMode::Hold);
    let recompute = run(PreemptMode::Recompute);
    for report in [&hold, &recompute] {
        assert_eq!(report.decode.completed(), 6, "{}", report.summary());
        assert_eq!(report.rejected(), 0, "{}", report.summary());
        assert_eq!(report.preemptions_decode, 1);
        assert_eq!(report.preemptions_prefill, 0);
    }
    let step_latency = |report: &mas_serve::EngineReport, step_index: usize| {
        let o = report
            .decode
            .outcomes
            .iter()
            .find(|o| o.session_id == 0 && o.step_index == step_index)
            .expect("step completed");
        o.completion_s - o.arrival_s
    };
    // The resumed step pays the recompute cost; before the swap the two
    // modes price identically.
    assert!(step_latency(&recompute, 2) > step_latency(&hold, 2));
    assert_eq!(step_latency(&recompute, 0), step_latency(&hold, 0));
}

/// A zero batching window disables coalescing, and chunked prefill must
/// preserve that: each request lowers into its own chunk chain whose
/// launches dispatch in chain order (indices 0..of ascending, starts
/// nondecreasing) with exactly one member request each.
#[test]
fn zero_window_dispatches_chunks_in_chain_order_without_coalescing() {
    let requests = vec![
        ServeRequest::new(
            0,
            0.001,
            DataflowKind::MasAttention,
            Network::BertSmall.attention_workload(1),
            None,
        ),
        ServeRequest::new(
            1,
            0.002,
            DataflowKind::MasAttention,
            Network::BertBase.attention_workload(1),
            None,
        ),
    ];
    let mut engine = ServeEngine::new(EngineConfig {
        batching: BatchPolicy {
            window_s: 0.0,
            ..BatchPolicy::default()
        },
        chunked_prefill: Some(ChunkPolicy::new(128)),
        telemetry: Some(TelemetryConfig::default()),
        ..EngineConfig::default()
    });
    let empty = DecodeTrace {
        sessions: Vec::new(),
        steps: Vec::new(),
    };
    let report = engine.run(&requests, &empty).unwrap();
    assert_eq!(report.prefill.completed(), 2, "{}", report.summary());
    assert_eq!(report.rejected(), 0);

    // Chunk launches in event order, per chain: indices must ascend 0..of
    // contiguously and starts must never regress within a chain.
    let telemetry = engine.telemetry().unwrap();
    let mut per_chain: std::collections::BTreeMap<u64, Vec<(u32, u32, u32, f64)>> =
        std::collections::BTreeMap::new();
    for event in telemetry.events() {
        if let EventKind::LaunchDispatched {
            key: LaunchKey::PrefillChunk(chunk_key),
            members,
            start_s,
            ..
        } = event.kind
        {
            per_chain.entry(chunk_key.chain).or_default().push((
                chunk_key.index,
                chunk_key.of,
                members,
                start_s,
            ));
        }
    }
    // Both 512-token requests chunk at 128 tokens: two chains of four.
    assert_eq!(per_chain.len(), 2);
    for chunks in per_chain.values() {
        assert_eq!(chunks.len(), 4);
        for (position, &(index, of, members, start_s)) in chunks.iter().enumerate() {
            assert_eq!(index as usize, position, "chain order violated");
            assert_eq!(of, 4);
            assert_eq!(members, 1, "zero window must never coalesce");
            if position > 0 {
                assert!(start_s >= chunks[position - 1].3);
            }
        }
    }
}

/// `DecodePolicy::max_steps_per_launch == 0` is normalized to 1 (every
/// step launches alone) rather than wedging the launch-full check.
#[test]
fn zero_max_steps_per_launch_behaves_as_one() {
    let decode = lockstep_decode(3, 10, 512, 0.005);
    let run = |max_steps: usize| {
        ServeEngine::new(EngineConfig {
            decode: DecodePolicy {
                max_steps_per_launch: max_steps,
                ..DecodePolicy::default()
            },
            ..EngineConfig::default()
        })
        .run(&[], &decode)
        .unwrap()
    };
    let zero = run(0);
    assert_eq!(zero.decode.completed(), 30, "{}", zero.summary());
    assert_eq!(zero, run(1));
    // The normalization is observable: real batching prices differently.
    assert_ne!(zero, run(16));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // A chunk policy that lowers every batch into exactly one chunk (a
    // zero budget means "whole prompt") must replay bit-identically to
    // the monolithic engine with chunking disabled.
    #[test]
    fn single_chunk_layouts_replay_bitwise_equal_to_monolithic(
        prefill_count in 1usize..8,
        sessions in 0usize..4,
        seed in 0u64..1000,
        whole_prompt in 0usize..2,
    ) {
        let chunk_tokens = if whole_prompt == 1 { 0 } else { 1 << 20 };
        let trace = mixed_trace(&MixedTraceConfig::poisson(
            vec![Network::BertSmall, Network::T5Mini],
            prefill_count,
            2000.0,
            sessions,
            300.0,
            seed,
        ));
        let stream = ServeRequest::stream_from_trace(
            &trace.prefill,
            DataflowKind::MasAttention,
            Some(0.05),
        );
        let monolithic = ServeEngine::new(EngineConfig::default())
            .run(&stream, &trace.decode)
            .unwrap();
        let chunked = ServeEngine::new(EngineConfig {
            chunked_prefill: Some(ChunkPolicy::new(chunk_tokens)),
            ..EngineConfig::default()
        })
        .run(&stream, &trace.decode)
        .unwrap();
        prop_assert_eq!(monolithic, chunked);
    }
}
