//! Mixed prefill+decode behavior of the unified engine: the iteration-level
//! scheduling policy observably moves per-class tail latency, the shared
//! memory budget couples the two classes in both directions, and the budget
//! accounting is violation-free under proptest-generated interleavings.

use proptest::prelude::*;

use mas_dataflow::{AttentionWorkload, DataflowKind, DecodeStep};
use mas_serve::{
    DecodePolicy, EngineConfig, RejectReason, SchedulePolicy, ServeEngine, ServeRequest,
};
use mas_sim::HardwareConfig;
use mas_workloads::{
    mixed_trace, DecodeSessionSpec, DecodeStepEvent, DecodeTrace, MixedTraceConfig, Network,
};

fn hw() -> HardwareConfig {
    HardwareConfig::edge_default()
}

/// `sessions` decode sessions in lockstep: step `k` of every session
/// arrives at `k · gap_s` (cross-session simultaneous, so steps batch).
fn lockstep_decode(sessions: u64, steps: usize, prompt: usize, gap_s: f64) -> DecodeTrace {
    let specs: Vec<DecodeSessionSpec> = (0..sessions)
        .map(|id| DecodeSessionSpec {
            id,
            network: Network::BertSmall,
            start_s: 0.0,
            heads: 8,
            kv_heads: 8,
            embed: 64,
            prompt_len: prompt,
            steps,
            prefix_group: None,
            shared_prefix_len: 0,
        })
        .collect();
    let mut events = Vec::new();
    for step_index in 0..steps {
        for id in 0..sessions {
            events.push(DecodeStepEvent {
                session_id: id,
                step_index,
                arrival_s: step_index as f64 * gap_s + 1e-9,
            });
        }
    }
    DecodeTrace {
        sessions: specs,
        steps: events,
    }
}

/// `bursts` bursts of `per_burst` identical prefill requests, burst `k`
/// arriving at `offset_s + k · gap_s`.
fn prefill_bursts(
    bursts: usize,
    per_burst: usize,
    offset_s: f64,
    gap_s: f64,
    workload: &AttentionWorkload,
) -> Vec<ServeRequest> {
    let mut requests = Vec::new();
    for k in 0..bursts {
        for j in 0..per_burst {
            requests.push(ServeRequest::new(
                (k * per_burst + j) as u64,
                offset_s + k as f64 * gap_s,
                DataflowKind::MasAttention,
                workload.clone(),
                None,
            ));
        }
    }
    requests
}

fn engine(policy: SchedulePolicy) -> ServeEngine {
    ServeEngine::new(EngineConfig {
        policy,
        ..EngineConfig::default()
    })
}

/// The policy scenario: decode launches (ready at tick + window) and
/// prefill batches (ready 1 ms later) contend for one device at every tick.
/// Long decode contexts make the batched cache stream DRAM-bound (~ms per
/// launch), so each class can visibly delay the other.
fn policy_scenario() -> (Vec<ServeRequest>, DecodeTrace) {
    // 12 sessions < max_steps_per_launch, so the decode launch waits out
    // its window instead of fill-dispatching past the policy ordering.
    let decode = lockstep_decode(12, 30, 2000, 0.01);
    // 6 requests per burst < max_batch 8, so prefill waits out its window
    // and meets the decode launch at the next tick's dispatch instant. One
    // fewer burst than decode ticks, so every prefill batch dispatches at a
    // policy-ordered event rather than in the end-of-trace flush.
    let prefill = prefill_bursts(
        29,
        6,
        0.001,
        0.01,
        &Network::BertSmall.attention_workload(1),
    );
    (prefill, decode)
}

#[test]
fn scheduling_policy_observably_moves_per_class_p99() {
    let (prefill, decode) = policy_scenario();
    let run = |policy: SchedulePolicy| engine(policy).run(&prefill, &decode).unwrap();
    let decode_first = run(SchedulePolicy::DecodePriority);
    let prefill_first = run(SchedulePolicy::PrefillPriority);
    let fair = run(SchedulePolicy::FairShare);

    // The policy reorders contended launch slots; it never changes what
    // completes.
    for report in [&decode_first, &prefill_first, &fair] {
        assert_eq!(report.decode.completed(), 360, "{}", report.summary());
        assert_eq!(report.prefill.completed(), 174, "{}", report.summary());
        assert_eq!(report.rejected(), 0, "{}", report.summary());
        assert!(report.mem_peak_bytes <= report.mem_budget_bytes);
    }

    let d_dp = decode_first.decode_latency().unwrap();
    let d_pp = prefill_first.decode_latency().unwrap();
    let p_dp = decode_first.prefill_latency().unwrap();
    let p_pp = prefill_first.prefill_latency().unwrap();
    // Decode-priority must visibly protect decode p99 against the prefill
    // burst, and prefill-priority must visibly protect prefill p99.
    assert!(
        d_pp.p99_s > 1.5 * d_dp.p99_s,
        "prefill-priority decode p99 ({:.3} ms) must exceed decode-priority \
         decode p99 ({:.3} ms) by >1.5x",
        d_pp.p99_s * 1e3,
        d_dp.p99_s * 1e3,
    );
    assert!(
        p_dp.p99_s > p_pp.p99_s,
        "decode-priority prefill p99 ({:.3} ms) must exceed prefill-priority \
         prefill p99 ({:.3} ms)",
        p_dp.p99_s * 1e3,
        p_pp.p99_s * 1e3,
    );

    // Decode-priority keeps decode p99 within 2x of the decode-only
    // baseline (the co-scheduling acceptance bar, also asserted by the
    // `serve_mixed` bench).
    let baseline = engine(SchedulePolicy::DecodePriority)
        .run(&[], &decode)
        .unwrap();
    let d_base = baseline.decode_latency().unwrap();
    assert!(
        d_dp.p99_s <= 2.0 * d_base.p99_s,
        "decode-priority decode p99 ({:.3} ms) must stay within 2x of the \
         decode-only baseline ({:.3} ms)",
        d_dp.p99_s * 1e3,
        d_base.p99_s * 1e3,
    );

    // Determinism: the mixed replay is a pure function of its inputs.
    assert_eq!(decode_first, run(SchedulePolicy::DecodePriority));
}

#[test]
fn decode_residency_sheds_prefill_under_a_shared_budget() {
    let hw = hw();
    let prefill_workload = Network::BertSmall.attention_workload(1);
    let prefill_charge = 4 * prefill_workload.operand_bytes(hw.element_bytes);
    // One decode session whose legacy max-context reservation fills the
    // budget to within half a prefill charge.
    let session_tokens = 2048usize;
    let session_bytes =
        DecodeStep::new("s", 1, 8, session_tokens, 64).kv_cache_bytes(hw.element_bytes);
    let budget = session_bytes + prefill_charge / 2;

    let decode = lockstep_decode(1, 8, session_tokens - 8, 0.01);
    // The prefill request arrives while the session is resident.
    let prefill = vec![ServeRequest::new(
        0,
        0.035,
        DataflowKind::MasAttention,
        prefill_workload,
        None,
    )];
    let config = EngineConfig {
        decode: DecodePolicy {
            kv_block_tokens: None, // legacy charging: whole reservation up front
            ..DecodePolicy::default()
        },
        shared_budget_bytes: Some(budget),
        ..EngineConfig::default()
    };

    let mixed = ServeEngine::new(config.clone())
        .run(&prefill, &decode)
        .unwrap();
    assert_eq!(mixed.decode.sessions_admitted, 1, "{}", mixed.summary());
    assert_eq!(mixed.prefill.completed(), 0, "{}", mixed.summary());
    assert_eq!(mixed.prefill.rejected.len(), 1);
    assert_eq!(
        mixed.prefill.rejected[0].reason,
        RejectReason::MemoryPressure
    );
    assert!(mixed.mem_peak_bytes <= budget);

    // Without the decode residency the same request fits the same budget.
    let alone = ServeEngine::new(config)
        .run(&prefill, &DecodeTrace::empty())
        .unwrap();
    assert_eq!(alone.prefill.completed(), 1);
    assert!(alone.prefill.rejected.is_empty());
}

#[test]
fn prefill_pressure_sheds_decode_under_a_shared_budget() {
    let hw = hw();
    let prefill_workload = Network::BertSmall.attention_workload(1);
    let prefill_charge = 4 * prefill_workload.operand_bytes(hw.element_bytes);
    let session_tokens = 2048usize;
    let session_bytes =
        DecodeStep::new("s", 1, 8, session_tokens, 64).kv_cache_bytes(hw.element_bytes);
    // Ten queued prefill charges fill the budget; the session alone fits.
    let budget = 10 * prefill_charge + session_bytes / 2;

    // Burst of 10 at t=0 (queued until their batch completes); the session
    // opens at 1 ms, mid-pressure.
    let prefill = prefill_bursts(1, 10, 0.0, 0.01, &prefill_workload);
    let mut decode = lockstep_decode(1, 4, session_tokens - 4, 0.01);
    for event in &mut decode.steps {
        event.arrival_s += 0.001;
    }
    let config = EngineConfig {
        decode: DecodePolicy {
            kv_block_tokens: None,
            ..DecodePolicy::default()
        },
        shared_budget_bytes: Some(budget),
        ..EngineConfig::default()
    };

    let mixed = ServeEngine::new(config.clone())
        .run(&prefill, &decode)
        .unwrap();
    assert!(mixed.prefill.completed() > 0, "{}", mixed.summary());
    assert_eq!(
        mixed.decode.sessions_admitted,
        0,
        "the prefill burst must squeeze the session out: {}",
        mixed.summary()
    );
    assert_eq!(mixed.decode.rejected_sessions.len(), 1);
    assert!(mixed.mem_peak_bytes <= budget);

    // Decode-only under the same budget: the session is admitted.
    let alone = ServeEngine::new(config).run(&[], &decode).unwrap();
    assert_eq!(alone.decode.sessions_admitted, 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    // Budget-accounting invariants under random mixed interleavings: every
    // work item is accounted exactly once, the shared peak never exceeds
    // the budget, the peak split sums, and the replay is deterministic.
    #[test]
    fn budget_accounting_holds_under_random_mixed_interleavings(
        prefill_count in 0usize..10,
        sessions in 0usize..5,
        seed in 0u64..1000,
        budget_pick in 0usize..4,
        policy_pick in 0usize..3,
        paged_pick in 0usize..2,
    ) {
        let budget_mb = [1u64, 4, 16, 3072][budget_pick];
        let policy = [
            SchedulePolicy::FairShare,
            SchedulePolicy::DecodePriority,
            SchedulePolicy::PrefillPriority,
        ][policy_pick];
        let paged = paged_pick == 1;
        let trace = mixed_trace(&MixedTraceConfig::poisson(
            vec![Network::BertSmall, Network::T5Mini],
            prefill_count,
            2000.0,
            sessions,
            300.0,
            seed,
        ));
        let config = EngineConfig {
            decode: DecodePolicy {
                kv_block_tokens: if paged { Some(16) } else { None },
                ..DecodePolicy::default()
            },
            policy,
            shared_budget_bytes: Some(budget_mb * 1_000_000),
            ..EngineConfig::default()
        };
        let stream = ServeRequest::stream_from_trace(
            &trace.prefill,
            DataflowKind::MasAttention,
            Some(0.05),
        );
        let report = ServeEngine::new(config.clone()).run(&stream, &trace.decode).unwrap();

        // Conservation: every prefill request and every decode step is
        // either completed or rejected, exactly once.
        prop_assert_eq!(
            report.prefill.completed() + report.prefill.rejected.len(),
            stream.len()
        );
        prop_assert_eq!(
            report.decode.completed() + report.decode.rejected.len(),
            trace.decode.total_steps()
        );

        // Budget: the shared peak never exceeds the enforced budget, and
        // its per-class split is exact.
        prop_assert!(report.mem_peak_bytes <= report.mem_budget_bytes);
        prop_assert_eq!(
            report.mem_peak_bytes,
            report.mem_peak_prefill_bytes + report.mem_peak_decode_bytes
        );
        // The decode-class KV peak can never exceed the shared peak's
        // decode share at some instant, which itself is bounded by the
        // budget.
        prop_assert!(report.decode.kv_peak_bytes <= report.mem_budget_bytes);

        // Determinism: a second replay is bit-identical.
        let again = ServeEngine::new(config).run(&stream, &trace.decode).unwrap();
        prop_assert_eq!(report, again);
    }
}
