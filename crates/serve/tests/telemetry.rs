//! Telemetry contract tests: recording off is free and bit-identical,
//! recording on conserves every arrival, keeps each track monotone, and
//! carries enough information to reconstruct the engine report exactly —
//! pinned on a hand-built mixed scenario and under proptest-generated
//! mixed traces across policies, budgets and charging modes.

use proptest::prelude::*;

use mas_dataflow::{AttentionWorkload, DataflowKind};
use mas_serve::{
    validate_chrome_trace, DecodePolicy, EngineConfig, EventKind, MemOwner, SchedulePolicy,
    ServeEngine, ServeRequest, TelemetryConfig, WorkClass,
};
use mas_workloads::{
    mixed_trace, DecodeSessionSpec, DecodeStepEvent, DecodeTrace, MixedTraceConfig, Network,
};

/// `sessions` decode sessions in lockstep: step `k` of every session
/// arrives at `k · gap_s` (cross-session simultaneous, so steps batch).
fn lockstep_decode(sessions: u64, steps: usize, prompt: usize, gap_s: f64) -> DecodeTrace {
    let specs: Vec<DecodeSessionSpec> = (0..sessions)
        .map(|id| DecodeSessionSpec {
            id,
            network: Network::BertSmall,
            start_s: 0.0,
            heads: 8,
            kv_heads: 8,
            embed: 64,
            prompt_len: prompt,
            steps,
            prefix_group: None,
            shared_prefix_len: 0,
        })
        .collect();
    let mut events = Vec::new();
    for step_index in 0..steps {
        for id in 0..sessions {
            events.push(DecodeStepEvent {
                session_id: id,
                step_index,
                arrival_s: step_index as f64 * gap_s + 1e-9,
            });
        }
    }
    DecodeTrace {
        sessions: specs,
        steps: events,
    }
}

/// `bursts` bursts of `per_burst` identical prefill requests, burst `k`
/// arriving at `offset_s + k · gap_s`.
fn prefill_bursts(
    bursts: usize,
    per_burst: usize,
    offset_s: f64,
    gap_s: f64,
    workload: &AttentionWorkload,
) -> Vec<ServeRequest> {
    let mut requests = Vec::new();
    for k in 0..bursts {
        for j in 0..per_burst {
            requests.push(ServeRequest::new(
                (k * per_burst + j) as u64,
                offset_s + k as f64 * gap_s,
                DataflowKind::MasAttention,
                workload.clone(),
                None,
            ));
        }
    }
    requests
}

/// A contended mixed scenario: lockstep decode launches and prefill bursts
/// share one device (the `engine_mixed` policy scenario at reduced size).
fn mixed_scenario() -> (Vec<ServeRequest>, DecodeTrace) {
    let decode = lockstep_decode(6, 10, 1500, 0.01);
    let prefill = prefill_bursts(9, 4, 0.001, 0.01, &Network::BertSmall.attention_workload(1));
    (prefill, decode)
}

fn telemetry_config(policy: SchedulePolicy, devices: usize) -> EngineConfig {
    EngineConfig {
        policy,
        devices,
        telemetry: Some(TelemetryConfig::default()),
        ..EngineConfig::default()
    }
}

#[test]
fn recording_off_is_the_default_and_bit_identical_to_recording_on() {
    let (prefill, decode) = mixed_scenario();
    let mut plain = ServeEngine::new(EngineConfig::default());
    let baseline = plain.run(&prefill, &decode).unwrap();
    assert!(plain.telemetry().is_none(), "off by default");

    let mut observed = ServeEngine::new(telemetry_config(SchedulePolicy::FairShare, 1));
    let recorded = observed.run(&prefill, &decode).unwrap();
    let telemetry = observed.telemetry().expect("recording was enabled");
    assert!(!telemetry.events().is_empty());

    // Recording must never perturb the replay (same f64s, same order).
    assert_eq!(baseline.prefill, recorded.prefill);
    assert_eq!(baseline.decode, recorded.decode);
    assert_eq!(baseline.makespan_s, recorded.makespan_s);
    assert_eq!(baseline.mem_peak_bytes, recorded.mem_peak_bytes);
}

#[test]
fn events_conserve_arrivals_and_every_track_is_monotone() {
    let (prefill, decode) = mixed_scenario();
    let mut engine = ServeEngine::new(telemetry_config(SchedulePolicy::DecodePriority, 2));
    let report = engine.run(&prefill, &decode).unwrap();
    let telemetry = engine.telemetry().unwrap();

    let stats = telemetry.conservation_check().expect("conserved");
    assert_eq!(stats.prefill_arrivals, prefill.len());
    assert_eq!(stats.decode_arrivals, decode.total_steps());
    assert_eq!(
        stats.prefill_completed + stats.prefill_rejected,
        prefill.len()
    );
    assert_eq!(
        stats.decode_completed + stats.decode_rejected,
        decode.total_steps()
    );
    assert_eq!(stats.prefill_completed, report.prefill.completed());
    assert_eq!(stats.decode_completed, report.decode.completed());

    telemetry.tracks_monotone().expect("monotone per track");
}

#[test]
fn report_reconstructed_from_events_matches_the_engine_report_exactly() {
    let (prefill, decode) = mixed_scenario();
    for policy in [
        SchedulePolicy::FairShare,
        SchedulePolicy::DecodePriority,
        SchedulePolicy::PrefillPriority,
    ] {
        let mut engine = ServeEngine::new(telemetry_config(policy, 2));
        let report = engine.run(&prefill, &decode).unwrap();
        let telemetry = engine.telemetry().unwrap();
        let rebuilt = telemetry.report().expect("complete event log");
        assert_eq!(rebuilt, report, "policy {policy:?}");
    }
}

#[test]
fn per_device_utilization_is_attributed_and_consistent() {
    let (prefill, decode) = mixed_scenario();
    let mut engine = ServeEngine::new(telemetry_config(SchedulePolicy::FairShare, 2));
    let report = engine.run(&prefill, &decode).unwrap();
    let telemetry = engine.telemetry().unwrap();

    assert_eq!(report.device_util.len(), 2);
    assert_eq!(telemetry.device_utilization(), report.device_util);
    let total_launches: usize = report.device_util.iter().map(|d| d.launches).sum();
    assert_eq!(
        total_launches,
        report.prefill.batches + report.decode.launches
    );
    for util in &report.device_util {
        assert!(util.busy_s <= report.makespan_s + 1e-12);
        let frac = util.busy_fraction(report.makespan_s);
        assert!((0.0..=1.0).contains(&frac));
    }
    // The per-class split sums to the combined per-device busy time.
    for (d, util) in report.device_util.iter().enumerate() {
        let prefill_busy = report.prefill.device_busy_s.get(d).copied().unwrap_or(0.0);
        let decode_busy = report.decode.device_busy_s.get(d).copied().unwrap_or(0.0);
        assert!((prefill_busy + decode_busy - util.busy_s).abs() < 1e-12);
    }
    // The summary surfaces the attribution.
    assert!(
        report.summary().contains("devices:"),
        "{}",
        report.summary()
    );
}

#[test]
fn peak_attribution_names_holders_that_sum_to_the_peak() {
    let (prefill, decode) = mixed_scenario();
    let mut engine = ServeEngine::new(telemetry_config(SchedulePolicy::FairShare, 1));
    let report = engine.run(&prefill, &decode).unwrap();
    let telemetry = engine.telemetry().unwrap();

    let peak = telemetry.peak_attribution().expect("work was charged");
    assert_eq!(peak.peak_bytes, report.mem_peak_bytes);
    assert_eq!(
        peak.prefill_bytes + peak.decode_bytes,
        peak.peak_bytes,
        "the per-class split partitions the peak"
    );
    assert!(!peak.holders.is_empty());
    let held: u64 = peak.holders.iter().map(|(_, bytes)| bytes).sum();
    assert_eq!(held, peak.peak_bytes, "holders partition the peak");
    // Sorted descending by bytes.
    for pair in peak.holders.windows(2) {
        assert!(pair[0].1 >= pair[1].1);
    }
}

#[test]
fn streaming_histograms_agree_with_exact_latency_stats() {
    let (prefill, decode) = mixed_scenario();
    let mut engine = ServeEngine::new(telemetry_config(SchedulePolicy::FairShare, 1));
    let report = engine.run(&prefill, &decode).unwrap();
    let telemetry = engine.telemetry().unwrap();

    for (class, stats) in [
        (WorkClass::Prefill, report.prefill.latency_stats()),
        (WorkClass::Decode, report.decode.latency_stats()),
    ] {
        let hist = telemetry.latency_histogram(class);
        let stats = stats.expect("both classes completed work");
        assert_eq!(hist.count() as usize, stats.count, "{class:?}");
        // The histogram's mean is exact (sum is exact, only quantiles
        // bucket); the p50 upper bound brackets the exact p50 from above
        // within one octave.
        assert!((hist.sum_s() / hist.count() as f64 - stats.mean_s).abs() < 1e-12);
        let p50_bound = hist.quantile_upper_bound_s(0.5).unwrap();
        assert!(p50_bound >= stats.p50_s);
        assert!(p50_bound <= stats.p50_s * 2.0 + 1e-12);
    }
}

#[test]
fn chrome_trace_validates_and_prometheus_mentions_the_key_series() {
    let (prefill, decode) = mixed_scenario();
    let mut engine = ServeEngine::new(telemetry_config(SchedulePolicy::FairShare, 2));
    let report = engine.run(&prefill, &decode).unwrap();
    let telemetry = engine.telemetry().unwrap();

    let json = telemetry.chrome_trace_json();
    let stats = validate_chrome_trace(&json).expect("well-formed, non-overlapping");
    assert_eq!(
        stats.spans,
        report.prefill.batches + report.decode.launches,
        "one span per launch"
    );

    let prom = telemetry.prometheus_text();
    for series in [
        "mas_engine_arrivals_total{class=\"prefill\"}",
        "mas_engine_completed_total{class=\"decode\"}",
        "mas_engine_rejected_total",
        "mas_engine_mem_peak_bytes",
        "mas_engine_device_busy_seconds{device=\"0\"}",
        "mas_engine_latency_seconds_bucket{class=\"prefill\"",
        "le=\"+Inf\"",
        "# TYPE mas_engine_latency_seconds histogram",
    ] {
        assert!(prom.contains(series), "missing {series} in:\n{prom}");
    }
}

#[test]
fn prefix_sharing_events_rebuild_the_report_and_release_the_group_last() {
    // 6 sessions in one prefix group sharing a 64-token system prompt,
    // replayed with telemetry on and prefix sharing enabled. A private
    // straggler arrives long after the group finishes so the deferred
    // session releases (and with them the group release) fire in-log.
    let mut decode = lockstep_decode(6, 8, 64, 0.01);
    for spec in &mut decode.sessions {
        spec.prefix_group = Some(3);
        spec.shared_prefix_len = 64;
    }
    decode.sessions.push(DecodeSessionSpec {
        id: 6,
        network: Network::BertSmall,
        start_s: 100.0,
        heads: 8,
        kv_heads: 8,
        embed: 64,
        prompt_len: 16,
        steps: 1,
        prefix_group: None,
        shared_prefix_len: 0,
    });
    decode.steps.push(DecodeStepEvent {
        session_id: 6,
        step_index: 0,
        arrival_s: 100.0,
    });
    let config = EngineConfig {
        decode: DecodePolicy {
            kv_block_tokens: Some(16),
            prefix_share: true,
            ..DecodePolicy::default()
        },
        telemetry: Some(TelemetryConfig::default()),
        ..EngineConfig::default()
    };
    let mut engine = ServeEngine::new(config);
    let report = engine.run(&[], &decode).unwrap();
    assert_eq!(report.decode.shared_sessions, 6);
    assert!(report.decode.kv_shared_peak_bytes > 0);
    let telemetry = engine.telemetry().unwrap();

    // One PrefixShared event per admitted session, refs counting up;
    // only the first carries the group's block charge.
    let events = telemetry.events();
    let shares: Vec<_> = events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::PrefixShared {
                group,
                delta_bytes,
                refs,
                ..
            } => Some((group, delta_bytes, refs)),
            _ => None,
        })
        .collect();
    assert_eq!(shares.len(), 6);
    for (i, &(group, delta_bytes, refs)) in shares.iter().enumerate() {
        assert_eq!(group, 3);
        assert_eq!(refs, i as u32 + 1);
        assert_eq!(delta_bytes > 0, i == 0, "only the first member charges");
    }

    // The group's blocks are released exactly once, after every member
    // session's own release.
    let group_release = events
        .iter()
        .position(|e| {
            matches!(
                e.kind,
                EventKind::BudgetRelease {
                    owner: MemOwner::PrefixGroup(3),
                    ..
                }
            )
        })
        .expect("the group must be released");
    let session_releases: Vec<usize> = events
        .iter()
        .enumerate()
        .filter_map(|(i, e)| match e.kind {
            EventKind::BudgetRelease {
                owner: MemOwner::Session(_),
                ..
            } => Some(i),
            _ => None,
        })
        .collect();
    assert_eq!(session_releases.len(), 6);
    assert!(session_releases.iter().all(|&i| i < group_release));
    let shared_bytes = match events[group_release].kind {
        EventKind::BudgetRelease { bytes, .. } => bytes,
        _ => unreachable!(),
    };
    assert_eq!(shared_bytes, report.decode.kv_shared_peak_bytes);

    // The event log alone rebuilds the sharing-aware report exactly.
    let rebuilt = telemetry.report().expect("complete event log");
    assert_eq!(rebuilt, report);
    telemetry.tracks_monotone().expect("monotone per track");
    validate_chrome_trace(&telemetry.chrome_trace_json()).expect("valid Chrome trace");
}

#[test]
fn an_event_cap_counts_drops_and_declines_reconstruction() {
    let (prefill, decode) = mixed_scenario();
    let config = EngineConfig {
        telemetry: Some(TelemetryConfig {
            max_events: Some(16),
        }),
        ..EngineConfig::default()
    };
    let mut engine = ServeEngine::new(config);
    engine.run(&prefill, &decode).unwrap();
    let telemetry = engine.telemetry().unwrap();
    assert_eq!(telemetry.events().len(), 16);
    assert!(telemetry.dropped() > 0);
    assert!(!telemetry.is_complete());
    assert!(
        telemetry.report().is_none(),
        "a truncated log must decline rather than reconstruct partially"
    );
}

#[test]
fn queue_depth_and_batch_fill_gauges_reflect_the_replay() {
    let (prefill, decode) = mixed_scenario();
    let mut engine = ServeEngine::new(telemetry_config(SchedulePolicy::FairShare, 1));
    let report = engine.run(&prefill, &decode).unwrap();
    let telemetry = engine.telemetry().unwrap();

    let depth = telemetry.queue_depth(WorkClass::Prefill);
    assert!(!depth.is_empty());
    // Every admission raises the depth and every dispatch empties its
    // members; the walk ends at zero with no negative excursions.
    assert_eq!(*depth.last().unwrap(), 0);
    let fill = telemetry.mean_batch_fill(WorkClass::Prefill).unwrap();
    assert!(fill > 0.0 && fill <= 1.0);
    assert!(report.prefill.batches > 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // The reconstruction contract under random mixed traces: whatever the
    // interleaving, policy, budget and charging mode, the event log alone
    // rebuilds the engine report bit-for-bit and stays conserved/monotone.
    #[test]
    fn event_log_rebuilds_the_report_under_random_mixed_interleavings(
        prefill_count in 0usize..10,
        sessions in 0usize..5,
        seed in 0u64..1000,
        budget_pick in 0usize..4,
        policy_pick in 0usize..3,
        paged_pick in 0usize..2,
        share_pick in 0usize..2,
        devices in 1usize..3,
    ) {
        let budget_mb = [1u64, 4, 16, 3072][budget_pick];
        let policy = [
            SchedulePolicy::FairShare,
            SchedulePolicy::DecodePriority,
            SchedulePolicy::PrefillPriority,
        ][policy_pick];
        let paged = paged_pick == 1;
        let share = share_pick == 1;
        let mut trace_config = MixedTraceConfig::poisson(
            vec![Network::BertSmall, Network::T5Mini],
            prefill_count,
            2000.0,
            sessions,
            300.0,
            seed,
        );
        if share {
            trace_config = trace_config.with_shared_system_prompt(64);
        }
        let trace = mixed_trace(&trace_config);
        let config = EngineConfig {
            decode: DecodePolicy {
                kv_block_tokens: if paged { Some(16) } else { None },
                prefix_share: share,
                ..DecodePolicy::default()
            },
            policy,
            devices,
            shared_budget_bytes: Some(budget_mb * 1_000_000),
            telemetry: Some(TelemetryConfig::default()),
            ..EngineConfig::default()
        };
        let stream = ServeRequest::stream_from_trace(
            &trace.prefill,
            DataflowKind::MasAttention,
            Some(0.05),
        );
        let mut engine = ServeEngine::new(config);
        let report = engine.run(&stream, &trace.decode).unwrap();
        let telemetry = engine.telemetry().unwrap();

        let stats = telemetry.conservation_check().expect("conserved");
        prop_assert_eq!(stats.prefill_arrivals, stream.len());
        prop_assert_eq!(stats.decode_arrivals, trace.decode.total_steps());
        telemetry.tracks_monotone().expect("monotone per track");

        let rebuilt = telemetry.report().expect("complete event log");
        prop_assert_eq!(rebuilt, report.clone());

        let json = telemetry.chrome_trace_json();
        let chrome = validate_chrome_trace(&json).expect("valid Chrome trace");
        prop_assert_eq!(chrome.spans, report.prefill.batches + report.decode.launches);
    }
}
