//! Property tests of the `ScheduleCache` serialization format's robustness:
//! valid round-trips are identity, and corrupted text — any single bit flip
//! or any truncation — parses to an error, never a panic and never a cache
//! that silently dropped or mutated entries. The guarantees rest on the
//! format's integrity footer (entry count + FNV-1a checksum).

use proptest::prelude::*;

use mas_attention::PlannerConfig;
use mas_dataflow::{AttentionWorkload, DataflowKind, Tiling};
use mas_serve::{CacheError, CacheKey, CachedPlan, ScheduleCache};

/// Builds a deterministic cache with `entries` distinct keys derived from
/// `seed`, exercising every method token and awkward float bit patterns.
fn build_cache(entries: usize, seed: u64) -> ScheduleCache {
    let methods = DataflowKind::all();
    let config = PlannerConfig::default();
    let mut cache = ScheduleCache::new();
    for i in 0..entries {
        let x = seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(i as u64);
        let workload = AttentionWorkload::new(
            "prop",
            1 + (x % 4) as usize,
            1 + (x % 16) as usize,
            64 + (x % 1024) as usize,
            32 + (x % 96) as usize,
        );
        let key = CacheKey::of(methods[i % methods.len()], &workload, &config);
        let plan = CachedPlan {
            tiling: Tiling {
                b_b: 1,
                h_h: 1 + (x % 4) as usize,
                n_q: 16 + (x % 64) as usize,
                n_kv: 32 + (x % 128) as usize,
            },
            cycles: x,
            seconds: f64::from_bits(0x3f00_0000_0000_0000 | (x >> 12)),
            energy_pj: if x.is_multiple_of(7) {
                -0.0
            } else {
                x as f64 * 0.5
            },
            dram_read_bytes: x % 100_000,
            dram_write_bytes: x % 50_000,
            tuned: x.is_multiple_of(2),
        };
        cache.insert(key, plan);
    }
    cache
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn valid_round_trips_are_identity(
        entries in 0usize..8,
        seed in 0u64..10_000,
    ) {
        let cache = build_cache(entries, seed);
        let text = cache.to_text();
        let back = ScheduleCache::from_text(&text).unwrap();
        prop_assert_eq!(&back, &cache, "parse(serialize(c)) == c");
        prop_assert_eq!(back.to_text(), text, "serialization is canonical");
    }

    #[test]
    fn any_single_bit_flip_is_rejected_without_panicking(
        entries in 1usize..6,
        seed in 0u64..10_000,
        flip_pos in 0usize..4096,
        flip_bit in 0u32..8,
    ) {
        let cache = build_cache(entries, seed);
        let text = cache.to_text();
        let mut bytes = text.clone().into_bytes();
        let pos = flip_pos % bytes.len();
        bytes[pos] ^= 1u8 << flip_bit;
        // Flips that break UTF-8 never reach the parser in practice (callers
        // read files as strings); only valid-UTF-8 corruptions are checked.
        if let Ok(corrupted) = String::from_utf8(bytes) {
            prop_assert_ne!(&corrupted, &text);
            match ScheduleCache::from_text(&corrupted) {
                Err(CacheError::Parse { .. }) => {}
                Err(CacheError::Io(e)) => prop_assert!(false, "unexpected I/O error: {}", e),
                Ok(parsed) => prop_assert!(
                    false,
                    "corrupted text (byte {} bit {}) parsed to a cache of {} entries",
                    pos, flip_bit, parsed.len()
                ),
            }
        }
    }

    #[test]
    fn any_truncation_is_rejected_without_panicking(
        entries in 0usize..6,
        seed in 0u64..10_000,
        cut in 0usize..4096,
    ) {
        let cache = build_cache(entries, seed);
        let text = cache.to_text();
        let cut = cut % text.len(); // strictly shorter than the full text
        // The serialized form is pure ASCII, so every cut is a char boundary.
        prop_assert!(text.is_char_boundary(cut));
        let truncated = &text[..cut];
        if cut == text.len() - 1 {
            // Only the final newline is gone: the footer line is complete,
            // no data was lost, and the parse must still be the identity.
            prop_assert_eq!(ScheduleCache::from_text(truncated).unwrap(), cache);
        } else {
            prop_assert!(
                matches!(
                    ScheduleCache::from_text(truncated),
                    Err(CacheError::Parse { .. })
                ),
                "a {}-byte prefix of a {}-byte cache must not parse (it would \
                 silently drop entries)",
                cut,
                text.len()
            );
        }
    }

    #[test]
    fn merged_shards_round_trip_identically(
        entries_a in 0usize..5,
        entries_b in 0usize..5,
        seed in 0u64..10_000,
    ) {
        // Shard caches travel serialized; merging parsed shards must equal
        // merging the originals.
        let a = build_cache(entries_a, seed);
        let b = build_cache(entries_b, seed.wrapping_add(1));
        let a2 = ScheduleCache::from_text(&a.to_text()).unwrap();
        let b2 = ScheduleCache::from_text(&b.to_text()).unwrap();
        let direct = ScheduleCache::merged(a, &b);
        let via_text = ScheduleCache::merged(a2, &b2);
        prop_assert_eq!(&direct, &via_text);
        prop_assert_eq!(direct.to_text(), via_text.to_text());
    }
}
