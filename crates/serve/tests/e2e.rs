//! End-to-end tests of the serving runtime: determinism (serial vs. pooled
//! planning), shard-merge equality through serialized caches, and
//! deadline-miss accounting.

use mas_attention::planner::{PlannerConfig, TilingStrategy};
use mas_dataflow::DataflowKind;
use mas_search::tuner::TunerConfig;
use mas_serve::{
    AdmissionPolicy, BatchPolicy, ScheduleCache, ServeConfig, ServeReport, ServeRequest,
    ServeRuntime,
};
use mas_workloads::{request_trace, Network, TraceConfig};

fn nets() -> Vec<Network> {
    vec![Network::BertSmall, Network::VitB16, Network::T5Mini]
}

fn stream(count: usize, seed: u64) -> Vec<ServeRequest> {
    let trace = request_trace(&TraceConfig::poisson(nets(), count, 2000.0, seed));
    ServeRequest::stream_from_trace(&trace, DataflowKind::MasAttention, Some(0.05))
}

fn config(parallel_planning: bool) -> ServeConfig {
    ServeConfig {
        parallel_planning,
        ..ServeConfig::default()
    }
}

/// The headline determinism pin: replaying the same trace with pooled
/// planning and with serial planning produces bit-identical reports.
#[test]
fn pooled_and_serial_replay_produce_bit_identical_reports() {
    let requests = stream(60, 11);
    let pooled = ServeRuntime::new(config(true))
        .run_trace(&requests)
        .unwrap();
    let serial = ServeRuntime::new(config(false))
        .run_trace(&requests)
        .unwrap();
    assert_eq!(pooled, serial);
    assert!(pooled.completed() > 0);
}

/// Determinism also holds with search-based tuning (the expensive planning
/// path the cache amortizes), including tuner-internal parallelism on/off.
#[test]
fn pooled_and_serial_replay_agree_under_search_tuning() {
    use mas_dataflow::AttentionWorkload;
    // Small synthetic shapes: tuning Table-1 shapes twice would dominate the
    // suite's runtime without adding coverage.
    let requests: Vec<ServeRequest> = (0..8)
        .map(|i| {
            let (heads, seq) = if i % 2 == 0 { (2, 128) } else { (2, 96) };
            ServeRequest::new(
                i,
                i as f64 * 2e-4,
                DataflowKind::MasAttention,
                AttentionWorkload::new("toy", 1, heads, seq, 64),
                Some(0.05),
            )
        })
        .collect();
    let mk = |parallel: bool| {
        let mut cfg = config(parallel);
        cfg.batching.max_batch = 2;
        cfg.planner = PlannerConfig {
            tiling: TilingStrategy::Search,
            tuner: if parallel {
                TunerConfig::quick()
            } else {
                TunerConfig::quick().serial()
            },
            ..PlannerConfig::default()
        };
        ServeRuntime::new(cfg).run_trace(&requests).unwrap()
    };
    let pooled = mk(true);
    assert_eq!(pooled, mk(false));
    assert!(pooled.completed() == 8);
}

/// Sharded tuning: two shards (disjoint network subsets of the same trace)
/// build caches independently; their serialized caches merge — in either
/// order — into a cache equal to the one built jointly over the full trace.
#[test]
fn serialized_shard_caches_merge_into_the_jointly_built_cache() {
    // Decouple admission across keys so shard batching matches joint
    // batching exactly (the backlog bound couples otherwise-independent
    // shapes).
    let mk_config = || ServeConfig {
        admission: AdmissionPolicy::admit_all(),
        ..config(true)
    };
    let trace = request_trace(&TraceConfig::poisson(nets(), 90, 3000.0, 23));
    let all = ServeRequest::stream_from_trace(&trace, DataflowKind::MasAttention, None);
    let shard_a: Vec<ServeRequest> = all
        .iter()
        .filter(|r| r.workload.heads == 8) // BERT-Small & T5-Mini shapes
        .cloned()
        .collect();
    let shard_b: Vec<ServeRequest> = all
        .iter()
        .filter(|r| r.workload.heads != 8)
        .cloned()
        .collect();
    assert!(!shard_a.is_empty() && !shard_b.is_empty());
    assert_eq!(shard_a.len() + shard_b.len(), all.len());

    // Joint build.
    let mut joint_rt = ServeRuntime::new(mk_config());
    joint_rt.run_trace(&all).unwrap();
    let joint = joint_rt.into_cache();

    // Sharded build, round-tripped through the serialized format.
    // Per-process file names so concurrent test runs on one machine don't
    // race on the shared temp dir.
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let path_a = dir.join(format!("mas-serve-shard-a-{pid}.cache"));
    let path_b = dir.join(format!("mas-serve-shard-b-{pid}.cache"));
    for (path, shard) in [(&path_a, &shard_a), (&path_b, &shard_b)] {
        let mut rt = ServeRuntime::new(mk_config());
        rt.run_trace(shard).unwrap();
        rt.cache().save(path).unwrap();
    }
    let loaded_a = ScheduleCache::load(&path_a).unwrap();
    let loaded_b = ScheduleCache::load(&path_b).unwrap();
    std::fs::remove_file(&path_a).ok();
    std::fs::remove_file(&path_b).ok();

    let ab = ScheduleCache::merged(loaded_a.clone(), &loaded_b);
    let ba = ScheduleCache::merged(loaded_b.clone(), &loaded_a);
    assert_eq!(ab, ba, "merge(a,b) == merge(b,a)");
    assert_eq!(ab, joint, "merged shards == jointly built cache");

    // The merged cache replays the full trace with zero planning.
    let mut warm_rt = ServeRuntime::with_cache(mk_config(), ab);
    let warm = warm_rt.run_trace(&all).unwrap();
    assert_eq!(warm.cache_misses, 0);
    assert_eq!(warm.cache_hits, warm.batches);
}

/// Deadline accounting: a burst of serialized identical requests with a
/// deadline between the first and last completion splits deterministically
/// into met and missed.
#[test]
fn deadline_misses_are_accounted_exactly() {
    let workload = Network::BertSmall.attention_workload(1);

    // Learn the per-request service time with a deadline-free probe.
    let mut probe_cfg = config(true);
    probe_cfg.batching.window_s = 0.0;
    let mut probe_rt = ServeRuntime::new(probe_cfg.clone());
    let probe = probe_rt
        .run_trace(&[ServeRequest::new(
            0,
            0.0,
            DataflowKind::MasAttention,
            workload.clone(),
            None,
        )])
        .unwrap();
    let service_s = probe.outcomes[0].service_s;
    assert!(service_s > 0.0);

    // Five simultaneous arrivals, no batching, one device: completions at
    // k·service for k = 1..=5. A deadline of 2.5·service admits exactly the
    // first two.
    let deadline_s = 2.5 * service_s;
    let burst: Vec<ServeRequest> = (0..5)
        .map(|i| {
            ServeRequest::new(
                i,
                0.0,
                DataflowKind::MasAttention,
                workload.clone(),
                Some(deadline_s),
            )
        })
        .collect();
    let mut cfg = probe_cfg;
    cfg.batching = BatchPolicy {
        max_batch: 1,
        window_s: 0.0,
    };
    let mut rt = ServeRuntime::new(cfg);
    let report: ServeReport = rt.run_trace(&burst).unwrap();
    assert_eq!(report.completed(), 5);
    assert_eq!(report.deadline_met(), 2, "{}", report.summary());
    assert_eq!(report.deadline_missed(), 3);
    assert!((report.deadline_miss_rate() - 0.6).abs() < 1e-12);
    // The verdict matches the timeline request by request.
    for o in &report.outcomes {
        assert_eq!(
            o.deadline_met,
            o.latency_s() <= deadline_s,
            "request {}",
            o.id
        );
    }
}

/// Mixed traffic over several networks: every request is accounted for, and
/// the report's aggregates are internally consistent.
#[test]
fn mixed_traffic_accounting_is_consistent() {
    let requests = stream(120, 31);
    let mut rt = ServeRuntime::new(config(true));
    let report = rt.run_trace(&requests).unwrap();
    assert_eq!(report.completed() + report.rejected.len(), 120);
    assert_eq!(report.cache_hits + report.cache_misses, report.batches);
    assert_eq!(
        report.deadline_met() + report.deadline_missed(),
        report.completed()
    );
    let energy_sum: f64 = report.outcomes.iter().map(|o| o.energy_pj).sum();
    assert!((energy_sum - report.total_energy_pj).abs() <= 1e-6 * report.total_energy_pj);
    assert!(report.makespan_s >= report.outcomes.iter().fold(0.0, |m, o| m.max(o.service_s)));
    // Three networks, one method → at most three distinct merged shapes per
    // batch size; the cache stays compact.
    assert!(rt.cache().len() <= report.batches);
}
