//! Backward equivalence of the unified engine on single-class streams.
//!
//! What this suite pins — precisely, since the legacy runtimes are now
//! shims over the engine and an engine-vs-shim comparison alone would be
//! circular:
//!
//! * **Shim/engine consistency**: the `ServeConfig` → `EngineConfig`
//!   lifting and the per-class report extraction lose nothing (reports,
//!   launch counts, makespans and budget figures all collapse correctly).
//! * **Policy invariance**: every `SchedulePolicy` produces bit-identical
//!   reports on single-class streams (the policy only reorders *mixed*
//!   launch queues), under both decode charging policies, deadline
//!   screening and multiple devices.
//! * The **absolute** pre-refactor behavior is pinned by the legacy
//!   runtimes' own behavioral suites (exact latencies, orderings, shed
//!   counts in `runtime.rs`, `decode.rs`, `e2e.rs`, `paged_admission.rs`),
//!   which now execute through the shims on every build — on both rayon
//!   CI legs.

use mas_dataflow::DataflowKind;
use mas_serve::{
    DecodePolicy, DecodeReport, DecodeRuntime, EngineConfig, SchedulePolicy, ServeConfig,
    ServeEngine, ServeRequest, ServeRuntime,
};
use mas_sim::HardwareConfig;
use mas_workloads::{
    decode_trace, request_trace, DecodeTrace, DecodeTraceConfig, Network, TraceConfig,
};

fn nets() -> Vec<Network> {
    vec![Network::BertSmall, Network::VitB16, Network::T5Mini]
}

fn prefill_stream(count: usize, seed: u64) -> Vec<ServeRequest> {
    let trace = request_trace(&TraceConfig::poisson(nets(), count, 2000.0, seed));
    ServeRequest::stream_from_trace(&trace, DataflowKind::MasAttention, Some(0.05))
}

#[test]
fn prefill_only_stream_reproduces_the_legacy_serve_report_bit_identically() {
    let requests = prefill_stream(60, 11);
    let legacy = ServeRuntime::new(ServeConfig::default())
        .run_trace(&requests)
        .unwrap();
    assert!(legacy.completed() > 0);

    for policy in [
        SchedulePolicy::FairShare,
        SchedulePolicy::DecodePriority,
        SchedulePolicy::PrefillPriority,
    ] {
        // The shim-lifted configuration (budget disabled, as the legacy
        // runtime had none) with only the policy overridden.
        let mut engine = ServeEngine::new(EngineConfig {
            policy,
            ..ServeConfig::default().into()
        });
        let report = engine.run(&requests, &DecodeTrace::empty()).unwrap();
        assert_eq!(
            report.prefill, legacy,
            "prefill-only engine run under {policy} must be bit-identical to the legacy report"
        );
        // The decode side of a prefill-only run is empty, and the shared
        // figures collapse onto the prefill class.
        assert_eq!(report.decode, DecodeReport::default());
        assert_eq!(report.launches, legacy.batches);
        assert_eq!(report.makespan_s, legacy.makespan_s);
        assert_eq!(report.mem_peak_decode_bytes, 0);
        assert!(report.mem_peak_bytes <= report.mem_budget_bytes);
        assert_eq!(report.mem_peak_bytes, report.mem_peak_prefill_bytes);
    }

    // A default-budget engine (half of DRAM) matches too whenever the
    // budget does not bind — the regime every realistic prefill queue is
    // in. (In memory-bound corners the budget sheds load the budget-free
    // legacy path would have queued; the shim disables it for that reason.)
    let mut engine = ServeEngine::new(EngineConfig::default());
    let report = engine.run(&requests, &DecodeTrace::empty()).unwrap();
    assert_eq!(report.prefill, legacy);
}

#[test]
fn prefill_equivalence_holds_with_serial_planning_and_extra_devices() {
    let requests = prefill_stream(40, 29);
    let serve_config = ServeConfig {
        devices: 3,
        parallel_planning: false,
        ..ServeConfig::default()
    };
    let legacy = ServeRuntime::new(serve_config.clone())
        .run_trace(&requests)
        .unwrap();
    let mut engine = ServeEngine::new(serve_config.into());
    let report = engine.run(&requests, &DecodeTrace::empty()).unwrap();
    assert_eq!(report.prefill, legacy);
}

#[test]
fn decode_only_trace_reproduces_the_legacy_decode_report_bit_identically() {
    let hw = HardwareConfig::edge_default();
    let trace = decode_trace(&DecodeTraceConfig::poisson(
        vec![Network::BertSmall, Network::T5Mini, Network::Llama3_8B],
        20,
        200.0,
        9,
    ));
    // Paged (default), legacy max-context charging, and a deadline-screened
    // variant, on one and two devices.
    let policies = [
        DecodePolicy::default(),
        DecodePolicy {
            kv_block_tokens: None,
            ..DecodePolicy::default()
        },
        DecodePolicy {
            step_deadline_s: Some(5e-4),
            ..DecodePolicy::default()
        },
    ];
    for decode_policy in policies {
        for devices in [1usize, 2] {
            let legacy = DecodeRuntime::new(hw.clone(), decode_policy)
                .with_devices(devices)
                .run_trace(&trace);
            assert_eq!(
                legacy.completed() + legacy.rejected.len(),
                trace.total_steps()
            );
            for policy in [
                SchedulePolicy::FairShare,
                SchedulePolicy::DecodePriority,
                SchedulePolicy::PrefillPriority,
            ] {
                let mut engine = ServeEngine::new(EngineConfig {
                    decode: decode_policy,
                    devices,
                    policy,
                    ..EngineConfig::default()
                });
                let report = engine.run(&[], &trace).unwrap();
                assert_eq!(
                    report.decode, legacy,
                    "decode-only engine run under {policy} ({devices} devices) must be \
                     bit-identical to the legacy report"
                );
                assert_eq!(report.prefill.completed(), 0);
                assert_eq!(report.launches, legacy.launches);
                assert_eq!(report.makespan_s, legacy.makespan_s);
                // The shared-budget peak of a decode-only run is exactly the
                // decode KV peak.
                assert_eq!(report.mem_peak_bytes, legacy.kv_peak_bytes);
                assert_eq!(report.mem_peak_prefill_bytes, 0);
            }
        }
    }
}

#[test]
fn empty_streams_produce_empty_reports() {
    let mut engine = ServeEngine::new(EngineConfig::default());
    let report = engine.run(&[], &DecodeTrace::empty()).unwrap();
    assert_eq!(report.completed(), 0);
    assert_eq!(report.rejected(), 0);
    assert_eq!(report.launches, 0);
    assert_eq!(report.makespan_s, 0.0);
    assert_eq!(report.mem_peak_bytes, 0);
    assert!(report.prefill_latency().is_none());
    assert!(report.decode_latency().is_none());
}
