//! The PR-3 over-reservation fix, pinned end to end: legacy admission
//! charges every session's KV at *declared maximum context* for its whole
//! lifetime, so a device budget admits only `budget / max_context_bytes`
//! concurrent sessions — even when actual contexts stay tiny. Block-granular
//! charging bills only the blocks a session has actually grown into, so the
//! same budget admits strictly more (here 4×) concurrent sessions with zero
//! pool overflows during replay.
//!
//! Plus the cross-session prefix-sharing extension: under
//! [`DecodePolicy::prefix_share`], sessions declaring the same
//! `prefix_group` charge the whole blocks of their shared prompt prefix
//! once group-wide, so the same budget admits ≥2× the sessions of private
//! paged charging on a shared-system-prompt trace — and the group's blocks
//! are released exactly once, with its last member.

use mas_dataflow::decode::DecodeStep;
use mas_serve::{DecodePolicy, DecodeRuntime};
use mas_sim::HardwareConfig;
use mas_workloads::{DecodeSessionSpec, DecodeStepEvent, DecodeTrace, Network};

/// A long-max-context / short-actual-context trace: `n` simultaneous
/// sessions each *declare* a generation budget of `declared_steps` (the
/// worst case legacy admission reserves) but the trace replays only
/// `actual_steps` of each.
fn overcommit_trace(
    n: u64,
    prompt: usize,
    declared_steps: usize,
    actual_steps: usize,
) -> DecodeTrace {
    assert!(actual_steps <= declared_steps);
    let sessions: Vec<DecodeSessionSpec> = (0..n)
        .map(|id| DecodeSessionSpec {
            id,
            network: Network::BertSmall,
            start_s: 0.0,
            heads: 8,
            kv_heads: 8,
            embed: 64,
            prompt_len: prompt,
            steps: declared_steps,
            prefix_group: None,
            shared_prefix_len: 0,
        })
        .collect();
    let mut steps = Vec::new();
    for step_index in 0..actual_steps {
        for id in 0..n {
            steps.push(DecodeStepEvent {
                session_id: id,
                step_index,
                arrival_s: step_index as f64 * 0.01 + 1e-9,
            });
        }
    }
    DecodeTrace { sessions, steps }
}

#[test]
fn paged_charging_admits_at_least_twice_the_sessions_of_max_context_reservation() {
    let hw = HardwareConfig::edge_default();
    let block_tokens = 16;

    // 16 sessions, prompt 32, declared max context 512, but only 8 steps
    // actually replayed (actual context ≤ 40 tokens).
    let trace = overcommit_trace(16, 32, 480, 8);

    // Budget: exactly four sessions' worth of max-context KV.
    let max_context_bytes = DecodeStep::new("max", 1, 8, 512, 64).kv_cache_bytes(hw.element_bytes);
    let budget = 4 * max_context_bytes;

    let legacy_policy = DecodePolicy {
        kv_budget_bytes: Some(budget),
        kv_block_tokens: None,
        ..DecodePolicy::default()
    };
    let paged_policy = DecodePolicy {
        kv_budget_bytes: Some(budget),
        kv_block_tokens: Some(block_tokens),
        ..DecodePolicy::default()
    };

    let legacy = DecodeRuntime::new(hw.clone(), legacy_policy).run_trace(&trace);
    let paged = DecodeRuntime::new(hw.clone(), paged_policy).run_trace(&trace);

    // Legacy over-reservation caps concurrency at the worst case.
    assert_eq!(legacy.sessions_admitted, 4, "{}", legacy.summary());
    assert_eq!(legacy.rejected_sessions.len(), 12);

    // Block-granular charging admits every session — strictly more, and at
    // least the 2x the acceptance criterion demands — with zero pool
    // overflows during replay.
    assert_eq!(paged.sessions_admitted, 16, "{}", paged.summary());
    assert!(paged.sessions_admitted >= 2 * legacy.sessions_admitted);
    assert!(paged.rejected_sessions.is_empty());
    assert_eq!(paged.pool_overflows(), 0, "no step may be shed for blocks");
    assert!(paged.rejected.is_empty());

    // Every admitted session's steps completed, so paged throughput is 4x.
    assert_eq!(paged.completed(), 16 * 8);
    assert_eq!(legacy.completed(), 4 * 8);

    // Both stayed within the budget; the paged peak is the actual working
    // set (3 blocks of 16 tokens per session), far under the reservation.
    assert!(legacy.kv_peak_bytes <= budget);
    assert!(paged.kv_peak_bytes <= budget);
    let block_bytes = DecodeStep::new("b", 1, 8, 1, 64).kv_block_bytes(16, hw.element_bytes);
    assert_eq!(paged.kv_peak_blocks, 16 * 3, "3 blocks cover 40 tokens");
    assert_eq!(paged.kv_peak_bytes, 16 * 3 * block_bytes);
    // Aggregate peak: 4x the sessions at under half the charge. Per
    // session, the 48-token working set is ~10x under the 512-token
    // reservation.
    assert!(paged.kv_peak_bytes < legacy.kv_peak_bytes / 2);
    assert!(paged.kv_peak_bytes / 16 < max_context_bytes / 10);

    // Legacy fragmentation at peak exposes the over-reservation (> 90% of
    // the charge is unused); paged waste is only the partial tail block.
    assert!(legacy.kv_frag_at_peak > 0.9, "{}", legacy.kv_frag_at_peak);
    assert!(paged.kv_frag_at_peak < 0.5, "{}", paged.kv_frag_at_peak);
}

#[test]
fn paged_charging_still_bounds_the_budget_under_real_pressure() {
    // When sessions really do grow past the budget, paged charging sheds
    // *steps* (pool overflows) rather than over-admitting: the charge never
    // exceeds the budget.
    let hw = HardwareConfig::edge_default();
    let block_bytes = DecodeStep::new("b", 1, 8, 1, 64).kv_block_bytes(16, hw.element_bytes);
    let budget = 20 * block_bytes;
    let policy = DecodePolicy {
        kv_budget_bytes: Some(budget),
        kv_block_tokens: Some(16),
        ..DecodePolicy::default()
    };
    // 4 sessions that genuinely decode 96 steps each (context up to 128
    // tokens = 8 blocks per session, 32 blocks demanded > 20 budgeted).
    let trace = overcommit_trace(4, 32, 96, 96);
    let report = DecodeRuntime::new(hw, policy).run_trace(&trace);
    assert_eq!(report.sessions_admitted, 4, "{}", report.summary());
    assert!(
        report.pool_overflows() > 0,
        "pressure must surface as overflows"
    );
    assert!(report.kv_peak_bytes <= budget, "the budget is a hard bound");
    assert_eq!(report.kv_peak_blocks, 20);
    // Sessions kept decoding at their capped residency: every non-overflow
    // step completed.
    assert_eq!(report.completed() + report.pool_overflows(), 4 * 96);
}

/// `n` simultaneous sessions all declaring the same `prefix_group` whose
/// first `shared_prefix_len` prompt tokens are a shared system prompt;
/// every session replays `steps` decode steps.
fn shared_prompt_trace(
    n: u64,
    prompt: usize,
    shared_prefix_len: usize,
    steps: usize,
) -> DecodeTrace {
    let sessions: Vec<DecodeSessionSpec> = (0..n)
        .map(|id| DecodeSessionSpec {
            id,
            network: Network::BertSmall,
            start_s: 0.0,
            heads: 8,
            kv_heads: 8,
            embed: 64,
            prompt_len: prompt,
            steps,
            prefix_group: Some(7),
            shared_prefix_len,
        })
        .collect();
    let mut events = Vec::new();
    for step_index in 0..steps {
        for id in 0..n {
            events.push(DecodeStepEvent {
                session_id: id,
                step_index,
                arrival_s: step_index as f64 * 0.01 + 1e-9,
            });
        }
    }
    DecodeTrace {
        sessions,
        steps: events,
    }
}

#[test]
fn prefix_sharing_charges_the_shared_prompt_once_and_admits_twice_the_sessions() {
    let hw = HardwareConfig::edge_default();
    let block_tokens = 16;
    let block_bytes =
        DecodeStep::new("b", 1, 8, 1, 64).kv_block_bytes(block_tokens, hw.element_bytes);

    // 8 sessions, 64-token shared system prompt (exactly 4 blocks), 8
    // decode steps each (context 65..=72 tokens = 5 blocks). Budget: 16
    // blocks of KV.
    let trace = shared_prompt_trace(8, 64, 64, 8);
    let budget = 16 * block_bytes;

    let private_policy = DecodePolicy {
        kv_budget_bytes: Some(budget),
        kv_block_tokens: Some(block_tokens),
        ..DecodePolicy::default()
    };
    let shared_policy = DecodePolicy {
        prefix_share: true,
        ..private_policy
    };

    // Private paged charging: each session charges 5 blocks at open
    // (context 65 tokens), so 16 blocks admit only 3 sessions.
    let private = DecodeRuntime::new(hw.clone(), private_policy).run_trace(&trace);
    assert_eq!(private.sessions_admitted, 3, "{}", private.summary());
    assert_eq!(private.shared_sessions, 0);
    assert_eq!(private.kv_shared_peak_bytes, 0);

    // Prefix sharing: the 4 prefix blocks are charged once group-wide;
    // each session privately holds only its 1-block decode tail, so all 8
    // sessions fit (4 + 8 = 12 blocks) — ≥2x the private admissions.
    let shared = DecodeRuntime::new(hw, shared_policy).run_trace(&trace);
    assert_eq!(shared.sessions_admitted, 8, "{}", shared.summary());
    assert!(shared.sessions_admitted >= 2 * private.sessions_admitted);
    assert!(shared.rejected_sessions.is_empty());
    assert_eq!(shared.pool_overflows(), 0);
    assert_eq!(shared.completed(), 8 * 8);

    // The shared-residency split is exact: 4 group blocks + 8 private
    // tail blocks at peak, with the shared peak counted once.
    assert_eq!(shared.shared_sessions, 8);
    assert_eq!(shared.kv_shared_peak_bytes, 4 * block_bytes);
    assert_eq!(shared.kv_peak_blocks, 4 + 8);
    assert_eq!(shared.kv_peak_bytes, (4 + 8) * block_bytes);
    assert!(shared.kv_peak_bytes <= budget);
    assert!(shared.kv_peak_bytes < private.kv_peak_bytes);

    // The summary surfaces the sharing.
    assert!(
        shared.summary().contains("shared prefixes: 8 sessions"),
        "{}",
        shared.summary()
    );
}

#[test]
fn sharing_with_a_partial_tail_charges_only_whole_prefix_blocks_group_wide() {
    let hw = HardwareConfig::edge_default();
    let block_tokens = 16;
    let block_bytes =
        DecodeStep::new("b", 1, 8, 1, 64).kv_block_bytes(block_tokens, hw.element_bytes);

    // A 40-token shared prefix covers only 2 whole 16-token blocks; the
    // 8-token tail of the prefix plus the 24 private prompt tokens live in
    // each session's private blocks (blocks 3 and 4 of the 64-token
    // prompt, plus the decode tail's block 5).
    let trace = shared_prompt_trace(4, 64, 40, 4);
    let policy = DecodePolicy {
        kv_budget_bytes: Some(64 * block_bytes),
        kv_block_tokens: Some(block_tokens),
        prefix_share: true,
        ..DecodePolicy::default()
    };
    let report = DecodeRuntime::new(hw, policy).run_trace(&trace);
    assert_eq!(report.sessions_admitted, 4, "{}", report.summary());
    assert_eq!(report.shared_sessions, 4);
    assert_eq!(report.kv_shared_peak_bytes, 2 * block_bytes);
    // 2 shared + 4 sessions x 3 private blocks (tokens 33..=68 span
    // blocks 3..=5 of each session's context).
    assert_eq!(report.kv_peak_blocks, 2 + 4 * 3);
    assert_eq!(report.pool_overflows(), 0);
}
