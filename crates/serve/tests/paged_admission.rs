//! The PR-3 over-reservation fix, pinned end to end: legacy admission
//! charges every session's KV at *declared maximum context* for its whole
//! lifetime, so a device budget admits only `budget / max_context_bytes`
//! concurrent sessions — even when actual contexts stay tiny. Block-granular
//! charging bills only the blocks a session has actually grown into, so the
//! same budget admits strictly more (here 4×) concurrent sessions with zero
//! pool overflows during replay.

use mas_dataflow::decode::DecodeStep;
use mas_serve::{DecodePolicy, DecodeRuntime};
use mas_sim::HardwareConfig;
use mas_workloads::{DecodeSessionSpec, DecodeStepEvent, DecodeTrace, Network};

/// A long-max-context / short-actual-context trace: `n` simultaneous
/// sessions each *declare* a generation budget of `declared_steps` (the
/// worst case legacy admission reserves) but the trace replays only
/// `actual_steps` of each.
fn overcommit_trace(
    n: u64,
    prompt: usize,
    declared_steps: usize,
    actual_steps: usize,
) -> DecodeTrace {
    assert!(actual_steps <= declared_steps);
    let sessions: Vec<DecodeSessionSpec> = (0..n)
        .map(|id| DecodeSessionSpec {
            id,
            network: Network::BertSmall,
            start_s: 0.0,
            heads: 8,
            kv_heads: 8,
            embed: 64,
            prompt_len: prompt,
            steps: declared_steps,
        })
        .collect();
    let mut steps = Vec::new();
    for step_index in 0..actual_steps {
        for id in 0..n {
            steps.push(DecodeStepEvent {
                session_id: id,
                step_index,
                arrival_s: step_index as f64 * 0.01 + 1e-9,
            });
        }
    }
    DecodeTrace { sessions, steps }
}

#[test]
fn paged_charging_admits_at_least_twice_the_sessions_of_max_context_reservation() {
    let hw = HardwareConfig::edge_default();
    let block_tokens = 16;

    // 16 sessions, prompt 32, declared max context 512, but only 8 steps
    // actually replayed (actual context ≤ 40 tokens).
    let trace = overcommit_trace(16, 32, 480, 8);

    // Budget: exactly four sessions' worth of max-context KV.
    let max_context_bytes = DecodeStep::new("max", 1, 8, 512, 64).kv_cache_bytes(hw.element_bytes);
    let budget = 4 * max_context_bytes;

    let legacy_policy = DecodePolicy {
        kv_budget_bytes: Some(budget),
        kv_block_tokens: None,
        ..DecodePolicy::default()
    };
    let paged_policy = DecodePolicy {
        kv_budget_bytes: Some(budget),
        kv_block_tokens: Some(block_tokens),
        ..DecodePolicy::default()
    };

    let legacy = DecodeRuntime::new(hw.clone(), legacy_policy).run_trace(&trace);
    let paged = DecodeRuntime::new(hw.clone(), paged_policy).run_trace(&trace);

    // Legacy over-reservation caps concurrency at the worst case.
    assert_eq!(legacy.sessions_admitted, 4, "{}", legacy.summary());
    assert_eq!(legacy.rejected_sessions.len(), 12);

    // Block-granular charging admits every session — strictly more, and at
    // least the 2x the acceptance criterion demands — with zero pool
    // overflows during replay.
    assert_eq!(paged.sessions_admitted, 16, "{}", paged.summary());
    assert!(paged.sessions_admitted >= 2 * legacy.sessions_admitted);
    assert!(paged.rejected_sessions.is_empty());
    assert_eq!(paged.pool_overflows(), 0, "no step may be shed for blocks");
    assert!(paged.rejected.is_empty());

    // Every admitted session's steps completed, so paged throughput is 4x.
    assert_eq!(paged.completed(), 16 * 8);
    assert_eq!(legacy.completed(), 4 * 8);

    // Both stayed within the budget; the paged peak is the actual working
    // set (3 blocks of 16 tokens per session), far under the reservation.
    assert!(legacy.kv_peak_bytes <= budget);
    assert!(paged.kv_peak_bytes <= budget);
    let block_bytes = DecodeStep::new("b", 1, 8, 1, 64).kv_block_bytes(16, hw.element_bytes);
    assert_eq!(paged.kv_peak_blocks, 16 * 3, "3 blocks cover 40 tokens");
    assert_eq!(paged.kv_peak_bytes, 16 * 3 * block_bytes);
    // Aggregate peak: 4x the sessions at under half the charge. Per
    // session, the 48-token working set is ~10x under the 512-token
    // reservation.
    assert!(paged.kv_peak_bytes < legacy.kv_peak_bytes / 2);
    assert!(paged.kv_peak_bytes / 16 < max_context_bytes / 10);

    // Legacy fragmentation at peak exposes the over-reservation (> 90% of
    // the charge is unused); paged waste is only the partial tail block.
    assert!(legacy.kv_frag_at_peak > 0.9, "{}", legacy.kv_frag_at_peak);
    assert!(paged.kv_frag_at_peak < 0.5, "{}", paged.kv_frag_at_peak);
}

#[test]
fn paged_charging_still_bounds_the_budget_under_real_pressure() {
    // When sessions really do grow past the budget, paged charging sheds
    // *steps* (pool overflows) rather than over-admitting: the charge never
    // exceeds the budget.
    let hw = HardwareConfig::edge_default();
    let block_bytes = DecodeStep::new("b", 1, 8, 1, 64).kv_block_bytes(16, hw.element_bytes);
    let budget = 20 * block_bytes;
    let policy = DecodePolicy {
        kv_budget_bytes: Some(budget),
        kv_block_tokens: Some(16),
        ..DecodePolicy::default()
    };
    // 4 sessions that genuinely decode 96 steps each (context up to 128
    // tokens = 8 blocks per session, 32 blocks demanded > 20 budgeted).
    let trace = overcommit_trace(4, 32, 96, 96);
    let report = DecodeRuntime::new(hw, policy).run_trace(&trace);
    assert_eq!(report.sessions_admitted, 4, "{}", report.summary());
    assert!(
        report.pool_overflows() > 0,
        "pressure must surface as overflows"
    );
    assert!(report.kv_peak_bytes <= budget, "the budget is a hard bound");
    assert_eq!(report.kv_peak_blocks, 20);
    // Sessions kept decoding at their capped residency: every non-overflow
    // step completed.
    assert_eq!(report.completed() + report.pool_overflows(), 4 * 96);
}
