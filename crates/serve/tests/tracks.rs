//! The overlap-aware track executor's serve-level contracts.
//!
//! * **Bit-identity** — `tracks: None` (the default) and the degenerate
//!   single-queue `TrackConfig` replay every report bitwise-equal to the
//!   scalar device model, across policies × budgets × paged/legacy KV ×
//!   1–2 devices (proptest).
//! * **Never worse** — with the real four-track config the engine's
//!   makespan is ≤ the scalar model's on every workload of a
//!   deterministic differential suite (decode-heavy, prefill-heavy,
//!   mixed, chunked), completing exactly the same work, and strictly
//!   better on the DRAM-bound fine-grained decode grid.
//! * **Per-queue crossover** — the paper's memory-bound/compute-bound
//!   regimes reappear per track: a KV-streaming decode run keeps the
//!   inbound-DMA track the busiest, a large-batch prefill run the MAC
//!   track.
//! * **Telemetry** — stage events validate per-track (monotone tracks,
//!   conserved arrivals, bit-identical report reconstruction), and the
//!   Chrome trace passes `validate_chrome_trace` while genuinely
//!   overlapping stages across different track rows of one device.

use proptest::prelude::*;

use mas_dataflow::DataflowKind;
use mas_serve::{
    ChunkPolicy, DecodePolicy, EngineConfig, EngineReport, EventKind, SchedulePolicy, ServeEngine,
    ServeRequest, TelemetryConfig, TrackConfig, TrackKind,
};
use mas_workloads::{
    mixed_trace, DecodeSessionSpec, DecodeStepEvent, DecodeTrace, MixedTraceConfig, Network,
};

/// `sessions` decode sessions in lockstep: step `k` of every session
/// arrives at `k · gap_s` (cross-session simultaneous, so steps batch).
fn lockstep_decode(sessions: u64, steps: usize, prompt: usize, gap_s: f64) -> DecodeTrace {
    let specs: Vec<DecodeSessionSpec> = (0..sessions)
        .map(|id| DecodeSessionSpec {
            id,
            network: Network::BertSmall,
            start_s: 0.0,
            heads: 8,
            kv_heads: 8,
            embed: 64,
            prompt_len: prompt,
            steps,
            prefix_group: None,
            shared_prefix_len: 0,
        })
        .collect();
    let mut events = Vec::new();
    for step_index in 0..steps {
        for id in 0..sessions {
            events.push(DecodeStepEvent {
                session_id: id,
                step_index,
                arrival_s: step_index as f64 * gap_s + 1e-9,
            });
        }
    }
    DecodeTrace {
        sessions: specs,
        steps: events,
    }
}

/// `count` identical prefill requests arriving `gap_s` apart.
fn prefill_stream(count: usize, gap_s: f64, network: Network, batch: usize) -> Vec<ServeRequest> {
    (0..count)
        .map(|i| {
            ServeRequest::new(
                i as u64,
                i as f64 * gap_s,
                DataflowKind::MasAttention,
                network.attention_workload(batch),
                None,
            )
        })
        .collect()
}

/// The differential pair: one scalar run and one run differing only in
/// `tracks`, over the same inputs.
fn run_pair(
    mut config: EngineConfig,
    tracks: TrackConfig,
    prefill: &[ServeRequest],
    decode: &DecodeTrace,
) -> (EngineReport, EngineReport) {
    config.tracks = None;
    let scalar = ServeEngine::new(config.clone())
        .run(prefill, decode)
        .unwrap();
    config.tracks = Some(tracks);
    let overlap = ServeEngine::new(config).run(prefill, decode).unwrap();
    (scalar, overlap)
}

/// Asserts the overlap run finishes no later than the scalar run while
/// completing exactly the same work set.
fn assert_never_worse(scalar: &EngineReport, overlap: &EngineReport, label: &str) {
    assert!(
        overlap.makespan_s <= scalar.makespan_s,
        "{label}: overlap makespan {:.6e} s exceeds scalar {:.6e} s",
        overlap.makespan_s,
        scalar.makespan_s,
    );
    assert_eq!(
        overlap.prefill.completed(),
        scalar.prefill.completed(),
        "{label}: prefill work set changed"
    );
    assert_eq!(
        overlap.decode.completed(),
        scalar.decode.completed(),
        "{label}: decode work set changed"
    );
    assert_eq!(
        overlap.rejected(),
        scalar.rejected(),
        "{label}: reject set changed"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // The degenerate single-queue config serializes every stage DAG, which
    // is provably never faster than the scalar span — so the min-clamp
    // always commits the scalar candidate and the replay must be
    // bit-identical to `tracks: None`, across the whole configuration
    // grid the scalar engine is pinned on.
    #[test]
    fn degenerate_track_config_replays_bitwise_equal_to_scalar(
        prefill_count in 0usize..8,
        sessions in 0usize..4,
        seed in 0u64..1000,
        budget_pick in 0usize..3,
        policy_pick in 0usize..3,
        paged_pick in 0usize..2,
        devices in 1usize..3,
        chunk_pick in 0usize..2,
    ) {
        let budget_mb = [4u64, 16, 3072][budget_pick];
        let policy = [
            SchedulePolicy::FairShare,
            SchedulePolicy::DecodePriority,
            SchedulePolicy::PrefillPriority,
        ][policy_pick];
        let trace = mixed_trace(&MixedTraceConfig::poisson(
            vec![Network::BertSmall, Network::T5Mini],
            prefill_count,
            2000.0,
            sessions,
            300.0,
            seed,
        ));
        let stream = ServeRequest::stream_from_trace(
            &trace.prefill,
            DataflowKind::MasAttention,
            Some(0.05),
        );
        let config = EngineConfig {
            decode: DecodePolicy {
                kv_block_tokens: if paged_pick == 1 { Some(16) } else { None },
                ..DecodePolicy::default()
            },
            policy,
            devices,
            shared_budget_bytes: Some(budget_mb * 1_000_000),
            chunked_prefill: if chunk_pick == 1 {
                Some(ChunkPolicy::new(64))
            } else {
                None
            },
            ..EngineConfig::default()
        };
        let (scalar, degenerate) =
            run_pair(config, TrackConfig::degenerate(), &stream, &trace.decode);
        prop_assert_eq!(scalar, degenerate);
    }
}

/// The deterministic differential suite: every workload shape the engine
/// serves, each replayed scalar-vs-overlap on one device with an ample
/// budget (no preemption — displacement decisions depend on start times,
/// which overlap legitimately moves).
#[test]
fn overlap_makespan_never_exceeds_scalar_across_the_differential_suite() {
    let base = EngineConfig {
        devices: 1,
        shared_budget_bytes: Some(3_000_000_000),
        ..EngineConfig::default()
    };
    let empty = DecodeTrace::empty();

    // Decode-heavy: contexts from KV-trivial to KV-dominated.
    for prompt in [1usize, 16, 64, 256, 2000] {
        let decode = lockstep_decode(8, 12, prompt, 1e-6);
        let (scalar, overlap) = run_pair(base.clone(), TrackConfig::default(), &[], &decode);
        assert_never_worse(&scalar, &overlap, &format!("decode prompt={prompt}"));
    }

    // Prefill-heavy: compute-bound (BertBase) and smaller (BertSmall).
    for (network, batch) in [(Network::BertBase, 4), (Network::BertSmall, 1)] {
        let prefill = prefill_stream(12, 1e-5, network, batch);
        let (scalar, overlap) = run_pair(base.clone(), TrackConfig::default(), &prefill, &empty);
        assert_never_worse(&scalar, &overlap, &format!("prefill {network:?}"));
    }

    // Mixed random interleavings.
    for seed in [7u64, 42, 1234] {
        let trace = mixed_trace(&MixedTraceConfig::poisson(
            vec![Network::BertSmall, Network::T5Mini],
            8,
            2000.0,
            3,
            300.0,
            seed,
        ));
        let stream =
            ServeRequest::stream_from_trace(&trace.prefill, DataflowKind::MasAttention, None);
        let (scalar, overlap) =
            run_pair(base.clone(), TrackConfig::default(), &stream, &trace.decode);
        assert_never_worse(&scalar, &overlap, &format!("mixed seed={seed}"));
    }

    // Chunked prefill chains.
    let chunked = EngineConfig {
        chunked_prefill: Some(ChunkPolicy::new(64)),
        ..base.clone()
    };
    let prefill = prefill_stream(4, 1e-5, Network::BertBase, 2);
    let decode = lockstep_decode(4, 8, 64, 1e-4);
    let (scalar, overlap) = run_pair(chunked, TrackConfig::default(), &prefill, &decode);
    assert_never_worse(&scalar, &overlap, "chunked mixed");
}

/// The DRAM-bound fine-grained decode grid: short contexts make the
/// appended-row writeback a fixed ~25% of each step's traffic, so routing
/// the two DMA directions onto separate queues (plus pipelining launches
/// on the track clocks) must beat the scalar sum-of-directions model
/// strictly — this is the bench's ≥1.2× leg, pinned here at a
/// conservative strict-improvement bar.
#[test]
fn overlap_strictly_beats_scalar_on_dram_bound_fine_grained_decode() {
    let config = EngineConfig {
        devices: 1,
        shared_budget_bytes: Some(3_000_000_000),
        ..EngineConfig::default()
    };
    let decode = lockstep_decode(16, 24, 1, 1e-7);
    let (scalar, overlap) = run_pair(config, TrackConfig::default(), &[], &decode);
    assert_never_worse(&scalar, &overlap, "dram-bound decode");
    assert!(
        overlap.makespan_s < 0.95 * scalar.makespan_s,
        "direction-split overlap must strictly beat the scalar model on \
         write-heavy short-context decode: {:.6e} s vs {:.6e} s",
        overlap.makespan_s,
        scalar.makespan_s,
    );
}

/// The paper's memory-bound/compute-bound crossover, reproduced per
/// queue: the busiest track of a KV-streaming decode run is inbound DMA,
/// of a large compute-bound prefill run the MAC queue.
#[test]
fn track_busy_reproduces_the_memory_compute_crossover_per_queue() {
    let config = EngineConfig {
        devices: 1,
        shared_budget_bytes: Some(3_000_000_000),
        tracks: Some(TrackConfig::default()),
        ..EngineConfig::default()
    };

    let mut engine = ServeEngine::new(config.clone());
    engine.run(&[], &lockstep_decode(8, 16, 512, 1e-6)).unwrap();
    let stats = engine.track_stats().expect("tracks configured")[0];
    let busy = stats.busy_s();
    let busiest = (0..busy.len()).max_by(|&a, &b| busy[a].total_cmp(&busy[b]));
    assert_eq!(
        busiest,
        Some(TrackKind::DmaIn.index()),
        "KV-streaming decode must be DMA-in bound per queue: {busy:?}"
    );

    // Fine-grained short-context decode: writeback is a fixed quarter of
    // each step's traffic, so the flow-shop candidate strictly wins and
    // the commit counter proves the overlap path engaged — while inbound
    // DMA stays the busiest queue.
    let mut engine = ServeEngine::new(config.clone());
    engine.run(&[], &lockstep_decode(16, 24, 1, 1e-7)).unwrap();
    let stats = engine.track_stats().expect("tracks configured")[0];
    assert!(
        stats.overlap_launches > 0,
        "short-context decode must commit overlap placements"
    );
    let busy = stats.busy_s();
    let busiest = (0..busy.len()).max_by(|&a, &b| busy[a].total_cmp(&busy[b]));
    assert_eq!(busiest, Some(TrackKind::DmaIn.index()), "{busy:?}");

    let mut engine = ServeEngine::new(config);
    engine
        .run(
            &prefill_stream(8, 1e-5, Network::BertBase, 4),
            &DecodeTrace::empty(),
        )
        .unwrap();
    let stats = engine.track_stats().expect("tracks configured")[0];
    let busy = stats.busy_s();
    let busiest = (0..busy.len()).max_by(|&a, &b| busy[a].total_cmp(&busy[b]));
    assert_eq!(
        busiest,
        Some(TrackKind::Mac.index()),
        "compute-bound prefill must be MAC bound per queue: {busy:?}"
    );
}

/// Telemetry under the track executor: the event log stays monotone per
/// track and conserved, reconstructs the engine report bit-for-bit with
/// stage events present, and the Chrome export passes the per-row overlap
/// validator while stages on *different* tracks of one device really do
/// overlap in time.
#[test]
fn stage_events_validate_and_overlap_across_track_rows() {
    let mut engine = ServeEngine::new(EngineConfig {
        devices: 1,
        shared_budget_bytes: Some(3_000_000_000),
        tracks: Some(TrackConfig::default()),
        telemetry: Some(TelemetryConfig::default()),
        ..EngineConfig::default()
    });
    let prefill = prefill_stream(4, 1e-5, Network::BertSmall, 1);
    let decode = lockstep_decode(8, 12, 64, 1e-6);
    let report = engine.run(&prefill, &decode).unwrap();
    let telemetry = engine.telemetry().unwrap();

    telemetry.tracks_monotone().expect("per-track monotonicity");
    telemetry.conservation_check().expect("conserved arrivals");
    assert_eq!(telemetry.report().expect("complete log"), report);

    // Collect stage spans; they must exist and overlap across tracks.
    let mut stages: Vec<(TrackKind, f64, f64)> = Vec::new();
    for event in telemetry.events() {
        if let EventKind::LaunchStage {
            track,
            start_s,
            end_s,
            device: 0,
            ..
        } = &event.kind
        {
            stages.push((*track, *start_s, *end_s));
        }
    }
    assert!(!stages.is_empty(), "overlap commits must emit stage events");
    let cross_track_overlap = stages.iter().any(|&(ta, sa, ea)| {
        stages
            .iter()
            .any(|&(tb, sb, eb)| ta != tb && sa < eb && sb < ea)
    });
    assert!(
        cross_track_overlap,
        "stages on different tracks of one device must overlap in time"
    );

    // The Chrome export is per-row serial even though the rows overlap.
    let json = telemetry.chrome_trace_json();
    let stats = mas_serve::validate_chrome_trace(&json).expect("valid trace");
    assert!(stats.spans > 0);
    // Device 0 exports more than one span row: its scalar row plus the
    // track rows the staged launches landed on.
    assert!(
        stats.span_tracks > 1,
        "track rows must appear as separate tids: {stats:?}"
    );
}
